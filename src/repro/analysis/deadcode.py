"""Dead-code passes (rule family RP4L2xx).

On a runtime-programmable device dead code is not just noise: an
unreachable stage still occupies a TSP template slot and its tables
still demand pool blocks, so dead constructs shrink the headroom the
whole in-situ update story depends on.

* RP4L201 -- a stage no packet path from either pipeline entry reaches;
* RP4L202 -- a table no stage's matcher applies;
* RP4L203 -- an action no executor maps and no table declares;
* RP4L204 -- a table-declared action absent from every applying
  stage's executor (entries bound to it could never execute);
* RP4L205 -- a matcher arm after the unconditional arm of the chain.
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.analysis.diag import Diagnostic, Span, make
from repro.compiler.stage_graph import StageGraph
from repro.rp4.ast import Rp4Program
from repro.rp4.semantic import BUILTIN_ACTIONS


def _span(decl, path: str) -> Optional[Span]:
    line = getattr(decl, "line", 0)
    if not line:
        return Span(file=path) if path else None
    return Span(file=path, line=line, column=getattr(decl, "column", 0))


def check_unreachable_stages(
    program: Rp4Program, graph: StageGraph, path: str = "<rp4>"
) -> List[Diagnostic]:
    """RP4L201 over the stage graph's two entries."""
    live = graph.reachable_from(graph.ingress_entry) | graph.reachable_from(
        graph.egress_entry
    )
    diags: List[Diagnostic] = []
    for name, stage in program.all_stages().items():
        if name not in live:
            diags.append(
                make(
                    "RP4L201",
                    f"stage {name!r} is unreachable from both pipeline "
                    "entries; its tables would waste pool blocks",
                    _span(stage, path),
                )
            )
    return diags


def check_unapplied_tables(
    program: Rp4Program, path: str = "<rp4>"
) -> List[Diagnostic]:
    """RP4L202: declared tables no matcher applies."""
    applied: Set[str] = set()
    for stage in program.all_stages().values():
        applied |= {arm.table for arm in stage.matcher if arm.table}
    return [
        make(
            "RP4L202",
            f"table {name!r} is never applied by any stage",
            _span(table, path),
        )
        for name, table in program.tables.items()
        if name not in applied
    ]


def check_unused_actions(
    program: Rp4Program, path: str = "<rp4>"
) -> List[Diagnostic]:
    """RP4L203: declared actions no executor or table references."""
    used: Set[str] = set(BUILTIN_ACTIONS)
    for stage in program.all_stages().values():
        used |= set(stage.executor.values())
    for table in program.tables.values():
        used |= set(table.actions)
        used.add(table.default_action)
    return [
        make(
            "RP4L203",
            f"action {name!r} is never used by any executor or table",
            _span(action, path),
        )
        for name, action in program.actions.items()
        if name not in used
    ]


def check_uninstallable_actions(
    program: Rp4Program, path: str = "<rp4>"
) -> List[Diagnostic]:
    """RP4L204: a table's declared action that no applying stage's
    executor exposes -- entries bound to it can never run."""
    diags: List[Diagnostic] = []
    for name, table in program.tables.items():
        if not table.actions:
            continue
        installable: Set[str] = {table.default_action}
        applied = False
        for stage in program.all_stages().values():
            if any(arm.table == name for arm in stage.matcher):
                applied = True
                installable |= set(stage.executor.values())
        if not applied:
            continue  # RP4L202 already covers never-applied tables
        for action in table.actions:
            if action not in installable:
                diags.append(
                    make(
                        "RP4L204",
                        f"table {name!r} declares action {action!r} but no "
                        "applying stage's executor maps it to a tag",
                        _span(table, path),
                    )
                )
    return diags


def check_unreachable_arms(
    program: Rp4Program, path: str = "<rp4>"
) -> List[Diagnostic]:
    """RP4L205: matcher arms after the unconditional arm."""
    diags: List[Diagnostic] = []
    for name, stage in program.all_stages().items():
        unconditional = None
        for i, arm in enumerate(stage.matcher):
            if arm.cond is None:
                unconditional = i
                break
        if unconditional is None:
            continue
        for arm in stage.matcher[unconditional + 1 :]:
            diags.append(
                make(
                    "RP4L205",
                    f"stage {name!r}: matcher arm is unreachable (follows "
                    "the unconditional arm)",
                    _span(arm, path) or _span(stage, path),
                )
            )
    return diags


def lint_deadcode(
    program: Rp4Program,
    graph: Optional[StageGraph] = None,
    path: str = "<rp4>",
    snippet: bool = False,
) -> List[Diagnostic]:
    """Run the whole family.  ``snippet=True`` skips reachability
    (RP4L201) -- snippet stages attach to the pipeline at load time."""
    diags = check_unapplied_tables(program, path)
    diags.extend(check_unused_actions(program, path))
    diags.extend(check_uninstallable_actions(program, path))
    diags.extend(check_unreachable_arms(program, path))
    if not snippet:
        if graph is None:
            graph = StageGraph.from_program(program)
        diags.extend(check_unreachable_stages(program, graph, path))
    return diags

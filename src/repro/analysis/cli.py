"""``rp4lint``: the static-analysis CLI (also ``ipbm-ctl lint``).

Lints ``.rp4`` source files and device-config ``.json`` documents;
``--shipped`` runs the whole built-in program suite -- the base
design, every use-case snippet, and each base+script composition --
through the same gates the compiler and controller use.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.analysis.diag import Diagnostic, dumps, errors, promote_warnings
from repro.analysis.linter import lint_config, lint_source


def _shipped_diagnostics(target) -> List[Diagnostic]:
    """Lint every shipped program plus each composed update."""
    from repro.analysis.linter import lint_design
    from repro.analysis.update_safety import lint_update
    from repro.compiler.rp4bc import compile_base, compile_update
    from repro.programs import (
        acl_load_script,
        acl_rp4_source,
        base_rp4_source,
        ecmp_load_script,
        ecmp_rp4_source,
        flowprobe_load_script,
        flowprobe_rp4_source,
        hhsketch_load_script,
        hhsketch_rp4_source,
        int_load_script,
        int_rp4_source,
        int_strip_load_script,
        int_strip_rp4_source,
        qos_load_script,
        qos_rp4_source,
        srv6_load_script,
        srv6_rp4_source,
    )

    snippets = {
        "acl.rp4": (acl_rp4_source(), acl_load_script()),
        "ecmp.rp4": (ecmp_rp4_source(), ecmp_load_script()),
        "flowprobe.rp4": (flowprobe_rp4_source(), flowprobe_load_script()),
        "hhsketch.rp4": (hhsketch_rp4_source(), hhsketch_load_script()),
        "int.rp4": (int_rp4_source(), int_load_script()),
        # Strip-only composition: chain directly after the base (the
        # int_insert-chained variant needs int_insert loaded first).
        "int_strip.rp4": (
            int_strip_rp4_source(),
            int_strip_load_script(after="l2_l3"),
        ),
        "qos.rp4": (qos_rp4_source(), qos_load_script()),
        "srv6.rp4": (srv6_rp4_source(), srv6_load_script()),
    }

    base_source = base_rp4_source()
    diags = lint_source(base_source, path="base_l2l3.rp4", target=target)
    for name, (source, _script) in sorted(snippets.items()):
        diags.extend(lint_source(source, path=name, target=target))
    # Composed: apply each load script to a freshly compiled base and
    # run the controller's pre-apply gate on the result.
    for name, (source, script) in sorted(snippets.items()):
        design = compile_base(base_source, target, lint="off")
        sources = {key: source for key in _script_source_names(script)}
        plan = compile_update(design, script, sources)
        composed = f"base_l2l3+{name}"
        diags.extend(lint_update(design, plan, path=composed))
        diags.extend(lint_design(plan.design, path=composed))
    return diags


def _script_source_names(script: str) -> List[str]:
    """Snippet file names a load script references."""
    names = []
    for line in script.splitlines():
        parts = line.split()
        if parts and parts[0] == "load" and len(parts) > 1:
            names.append(parts[1])
    return names


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="rp4lint",
        description=(
            "Whole-program static analysis for rP4 sources and device "
            "configs: parse-soundness, dead code, memory feasibility."
        ),
    )
    parser.add_argument(
        "files",
        nargs="*",
        help=".rp4 sources and/or config .json documents to lint",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="promote warnings to errors (info findings stay info)",
    )
    parser.add_argument(
        "--tsps", type=int, default=8, help="TSP count of the target device"
    )
    parser.add_argument(
        "--snippet",
        action="store_true",
        help="treat sources as incremental snippets (header-local rules only)",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="force whole-program mode even without entry declarations",
    )
    parser.add_argument(
        "--shipped",
        action="store_true",
        help="lint the built-in programs and their composed updates",
    )
    parser.add_argument(
        "-o", "--output", help="write the report to a file instead of stdout"
    )
    args = parser.parse_args(argv)
    if args.snippet and args.full:
        parser.error("--snippet and --full are mutually exclusive")
    if not args.files and not args.shipped:
        parser.error("nothing to lint: pass files or --shipped")

    from repro.compiler.rp4bc import TargetSpec

    target = TargetSpec(n_tsps=args.tsps)
    mode = "snippet" if args.snippet else "full" if args.full else "auto"

    diags: List[Diagnostic] = []
    for path in args.files:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
        except OSError as exc:
            print(f"rp4lint: cannot read {path}: {exc}", file=sys.stderr)
            return 2
        if path.endswith(".json"):
            try:
                config = json.loads(text)
            except json.JSONDecodeError as exc:
                print(f"rp4lint: {path}: invalid JSON: {exc}", file=sys.stderr)
                return 2
            diags.extend(lint_config(config, n_tsps=args.tsps, path=path))
        else:
            diags.extend(lint_source(text, path=path, target=target, mode=mode))
    if args.shipped:
        diags.extend(_shipped_diagnostics(target))

    if args.strict:
        diags = promote_warnings(diags)
    diags.sort(
        key=lambda d: (
            d.span.file if d.span else "",
            d.span.line if d.span else 0,
            d.rule,
        )
    )
    report = dumps(diags, args.format)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
    else:
        print(report)
    return 1 if errors(diags) else 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Update-plan safety passes (rule family RP4L4xx).

The drain-based insert/delete protocol (paper Sec. 3.2) swaps logical
stages under live traffic, so an unsafe plan corrupts a running
pipeline rather than failing a compile.  Given the running design and
a proposed :class:`~repro.compiler.rp4bc.UpdatePlan`, these passes
verify:

* RP4L401 -- the new pipeline-selector configuration is in bounds;
* RP4L402 -- no drained stage strands a metadata field a surviving
  stage still reads (the read would silently see the per-packet
  default after the update).

The controller's pre-apply gate composes this family with a full
re-lint of the post-update program (families 1-3), per the "post-
update program re-passes everything" contract.
"""

from __future__ import annotations

from typing import Dict, List, Set, TYPE_CHECKING

from repro.analysis.diag import Diagnostic, Span, make
from repro.compiler.dependency import STAR, StageEffects, stage_effects
from repro.rp4.semantic import INTRINSIC_FIELDS

if TYPE_CHECKING:  # avoid a module-level cycle with rp4bc
    from repro.compiler.rp4bc import CompiledDesign, UpdatePlan


def _meta_fields(refs: Set[str]) -> Set[str]:
    """The ``meta.*`` refs in a read/write set, intrinsics excluded
    (the device initializes intrinsic fields on every packet)."""
    out: Set[str] = set()
    for ref in refs:
        if ref == STAR:
            continue
        scope, _, fname = ref.partition(".")
        if scope == "meta" and fname and fname not in INTRINSIC_FIELDS:
            out.add(ref)
    return out


def check_selector(
    selector: dict, n_tsps: int, path: str = "<update>"
) -> List[Diagnostic]:
    """RP4L401 over a proposed selector configuration."""
    diags: List[Diagnostic] = []
    span = Span(file=path)

    def err(message: str) -> None:
        diags.append(make("RP4L401", message, span))

    if not selector:
        return diags
    tm_in, tm_out = selector.get("tm_input"), selector.get("tm_output")
    if tm_in is not None and tm_out is not None and tm_in >= tm_out:
        err(f"selector: tm_input {tm_in} must precede tm_output {tm_out}")
    active = list(selector.get("active", []))
    bypassed = list(selector.get("bypassed", []))
    for slot in active + bypassed:
        if not 0 <= slot < n_tsps:
            err(f"selector: TSP {slot} out of range for {n_tsps} TSPs")
    overlap = set(active) & set(bypassed)
    if overlap:
        err(f"selector: TSPs both active and bypassed: {sorted(overlap)}")
    return diags


def check_stranded_fields(
    before: "CompiledDesign",
    plan: "UpdatePlan",
    path: str = "<update>",
) -> List[Diagnostic]:
    """RP4L402: fields whose only writers are drained away while a
    surviving stage still reads them."""
    removed = [
        name for name in plan.removed_stages
        if name in before.program.all_stages()
    ]
    if not removed:
        return []
    before_stages = before.program.all_stages()
    removed_writes: Dict[str, List[str]] = {}  # field -> removed writers
    star_writers: List[str] = []  # removed stages with write-all effects
    for name in removed:
        eff = before.deps.effects.get(name)
        if eff is None:
            eff = stage_effects(before_stages[name], before.program)
        if STAR in eff.writes:
            # Unknown/extern primitive: conservatively a writer of every
            # metadata field (read-write-all fallback), so draining it
            # potentially strands anything a survivor still reads.
            star_writers.append(name)
        for fieldref in _meta_fields(eff.writes):
            removed_writes.setdefault(fieldref, []).append(name)

    after = plan.design
    survivor_effects: Dict[str, StageEffects] = {}
    after_stages = after.program.all_stages()
    for name in after_stages:
        eff = after.deps.effects.get(name)
        if eff is None:
            eff = stage_effects(after_stages[name], after.program)
        survivor_effects[name] = eff

    if star_writers:
        # Every meta field some survivor reads may have depended on the
        # drained write-all stage; check each of them for live writers.
        for eff in survivor_effects.values():
            for fieldref in _meta_fields(eff.reads):
                writers = removed_writes.setdefault(fieldref, [])
                writers.extend(n for n in star_writers if n not in writers)
    if not removed_writes:
        return []

    diags: List[Diagnostic] = []
    for fieldref in sorted(removed_writes):
        writers = [
            name
            for name, eff in survivor_effects.items()
            if fieldref in eff.writes or STAR in eff.writes
        ]
        if writers:
            continue  # someone still produces the field
        readers = sorted(
            name
            for name, eff in survivor_effects.items()
            if fieldref in eff.reads or STAR in eff.reads
        )
        if not readers:
            continue  # nobody consumes it either; plain removal
        gone = ", ".join(sorted(removed_writes[fieldref]))
        diags.append(
            make(
                "RP4L402",
                f"update strands {fieldref!r}: drained stage(s) {gone} "
                f"were its only writer(s) but surviving stage(s) "
                f"{', '.join(readers)} still read it",
                Span(file=path),
            )
        )
    return diags


def lint_update(
    before: "CompiledDesign",
    plan: "UpdatePlan",
    path: str = "<update>",
) -> List[Diagnostic]:
    """Family 4 over a proposed update plan."""
    diags = check_selector(plan.selector, before.target.n_tsps, path)
    diags.extend(check_stranded_fields(before, plan, path))
    return diags

"""Parse-soundness passes (rule family RP4L1xx).

The paper's distributed on-demand parsing (Sec. 3.1) replaces the
monolithic front-end parser with per-header ``implicit parser`` link
declarations, so whether a header can ever be valid -- and whether a
stage may read its fields -- becomes a whole-program reachability
question over the header-linkage graph.  These passes answer it
statically:

* RP4L101 -- a header no parse path reaches and no action constructs;
* RP4L102 -- one selector tag mapped to two different next headers;
* RP4L103 -- a cycle in the linkage graph (unbounded parse loop);
* RP4L104 -- a stage reads a field of a header that no upstream parse
  path can have made valid by that stage (read-before-parse);
* RP4L105 -- a link targeting an undeclared header (load-time bind).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.analysis.diag import Diagnostic, Span, make
from repro.compiler.dependency import STAR, StageEffects, expr_reads, stage_effects
from repro.compiler.stage_graph import StageGraph
from repro.rp4.ast import Rp4Program, StageDecl


def _span(decl, path: str) -> Optional[Span]:
    line = getattr(decl, "line", 0)
    if not line:
        return Span(file=path) if path else None
    return Span(file=path, line=line, column=getattr(decl, "column", 0))


def link_map(program: Rp4Program) -> Dict[str, List[str]]:
    """Header -> linked next headers (declared headers only)."""
    out: Dict[str, List[str]] = {}
    for header in program.headers.values():
        out[header.name] = [
            nxt for _, nxt in header.links if nxt in program.headers
        ]
    return out


def root_headers(program: Rp4Program) -> List[str]:
    """Headers no declared link targets (the wire-format roots)."""
    targets: Set[str] = set()
    for header in program.headers.values():
        targets |= {nxt for _, nxt in header.links}
    return [name for name in program.headers if name not in targets]


def constructed_headers(
    program: Rp4Program, effects: Dict[str, StageEffects]
) -> Set[str]:
    """Headers some action writes into existence (e.g. ``push_int``
    inserting ``int_shim``): valid without any parse path."""
    built: Set[str] = set()
    for eff in effects.values():
        for ref in eff.writes:
            scope = ref.partition(".")[0]
            if scope in program.headers:
                built.add(scope)
    return built


def _stage_effect_map(program: Rp4Program) -> Dict[str, StageEffects]:
    return {
        name: stage_effects(stage, program)
        for name, stage in program.all_stages().items()
    }


def check_links(
    program: Rp4Program, path: str = "<rp4>"
) -> List[Diagnostic]:
    """RP4L102 (conflicting tags), RP4L103 (cycles), RP4L105
    (undeclared targets) -- sound for snippets too."""
    diags: List[Diagnostic] = []
    for header in program.headers.values():
        seen: Dict[int, str] = {}
        for tag, nxt in header.links:
            prior = seen.get(tag)
            if prior is not None and prior != nxt:
                diags.append(
                    make(
                        "RP4L102",
                        f"header {header.name!r}: selector tag {tag} links to "
                        f"both {prior!r} and {nxt!r}",
                        _span(header, path),
                    )
                )
            seen.setdefault(tag, nxt)
            if nxt not in program.headers:
                diags.append(
                    make(
                        "RP4L105",
                        f"header {header.name!r}: link tag {tag} targets "
                        f"undeclared header {nxt!r} (must be bound at load "
                        "time)",
                        _span(header, path),
                    )
                )

    links = link_map(program)
    # Cycle detection: iterative DFS with colors; report each header
    # that closes a back edge once.
    WHITE, GREY, BLACK = 0, 1, 2
    color = {name: WHITE for name in program.headers}
    for start in program.headers:
        if color[start] != WHITE:
            continue
        stack: List[tuple] = [(start, iter(links.get(start, [])))]
        color[start] = GREY
        trail = [start]
        while stack:
            node, it = stack[-1]
            advanced = False
            for nxt in it:
                if color[nxt] == GREY:
                    cycle_start = trail.index(nxt)
                    cycle = trail[cycle_start:] + [nxt]
                    diags.append(
                        make(
                            "RP4L103",
                            "header linkage cycle: "
                            + " -> ".join(cycle),
                            _span(program.headers[nxt], path),
                        )
                    )
                elif color[nxt] == WHITE:
                    color[nxt] = GREY
                    stack.append((nxt, iter(links.get(nxt, []))))
                    trail.append(nxt)
                    advanced = True
                    break
            if not advanced:
                color[node] = BLACK
                stack.pop()
                trail.pop()
    return diags


def check_reachability(
    program: Rp4Program,
    effects: Optional[Dict[str, StageEffects]] = None,
    path: str = "<rp4>",
) -> List[Diagnostic]:
    """RP4L101: headers neither parse-reachable nor constructed."""
    if not program.headers:
        return []
    roots = root_headers(program)
    if not roots:
        return []  # fully cyclic linkage; RP4L103 already fired
    if effects is None:
        effects = _stage_effect_map(program)
    links = link_map(program)
    reachable: Set[str] = set()
    frontier = list(roots)
    while frontier:
        name = frontier.pop()
        if name in reachable:
            continue
        reachable.add(name)
        frontier.extend(links.get(name, []))
    built = constructed_headers(program, effects)
    diags: List[Diagnostic] = []
    for name, header in program.headers.items():
        if name not in reachable and name not in built:
            diags.append(
                make(
                    "RP4L101",
                    f"header {name!r} is unreachable: no parse path links "
                    "to it and no action constructs it",
                    _span(header, path),
                )
            )
    return diags


def _explicit_reads(stage: StageDecl, program: Rp4Program) -> Set[str]:
    """Dotted refs the stage explicitly reads in source (matcher
    conditions, applied table keys, action-body right-hand sides).
    Primitive effect summaries are deliberately excluded -- they
    describe the behavioral model, not the program text."""
    reads: Set[str] = set()
    for arm in stage.matcher:
        reads |= expr_reads(arm.cond)
        if arm.table is not None:
            table = program.tables.get(arm.table)
            if table is not None:
                reads |= {ref for ref, _ in table.keys}
    for action_name in stage.executor.values():
        action = program.actions.get(action_name)
        if action is None:
            continue
        for stmt in action.body:
            expr = getattr(stmt, "expr", None)
            if expr is not None:
                reads |= expr_reads(expr)
    return {r for r in reads if r != STAR}


def check_read_before_parse(
    program: Rp4Program,
    graph: StageGraph,
    effects: Optional[Dict[str, StageEffects]] = None,
    path: str = "<rp4>",
) -> List[Diagnostic]:
    """RP4L104: a stage reads a field of a header that neither its own
    parser list, any upstream stage's parser list, nor any upstream
    action construction can have made valid."""
    if effects is None:
        effects = _stage_effect_map(program)
    built_by: Dict[str, Set[str]] = {}
    for name, eff in effects.items():
        scopes = {
            ref.partition(".")[0]
            for ref in eff.writes
            if ref.partition(".")[0] in program.headers
        }
        built_by[name] = scopes

    # Fixpoint of avail[s] = own(s) | U avail[pred(s)] over the stage
    # graph (tolerates cycles, unlike linearize()).
    avail: Dict[str, Set[str]] = {}
    for name in graph.nodes:
        decl = graph.nodes[name].decl
        avail[name] = set(decl.parser) | built_by.get(name, set())
    changed = True
    while changed:
        changed = False
        for pre, nxts in graph.edges.items():
            if pre not in avail:
                continue
            for nxt in nxts:
                if nxt not in avail:
                    continue
                before = len(avail[nxt])
                avail[nxt] |= avail[pre]
                if len(avail[nxt]) != before:
                    changed = True

    diags: List[Diagnostic] = []
    for name in graph.nodes:
        stage = graph.nodes[name].decl
        for ref in sorted(_explicit_reads(stage, program)):
            scope = ref.partition(".")[0]
            if scope not in program.headers:
                continue  # metadata or struct member, always present
            if scope not in avail.get(name, set()):
                diags.append(
                    make(
                        "RP4L104",
                        f"stage {name!r} reads {ref!r} but no upstream "
                        f"parse path makes header {scope!r} valid by "
                        "this stage",
                        _span(stage, path),
                    )
                )
    return diags


def lint_parse_soundness(
    program: Rp4Program,
    graph: Optional[StageGraph] = None,
    effects: Optional[Dict[str, StageEffects]] = None,
    path: str = "<rp4>",
    snippet: bool = False,
) -> List[Diagnostic]:
    """Run the whole family.  ``snippet=True`` limits the checks to
    the header-local rules -- a snippet's headers are legitimately
    unrooted until a runtime ``link_header`` command binds them."""
    diags = check_links(program, path)
    if snippet:
        return diags
    if effects is None:
        effects = _stage_effect_map(program)
    diags.extend(check_reachability(program, effects, path))
    if graph is None:
        graph = StageGraph.from_program(program)
    diags.extend(check_read_before_parse(program, graph, effects, path))
    return diags

"""rp4verify: symbolic differential verification of staged updates.

The paper's runtime-programmability pitch means every update lands on
a *live* pipeline, so "is this update safe?" must be answered before
the txn engine flips an epoch.  rp4lint answers it with syntactic
heuristics; this module answers it semantically, by symbolically
executing the **live device** and the **txn shadow view** side by side
over one shared symbolic input packet and comparing what each would do
to every feasible flow class.

Architecture (two tiers):

1. **Structural tier** (always on, cheap): diff the staged device view
   against the live one -- stage content, table identity, extern
   access patterns -- and subtract what the
   :class:`~repro.compiler.rp4bc.UpdatePlan` *claims* to change.  Any
   unclaimed drift (a tampered update message, a corrupted channel, a
   compiler bug) is RP4L503; extern hazards are RP4L504/RP4L505.

2. **Symbolic tier** (runs when drift exists, or on demand): enumerate
   feasible parse/match/execute paths with interval domains over
   header fields (widths from :mod:`repro.net.headers` layouts),
   coupling the two sides through shared input constraints and shared
   table-outcome picks.  Every divergent flow class is classified
   *intended* (explained by claimed plan elements) or *unintended*
   (touches unclaimed drift, RP4L501), and gets a concrete **witness
   packet** synthesized from its domain constraints.  Witnesses are
   confirmed by a side-effect-free replay interpreter over both views
   -- only a confirmed witness earns error severity, so every reported
   divergence is backed by a packet that observably reproduces it.

The symbolic evaluator mirrors :func:`repro.dp.exec.run_tsp_plan`
semantics exactly: drop check before every stage, JIT parsing with
reachability pruning, first-matching-arm-wins, executor tag maps with
default fallback, and break-after-action.

Soundness notes (documented, test-pinned):

* Table outcomes branch over the tags of *currently installed*
  entries plus miss; a table populated only after commit contributes
  just its miss/default behavior.
* Multicast replication and TM tail drop are not modeled; the
  ``mcast_grp`` intrinsic is compared as an observable instead.
* Stateful externs (sketches, meters, entry counters) are havocked
  with side-symmetric terms -- identical programs stay provably
  equivalent, and real state races surface through the hazard tier.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field as dc_field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.analysis.diag import Diagnostic, Severity, Span, make
from repro.compiler.dependency import PRIMITIVE_EFFECTS, STAR
from repro.lang.expr import EBin, ECall, EConst, ERef, EUnary, EValid
from repro.net.packet import INTRINSIC_METADATA
from repro.tables import actions as vm

__all__ = [
    "VerifyConfig",
    "VerifyReport",
    "FlowClass",
    "Witness",
    "DeviceView",
    "verify_views",
    "verify_txn",
    "claimed_entities",
]

#: Fallback width for metadata fields (rP4 metadata is declared with a
#: width, but the device view only keeps defaults; 64 bits is a safe
#: over-approximation for interval reasoning).
_META_WIDTH = 64

#: Extern primitives that pop a header instance (the symbolic action
#: interpreter mirrors their validity effect).
_PRIM_REMOVES: Dict[str, Tuple[str, ...]] = {
    "pop_srh": ("srh",),
    "pop_int": ("int_shim",),
}


# --------------------------------------------------------------------------
# Device views
# --------------------------------------------------------------------------


class DeviceView:
    """A uniform, read-only view of one side of the differential.

    Wraps either a live :class:`~repro.ipsa.switch.IpsaSwitch` or a
    prepared :class:`~repro.runtime.txn.IpsaUpdateTransaction` shadow;
    both expose the same schedule/table/action/schema surface to the
    symbolic evaluator and the replay interpreter.
    """

    def __init__(self, label, schedule, tables, actions, metadata_defaults,
                 header_types, linkage, first_header) -> None:
        self.label = label
        #: ``[("ingress"|"egress", StageRuntime), ...]`` in pipeline order.
        self.schedule = schedule
        self.tables = tables
        self.actions = actions
        self.metadata_defaults = metadata_defaults
        self.header_types = header_types
        self.linkage = linkage
        self.first_header = first_header

    @classmethod
    def from_switch(cls, switch) -> "DeviceView":
        pipeline = switch.pipeline
        schedule = [
            ("ingress", stage)
            for tsp in pipeline.ingress_tsps()
            for stage in tsp.stages
        ] + [
            ("egress", stage)
            for tsp in pipeline.egress_tsps()
            for stage in tsp.stages
        ]
        return cls(
            "live", schedule, switch.tables, switch.actions,
            switch.metadata_defaults, switch.header_types, switch.linkage,
            switch.first_header,
        )

    @classmethod
    def from_txn(cls, txn) -> "DeviceView":
        view = txn._view
        if view is None:
            raise ValueError("transaction has no prepared shadow state")
        pipeline = view.pipeline
        schedule = [
            ("ingress", stage)
            for tsp in pipeline.ingress_tsps()
            for stage in tsp.stages
        ] + [
            ("egress", stage)
            for tsp in pipeline.egress_tsps()
            for stage in tsp.stages
        ]
        return cls(
            "shadow", schedule, view.tables, view.actions,
            view.metadata_defaults, txn._header_types, txn._linkage,
            view.first_header,
        )

    def merged_metadata(self) -> Dict[str, object]:
        merged = dict(INTRINSIC_METADATA)
        merged.update(self.metadata_defaults)
        return merged


# --------------------------------------------------------------------------
# Interval domains over input fields
# --------------------------------------------------------------------------


class Domain:
    """A union of closed integer intervals over a fixed-width field."""

    __slots__ = ("width", "ivs")

    def __init__(self, width: int, ivs: Optional[Tuple[Tuple[int, int], ...]] = None):
        self.width = width
        if ivs is None:
            ivs = ((0, (1 << width) - 1),)
        self.ivs = ivs

    @property
    def empty(self) -> bool:
        return not self.ivs

    def constrain(self, op: str, value: int) -> "Domain":
        """Refine by ``field <op> value``; may produce an empty domain."""
        if op == "==":
            keep = tuple(
                (value, value) for lo, hi in self.ivs if lo <= value <= hi
            )[:1]
            return Domain(self.width, keep)
        if op == "!=":
            out: List[Tuple[int, int]] = []
            for lo, hi in self.ivs:
                if lo <= value <= hi:
                    if lo < value:
                        out.append((lo, value - 1))
                    if value < hi:
                        out.append((value + 1, hi))
                else:
                    out.append((lo, hi))
            return Domain(self.width, tuple(out))
        if op == "<":
            return self._clip(None, value - 1)
        if op == "<=":
            return self._clip(None, value)
        if op == ">":
            return self._clip(value + 1, None)
        if op == ">=":
            return self._clip(value, None)
        raise ValueError(f"unsupported domain op {op!r}")

    def _clip(self, lo_bound: Optional[int], hi_bound: Optional[int]) -> "Domain":
        out: List[Tuple[int, int]] = []
        for lo, hi in self.ivs:
            if lo_bound is not None:
                lo = max(lo, lo_bound)
            if hi_bound is not None:
                hi = min(hi, hi_bound)
            if lo <= hi:
                out.append((lo, hi))
        return Domain(self.width, tuple(out))

    def contains(self, value: int) -> bool:
        return any(lo <= value <= hi for lo, hi in self.ivs)

    def pick(self) -> int:
        """A concrete representative (smallest feasible value)."""
        return self.ivs[0][0] if self.ivs else 0

    def __repr__(self) -> str:
        return f"Domain(w={self.width}, {list(self.ivs)!r})"


# Symbolic values are hashable nested tuples:
#   ("const", v)        -- a known integer
#   ("in", ref)         -- the pristine wire/input value of a field
#   ("d", tag, ...)     -- a derived term with deterministic,
#                          side-symmetric provenance
def _const(v: int) -> tuple:
    return ("const", v)


def _is_const(t: tuple) -> bool:
    return t[0] == "const"


def _cval(t: tuple) -> int:
    return t[1]


class _PathError(Exception):
    """The modeled program would raise on this path (e.g. a read of an
    unparsed header); the path becomes an error leaf."""

    def __init__(self, kind: str) -> None:
        super().__init__(kind)
        self.kind = kind


class PathState:
    """Constraints shared between the live and shadow executions of
    one symbolic packet: input-field domains, opaque-term truth
    assignments, and coupled table-outcome picks."""

    __slots__ = ("doms", "atoms", "picks", "obligations")

    def __init__(self) -> None:
        self.doms: Dict[str, Domain] = {}
        self.atoms: Dict[tuple, bool] = {}
        self.picks: Dict[tuple, int] = {}
        #: ``(table_name, side_label, key_terms, tag)`` -- what the
        #: witness synthesizer must try to realize concretely.
        self.obligations: List[tuple] = []

    def clone(self) -> "PathState":
        twin = PathState.__new__(PathState)
        twin.doms = dict(self.doms)
        twin.atoms = dict(self.atoms)
        twin.picks = dict(self.picks)
        twin.obligations = list(self.obligations)
        return twin


class SideState:
    """One side's mutable execution state along a path."""

    __slots__ = ("view", "cur", "valid", "parsed", "next_header", "removed",
                 "inserted", "trace", "error")

    def __init__(self, view: DeviceView) -> None:
        self.view = view
        self.cur: Dict[str, tuple] = {}
        self.valid: Set[str] = set()
        self.parsed: List[str] = []
        self.next_header: Optional[str] = view.first_header
        self.removed: Set[str] = set()
        self.inserted: Set[str] = set()
        self.trace: List[tuple] = []
        self.error: Optional[str] = None

    def clone(self) -> "SideState":
        twin = SideState.__new__(SideState)
        twin.view = self.view
        twin.cur = dict(self.cur)
        twin.valid = set(self.valid)
        twin.parsed = list(self.parsed)
        twin.next_header = self.next_header
        twin.removed = set(self.removed)
        twin.inserted = set(self.inserted)
        twin.trace = list(self.trace)
        twin.error = self.error
        return twin


class _Budget:
    __slots__ = ("limit", "leaves", "truncated")

    def __init__(self, limit: int) -> None:
        self.limit = limit
        self.leaves = 0
        self.truncated = False

    def spend(self) -> bool:
        """Account one leaf; False once the budget is gone."""
        if self.leaves >= self.limit:
            self.truncated = True
            return False
        self.leaves += 1
        return True


def _field_width(view: DeviceView, ref: str) -> int:
    scope, _, fname = ref.partition(".")
    if scope == "meta":
        return _META_WIDTH
    htype = view.header_types.get(scope)
    if htype is None:
        return _META_WIDTH
    try:
        return htype.field_width(fname)
    except KeyError:
        return _META_WIDTH


def _constrain(ps: PathState, view: DeviceView, ref: str, op: str,
               value: int) -> bool:
    """Refine the input domain of ``ref``; False when infeasible."""
    dom = ps.doms.get(ref)
    if dom is None:
        dom = Domain(_field_width(view, ref))
    dom = dom.constrain(op, value)
    if dom.empty:
        return False
    ps.doms[ref] = dom
    return True


def _read(ps: PathState, side: SideState, ref: str) -> tuple:
    """Symbolic :meth:`Packet.read` (raises :class:`_PathError` where
    the real read would raise)."""
    scope, _, fname = ref.partition(".")
    if not fname:
        raise _PathError(f"malformed ref {ref!r}")
    cached = side.cur.get(ref)
    if cached is not None:
        return cached
    if scope == "meta":
        if fname in ("ingress_port", "packet_length"):
            return ("in", ref)
        merged = side.view.merged_metadata()
        if fname not in merged:
            raise _PathError(f"unknown metadata field {fname!r}")
        default = merged[fname]
        return _const(default if isinstance(default, int) else 0)
    if scope not in side.valid:
        raise _PathError(f"read of unparsed header {scope!r}")
    return ("in", ref)


# --------------------------------------------------------------------------
# Symbolic JIT parsing
# --------------------------------------------------------------------------


def _sym_ensure_parsed(ps: PathState, side: SideState, names: Sequence[str],
                       out: List[Tuple[PathState, SideState]]) -> None:
    """Mirror :meth:`Packet.ensure_parsed`, branching over the header
    linkage at each selector read.  Selector values are always pristine
    wire bytes (``parse_one`` reads them eagerly at parse time, before
    any executor can mutate the instance), so every branch refines the
    *shared* input domains -- which is exactly what couples the two
    sides' parse behavior through one symbolic packet."""
    view = side.view
    remaining = {n for n in names if n not in side.valid}
    while True:
        if not remaining or side.next_header is None:
            out.append((ps, side))
            return
        frontier = side.next_header
        if frontier not in remaining and remaining.isdisjoint(
            view.linkage.reachable_set(frontier)
        ):
            out.append((ps, side))
            return
        htype = view.header_types.get(frontier)
        if htype is None:
            side.next_header = None
            out.append((ps, side))
            return
        side.valid.add(frontier)
        side.parsed.append(frontier)
        remaining.discard(frontier)
        selector = view.linkage.selector(frontier)
        if selector is None:
            side.next_header = None
            continue
        ref = f"{frontier}.{selector}"
        links = view.linkage.links_from(frontier)
        for link in links:
            ps2, side2 = ps.clone(), side.clone()
            if _constrain(ps2, view, ref, "==", link.tag):
                side2.next_header = link.next
                _sym_ensure_parsed(ps2, side2, remaining, out)
        # The no-match continuation: the selector matches none of the
        # linkage tags, so the parse frontier is exhausted.
        feasible = True
        for link in links:
            if not _constrain(ps, view, ref, "!=", link.tag):
                feasible = False
                break
        if not feasible:
            return
        side.next_header = None
        # loop continues with the same remaining set


# --------------------------------------------------------------------------
# Predicate branching
# --------------------------------------------------------------------------

_CMP_OPS = ("==", "!=", "<", "<=", ">", ">=")
_NEGATE = {"==": "!=", "!=": "==", "<": ">=", "<=": ">", ">": "<=", ">=": "<"}
_ARITH = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "&": lambda a, b: a & b,
    "|": lambda a, b: a | b,
    "^": lambda a, b: a ^ b,
    "<<": lambda a, b: a << b,
    ">>": lambda a, b: a >> b,
}
_CMP_FNS = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def _eval_lang(ps: PathState, side: SideState, expr) -> tuple:
    """Evaluate a matcher (lang) expression to a symbolic term."""
    if isinstance(expr, EConst):
        return _const(expr.value)
    if isinstance(expr, ERef):
        if not expr.is_dotted:
            raise _PathError(f"unbound bare reference {expr.ref!r}")
        return _read(ps, side, expr.ref)
    if isinstance(expr, EValid):
        return _const(1 if expr.header in side.valid else 0)
    if isinstance(expr, EUnary):
        inner = _eval_lang(ps, side, expr.operand)
        if _is_const(inner):
            if expr.op == "!":
                return _const(0 if _cval(inner) else 1)
            return _const(-_cval(inner))
        return ("d", expr.op, inner)
    if isinstance(expr, EBin):
        left = _eval_lang(ps, side, expr.left)
        right = _eval_lang(ps, side, expr.right)
        if _is_const(left) and _is_const(right):
            if expr.op in _ARITH:
                return _const(_ARITH[expr.op](_cval(left), _cval(right)))
            if expr.op in _CMP_FNS:
                return _const(1 if _CMP_FNS[expr.op](_cval(left), _cval(right)) else 0)
            if expr.op == "&&":
                return _const(1 if (_cval(left) and _cval(right)) else 0)
            if expr.op == "||":
                return _const(1 if (_cval(left) or _cval(right)) else 0)
        return ("d", expr.op, left, right)
    if isinstance(expr, ECall):
        args = tuple(_eval_lang(ps, side, a) for a in expr.args)
        return ("d", "call", expr.name, args)
    raise _PathError(f"unsupported expression {expr!r}")


def _atom_key(op: str, left: tuple, right: tuple) -> Tuple[tuple, bool]:
    """Canonical (atom, polarity) for an opaque comparison."""
    if op in ("==", "!="):
        a, b = sorted((left, right))
        return ("cmp", "==", a, b), op == "=="
    if op == "<":
        return ("cmp", "<", left, right), True
    if op == "<=":
        return ("cmp", "<", right, left), False  # a<=b  <=>  not (b<a)
    if op == ">":
        return ("cmp", "<", right, left), True
    if op == ">=":
        return ("cmp", "<", left, right), False
    return ("truthy", op, left, right), True


def _assume_atom(ps: PathState, key: tuple, want: bool,
                 out: List[Tuple[PathState, SideState]], side: SideState) -> None:
    have = ps.atoms.get(key)
    if have is None:
        ps.atoms[key] = want
        out.append((ps, side))
    elif have == want:
        out.append((ps, side))
    # else: contradiction -- infeasible, drop the branch


def _assume(ps: PathState, side: SideState, expr, want: bool,
            out: List[Tuple[PathState, SideState]]) -> None:
    """Split (ps, side) into feasible refinements where ``expr`` is
    truthy (``want=True``) or falsy."""
    if expr is None:  # unconditional arm
        if want:
            out.append((ps, side))
        return
    try:
        if isinstance(expr, EUnary) and expr.op == "!":
            _assume(ps, side, expr.operand, not want, out)
            return
        if isinstance(expr, EBin) and expr.op in ("&&", "||"):
            is_and = expr.op == "&&"
            if want == is_and:
                # both must hold (AND-true) / both must fail (OR-false)
                mids: List[Tuple[PathState, SideState]] = []
                _assume(ps, side, expr.left, want, mids)
                for ps2, side2 in mids:
                    _assume(ps2, side2, expr.right, want, out)
            else:
                # short-circuit split on the left operand
                _assume(ps.clone(), side.clone(), expr.left, not is_and, out)
                mids = []
                _assume(ps, side, expr.left, is_and, mids)
                for ps2, side2 in mids:
                    _assume(ps2, side2, expr.right, want, out)
            return
        if isinstance(expr, EBin) and expr.op in _CMP_OPS:
            left = _eval_lang(ps, side, expr.left)
            right = _eval_lang(ps, side, expr.right)
            op = expr.op if want else _NEGATE[expr.op]
            if _is_const(left) and _is_const(right):
                if _CMP_FNS[op](_cval(left), _cval(right)):
                    out.append((ps, side))
                return
            # Interval refinement when one operand is a pristine input.
            if left[0] == "in" and _is_const(right):
                if _constrain(ps, side.view, left[1], op, _cval(right)):
                    out.append((ps, side))
                return
            if right[0] == "in" and _is_const(left):
                flip = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(op, op)
                if _constrain(ps, side.view, right[1], flip, _cval(left)):
                    out.append((ps, side))
                return
            key, polarity = _atom_key(op, left, right)
            _assume_atom(ps, key, polarity, out, side)
            return
        # Everything else: evaluate to a term and branch on truthiness.
        term = _eval_lang(ps, side, expr)
        if _is_const(term):
            if bool(_cval(term)) == want:
                out.append((ps, side))
            return
        if term[0] == "in":
            op = "!=" if want else "=="
            if _constrain(ps, side.view, term[1], op, 0):
                out.append((ps, side))
            return
        _assume_atom(ps, ("truthy", term), want, out, side)
    except _PathError as exc:
        side.error = exc.kind
        side.trace.append(("error", exc.kind))
        out.append((ps, side))


def _branch_truthy(ps: PathState, side: SideState, term: tuple
                   ) -> List[Tuple[PathState, SideState, bool]]:
    """Branch on the truthiness of an arbitrary term (drop checks)."""
    if _is_const(term):
        return [(ps, side, bool(_cval(term)))]
    if term[0] == "in":
        results = []
        ps_t, side_t = ps.clone(), side.clone()
        if _constrain(ps_t, side.view, term[1], "!=", 0):
            results.append((ps_t, side_t, True))
        if _constrain(ps, side.view, term[1], "==", 0):
            results.append((ps, side, False))
        return results
    key = ("truthy", term)
    have = ps.atoms.get(key)
    if have is not None:
        return [(ps, side, have)]
    ps_t, side_t = ps.clone(), side.clone()
    ps_t.atoms[key] = True
    ps.atoms[key] = False
    return [(ps_t, side_t, True), (ps, side, False)]


# --------------------------------------------------------------------------
# Symbolic action execution
# --------------------------------------------------------------------------


def _write(side: SideState, ref: str, term: tuple) -> None:
    scope, _, fname = ref.partition(".")
    if not fname:
        raise _PathError(f"malformed ref {ref!r}")
    if scope != "meta" and scope not in side.valid:
        raise _PathError(f"write to unparsed header {scope!r}")
    side.cur[ref] = term


def _eval_vm(ps: PathState, side: SideState, expr,
             params: Dict[str, tuple]) -> tuple:
    """Evaluate an action-VM expression to a symbolic term."""
    if isinstance(expr, vm.Const):
        return _const(expr.value)
    if isinstance(expr, vm.Param):
        term = params.get(expr.name)
        if term is None:
            raise _PathError(f"unbound action parameter {expr.name!r}")
        return term
    if isinstance(expr, vm.FieldRef):
        return _read(ps, side, expr.ref)
    if isinstance(expr, vm.BinOp):
        left = _eval_vm(ps, side, expr.left, params)
        right = _eval_vm(ps, side, expr.right, params)
        if _is_const(left) and _is_const(right):
            fn = _ARITH.get(expr.op)
            if fn is not None:
                return _const(fn(_cval(left), _cval(right)))
        return ("d", expr.op, left, right)
    if isinstance(expr, vm.HashExpr):
        terms = tuple(_read(ps, side, ref) for ref in expr.fields)
        if all(_is_const(t) for t in terms):
            from repro.net.fields import mask_to_width
            return _const(
                mask_to_width(vm.flow_hash([_cval(t) for t in terms]), expr.width)
            )
        return ("d", "hash", expr.fields, terms, expr.width)
    raise _PathError(f"unsupported VM expression {expr!r}")


def _exec_action(ps: PathState, side: SideState, stage_name: str,
                 action_name: str, action, params: Dict[str, tuple],
                 entry_present: bool, pick_key: tuple
                 ) -> List[Tuple[PathState, SideState]]:
    """Run an action's ops symbolically.  Stateful externs produce
    deterministic, side-symmetric havoc terms keyed by their site, so
    identical programs evaluate to identical terms.  Primitives with
    data-dependent outcomes (TTL expiry) fork the path, so the result
    is a list of refined states."""
    states: List[Tuple[PathState, SideState]] = [(ps, side)]
    for op_index, op in enumerate(action.ops):
        site = (stage_name, action_name, op_index)
        nxt: List[Tuple[PathState, SideState]] = []
        for ps_i, side_i in states:
            if side_i.error is not None:
                nxt.append((ps_i, side_i))
                continue
            try:
                nxt.extend(_exec_op(
                    ps_i, side_i, op, site, params, entry_present, pick_key
                ))
            except _PathError as exc:
                side_i.error = exc.kind
                side_i.trace.append(("error", exc.kind))
                nxt.append((ps_i, side_i))
        states = nxt
    return states


def _exec_op(ps: PathState, side: SideState, op, site: tuple,
             params: Dict[str, tuple], entry_present: bool,
             pick_key: tuple) -> List[Tuple[PathState, SideState]]:
    if isinstance(op, vm.SetField):
        _write(side, op.dest, _eval_vm(ps, side, op.expr, params))
    elif isinstance(op, vm.RemoveHeaderOp):
        if op.header not in side.valid:
            raise _PathError(f"remove of unparsed header {op.header!r}")
        _remove_sym(side, op.header)
    elif isinstance(op, vm.CountAndMark):
        if not entry_present:
            raise _PathError("count_and_mark without a matched entry")
        threshold = params.get(op.threshold_param)
        if threshold is None:
            raise _PathError(f"unbound parameter {op.threshold_param!r}")
        old = _read(ps, side, op.dest)
        _write(side, op.dest, ("d", "count_mark", site, pick_key, threshold, old))
    elif isinstance(op, vm.SketchUpdate):
        keys = tuple(_read(ps, side, ref) for ref in op.fields)
        _write(side, op.dest, ("d", "sketch", op.sketch, site, keys))
    elif isinstance(op, vm.MarkAbove):
        threshold = params.get(op.threshold_param)
        if threshold is None:
            raise _PathError(f"unbound parameter {op.threshold_param!r}")
        src = _read(ps, side, op.src)
        old = _read(ps, side, op.dest)
        if _is_const(src) and _is_const(threshold):
            if _cval(src) > _cval(threshold):
                _write(side, op.dest, _const(1))
        else:
            _write(side, op.dest, ("d", "mark_above", site, src, threshold, old))
    elif isinstance(op, vm.Police):
        old = _read(ps, side, op.dest)
        _write(side, op.dest, ("d", "police", op.meter, site, old))
    elif isinstance(op, vm.PyPrimitive):
        return _exec_primitive(ps, side, op.name, site)
    else:
        raise _PathError(f"unknown op {type(op).__name__}")
    return [(ps, side)]


def _remove_sym(side: SideState, header: str) -> None:
    side.valid.discard(header)
    side.removed.add(header)
    side.cur = {
        ref: t for ref, t in side.cur.items()
        if ref.partition(".")[0] != header
    }


def _insert_sym(side: SideState, header: str) -> None:
    side.valid.add(header)
    side.inserted.add(header)


def _exec_primitive(ps: PathState, side: SideState, name: str,
                    site: tuple) -> List[Tuple[PathState, SideState]]:
    """Symbolic models for the named extern library.

    Every library primitive guards itself with ``packet.is_valid``
    checks (see :mod:`repro.tables.primitives`), and validity is fully
    concrete along a symbolic path -- so each model is deterministic
    and, crucially, *side-symmetric*: identical programs produce
    identical terms, keeping equivalent flow classes provably equal.
    Data-dependent outcomes (TTL expiry, segments-left exhaustion)
    fork the path when the operand is a pristine input -- refining the
    *shared* domains so each resulting flow class gets a realizable
    witness -- and havoc symmetrically otherwise."""
    keep = [(ps, side)]
    if name in ("no_op", "srv6_transit"):
        return keep
    if name == "drop":
        side.cur["meta.drop"] = _const(1)
        return keep
    if name == "mark_to_cpu":
        side.cur["meta.to_cpu"] = _const(1)
        return keep
    if name == "decrement_ttl":
        ref = (
            "ipv4.ttl" if "ipv4" in side.valid
            else "ipv6.hop_limit" if "ipv6" in side.valid
            else None
        )
        if ref is None:
            return keep
        ttl = _read(ps, side, ref)
        if _is_const(ttl):
            if _cval(ttl) <= 1:
                side.cur["meta.drop"] = _const(1)
                side.cur[ref] = _const(0)
            else:
                side.cur[ref] = _const(_cval(ttl) - 1)
            return keep
        if ttl[0] == "in":
            forks: List[Tuple[PathState, SideState]] = []
            ps_live, side_live = ps.clone(), side.clone()
            if _constrain(ps_live, side.view, ttl[1], ">=", 2):
                side_live.cur[ref] = ("d", "dec_ttl", ttl)
                forks.append((ps_live, side_live))
            if _constrain(ps, side.view, ttl[1], "<=", 1):
                side.cur["meta.drop"] = _const(1)
                side.cur[ref] = _const(0)
                forks.append((ps, side))
            return forks
        old_drop = _read(ps, side, "meta.drop")
        side.cur[ref] = ("d", "dec_ttl", ttl)
        side.cur["meta.drop"] = ("d", "ttl_expired", ttl, old_drop)
        return keep
    if name == "srv6_end":
        if "srh" not in side.valid or "ipv6" not in side.valid:
            side.cur["meta.drop"] = _const(1)
            return keep
        left = _read(ps, side, "srh.segments_left")
        if _is_const(left):
            if _cval(left) == 0:
                side.cur["meta.drop"] = _const(1)
            else:
                side.cur["srh.segments_left"] = _const(_cval(left) - 1)
                side.cur["ipv6.dst_addr"] = ("d", "srv6_segment", site, left)
            return keep
        if left[0] == "in":
            forks = []
            ps_fwd, side_fwd = ps.clone(), side.clone()
            if _constrain(ps_fwd, side_fwd.view, left[1], ">=", 1):
                side_fwd.cur["srh.segments_left"] = ("d", "srv6_dec", left)
                side_fwd.cur["ipv6.dst_addr"] = ("d", "srv6_segment", site, left)
                forks.append((ps_fwd, side_fwd))
            if _constrain(ps, side.view, left[1], "==", 0):
                side.cur["meta.drop"] = _const(1)
                forks.append((ps, side))
            return forks
        old_drop = _read(ps, side, "meta.drop")
        side.cur["srh.segments_left"] = ("d", "srv6_dec", left)
        side.cur["meta.drop"] = ("d", "srv6_exhausted", left, old_drop)
        side.cur["ipv6.dst_addr"] = ("d", "srv6_segment", site, left)
        return keep
    if name == "pop_srh":
        if "srh" not in side.valid:
            return keep
        next_hdr = _read(ps, side, "srh.next_hdr")
        _remove_sym(side, "srh")
        if "ipv6" in side.valid:
            plen = _read(ps, side, "ipv6.payload_len")
            side.cur["ipv6.next_hdr"] = next_hdr
            side.cur["ipv6.payload_len"] = ("d", "shrink", plen, site)
        return keep
    if name == "push_srh":
        if "ipv6" not in side.valid or "srh" in side.valid:
            return keep
        old_next = _read(ps, side, "ipv6.next_hdr")
        plen = _read(ps, side, "ipv6.payload_len")
        _insert_sym(side, "srh")
        side.cur["srh.next_hdr"] = old_next
        side.cur["srh.hdr_ext_len"] = _const(0)
        side.cur["srh.routing_type"] = _const(4)
        side.cur["srh.segments_left"] = _const(0)
        side.cur["srh.last_entry"] = _const(0)
        side.cur["ipv6.next_hdr"] = _const(43)
        if _is_const(plen):
            side.cur["ipv6.payload_len"] = _const(_cval(plen) + 8)
        else:
            side.cur["ipv6.payload_len"] = ("d", "+", plen, _const(8))
        return keep
    if name == "push_int":
        if "ethernet" not in side.valid:
            side.cur["meta.drop"] = _const(1)
            return keep
        from repro.net.headers import INT_ETHERTYPE
        if "int_shim" not in side.valid:
            orig = _read(ps, side, "ethernet.ethertype")
            _insert_sym(side, "int_shim")
            side.cur["int_shim.orig_ethertype"] = orig
            side.cur["int_shim.hop_count"] = _const(0)
            side.cur["ethernet.ethertype"] = _const(INT_ETHERTYPE)
        hops = _read(ps, side, "int_shim.hop_count")
        if _is_const(hops):
            side.cur["int_shim.hop_count"] = _const(_cval(hops) + 1)
        else:
            side.cur["int_shim.hop_count"] = ("d", "+", hops, _const(1))
        return keep
    if name == "pop_int":
        if "int_shim" not in side.valid:
            return keep
        orig = _read(ps, side, "int_shim.orig_ethertype")
        _remove_sym(side, "int_shim")
        if "ethernet" in side.valid:
            side.cur["ethernet.ethertype"] = orig
        return keep
    # Unknown primitive: conservative read-write-all havoc, applied
    # symmetrically so only genuinely divergent programs differ.
    reads, writes = PRIMITIVE_EFFECTS.get(name, ({STAR}, {STAR}))
    read_terms = tuple(
        (ref, _read(ps, side, ref))
        for ref in sorted(r for r in reads if r != STAR)
        if ref.partition(".")[0] == "meta"
        or ref.partition(".")[0] in side.valid
    )
    for header in _PRIM_REMOVES.get(name, ()):
        if header in side.valid:
            _remove_sym(side, header)
    if STAR in writes:
        for ref in list(side.cur):
            side.cur[ref] = ("d", "prim*", name, site, ref, read_terms)
        side.cur["meta._havoc"] = ("d", "prim*", name, site, read_terms)
        return keep
    for ref in sorted(writes):
        scope = ref.partition(".")[0]
        if scope != "meta" and scope not in side.valid:
            _insert_sym(side, scope)
        side.cur[ref] = ("d", "prim", name, site, ref, read_terms)
    return keep


# --------------------------------------------------------------------------
# Symbolic stage/pipeline execution
# --------------------------------------------------------------------------


def _executor_action(stage, tag: int) -> str:
    name = stage.executor.get(tag)
    if name is None:
        name = stage.executor.get("default", "NoAction")
    return name


def _apply_table(ps: PathState, side: SideState, stage, table_name: str,
                 shared_tables: FrozenSet[str],
                 out: List[Tuple[PathState, SideState]]) -> None:
    view = side.view
    table = view.tables.get(table_name)
    if table is None:
        side.error = f"unknown table {table_name!r}"
        side.trace.append(("error", side.error))
        out.append((ps, side))
        return
    try:
        keys = tuple(_read(ps, side, kf.ref) for kf in table.key)
    except _PathError as exc:
        side.error = exc.kind
        side.trace.append(("error", exc.kind))
        out.append((ps, side))
        return
    namespace = "shared" if table_name in shared_tables else view.label
    pick_key = ("pick", namespace, table_name, keys)
    installed_tags = sorted({e.tag for e in table.entries()} - {0})
    chosen = ps.picks.get(pick_key)
    outcomes = [chosen] if chosen is not None else installed_tags + [0]
    for tag in outcomes:
        ps2 = ps if len(outcomes) == 1 else ps.clone()
        side2 = side if len(outcomes) == 1 else side.clone()
        ps2.picks[pick_key] = tag
        if chosen is None:
            ps2.obligations.append((table_name, view.label, keys, tag))
        action_name = _executor_action(stage, tag)
        action = view.actions.get(action_name)
        if action is None:
            side2.error = f"unknown action {action_name!r}"
            side2.trace.append(("error", side2.error))
            out.append((ps2, side2))
            continue
        params: Dict[str, tuple] = {}
        broken = False
        for pname, pwidth in action.params:
            if tag == 0:
                if pname not in table.default_data:
                    side2.error = f"missing default parameter {pname!r}"
                    side2.trace.append(("error", side2.error))
                    out.append((ps2, side2))
                    broken = True
                    break
                from repro.net.fields import mask_to_width
                params[pname] = _const(
                    mask_to_width(table.default_data[pname], pwidth)
                )
            else:
                params[pname] = ("d", "entrydata", pick_key, tag, pname)
        if broken:
            continue
        side2.trace.append(
            ("apply", stage.name, table_name, tag, action_name)
        )
        out.extend(_exec_action(
            ps2, side2, stage.name, action_name, action, params,
            entry_present=(tag != 0), pick_key=pick_key,
        ))


def _exec_stage(ps: PathState, side: SideState, stage,
                shared_tables: FrozenSet[str],
                out: List[Tuple[PathState, SideState]]) -> None:
    parsed: List[Tuple[PathState, SideState]] = []
    _sym_ensure_parsed(ps, side, stage.parser_headers, parsed)

    def run_arms(ps2: PathState, side2: SideState, index: int) -> None:
        if index >= len(stage.arms):
            out.append((ps2, side2))  # no arm matched: stage is a no-op
            return
        _compiled, expr, table_name = stage.arms[index]
        fires: List[Tuple[PathState, SideState]] = []
        _assume(ps2.clone(), side2.clone(), expr, True, fires)
        for ps3, side3 in fires:
            if side3.error is not None:
                out.append((ps3, side3))
                continue
            if table_name is None:
                side3.trace.append(("arm", stage.name, index, None))
                out.append((ps3, side3))  # empty arm: explicit no-op
            else:
                _apply_table(ps3, side3, stage, table_name, shared_tables, out)
        skips: List[Tuple[PathState, SideState]] = []
        _assume(ps2, side2, expr, False, skips)
        for ps3, side3 in skips:
            if side3.error is not None:
                out.append((ps3, side3))
            else:
                run_arms(ps3, side3, index + 1)

    for ps2, side2 in parsed:
        run_arms(ps2, side2, 0)


def _run_side(ps: PathState, side: SideState,
              shared_tables: FrozenSet[str],
              budget: _Budget) -> List[Tuple[PathState, SideState]]:
    """Run one side's full schedule; returns the feasible leaves."""
    leaves: List[Tuple[PathState, SideState]] = []
    schedule = side.view.schedule

    def at_stage(index: int, ps2: PathState, side2: SideState) -> None:
        if side2.error is not None or index >= len(schedule):
            if budget.spend():
                leaves.append((ps2, side2))
            return
        try:
            drop = _read(ps2, side2, "meta.drop")
        except _PathError as exc:
            side2.error = exc.kind
            if budget.spend():
                leaves.append((ps2, side2))
            return
        for ps3, side3, dropped in _branch_truthy(ps2, side2, drop):
            if dropped:
                if budget.spend():
                    leaves.append((ps3, side3))
                continue
            if budget.truncated:
                return
            nxt: List[Tuple[PathState, SideState]] = []
            _exec_stage(ps3, side3, schedule[index][1], shared_tables, nxt)
            for ps4, side4 in nxt:
                at_stage(index + 1, ps4, side4)

    at_stage(0, ps, side)
    return leaves


# --------------------------------------------------------------------------
# Observables and classification
# --------------------------------------------------------------------------

_OBS_META = ("meta.egress_spec", "meta.to_cpu", "meta.mcast_grp")


def _observe(ps: PathState, side: SideState) -> tuple:
    """The externally observable outcome of one side along a path."""
    if side.error is not None:
        return ("error", side.error)
    drop = side.cur.get("meta.drop", _const(0))
    if _is_const(drop) and _cval(drop):
        return ("drop",)
    meta = tuple(side.cur.get(ref, _const(0)) for ref in _OBS_META)
    fields = frozenset(
        (ref, term)
        for ref, term in side.cur.items()
        if ref.partition(".")[0] != "meta"
        and ref.partition(".")[0] in side.valid
    )
    return (
        "out", drop, meta, fields,
        frozenset(side.removed), frozenset(side.inserted),
    )


def _trace_entities(events: Sequence[tuple]) -> Set[str]:
    entities: Set[str] = set()
    for event in events:
        if event[0] == "apply":
            entities.add(f"stage:{event[1]}")
            entities.add(f"table:{event[2]}")
        elif event[0] == "arm":
            entities.add(f"stage:{event[1]}")
    return entities


def _diff_entities(live_events: Sequence[tuple],
                   shadow_events: Sequence[tuple]) -> Set[str]:
    """Entities named by events present on one side but not the other."""
    from collections import Counter
    lc, sc = Counter(live_events), Counter(shadow_events)
    differing = [e for e in (lc - sc) | (sc - lc)]
    return _trace_entities(differing)


# --------------------------------------------------------------------------
# Structural diff and claims
# --------------------------------------------------------------------------


def _stage_canon(stage) -> tuple:
    return (
        stage.name,
        tuple(stage.parser_headers),
        tuple((repr(expr), table) for _fn, expr, table in stage.arms),
        tuple(sorted((str(k), v) for k, v in stage.executor.items())),
    )


def structural_diff(live: DeviceView, shadow: DeviceView) -> Set[str]:
    """Entities (``stage:<name>`` / ``table:<name>``) whose staged
    reality differs from the live device."""
    live_stages = {s.name: _stage_canon(s) for _phase, s in live.schedule}
    shadow_stages = {s.name: _stage_canon(s) for _phase, s in shadow.schedule}
    diff: Set[str] = set()
    for name in set(live_stages) | set(shadow_stages):
        if live_stages.get(name) != shadow_stages.get(name):
            diff.add(f"stage:{name}")
    for name in set(live.tables) | set(shadow.tables):
        if live.tables.get(name) is not shadow.tables.get(name):
            diff.add(f"table:{name}")
    return diff


def claimed_entities(plan) -> Set[str]:
    """What the update plan says it touches."""
    if plan is None:
        return set()
    claimed: Set[str] = set()
    for name in list(plan.added_stages) + list(plan.removed_stages):
        claimed.add(f"stage:{name}")
    for name in (
        list(plan.new_tables) + list(plan.freed_tables)
        + list(plan.migrated_tables)
    ):
        claimed.add(f"table:{name}")
    return claimed


def _shared_table_names(live: DeviceView, shadow: DeviceView) -> FrozenSet[str]:
    return frozenset(
        name
        for name, table in live.tables.items()
        if shadow.tables.get(name) is table
    )


# --------------------------------------------------------------------------
# Extern hazards
# --------------------------------------------------------------------------


def _extern_accesses(view: DeviceView) -> Dict[Tuple[str, str], Set[tuple]]:
    accesses: Dict[Tuple[str, str], Set[tuple]] = {}
    for _phase, stage in view.schedule:
        names = {
            v for k, v in stage.executor.items() if isinstance(v, str)
        }
        names.add(stage.executor.get("default", "NoAction"))
        for action_name in sorted(names):
            action = view.actions.get(action_name)
            if action is None:
                continue
            for op in action.ops:
                if isinstance(op, vm.SketchUpdate):
                    key = ("sketch", op.sketch)
                    sig = (stage.name, action_name, tuple(op.fields), op.dest)
                elif isinstance(op, vm.Police):
                    key = ("meter", op.meter)
                    sig = (stage.name, action_name, op.dest)
                else:
                    continue
                accesses.setdefault(key, set()).add(sig)
    return accesses


def _hazard_diagnostics(live: DeviceView, shadow: DeviceView,
                        diff: Set[str], span: Span) -> List[Diagnostic]:
    diags: List[Diagnostic] = []
    live_acc = _extern_accesses(live)
    shadow_acc = _extern_accesses(shadow)
    for key in sorted(set(live_acc) & set(shadow_acc)):
        if live_acc[key] != shadow_acc[key]:
            kind, name = key
            diags.append(make(
                "RP4L504",
                f"{kind} {name!r} survives the epoch flip but its access "
                f"pattern changes (old: {sorted(s[0] for s in live_acc[key])}, "
                f"new: {sorted(s[0] for s in shadow_acc[key])}); in-flight "
                "old-epoch packets race new-epoch reads/writes",
                span,
            ))
    for key, sigs in sorted(shadow_acc.items()):
        stages = {sig[0] for sig in sigs}
        if len(stages) >= 2 and any(f"stage:{s}" in diff for s in stages):
            kind, name = key
            diags.append(make(
                "RP4L505",
                f"{kind} {name!r} is touched by stages "
                f"{sorted(stages)} after the update and the update changed "
                "at least one of them, altering the read/write order on "
                "shared state",
                span,
            ))
    return diags


# --------------------------------------------------------------------------
# Witness synthesis and replay confirmation
# --------------------------------------------------------------------------


@dataclass
class Witness:
    """A concrete packet realizing one symbolic flow class."""

    data: bytes
    port: int = 0
    chain: Tuple[str, ...] = ()
    note: str = ""

    def to_dict(self) -> dict:
        return {
            "hex": self.data.hex(),
            "port": self.port,
            "chain": list(self.chain),
            "note": self.note,
        }


def _solve_obligations(ps: PathState, live: DeviceView,
                       shadow: DeviceView) -> PathState:
    """Greedily refine input domains so symbolic table picks become
    concretely realizable (hit picks steer key fields toward an
    installed entry's match values; misses are left to the domains)."""
    ps = ps.clone()
    views = {"live": live, "shadow": shadow}
    for table_name, label, keys, tag in ps.obligations:
        if tag == 0:
            continue
        table = views[label].tables.get(table_name)
        if table is None:
            continue
        for entry in table.entries():
            if entry.tag != tag:
                continue
            trial = ps.clone()
            feasible = True
            for term, part in zip(keys, entry.key):
                if term[0] != "in":
                    continue
                value = part[0] if isinstance(part, tuple) else part
                if not _constrain(trial, views[label], term[1], "==", value):
                    feasible = False
                    break
            if feasible:
                ps = trial
                break
    return ps


def synthesize_witness(ps: PathState, live_side: SideState,
                       shadow_side: SideState, live: DeviceView,
                       shadow: DeviceView) -> Optional[Witness]:
    """Lay out concrete wire bytes satisfying the path's domains."""
    ps = _solve_obligations(ps, live, shadow)
    chain = (
        shadow_side.parsed
        if len(shadow_side.parsed) >= len(live_side.parsed)
        else live_side.parsed
    )
    view = shadow if chain is shadow_side.parsed else live
    blob = b""
    for header in chain:
        htype = view.header_types.get(header)
        if htype is None:
            return None
        values: Dict[str, object] = {}
        for fname in htype.field_names():
            if fname == htype.varlen_field:
                values[fname] = b""
                continue
            dom = ps.doms.get(f"{header}.{fname}")
            values[fname] = dom.pick() if dom is not None else 0
        blob += htype.pack(values)
    port_dom = ps.doms.get("meta.ingress_port")
    port = port_dom.pick() if port_dom is not None else 0
    return Witness(
        data=blob + b"\x00" * 8, port=port, chain=tuple(chain),
        note="fields not constrained by the flow class default to 0",
    )


def _pure_lookup(table, packet):
    """Side-effect-free table lookup (no hit/miss counters, no entry
    counters) -- the replay interpreter must leave the device
    byte-identical."""
    key = tuple(read(packet) for read in table._key_readers)
    entry = table._engine.lookup(key)
    if entry is None:
        return (0, None, dict(table.default_data))
    return (entry.tag, entry, dict(entry.action_data))


class _ReplayDevice:
    """The minimal device surface the extern library touches, with all
    state knobs pinned (clock None, no TM, no collector) so a replay
    is deterministic and identical for live and shadow."""

    def __init__(self, header_types) -> None:
        self.header_types = header_types
        self.int_clock = None
        self.int_collector = None
        self.int_node = None
        self.pipeline = None
        self.dp = None


def _pure_execute(view: DeviceView, action, packet, action_data,
                  entry_present: bool) -> None:
    """Run an action with stateful externs stubbed symmetrically."""
    from repro.net.fields import mask_to_width
    bound: Dict[str, int] = {}
    for name, width in action.params:
        if name not in action_data:
            raise KeyError(f"action {action.name!r} missing parameter {name!r}")
        bound[name] = mask_to_width(action_data[name], width)
    ctx = vm.ActionContext(
        packet=packet, params=bound, entry=None,
        device=_ReplayDevice(view.header_types),
    )
    for op in action.ops:
        if isinstance(op, (vm.SetField, vm.RemoveHeaderOp, vm.MarkAbove)):
            op.execute(ctx)
        elif isinstance(op, vm.CountAndMark):
            if not entry_present:
                raise RuntimeError("count_and_mark without a matched entry")
            # Stub: fresh-counter semantics (no mark on the first packet).
        elif isinstance(op, vm.SketchUpdate):
            packet.write(op.dest, 1)  # fresh-sketch estimate, both sides
        elif isinstance(op, vm.Police):
            packet.write(op.dest, 0)  # green, both sides
        elif isinstance(op, vm.PyPrimitive):
            op.execute(ctx)  # stateless, or pinned by _ReplayDevice
        else:
            raise RuntimeError(f"unknown op {type(op).__name__}")


def replay(view: DeviceView, data: bytes, port: int = 0) -> dict:
    """Pure replay of one packet through a device view.

    Mirrors :func:`repro.dp.exec.run_tsp_plan` semantics but never
    mutates device state (table counters, externs, TSP stats), so it
    is safe to run against a *live* switch and a *prepared txn shadow*
    from inside the controller's staging gate.
    """
    from repro.net.packet import Packet
    metadata = view.merged_metadata()
    metadata["ingress_port"] = port
    metadata["packet_length"] = len(data)
    packet = Packet(data, first_header=view.first_header, metadata=metadata)
    trace: List[tuple] = []
    try:
        for phase, stage in view.schedule:
            if packet.metadata.get("drop"):
                break
            packet.ensure_parsed(
                stage.parser_headers, view.header_types, view.linkage
            )
            for index, (predicate, _expr, table_name) in enumerate(stage.arms):
                if not predicate(packet):
                    continue
                if table_name is None:
                    trace.append(("arm", stage.name, index, None))
                    break
                table = view.tables.get(table_name)
                if table is None:
                    raise KeyError(f"unknown table {table_name!r}")
                tag, entry, action_data = _pure_lookup(table, packet)
                action_name = _executor_action(stage, tag)
                action = view.actions.get(action_name)
                if action is None:
                    raise KeyError(f"unknown action {action_name!r}")
                trace.append(("apply", stage.name, table_name, tag, action_name))
                _pure_execute(view, action, packet, action_data, entry is not None)
                break
    except Exception as exc:
        return {"error": f"{type(exc).__name__}: {exc}", "trace": trace}
    dropped = bool(packet.metadata.get("drop"))
    return {
        "drop": dropped,
        "egress_spec": packet.metadata.get("egress_spec", 0),
        "to_cpu": packet.metadata.get("to_cpu", 0),
        "mcast_grp": packet.metadata.get("mcast_grp", 0),
        "data": None if dropped else packet.emit().hex(),
        "trace": trace,
    }


def _replay_outcomes_differ(live_out: dict, shadow_out: dict) -> bool:
    def norm(out: dict) -> tuple:
        if "error" in out:
            return ("error", out["error"])
        if out["drop"]:
            return ("drop",)
        return (
            out["egress_spec"], out["to_cpu"], out["mcast_grp"], out["data"]
        )
    return norm(live_out) != norm(shadow_out)


# --------------------------------------------------------------------------
# Report and driver
# --------------------------------------------------------------------------


@dataclass
class VerifyConfig:
    """Gate/CLI knobs for rp4verify."""

    #: Budget on differential flow classes (live x shadow product
    #: leaves) per verification run; side-local path enumeration gets
    #: a proportional internal budget.
    max_classes: int = 4096
    #: Enumerate flow classes even when the structural tier finds no
    #: unclaimed drift (the gate's fast path skips enumeration; the
    #: CLI, bench, and tests run exhaustively).
    exhaustive: bool = False
    #: Synthesize witness packets for divergent classes.
    witnesses: bool = True
    #: Confirm unintended witnesses by pure replay; unconfirmed
    #: findings are downgraded from error to warning severity.
    confirm: bool = True
    #: Cap on RP4L502 (intended-divergence) diagnostics emitted.
    max_intended_reports: int = 3


@dataclass
class FlowClass:
    """One symbolic flow class of the differential product."""

    index: int
    classification: str  # equivalent | intended | unintended
    live_obs: tuple
    shadow_obs: tuple
    live_events: Tuple[tuple, ...]
    shadow_events: Tuple[tuple, ...]
    tainted: Tuple[str, ...] = ()
    witness: Optional[Witness] = None
    confirmed: Optional[bool] = None

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "classification": self.classification,
            "live_events": [list(e) for e in self.live_events],
            "shadow_events": [list(e) for e in self.shadow_events],
            "tainted": list(self.tainted),
            "witness": self.witness.to_dict() if self.witness else None,
            "confirmed": self.confirmed,
        }


@dataclass
class VerifyReport:
    """Everything one rp4verify run produced."""

    diagnostics: List[Diagnostic] = dc_field(default_factory=list)
    classes: List[FlowClass] = dc_field(default_factory=list)
    drift: List[str] = dc_field(default_factory=list)
    claimed: List[str] = dc_field(default_factory=list)
    enumerated: bool = False
    truncated: bool = False
    seconds: float = 0.0

    @property
    def unintended(self) -> List[FlowClass]:
        return [c for c in self.classes if c.classification == "unintended"]

    @property
    def intended(self) -> List[FlowClass]:
        return [c for c in self.classes if c.classification == "intended"]

    @property
    def equivalent(self) -> List[FlowClass]:
        return [c for c in self.classes if c.classification == "equivalent"]

    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    def to_dict(self) -> dict:
        return {
            "version": 1,
            "tool": "rp4verify",
            "drift": list(self.drift),
            "claimed": list(self.claimed),
            "enumerated": self.enumerated,
            "truncated": self.truncated,
            "seconds": self.seconds,
            "counts": {
                "classes": len(self.classes),
                "equivalent": len(self.equivalent),
                "intended": len(self.intended),
                "unintended": len(self.unintended),
            },
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "classes": [c.to_dict() for c in self.classes],
        }


def _classify(live_obs, shadow_obs, live_events, shadow_events,
              diff: Set[str], unclaimed: Set[str]) -> Tuple[str, Tuple[str, ...]]:
    if live_obs == shadow_obs:
        return "equivalent", ()
    tainted = _diff_entities(live_events, shadow_events)
    if not tainted:
        tainted = (
            _trace_entities(live_events) | _trace_entities(shadow_events)
        ) & diff
    unintended = tainted & unclaimed
    if unintended:
        return "unintended", tuple(sorted(unintended))
    return "intended", tuple(sorted(tainted))


def verify_views(live: DeviceView, shadow: DeviceView,
                 claimed: Optional[Set[str]] = None,
                 config: Optional[VerifyConfig] = None,
                 path: str = "<update>") -> VerifyReport:
    """The rp4verify core: structural tier always, symbolic tier when
    drift exists or ``config.exhaustive`` asks for it."""
    config = config or VerifyConfig()
    claimed = claimed or set()
    span = Span(file=path)
    started = time.perf_counter()
    report = VerifyReport(claimed=sorted(claimed))

    diff = structural_diff(live, shadow)
    unclaimed = diff - claimed
    report.drift = sorted(unclaimed)
    for entity in report.drift:
        report.diagnostics.append(make(
            "RP4L503",
            f"staged device diverges from the live device in {entity} "
            "which the update plan does not claim to touch",
            span,
        ))
    report.diagnostics.extend(_hazard_diagnostics(live, shadow, diff, span))

    if unclaimed or config.exhaustive:
        report.enumerated = True
        _enumerate(live, shadow, diff, unclaimed, config, span, report)

    report.seconds = time.perf_counter() - started
    return report


def _enumerate(live: DeviceView, shadow: DeviceView, diff: Set[str],
               unclaimed: Set[str], config: VerifyConfig, span: Span,
               report: VerifyReport) -> None:
    shared_tables = _shared_table_names(live, shadow)
    side_budget = _Budget(max(config.max_classes * 4, 2048))
    live_leaves = _run_side(
        PathState(), SideState(live), shared_tables, side_budget
    )
    truncated = side_budget.truncated
    index = 0
    intended_reported = 0
    for ps, live_side in live_leaves:
        if index >= config.max_classes:
            truncated = True
            break
        shadow_budget = _Budget(config.max_classes - index)
        shadow_leaves = _run_side(
            ps, SideState(shadow), shared_tables, shadow_budget
        )
        truncated = truncated or shadow_budget.truncated
        for ps2, shadow_side in shadow_leaves:
            live_obs = _observe(ps2, live_side)
            shadow_obs = _observe(ps2, shadow_side)
            classification, tainted = _classify(
                live_obs, shadow_obs, live_side.trace, shadow_side.trace,
                diff, unclaimed,
            )
            cls = FlowClass(
                index=index,
                classification=classification,
                live_obs=live_obs,
                shadow_obs=shadow_obs,
                live_events=tuple(live_side.trace),
                shadow_events=tuple(shadow_side.trace),
                tainted=tainted,
            )
            index += 1
            if classification != "equivalent" and config.witnesses:
                cls.witness = synthesize_witness(
                    ps2, live_side, shadow_side, live, shadow
                )
            if classification == "unintended":
                severity = None
                note = ""
                if cls.witness is not None and config.confirm:
                    live_out = replay(live, cls.witness.data, cls.witness.port)
                    shadow_out = replay(shadow, cls.witness.data, cls.witness.port)
                    cls.confirmed = _replay_outcomes_differ(live_out, shadow_out)
                    if not cls.confirmed:
                        severity = Severity.WARNING
                        note = " (witness replay did not reproduce it)"
                else:
                    severity = Severity.WARNING
                    note = " (no witness synthesized)"
                witness_hex = (
                    cls.witness.data.hex() if cls.witness is not None else "-"
                )
                report.diagnostics.append(make(
                    "RP4L501",
                    f"flow class #{cls.index} diverges through unclaimed "
                    f"{', '.join(cls.tainted)}{note}; witness packet "
                    f"port={cls.witness.port if cls.witness else 0} "
                    f"hex={witness_hex}",
                    span,
                    severity=severity,
                ))
            elif classification == "intended":
                if intended_reported < config.max_intended_reports:
                    intended_reported += 1
                    report.diagnostics.append(make(
                        "RP4L502",
                        f"flow class #{cls.index} intentionally changes "
                        f"through {', '.join(cls.tainted) or 'claimed plan elements'}",
                        span,
                    ))
            report.classes.append(cls)
    if truncated:
        report.truncated = True
        report.diagnostics.append(make(
            "RP4L506",
            f"symbolic enumeration truncated at {config.max_classes} flow "
            "classes; equivalence holds only for the enumerated prefix",
            span,
        ))


def verify_txn(switch, txn, plan=None,
               config: Optional[VerifyConfig] = None,
               path: str = "<update>") -> VerifyReport:
    """Verify a prepared (not yet committed) update transaction against
    the live switch it will land on."""
    live = DeviceView.from_switch(switch)
    shadow = DeviceView.from_txn(txn)
    return verify_views(
        live, shadow, claimed=claimed_entities(plan), config=config, path=path
    )

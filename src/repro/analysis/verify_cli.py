"""``rp4verify``: symbolic differential update verification CLI
(also ``ipbm-ctl verify``).

``--shipped`` stages every built-in snippet update on a freshly
loaded, table-populated base controller, runs the exhaustive
differential verifier against the prepared-but-uncommitted shadow,
and aborts the txn -- the live device is never mutated.  Ad-hoc
``BASE SCRIPT SNIPPET...`` invocations verify a user-supplied update
the same way.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, List, Optional, Tuple

from repro.analysis.diag import Diagnostic, dumps, errors, promote_warnings
from repro.analysis.verify import VerifyConfig, VerifyReport, verify_txn


def shipped_snippets() -> Dict[str, Tuple[str, str]]:
    """``{name: (snippet_source, load_script)}`` for the program suite."""
    from repro.programs import (
        acl_load_script,
        acl_rp4_source,
        ecmp_load_script,
        ecmp_rp4_source,
        flowprobe_load_script,
        flowprobe_rp4_source,
        hhsketch_load_script,
        hhsketch_rp4_source,
        int_load_script,
        int_rp4_source,
        int_strip_load_script,
        int_strip_rp4_source,
        qos_load_script,
        qos_rp4_source,
        srv6_load_script,
        srv6_rp4_source,
    )

    return {
        "acl.rp4": (acl_rp4_source(), acl_load_script()),
        "ecmp.rp4": (ecmp_rp4_source(), ecmp_load_script()),
        "flowprobe.rp4": (flowprobe_rp4_source(), flowprobe_load_script()),
        "hhsketch.rp4": (hhsketch_rp4_source(), hhsketch_load_script()),
        "int.rp4": (int_rp4_source(), int_load_script()),
        # Strip-only composition chains directly after the base stage
        # (the int_insert-chained variant needs int_insert loaded first).
        "int_strip.rp4": (
            int_strip_rp4_source(),
            int_strip_load_script(after="l2_l3"),
        ),
        "qos.rp4": (qos_rp4_source(), qos_load_script()),
        "srv6.rp4": (srv6_rp4_source(), srv6_load_script()),
    }


def _script_source_names(script: str) -> List[str]:
    names = []
    for line in script.splitlines():
        parts = line.split()
        if parts and parts[0] == "load" and len(parts) > 1:
            names.append(parts[1])
    return names


def verify_staged(base_source: str, script: str, sources: Dict[str, str],
                  config: VerifyConfig, path: str) -> VerifyReport:
    """Stage ``script`` on a fresh base controller, verify the prepared
    shadow differentially, then abort (zero live-state mutation)."""
    from repro.programs import populate_base_tables
    from repro.runtime.controller import Controller

    controller = Controller(lint_updates=False, verify_updates="off")
    controller.load_base(base_source)
    try:
        populate_base_tables(controller.switch.tables)
    except KeyError:
        # A user base that isn't the shipped L2/L3 design: verify over
        # empty tables (every lookup misses into its default action).
        pass
    staged = controller.stage_update(script, sources)
    try:
        return verify_txn(
            controller.switch, staged.txn, plan=staged.plan,
            config=config, path=path,
        )
    finally:
        staged.abort()


def _shipped_reports(config: VerifyConfig) -> List[Tuple[str, VerifyReport]]:
    from repro.programs import base_rp4_source

    base_source = base_rp4_source()
    reports: List[Tuple[str, VerifyReport]] = []
    for name, (source, script) in sorted(shipped_snippets().items()):
        composed = f"base_l2l3+{name}"
        sources = {key: source for key in _script_source_names(script)}
        reports.append(
            (composed, verify_staged(base_source, script, sources,
                                     config, composed))
        )
    return reports


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="rp4verify",
        description=(
            "Symbolic differential verification of staged rP4 updates: "
            "flow-class equivalence, witness packets, stateful hazards."
        ),
    )
    parser.add_argument(
        "files",
        nargs="*",
        metavar="FILE",
        help=(
            "BASE.rp4 SCRIPT.upd SNIPPET.rp4... -- verify applying "
            "SCRIPT (with its snippet sources) to BASE"
        ),
    )
    parser.add_argument(
        "--shipped",
        action="store_true",
        help="verify every built-in base+snippet composed update",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="promote warnings to errors (info findings stay info)",
    )
    parser.add_argument(
        "--fast",
        action="store_true",
        help=(
            "structural tier only unless unclaimed drift is found "
            "(the controller gate's default); default here is "
            "exhaustive flow-class enumeration"
        ),
    )
    parser.add_argument(
        "--max-classes",
        type=int,
        default=VerifyConfig.max_classes,
        help="flow-class enumeration budget (default: %(default)s)",
    )
    parser.add_argument(
        "--no-witnesses",
        action="store_true",
        help="skip witness-packet synthesis and replay confirmation",
    )
    parser.add_argument(
        "--witness-out",
        metavar="FILE",
        help="write divergence witnesses (JSON) for test replay",
    )
    parser.add_argument(
        "--max-seconds",
        type=float,
        default=None,
        help=(
            "latency smoke threshold: fail if any single verification "
            "run takes longer than this many seconds"
        ),
    )
    parser.add_argument(
        "-o", "--output", help="write the report to a file instead of stdout"
    )
    args = parser.parse_args(argv)
    if not args.files and not args.shipped:
        parser.error("nothing to verify: pass BASE SCRIPT SNIPPET... or --shipped")
    if args.files and len(args.files) < 2:
        parser.error("ad-hoc mode needs at least BASE.rp4 and SCRIPT.upd")

    config = VerifyConfig(
        max_classes=args.max_classes,
        exhaustive=not args.fast,
        witnesses=not args.no_witnesses,
        confirm=not args.no_witnesses,
    )

    reports: List[Tuple[str, VerifyReport]] = []
    if args.files:
        try:
            texts = []
            for path in args.files:
                with open(path, "r", encoding="utf-8") as handle:
                    texts.append(handle.read())
        except OSError as exc:
            print(f"rp4verify: cannot read input: {exc}", file=sys.stderr)
            return 2
        base_source, script = texts[0], texts[1]
        sources = {
            os.path.basename(path): text
            for path, text in zip(args.files[2:], texts[2:])
        }
        label = "+".join(os.path.basename(p) for p in args.files[:2])
        reports.append(
            (label, verify_staged(base_source, script, sources, config, label))
        )
    if args.shipped:
        reports.extend(_shipped_reports(config))

    diags: List[Diagnostic] = []
    witnesses: List[dict] = []
    slow: List[Tuple[str, float]] = []
    for label, report in reports:
        diags.extend(report.diagnostics)
        for cls in report.classes:
            if cls.classification != "equivalent" and cls.witness is not None:
                record = cls.to_dict()
                record["update"] = label
                witnesses.append(record)
        if args.max_seconds is not None and report.seconds > args.max_seconds:
            slow.append((label, report.seconds))

    if args.strict:
        diags = promote_warnings(diags)
    diags.sort(
        key=lambda d: (
            d.span.file if d.span else "",
            d.span.line if d.span else 0,
            d.rule,
        )
    )
    out = dumps(diags, args.format)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(out + "\n")
    else:
        print(out)
    if args.format == "text":
        for label, report in reports:
            counts = (
                f"{len(report.classes)} classes "
                f"({len(report.equivalent)} equivalent, "
                f"{len(report.intended)} intended, "
                f"{len(report.unintended)} unintended)"
                if report.enumerated
                else "structural tier only"
            )
            line = f"rp4verify: {label}: {counts} in {report.seconds * 1e3:.1f} ms"
            print(line if not args.output else line, file=sys.stderr)
    if args.witness_out:
        with open(args.witness_out, "w", encoding="utf-8") as handle:
            json.dump({"version": 1, "witnesses": witnesses}, handle, indent=2)
            handle.write("\n")
    for label, seconds in slow:
        print(
            f"rp4verify: {label}: verification took {seconds:.2f}s "
            f"(threshold {args.max_seconds:.2f}s)",
            file=sys.stderr,
        )
    if slow:
        return 1
    return 1 if errors(diags) else 0


if __name__ == "__main__":
    raise SystemExit(main())

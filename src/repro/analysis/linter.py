"""rp4lint orchestration: run the pass families over sources, compiled
designs, and device configs.

Three entry points map to the three wiring sites:

* :func:`lint_source` -- parse + analyze a ``.rp4`` text and run every
  family it supports (the ``rp4lint`` / ``ipbm-ctl lint`` CLI path);
  snippets (no entry declarations) get the header-local subset, since
  their cross-references resolve only when composed with a base.
* :func:`lint_design` -- families 1-3 over an already-compiled design
  (the ``rp4bc`` pre-compile gate; artifacts are reused, the memory
  check packs against a fresh pool without allocating).
* :func:`lint_config` -- schema + match-kind rules over a device
  config JSON document.
"""

from __future__ import annotations

from typing import Dict, List, Optional, TYPE_CHECKING

from repro.analysis.deadcode import lint_deadcode
from repro.analysis.diag import Diagnostic, Span, filter_suppressed, make
from repro.analysis.memcheck import lint_memory
from repro.analysis.parse_soundness import lint_parse_soundness
from repro.compiler.dependency import StageEffects, stage_effects
from repro.compiler.stage_graph import StageGraph
from repro.compiler.validate import validate_config
from repro.lang.errors import LangError
from repro.rp4.ast import Rp4Program
from repro.rp4.parser import parse_rp4
from repro.rp4.semantic import SemanticError, analyze
from repro.tables.engines import MATCH_KINDS

if TYPE_CHECKING:
    from repro.compiler.rp4bc import CompiledDesign


def is_snippet(program: Rp4Program) -> bool:
    """Incremental snippets carry no pipeline entry declarations."""
    return program.ingress_entry is None and program.egress_entry is None


def _check_match_kinds(
    program: Rp4Program, path: str = "<rp4>"
) -> List[Diagnostic]:
    """RP4L001 over a program's table keys (the engine registry is the
    single source of truth; the parser normally rejects these first,
    but programs can also be built as ASTs)."""
    diags: List[Diagnostic] = []
    for name, table in program.tables.items():
        for ref, kind in table.keys:
            if kind not in MATCH_KINDS:
                span = None
                if getattr(table, "line", 0):
                    span = Span(file=path, line=table.line, column=table.column)
                elif path:
                    span = Span(file=path)
                diags.append(
                    make(
                        "RP4L001",
                        f"table {name!r}: key {ref!r} uses match kind "
                        f"{kind!r}, which no registered engine serves "
                        f"(known: {', '.join(sorted(MATCH_KINDS))})",
                        span,
                    )
                )
    return diags


def _effect_map(
    program: Rp4Program, cached: Optional[Dict[str, StageEffects]] = None
) -> Dict[str, StageEffects]:
    out: Dict[str, StageEffects] = {}
    for name, stage in program.all_stages().items():
        eff = cached.get(name) if cached else None
        out[name] = eff if eff is not None else stage_effects(stage, program)
    return out


def lint_program(
    program: Rp4Program,
    graph: Optional[StageGraph] = None,
    effects: Optional[Dict[str, StageEffects]] = None,
    path: str = "<rp4>",
    snippet: bool = False,
) -> List[Diagnostic]:
    """Families 1 (parse-soundness) and 2 (dead-code) plus RP4L001."""
    diags = _check_match_kinds(program, path)
    if not snippet:
        if graph is None:
            graph = StageGraph.from_program(program)
        if effects is None:
            effects = _effect_map(program)
    diags.extend(
        lint_parse_soundness(program, graph, effects, path, snippet=snippet)
    )
    diags.extend(lint_deadcode(program, graph, path, snippet=snippet))
    return diags


def lint_design(
    design: "CompiledDesign",
    source: Optional[str] = None,
    path: str = "<rp4>",
) -> List[Diagnostic]:
    """Families 1-3 over a compiled design, reusing its artifacts.

    The memory family packs the design's table layouts against a
    *fresh* pool from the target spec -- "does the whole program fit
    an empty device" -- without touching the design's live pool.
    """
    effects = _effect_map(design.program, design.deps.effects)
    diags = lint_program(
        design.program, design.graph, effects, path, snippet=False
    )
    diags.extend(
        lint_memory(
            design.table_layouts,
            design.target.make_pool(),
            design.program,
            path,
        )
    )
    kept, _ = filter_suppressed(diags, source)
    return kept


def lint_config(config: dict, n_tsps: int = 8, path: str = "<config>") -> List[Diagnostic]:
    """RP4L001 + RP4L004 over a device-config JSON document."""
    span = Span(file=path) if path else None
    diags: List[Diagnostic] = []
    for message in validate_config(config, n_tsps=n_tsps):
        rule = "RP4L001" if "unknown match kind" in message else "RP4L004"
        diags.append(make(rule, message, span))
    return diags


def lint_source(
    source: str,
    path: str = "<rp4>",
    target=None,
    mode: str = "auto",
) -> List[Diagnostic]:
    """Full lint of one rP4 source text (the CLI path).

    ``mode`` is ``auto`` (snippets detected by the absence of entry
    declarations), ``full``, or ``snippet``.
    """
    try:
        program = parse_rp4(source)
    except LangError as exc:
        d = exc.diagnostic
        return [
            make(
                "RP4L002",
                d.message,
                Span(file=path, line=d.line, column=d.column),
            )
        ]
    snippet = is_snippet(program) if mode == "auto" else (mode == "snippet")
    if snippet:
        diags = lint_program(program, path=path, snippet=True)
        kept, _ = filter_suppressed(diags, source)
        return kept

    diags: List[Diagnostic] = []
    try:
        info = analyze(program)
    except SemanticError as exc:
        diags.extend(
            make("RP4L003", message, Span(file=path))
            for message in exc.errors
        )
        diags.extend(lint_program(program, path=path, snippet=False))
        kept, _ = filter_suppressed(diags, source)
        return kept

    graph = StageGraph.from_program(program)
    effects = _effect_map(program)
    diags.extend(lint_program(program, graph, effects, path, snippet=False))

    # Memory feasibility needs the merge plan and layout; build them
    # the same way rp4bc does, against a fresh pool, allocating nothing.
    from repro.compiler.rp4bc import TargetSpec  # deferred: avoids a cycle

    target = target or TargetSpec()
    try:
        from repro.compiler.allocation import compute_table_layouts
        from repro.compiler.dependency import analyze_dependencies
        from repro.compiler.merge import plan_merge

        ingress_order = graph.linearize("ingress")
        egress_order = graph.linearize("egress")
        deps = analyze_dependencies(program, ingress_order + egress_order)
        plan = plan_merge(
            ingress_order,
            egress_order,
            deps,
            mode=target.merge_mode,
            max_stages_per_tsp=target.max_stages_per_tsp,
            max_cofire_per_tsp=target.max_cofire_per_tsp,
        )
        pool = target.make_pool()
        layout = target.layout_fn()(plan, target.n_tsps, None)
        layouts = compute_table_layouts(program, info, plan, layout, pool)
    except Exception as exc:  # cannot stage the program at all
        diags.append(
            make(
                "RP4L304",
                f"cannot derive a physical layout on {target.n_tsps} "
                f"TSP(s): {exc}",
                Span(file=path),
            )
        )
    else:
        diags.extend(lint_memory(layouts, pool, program, path))
    kept, _ = filter_suppressed(diags, source)
    return kept

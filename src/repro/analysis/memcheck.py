"""Memory-feasibility passes (rule family RP4L3xx).

Pre-checks a program's table set against the disaggregated pool
*without allocating*: the same ceil(W/w)*ceil(D/d) block math and the
same exact packing solver the allocator uses, run against a fresh
free map.  This lets ``rp4bc`` reject won't-fit programs with a
diagnostic instead of a mid-load failure, and lets the controller
verify a post-update program would still fit an empty device.

* RP4L301 -- the table set cannot be packed into the pool;
* RP4L302 -- a table's hosting TSP reaches no memory cluster;
* RP4L303 -- the set fits but leaves < 10% headroom in some kind.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.diag import Diagnostic, Span, make
from repro.memory.blocks import MemoryKind
from repro.memory.packing import Demand, pack_branch_and_bound
from repro.memory.pool import MemoryPool
from repro.rp4.ast import Rp4Program

#: Utilization at or above which RP4L303 flags low update headroom.
PRESSURE_THRESHOLD = 0.9


def _table_span(
    program: Optional[Rp4Program], name: str, path: str
) -> Optional[Span]:
    table = program.tables.get(name) if program is not None else None
    line = getattr(table, "line", 0)
    if not line:
        return Span(file=path) if path else None
    return Span(file=path, line=line, column=getattr(table, "column", 0))


def lint_memory(
    table_layouts: Dict[str, object],
    pool: MemoryPool,
    program: Optional[Rp4Program] = None,
    path: str = "<rp4>",
) -> List[Diagnostic]:
    """Check the full table set against a pool's free blocks.

    ``table_layouts`` maps table name to a
    :class:`repro.compiler.allocation.TableLayout`; ``pool`` should be
    fresh (the check asks "does the whole program fit an empty
    device", the invariant every load and rollback relies on).
    """
    diags: List[Diagnostic] = []
    demands: List[Demand] = []
    for name in sorted(table_layouts):
        layout = table_layouts[name]
        if not layout.clusters:
            diags.append(
                make(
                    "RP4L302",
                    f"table {name!r}: the crossbar gives its hosting TSP "
                    "no reachable memory cluster",
                    _table_span(program, name, path),
                )
            )
            continue
        try:
            demands.append(
                pool.demand_for(
                    name,
                    layout.kind,
                    layout.entry_width,
                    layout.depth,
                    layout.clusters,
                )
            )
        except ValueError as exc:
            diags.append(
                make(
                    "RP4L301",
                    f"table {name!r}: demand cannot be computed ({exc})",
                    _table_span(program, name, path),
                )
            )
    if not demands:
        return diags

    free = pool.free_map()
    result = pack_branch_and_bound(demands, free)
    if not result.feasible:
        by_kind: Dict[MemoryKind, int] = {}
        for demand in demands:
            by_kind[demand.kind] = by_kind.get(demand.kind, 0) + demand.count
        need = ", ".join(
            f"{count} {kind.value}" for kind, count in sorted(
                by_kind.items(), key=lambda kv: kv[0].value
            )
        )
        have = ", ".join(
            f"{count} {kind.value} in cluster {cluster}"
            for (cluster, kind), count in sorted(
                free.items(), key=lambda kv: (kv[0][0], kv[0][1].value)
            )
        )
        diags.append(
            make(
                "RP4L301",
                f"table set does not fit the memory pool: needs {need} "
                f"block(s); free: {have or 'none'}",
                Span(file=path) if path else None,
            )
        )
        return diags

    for kind in (MemoryKind.SRAM, MemoryKind.TCAM):
        total = sum(
            count for (_, k), count in free.items() if k is kind
        )
        needed = sum(d.count for d in demands if d.kind is kind)
        if total and needed / total >= PRESSURE_THRESHOLD:
            diags.append(
                make(
                    "RP4L303",
                    f"{kind.value} pressure: tables demand {needed} of "
                    f"{total} free block(s) "
                    f"({100 * needed // total}%), leaving little headroom "
                    "for runtime updates",
                    Span(file=path) if path else None,
                )
            )
    return diags

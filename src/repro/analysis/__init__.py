"""repro.analysis: the rp4lint whole-program static analysis framework.

Runtime programmability removes the monolithic compile-and-verify
step PISA programs enjoy, so unsound templates and unsafe update
plans would otherwise hit a live pipeline.  This package answers the
paper's two pre-deployment questions statically -- "is this header
parseable before stage N reads it?" and "is this update plan safe to
apply while traffic flows?" -- plus dead-code and memory-feasibility
checks, all reported through a diagnostics engine with stable rule
IDs (``RP4Lxxx``) and text/JSON/SARIF emitters.

Entry points:

* :func:`repro.analysis.linter.lint_design` -- families 1-3 over a
  compiled design (the ``rp4bc`` pre-compile gate).
* :func:`repro.analysis.update_safety.lint_update` -- family 4 over a
  proposed update plan (the controller pre-apply gate).
* ``rp4lint`` / ``ipbm-ctl lint`` -- the CLI over sources and configs.
"""

from repro.analysis.diag import (
    RULES,
    Diagnostic,
    Rule,
    Severity,
    Span,
)

__all__ = ["RULES", "Diagnostic", "Rule", "Severity", "Span"]

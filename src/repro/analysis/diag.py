"""The rp4lint diagnostics engine.

Every finding is a :class:`Diagnostic`: a stable rule ID (``RP4Lxxx``),
a severity, a message, and an optional source :class:`Span`.  The rule
catalogue lives here (one :class:`Rule` per ID, grouped into the four
pass families plus the front-end ``lint`` family), so emitters, docs,
and the meta-test that every rule has a firing fixture all share one
source of truth.

Suppression: a ``// rp4lint: disable=RP4L204`` comment on the flagged
construct's line silences those rules for that line; ``// rp4lint:
disable-file=RP4L105`` anywhere in the file silences them file-wide.
"""

from __future__ import annotations

import enum
import json
import re
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple


class Severity(enum.IntEnum):
    """Orderable severities (``ERROR`` > ``WARNING`` > ``INFO``)."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @property
    def label(self) -> str:
        return self.name.lower()

    @property
    def sarif_level(self) -> str:
        return {"info": "note", "warning": "warning", "error": "error"}[self.label]


@dataclass(frozen=True)
class Span:
    """Where a diagnostic anchors in its source artifact."""

    file: str = "<rp4>"
    line: int = 0  # 1-based; 0 = unknown (AST built without spans)
    column: int = 0
    #: Exclusive end column (SARIF convention); 0 = single-point span.
    end_column: int = 0

    def __str__(self) -> str:
        if self.line:
            return f"{self.file}:{self.line}:{self.column or 1}"
        return self.file


@dataclass
class Diagnostic:
    """One lint finding."""

    rule: str
    message: str
    severity: Severity
    span: Optional[Span] = None

    def format(self) -> str:
        where = f"{self.span}: " if self.span is not None else ""
        return f"{where}{self.severity.label}[{self.rule}]: {self.message}"

    def to_dict(self) -> dict:
        out = {
            "rule": self.rule,
            "severity": self.severity.label,
            "message": self.message,
        }
        if self.span is not None:
            out["file"] = self.span.file
            out["line"] = self.span.line
            out["column"] = self.span.column
            if self.span.end_column:
                out["end_column"] = self.span.end_column
        return out


@dataclass(frozen=True)
class Rule:
    """Catalogue entry for one rule ID."""

    rule_id: str
    severity: Severity
    family: str
    title: str
    description: str = ""


#: The complete rule catalogue, keyed by rule ID.
RULES: Dict[str, Rule] = {}


def _rule(rule_id: str, severity: Severity, family: str, title: str, description: str) -> None:
    if rule_id in RULES:
        raise ValueError(f"duplicate rule id {rule_id!r}")
    RULES[rule_id] = Rule(rule_id, severity, family, title, description)


# -- front-end family ------------------------------------------------------
_rule(
    "RP4L001", Severity.ERROR, "lint", "unknown match kind",
    "A table key uses a match kind absent from the engine registry "
    "(repro.tables.engines.MATCH_KINDS); no engine could serve lookups.",
)
_rule(
    "RP4L002", Severity.ERROR, "lint", "parse error",
    "The rP4 source does not parse; nothing else can be checked.",
)
_rule(
    "RP4L003", Severity.ERROR, "lint", "semantic error",
    "A cross-reference does not resolve (unknown table, action, header, "
    "field, or entry stage).",
)
_rule(
    "RP4L004", Severity.ERROR, "lint", "config schema violation",
    "A device-config JSON document violates a structural invariant the "
    "device relies on.",
)

# -- parse-soundness family ------------------------------------------------
_rule(
    "RP4L101", Severity.WARNING, "parse-soundness", "unreachable header",
    "No parse path from a root header reaches this header and no action "
    "constructs it, so it can never become valid.",
)
_rule(
    "RP4L102", Severity.ERROR, "parse-soundness", "conflicting link tag",
    "One header's implicit parser maps the same selector tag to two "
    "different next headers; on-demand parsing would be ambiguous.",
)
_rule(
    "RP4L103", Severity.ERROR, "parse-soundness", "header linkage cycle",
    "The header linkage graph contains a cycle, so on-demand parsing "
    "could loop forever on a crafted packet.",
)
_rule(
    "RP4L104", Severity.WARNING, "parse-soundness", "read before parse",
    "A stage reads a field of a header that no upstream parse path can "
    "have made valid by that stage (the on-demand parsing analogue of "
    "read-before-def); the read always sees an invalid header.",
)
_rule(
    "RP4L105", Severity.INFO, "parse-soundness", "link to undeclared header",
    "A header link targets a header not declared in this compilation "
    "unit; it must be resolved at load time (e.g. by a runtime "
    "link_header command).",
)

# -- dead-code family ------------------------------------------------------
_rule(
    "RP4L201", Severity.ERROR, "dead-code", "unreachable stage",
    "No packet path from either pipeline entry reaches this stage; its "
    "tables would waste memory blocks on the device.",
)
_rule(
    "RP4L202", Severity.WARNING, "dead-code", "table never applied",
    "No stage's matcher applies this table, so it is never looked up "
    "(and is silently skipped by allocation).",
)
_rule(
    "RP4L203", Severity.WARNING, "dead-code", "action never used",
    "No executor maps a tag to this action and no table declares it.",
)
_rule(
    "RP4L204", Severity.WARNING, "dead-code", "action never installable",
    "A table declares an action that no applying stage's executor maps "
    "to a tag; entries bound to it could never execute.",
)
_rule(
    "RP4L205", Severity.WARNING, "dead-code", "unreachable matcher arm",
    "A matcher arm follows an unconditional arm of the if/else chain and "
    "can never be evaluated.",
)

# -- memory-feasibility family ---------------------------------------------
_rule(
    "RP4L301", Severity.ERROR, "memory", "table set does not fit",
    "The program's tables demand more blocks (ceil(W/w)*ceil(D/d) per "
    "table) than the disaggregated pool offers under crossbar "
    "reachability; loading would fail mid-way.",
)
_rule(
    "RP4L302", Severity.ERROR, "memory", "no reachable memory cluster",
    "The crossbar gives the table's hosting TSP no memory cluster to "
    "reach, so the table can never be placed.",
)
_rule(
    "RP4L303", Severity.INFO, "memory", "memory pressure",
    "The table set fits but consumes >= 90% of the blocks of some "
    "memory kind, leaving little headroom for runtime updates.",
)
_rule(
    "RP4L304", Severity.ERROR, "memory", "layout infeasible",
    "The program's merged stage groups cannot be laid out on the "
    "target's TSPs at all, so no memory demand can even be computed.",
)

# -- update-safety family --------------------------------------------------
_rule(
    "RP4L401", Severity.ERROR, "update-safety", "selector bounds violated",
    "The update's pipeline-selector configuration is out of bounds "
    "(TSP index out of range, tm_input not before tm_output, or a TSP "
    "both active and bypassed).",
)
_rule(
    "RP4L402", Severity.ERROR, "update-safety", "update strands a field",
    "The update drains stages that were the only writers of a metadata "
    "field a surviving stage still reads; after the update the reader "
    "would see uninitialized data.",
)

# -- verify family (rp4verify symbolic differential analysis) --------------
_rule(
    "RP4L501", Severity.ERROR, "verify", "unintended update divergence",
    "Symbolic differential analysis found a flow class whose live and "
    "shadow outcomes differ through an element the update plan never "
    "claimed to touch; a witness packet demonstrates the divergence.",
)
_rule(
    "RP4L502", Severity.INFO, "verify", "intended update divergence",
    "A flow class behaves differently under the shadow plan, but every "
    "differing step is attributable to a stage or table the update plan "
    "explicitly adds, removes, or migrates.",
)
_rule(
    "RP4L503", Severity.WARNING, "verify", "unclaimed plan drift",
    "The staged shadow device differs structurally from the live device "
    "in a stage or table the update plan does not claim (e.g. a corrupted "
    "or tampered update message); the staged reality disagrees with the "
    "compiled intent.",
)
_rule(
    "RP4L504", Severity.WARNING, "verify", "epoch-crossing state hazard",
    "A device-resident extern (sketch/meter) survives the epoch flip but "
    "its access pattern changes, so in-flight packets executing the old "
    "plan race the new plan's reads/writes against shared state.",
)
_rule(
    "RP4L505", Severity.WARNING, "verify", "stateful update race",
    "After the update, two or more stages touch the same device-resident "
    "extern and the update changed at least one of them, altering the "
    "inter-stage read/write order on shared state.",
)
_rule(
    "RP4L506", Severity.WARNING, "verify", "verification budget exhausted",
    "Symbolic path enumeration hit the configured class budget and was "
    "truncated; equivalence holds only for the enumerated prefix.",
)

#: Family names in catalogue order (drives docs and reports).
FAMILIES: Tuple[str, ...] = (
    "lint", "parse-soundness", "dead-code", "memory", "update-safety",
    "verify",
)


def make(rule_id: str, message: str, span: Optional[Span] = None,
         severity: Optional[Severity] = None) -> Diagnostic:
    """Build a diagnostic with the catalogue's default severity."""
    rule = RULES[rule_id]
    return Diagnostic(
        rule=rule_id,
        message=message,
        severity=severity if severity is not None else rule.severity,
        span=span,
    )


def max_severity(diags: Iterable[Diagnostic]) -> Optional[Severity]:
    worst: Optional[Severity] = None
    for diag in diags:
        if worst is None or diag.severity > worst:
            worst = diag.severity
    return worst


def errors(diags: Iterable[Diagnostic]) -> List[Diagnostic]:
    return [d for d in diags if d.severity is Severity.ERROR]


def dedupe(diags: Iterable[Diagnostic]) -> List[Diagnostic]:
    """Drop exact duplicates (same rule, message, severity, and span).

    Overlapping passes (e.g. lint over a source file and again over the
    composed design) can emit the same finding twice; reports should
    show it once.  Order of first occurrence is preserved.
    """
    seen: Set[Tuple[str, str, Severity, Optional[Span]]] = set()
    out: List[Diagnostic] = []
    for diag in diags:
        key = (diag.rule, diag.message, diag.severity, diag.span)
        if key in seen:
            continue
        seen.add(key)
        out.append(diag)
    return out


#: Base URI for per-rule documentation anchors (docs/analysis.md renders
#: one section per rule; the anchor is the lowercase rule id).
HELP_URI_BASE = "https://github.com/repro/ipbm/blob/main/docs/analysis.md"


def help_uri(rule_id: str) -> str:
    """Stable documentation URI for a rule (used as SARIF ``helpUri``)."""
    return f"{HELP_URI_BASE}#{rule_id.lower()}"


def promote_warnings(diags: Iterable[Diagnostic]) -> List[Diagnostic]:
    """``--strict``: warnings become errors (info stays info)."""
    out = []
    for diag in diags:
        if diag.severity is Severity.WARNING:
            diag = Diagnostic(diag.rule, diag.message, Severity.ERROR, diag.span)
        out.append(diag)
    return out


# -- suppression pragmas ---------------------------------------------------

_PRAGMA = re.compile(r"rp4lint:\s*disable(?P<scope>-file)?\s*=\s*(?P<ids>[A-Z0-9,\s]+)")


def source_suppressions(source: str) -> Tuple[Set[str], Dict[int, Set[str]]]:
    """Parse suppression pragmas from raw source text.

    Returns ``(file_wide_ids, {line_no: ids})``.
    """
    file_wide: Set[str] = set()
    by_line: Dict[int, Set[str]] = {}
    for line_no, line in enumerate(source.splitlines(), start=1):
        for match in _PRAGMA.finditer(line):
            ids = {i.strip() for i in match.group("ids").split(",") if i.strip()}
            if match.group("scope"):
                file_wide |= ids
            else:
                by_line.setdefault(line_no, set()).update(ids)
    return file_wide, by_line


def filter_suppressed(
    diags: Sequence[Diagnostic], source: Optional[str]
) -> Tuple[List[Diagnostic], int]:
    """Drop diagnostics silenced by pragmas; returns (kept, n_dropped)."""
    if not source:
        return list(diags), 0
    file_wide, by_line = source_suppressions(source)
    if not file_wide and not by_line:
        return list(diags), 0
    kept: List[Diagnostic] = []
    dropped = 0
    for diag in diags:
        line = diag.span.line if diag.span is not None else 0
        if diag.rule in file_wide or diag.rule in by_line.get(line, ()):
            dropped += 1
        else:
            kept.append(diag)
    return kept, dropped


# -- emitters --------------------------------------------------------------


def format_text(diags: Sequence[Diagnostic]) -> str:
    """Human-readable report, one finding per line plus a summary."""
    lines = [d.format() for d in diags]
    n_err = sum(1 for d in diags if d.severity is Severity.ERROR)
    n_warn = sum(1 for d in diags if d.severity is Severity.WARNING)
    n_info = len(diags) - n_err - n_warn
    lines.append(
        f"{n_err} error(s), {n_warn} warning(s), {n_info} info"
        if diags
        else "no findings"
    )
    return "\n".join(lines)


def to_json(diags: Sequence[Diagnostic]) -> dict:
    """Machine-readable report (stable schema, version tagged)."""
    return {
        "version": 1,
        "tool": "rp4lint",
        "diagnostics": [d.to_dict() for d in diags],
        "counts": {
            sev.label: sum(1 for d in diags if d.severity is sev)
            for sev in (Severity.ERROR, Severity.WARNING, Severity.INFO)
        },
    }


def to_sarif(diags: Sequence[Diagnostic]) -> dict:
    """SARIF 2.1.0 document (one run, rules from the catalogue).

    Identical findings from overlapping passes are deduplicated so the
    code-scanning view shows each distinct finding once.
    """
    diags = dedupe(diags)
    used = sorted({d.rule for d in diags})
    rules = [
        {
            "id": rule_id,
            "name": RULES[rule_id].title.title().replace(" ", ""),
            "shortDescription": {"text": RULES[rule_id].title},
            "fullDescription": {"text": RULES[rule_id].description},
            "helpUri": help_uri(rule_id),
            "defaultConfiguration": {
                "level": RULES[rule_id].severity.sarif_level
            },
        }
        for rule_id in used
    ]
    index_of = {rule_id: i for i, rule_id in enumerate(used)}
    results = []
    for diag in diags:
        result = {
            "ruleId": diag.rule,
            "ruleIndex": index_of[diag.rule],
            "level": diag.severity.sarif_level,
            "message": {"text": diag.message},
        }
        if diag.span is not None:
            region = {}
            if diag.span.line:
                region = {
                    "startLine": diag.span.line,
                    "startColumn": diag.span.column or 1,
                }
                if diag.span.end_column:
                    region["endColumn"] = diag.span.end_column
            location = {
                "physicalLocation": {
                    "artifactLocation": {"uri": diag.span.file},
                }
            }
            if region:
                location["physicalLocation"]["region"] = region
            result["locations"] = [location]
        results.append(result)
    return {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
            "Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "rp4lint",
                        "informationUri": "https://github.com/",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }


def dumps(diags: Sequence[Diagnostic], fmt: str = "text") -> str:
    """Render diagnostics in one of the three output formats."""
    if fmt == "text":
        return format_text(diags)
    if fmt == "json":
        return json.dumps(to_json(diags), indent=2, sort_keys=True)
    if fmt == "sarif":
        return json.dumps(to_sarif(diags), indent=2, sort_keys=True)
    raise ValueError(f"unknown diagnostics format {fmt!r}")

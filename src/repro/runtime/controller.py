"""The controller: compile, download, and in-situ program a live switch.

The rP4 design flow (paper Fig. 3) end to end:

1. ``load_base``   -- rp4bc compiles the base design; the full config
   crosses the control channel and the device performs its initial
   load (compile time ``t_C`` and loading time ``t_L`` are measured
   separately, as in Table 1).
2. ``run_script``  -- an incremental update: rp4bc compiles only the
   snippet + commands; only the *delta* (new templates, selector,
   header links, new tables) crosses the channel; the device drains,
   patches, and resumes.  Existing entries survive; only new tables
   need population.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.compiler.validate import check_config
from repro.compiler.rp4bc import (
    CompiledDesign,
    TargetSpec,
    UpdatePlan,
    compile_base,
    compile_update,
)
from repro.ipsa.switch import IpsaSwitch, UpdateStats
from repro.obs.metrics import MetricsRegistry
from repro.obs.timeline import TimelineRecorder
from repro.runtime.channel import ControlChannel
from repro.runtime.table_api import TableApi
from repro.tables.table import TableEntry

#: Histogram edges (seconds) for compile/load flow timings.
FLOW_SECONDS_BOUNDS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0)


class ControllerError(Exception):
    """Raised on misuse (e.g. scripting before a base design loads)."""


class UnsafeUpdateError(ControllerError):
    """A pre-apply safety gate (rp4lint or rp4verify) rejected an
    update plan."""

    def __init__(self, diagnostics, gate: str = "rp4lint") -> None:
        super().__init__(
            f"update rejected by {gate}: "
            + "; ".join(d.format() for d in diagnostics)
        )
        self.diagnostics = list(diagnostics)
        self.gate = gate


@dataclass
class FlowTiming:
    """One design-flow step's measured costs (a Table 1 cell)."""

    compile_seconds: float = 0.0
    load_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        return self.compile_seconds + self.load_seconds


@dataclass
class _UndoRecord:
    """What rollback needs: the prior design plus the entries of every
    table the update freed (so a rollback can restore them)."""

    design: CompiledDesign
    freed_entries: Dict[str, List[TableEntry]]


class StagedUpdate:
    """A compiled, linted, prepared-and-validated update awaiting
    :meth:`commit` (or :meth:`abort`).

    The expensive work -- snippet compile, lint gate, channel
    transfer, shadow-state build, dp plan pre-compile -- is already
    done; commit is only the device-side epoch flip plus controller
    bookkeeping.  This is what lets a fabric rollout stage every node
    first and flip them wave by wave.
    """

    def __init__(self, controller, plan, update, txn, timeline, timing,
                 freed_entries, script_bytes) -> None:
        self.controller = controller
        self.plan: UpdatePlan = plan
        self.update = update
        self.txn = txn
        self.timeline = timeline
        self.timing = timing
        self.freed_entries: Dict[str, List[TableEntry]] = freed_entries
        self.script_bytes = script_bytes
        self.committed = False
        self.aborted = False

    def commit(self) -> Tuple[UpdatePlan, UpdateStats, FlowTiming]:
        """Flip the device to the staged design."""
        if self.committed or self.aborted:
            raise ControllerError("staged update already resolved")
        controller = self.controller
        controller.channel.send(
            {"txn": self.txn.txn_id}, kind="update.commit"
        )
        stats = self.txn.commit()
        apply_phase = self.timeline.phase(
            "apply",
            drained_packets=stats.drained_packets,
            templates_written=stats.templates_written,
        )
        self.timing.load_seconds = (
            self.timing.load_seconds + apply_phase.duration
        )
        self.timeline.finish()
        self.committed = True

        controller._undo.append(
            _UndoRecord(controller.design, self.freed_entries)
        )
        controller.design = self.plan.design
        controller.history.append(f"script:{self.script_bytes}B")
        controller._n_updates.inc()
        controller._h_compile.observe(self.timing.compile_seconds)
        controller._h_load.observe(self.timing.load_seconds)
        return self.plan, stats, self.timing

    def abort(self) -> None:
        """Discard the staged update; the device is untouched."""
        if self.committed:
            raise ControllerError("cannot abort a committed update")
        if self.aborted:
            return
        self.controller.channel.send(
            {"txn": self.txn.txn_id}, kind="update.abort"
        )
        self.txn.abort()
        self.timeline.phase("abort")
        self.timeline.finish()
        self.aborted = True
        self.controller.history.append("abort")


class Controller:
    """CLI-less core of the paper's controller."""

    def __init__(
        self,
        target: Optional[TargetSpec] = None,
        switch: Optional[IpsaSwitch] = None,
        lint_updates: bool = True,
        verify_updates: str = "warn",
    ) -> None:
        self.target = target or TargetSpec()
        self.switch = switch or IpsaSwitch(n_tsps=self.target.n_tsps)
        self.channel = ControlChannel()
        self.design: Optional[CompiledDesign] = None
        #: Pre-apply rp4lint gate: verify every update plan (selector
        #: bounds, no stranded fields, post-update program re-lint)
        #: before anything touches the live switch.
        self.lint_updates = lint_updates
        #: rp4verify staging gate mode: ``off`` skips it, ``warn``
        #: records the report without blocking, ``error`` aborts the
        #: staged txn on error-severity findings (confirmed unintended
        #: divergence), ``strict`` aborts on warnings too.
        if verify_updates not in ("off", "warn", "error", "strict"):
            raise ValueError(
                f"verify_updates must be off/warn/error/strict, "
                f"got {verify_updates!r}"
            )
        self.verify_updates = verify_updates
        #: Diagnostics from the most recent update gate (warnings/info).
        self.last_lint: List[object] = []
        #: :class:`~repro.analysis.verify.VerifyReport` from the most
        #: recent rp4verify staging gate run (None while ``off``).
        self.last_verify = None
        #: Optional fleet-shared :class:`~repro.runtime.workers.
        #: UpdatePlanCache`.  When set, :meth:`stage_update` reuses a
        #: content-identical compile (plus its lint findings and clean
        #: verify report) instead of recomputing them per node -- the
        #: sharded fabric installs one cache across a whole rollout.
        self.plan_cache = None
        self.history: List[str] = []
        self._undo: List[_UndoRecord] = []
        self.timelines = TimelineRecorder()
        self.metrics = MetricsRegistry()
        self._n_base_loads = self.metrics.counter("controller.base_loads")
        self._n_updates = self.metrics.counter("controller.updates_applied")
        self._n_rollbacks = self.metrics.counter("controller.rollbacks")
        self._h_compile = self.metrics.histogram(
            "controller.compile_seconds", FLOW_SECONDS_BOUNDS
        )
        self._h_load = self.metrics.histogram(
            "controller.load_seconds", FLOW_SECONDS_BOUNDS
        )
        self.metrics.add_collector("channel", self.channel.metrics_samples)

    # -- base design flow ------------------------------------------------

    def load_base(self, rp4_source: str) -> FlowTiming:
        """Compile and download a complete base design."""
        timing = FlowTiming()
        timeline = self.timelines.begin("load_base", source_bytes=len(rp4_source))
        design = compile_base(rp4_source, self.target)
        timing.compile_seconds = timeline.phase(
            "compile", templates=len(design.templates)
        ).duration

        check_config(design.config, n_tsps=self.target.n_tsps)
        timeline.phase("validate")
        config = self.channel.send(design.config, kind="config.load")
        self.switch.load_config(config)
        timing.load_seconds = timeline.phase(
            "load", tables=len(config.get("tables", {}))
        ).duration
        timeline.finish()

        self.design = design
        self.history.append("load_base")
        self._n_base_loads.inc()
        self._h_compile.observe(timing.compile_seconds)
        self._h_load.observe(timing.load_seconds)
        return timing

    def load_design(self, design: CompiledDesign) -> FlowTiming:
        """Download an already-compiled base design.

        The fleet fast path: a thousand-node fabric compiles the base
        source once and loads the same design everywhere -- only the
        per-node download (channel transfer + device load) repeats.
        """
        timing = FlowTiming()
        timeline = self.timelines.begin(
            "load_design", tables=len(design.config.get("tables", {}))
        )
        check_config(design.config, n_tsps=self.target.n_tsps)
        timeline.phase("validate")
        config = self.channel.send(design.config, kind="config.load")
        self.switch.load_config(config)
        timing.load_seconds = timeline.phase(
            "load", tables=len(config.get("tables", {}))
        ).duration
        timeline.finish()
        self.design = design
        self.history.append("load_design")
        self._n_base_loads.inc()
        self._h_load.observe(timing.load_seconds)
        return timing

    # -- incremental flow ----------------------------------------------------

    def stage_update(
        self,
        script_text: str,
        sources: Optional[Dict[str, str]] = None,
    ) -> StagedUpdate:
        """Compile, lint, transfer, and *stage* an in-situ update.

        Runs the transaction's prepare and validate phases on the
        device; the returned :class:`StagedUpdate` commits (or aborts)
        at the caller's chosen moment.  Any failure up to here leaves
        the device byte-identical to its pre-update state.
        """
        if self.design is None:
            raise ControllerError("no base design loaded")
        timing = FlowTiming()
        timeline = self.timelines.begin(
            "run_script", script_bytes=len(script_text)
        )
        cache = self.plan_cache
        entry = None
        fingerprint = None
        if cache is not None:
            fingerprint = cache.fingerprint(self.design, script_text, sources)
            entry = cache.get(fingerprint)
        if entry is not None:
            plan = entry.plan
            timing.compile_seconds = timeline.phase(
                "compile",
                rewritten_tsps=list(plan.rewritten_tsps),
                cached=True,
            ).duration
        else:
            plan = compile_update(self.design, script_text, sources)
            timing.compile_seconds = timeline.phase(
                "compile", rewritten_tsps=list(plan.rewritten_tsps)
            ).duration

        if self.lint_updates:
            if entry is not None and entry.lint is not None:
                # The cached compile passed the gate; its (non-fatal)
                # findings apply verbatim to a content-identical node.
                self.last_lint = list(entry.lint)
                timeline.phase(
                    "lint", findings=len(self.last_lint), cached=True
                )
            else:
                self._lint_gate(plan)
                timeline.phase("lint", findings=len(self.last_lint))

        if entry is not None:
            message = entry.message
            update = self.channel.send(
                message,
                kind="update.prepare",
                payload_json=entry.message_json,
            )
        else:
            message = plan.update_message(self.design.config)
            update = self.channel.send(message, kind="update.prepare")
        timing.load_seconds = timeline.phase("transfer").duration

        # Freed tables lose their Table objects at commit; snapshot
        # their entries now so a later rollback can restore them.
        freed_entries: Dict[str, List[TableEntry]] = {}
        for name in update.get("freed_tables", []):
            table = self.switch.tables.get(name)
            if table is not None:
                freed_entries[name] = [
                    TableEntry(
                        key=entry.key,
                        action=entry.action,
                        action_data=dict(entry.action_data),
                        tag=entry.tag,
                        priority=entry.priority,
                    )
                    for entry in table.entries()
                ]

        txn = self.switch.begin_update(update)
        if entry is not None and entry.templates_parsed is not None:
            txn.shared_templates = entry.templates_parsed

        pool_findings: Optional[List[str]] = (
            entry.pool_findings if entry is not None else None
        )

        def check_pool(t) -> None:
            # The incremental compile allocated the new tables on a
            # cloned pool; a corrupt allocation must fail validate,
            # never commit.  The pool object travels with the cached
            # plan, so a cache hit reuses the canary's walk verbatim.
            nonlocal pool_findings
            if pool_findings is None:
                pool_findings = [
                    f"memory pool: {finding}"
                    for finding in plan.design.pool.verify()
                ]
            t.findings.extend(pool_findings)

        txn.validators.append(check_pool)
        txn.prepare()
        txn.validate()
        if self.verify_updates != "off":
            cached_report = entry.verify_report if entry is not None else None
            if cached_report is not None and self._verify_reusable(
                cached_report
            ):
                # The canary's clean differential report vouches for a
                # content-identical peer: same design bytes, same
                # staged update, same semantics.  Anything with
                # findings is re-verified against *this* device.
                self.last_verify = cached_report
                timeline.phase(
                    "verify",
                    classes=len(cached_report.classes),
                    drift=len(cached_report.drift),
                    findings=len(cached_report.diagnostics),
                    cached=True,
                )
            else:
                self._verify_gate(plan, txn, timeline)
        if cache is not None and entry is None:
            from repro.runtime.workers import PlanCacheEntry

            cache.put(
                fingerprint,
                PlanCacheEntry(
                    plan=plan,
                    message=message,
                    lint=(
                        list(self.last_lint) if self.lint_updates else None
                    ),
                    verify_report=(
                        self.last_verify
                        if self.verify_updates != "off"
                        else None
                    ),
                    message_json=json.dumps(message, sort_keys=True),
                    pool_findings=pool_findings,
                    templates_parsed=getattr(txn, "_parsed", None),
                ),
            )
        return StagedUpdate(
            self, plan, update, txn, timeline, timing, freed_entries,
            len(script_text),
        )

    def run_script(
        self,
        script_text: str,
        sources: Optional[Dict[str, str]] = None,
    ) -> Tuple[UpdatePlan, UpdateStats, FlowTiming]:
        """Compile and apply an in-situ update script (stage + commit)."""
        return self.stage_update(script_text, sources).commit()

    def _lint_gate(self, plan: UpdatePlan) -> None:
        """Pre-apply safety gate: family 4 (update-plan safety) plus a
        full re-lint of the post-update program (families 1-3).  Raises
        :class:`UnsafeUpdateError` on any error-severity finding --
        before a single byte crosses the control channel."""
        from repro.analysis.diag import errors
        from repro.analysis.linter import lint_design
        from repro.analysis.update_safety import lint_update

        diagnostics = lint_update(self.design, plan)
        diagnostics.extend(lint_design(plan.design, path="<post-update>"))
        fatal = errors(diagnostics)
        if fatal:
            raise UnsafeUpdateError(fatal)
        self.last_lint = diagnostics

    @staticmethod
    def _verify_reusable(report) -> bool:
        """A cached verify report transfers to a peer node only when
        it is unconditionally clean (nothing at warning severity or
        above), so every gate mode would accept it unchanged."""
        from repro.analysis.diag import Severity

        return all(
            d.severity < Severity.WARNING for d in report.diagnostics
        )

    def _verify_gate(self, plan: UpdatePlan, txn, timeline) -> None:
        """rp4verify staging gate: differential verification of the
        prepared shadow against the live device, run after validate
        and before the :class:`StagedUpdate` is handed back -- the
        last word before any epoch flip.

        The default two-tier configuration is cheap: a structural
        claimed-vs-staged diff plus an extern hazard scan; full
        symbolic flow-class enumeration (with witness synthesis and
        pure-replay confirmation) only kicks in when unclaimed drift
        is detected.  On a fatal finding the staged txn is aborted --
        device byte-identical -- and :class:`UnsafeUpdateError` is
        raised.
        """
        from repro.analysis.diag import Severity
        from repro.analysis.verify import verify_txn

        report = verify_txn(self.switch, txn, plan=plan)
        self.last_verify = report
        timeline.phase(
            "verify",
            classes=len(report.classes),
            drift=len(report.drift),
            findings=len(report.diagnostics),
        )
        threshold = (
            Severity.WARNING
            if self.verify_updates == "strict"
            else Severity.ERROR
        )
        fatal = [d for d in report.diagnostics if d.severity >= threshold]
        if fatal and self.verify_updates in ("error", "strict"):
            self.channel.send({"txn": txn.txn_id}, kind="update.abort")
            txn.abort()
            timeline.phase("abort")
            timeline.finish()
            self.history.append("verify-reject")
            raise UnsafeUpdateError(fatal, gate="rp4verify")

    # -- failback ---------------------------------------------------------

    def rollback(self) -> List[str]:
        """Fail back to the design before the last update.

        The intro's live-trial story: "live trials in production
        networks can be conducted with reliable failback procedure."
        Rollback is itself an in-situ update -- drain, rewrite the
        differing templates, undo the header links, recreate the
        tables the trial removed, free the ones it added.

        Returns the names of restored tables.  Their entries come back
        too: the update that freed them snapshotted the rows (see
        :meth:`stage_update`), and rollback replays the snapshot into
        the recreated tables.
        """
        if not self._undo:
            raise ControllerError("nothing to roll back")
        if self.design is None:
            raise ControllerError("no design loaded")
        timeline = self.timelines.begin("rollback")
        record = self._undo.pop()
        previous = record.design
        current = self.design

        old_templates = {t["tsp"]: t for t in current.templates}
        templates = [
            t for t in previous.templates if old_templates.get(t["tsp"]) != t
        ]

        def links_of(config):
            return {
                (name, tag, nxt)
                for name, spec in config.get("headers", {}).items()
                for tag, nxt in spec.get("links", [])
            }

        prev_links = links_of(previous.config)
        cur_links = links_of(current.config)
        prev_tables = previous.config.get("tables", {})
        cur_tables = set(current.config.get("tables", {}))
        restored = sorted(set(prev_tables) - cur_tables)

        message = {
            "templates": templates,
            "selector": previous.config.get("selector", {}),
            "link_headers": [list(l) for l in sorted(prev_links - cur_links)],
            "unlink_headers": [
                [pre, tag] for pre, tag, _ in sorted(cur_links - prev_links)
            ],
            "new_metadata": previous.config.get("metadata", []),
            "new_headers": {
                name: spec
                for name, spec in previous.config.get("headers", {}).items()
                if name not in current.config.get("headers", {})
            },
            "new_actions": {
                name: spec
                for name, spec in previous.config.get("actions", {}).items()
                if name not in current.config.get("actions", {})
            },
            "new_tables": {name: prev_tables[name] for name in restored},
            "freed_tables": sorted(cur_tables - set(prev_tables)),
        }
        timeline.phase(
            "plan", templates=len(templates), restored_tables=list(restored)
        )
        update = self.channel.send(message, kind="update.rollback")
        timeline.phase("transfer")
        self.switch.apply_update(update)
        for name in restored:
            table = self.switch.tables.get(name)
            if table is None:
                continue
            for entry in record.freed_entries.get(name, []):
                table.add_entry(entry)
        timeline.phase("apply", restored_entries=sum(
            len(record.freed_entries.get(name, [])) for name in restored
        ))
        timeline.finish()
        self.design = previous
        self.history.append("rollback")
        self._n_rollbacks.inc()
        recorder = getattr(self.switch, "flight_recorder", None)
        if recorder is not None:
            # This is the post-mortem trigger: a recorder configured
            # with dump_on=("rollback",) freezes its ring here.
            recorder.record("rollback", restored_tables=list(restored))
        return restored

    # -- table access ------------------------------------------------------------

    def action_tags(self, table_name: str) -> Dict[str, int]:
        """action name -> executor tag, from the stage applying the table."""
        if self.design is None:
            return {}
        for stage in self.design.program.all_stages().values():
            if any(arm.table == table_name for arm in stage.matcher):
                return {
                    action: tag
                    for tag, action in stage.executor.items()
                    if isinstance(tag, int)
                }
        return {}

    def api(self, table_name: str) -> TableApi:
        """A validated runtime API for one table (rp4fc's output bound
        to the live device)."""
        table = self.switch.table(table_name)
        return TableApi(table, action_tags=self.action_tags(table_name))

    def tables(self) -> Dict[str, TableApi]:
        """APIs for every table on the device."""
        return {name: self.api(name) for name in self.switch.tables}

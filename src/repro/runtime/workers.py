"""Device workers: the sharded fabric runtime backend.

A :class:`DeviceWorker` owns a disjoint set of devices (name ->
:class:`~repro.runtime.controller.Controller`) and executes commands
that arrive as length-prefixed byte frames over a
:class:`~repro.runtime.channel.ControlChannel` pair (requests one
way, replies the other): ``worker.inject_batch`` walks traffic
through the shard's devices, ``worker.stage`` / ``worker.commit`` /
``worker.abort`` / ``worker.rollback`` drive the transactional update
engine, and ``worker.metrics`` ships a :class:`metric shard
<MetricShardAccumulator>` snapshot -- per-device counter *deltas* and
histogram bucket deltas that merge losslessly into the fabric's
central registry, so fleet-wide stats, health rules, and Prometheus
export look exactly the same whether the fleet is sharded or not.

Workers run their receive loop on a daemon thread
(:meth:`DeviceWorker.start`) with ``queue.Queue``-backed transports;
the same byte protocol runs unchanged over ``multiprocessing`` queues
for a true remote shard.  A worker can also be driven synchronously
(:meth:`DeviceWorker.serve_once`) for deterministic tests.

:class:`UpdatePlanCache` is the fleet-rollout fast path: every node
in a wave runs the same base design, so the snippet compile, the lint
gate, and a clean rp4verify report are computed once (on the canary)
and reused by every content-identical node -- the per-node work drops
to transfer + prepare/validate + the epoch flip.
"""

from __future__ import annotations

import hashlib
import json
import threading
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.obs.metrics import MetricsRegistry, Sample
from repro.runtime.channel import ChannelError, ControlChannel, QueueTransport

#: Traffic items per ``worker.inject_batch`` frame: bounds frame size
#: (and peak memory) when a soak ships millions of packets.
TRAFFIC_CHUNK = 2048


class WorkerError(Exception):
    """A worker command failed on the device side."""

    def __init__(self, message: str, kind: str = "", node: str = "") -> None:
        super().__init__(message)
        self.kind = kind
        self.node = node


# -- update-plan cache ------------------------------------------------------


def design_fingerprint(design) -> str:
    """Content fingerprint of a compiled design (cached on the object).

    Two nodes that loaded the same base source and applied the same
    update history have content-identical configs, so their staged
    compiles are interchangeable even though the design *objects* are
    per-node.
    """
    cached = getattr(design, "_content_fingerprint", None)
    if cached is None:
        cached = hashlib.sha256(
            json.dumps(design.config, sort_keys=True).encode("utf-8")
        ).hexdigest()
        try:
            design._content_fingerprint = cached
        except AttributeError:
            pass  # slotted/frozen designs just pay the dump again
    return cached


@dataclass
class PlanCacheEntry:
    """One staged compile's reusable artifacts."""

    plan: object  # UpdatePlan
    message: dict  # plan.update_message(...) -- JSON-safe
    lint: Optional[list] = None  # diagnostics from a passing lint gate
    verify_report: Optional[object] = None  # a clean VerifyReport
    #: ``json.dumps(message, sort_keys=True)`` -- spliced into each
    #: peer's ``update.prepare`` frame so the fleet serializes the
    #: (identical, large) update exactly once.
    message_json: Optional[str] = None
    #: Verdict of ``plan.design.pool.verify()`` -- the pool object is
    #: shared with the cached plan, so peers reuse the walk.
    pool_findings: Optional[list] = None
    #: The canary transaction's parsed template list (read-only after
    #: parse); peers hand it to their transaction and skip re-parsing.
    templates_parsed: Optional[list] = None


class UpdatePlanCache:
    """Fingerprint-keyed cache of compiled update plans.

    The key covers the node's current design content plus the script
    and snippet sources, so a hit is only possible when the compile
    would be byte-identical.  Thread-safe: wave fan-out may consult it
    from several workers at once (a racing miss compiles twice and the
    first ``put`` wins -- correct, just not maximally lazy).
    """

    def __init__(self) -> None:
        self._entries: Dict[str, PlanCacheEntry] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    @staticmethod
    def fingerprint(
        design, script_text: str, sources: Optional[Dict[str, str]]
    ) -> str:
        digest = hashlib.sha256()
        digest.update(design_fingerprint(design).encode("ascii"))
        digest.update(script_text.encode("utf-8"))
        for name, source in sorted((sources or {}).items()):
            digest.update(name.encode("utf-8"))
            digest.update(b"\x00")
            digest.update(source.encode("utf-8"))
        return digest.hexdigest()

    def get(self, fingerprint: str) -> Optional[PlanCacheEntry]:
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is None:
                self.misses += 1
            else:
                self.hits += 1
            return entry

    def put(self, fingerprint: str, entry: PlanCacheEntry) -> PlanCacheEntry:
        with self._lock:
            return self._entries.setdefault(fingerprint, entry)

    def __len__(self) -> int:
        return len(self._entries)


# -- metric shards ----------------------------------------------------------

#: Sample kinds accumulated as deltas; anything else (gauges) is
#: last-write-wins.
_ACCUMULATED = ("counter",)


def _sample_key(name: str, labels: Dict[str, str]) -> Tuple:
    return (name, tuple(sorted((k, str(v)) for k, v in labels.items())))


class MetricShardAccumulator:
    """The central half of shard-transparent metrics.

    Workers ship per-kind sample *deltas* (counters -- including the
    ``_bucket``/``_count``/``_sum`` series every histogram exports, so
    bucket merges are exact) and gauge values.  ``apply`` folds a
    shard snapshot in; ``samples`` replays the merged state into the
    registry's collect pass, preserving each sample's kind so the
    Prometheus exposition and ``histogram_snapshot`` reconstruction
    behave exactly as if one process owned every device.
    """

    def __init__(self) -> None:
        self._values: Dict[Tuple, float] = {}
        self._labels: Dict[Tuple, Dict[str, str]] = {}
        self._kinds: Dict[Tuple, str] = {}
        self.shards_applied = 0

    def apply(self, shard: dict) -> None:
        for name, labels, kind, value in shard.get("samples", []):
            key = _sample_key(name, labels)
            if kind in _ACCUMULATED:
                self._values[key] = self._values.get(key, 0) + value
            else:
                self._values[key] = value
            self._labels[key] = dict(labels)
            self._kinds[key] = kind
        self.shards_applied += 1

    def samples(self) -> Iterable[Sample]:
        for key, value in self._values.items():
            yield Sample(
                key[0], value, dict(self._labels[key]), self._kinds[key]
            )

    def value(self, name: str, default: float = 0, **labels) -> float:
        return self._values.get(_sample_key(name, labels), default)


def merge_shard_into(registry: MetricsRegistry, shard: dict) -> int:
    """Fold one worker shard snapshot into a central registry.

    Counter deltas (including every histogram's ``_bucket`` /
    ``_count`` / ``_sum`` series, so bucket merges are exact) are added
    to the registry's *owned* instruments and gauges overwrite -- the
    merged registry is indistinguishable from one process having owned
    every device, and repeated merges accumulate losslessly.  Returns
    the number of samples applied.
    """
    applied = 0
    for name, labels, kind, value in shard.get("samples", []):
        if kind in _ACCUMULATED:
            registry.counter(name, **labels).inc(value)
        else:
            registry.gauge(name, **labels).set(value)
        applied += 1
    return applied


class ShardSnapshotter:
    """The worker half: turns registries into delta snapshots.

    Keeps the last-shipped value per sample so each ``snapshot`` emits
    only what changed since the previous one -- counters as deltas
    (clamped at zero across device restarts), gauges as their current
    value.  Lossless: summing every shipped delta reproduces the
    device-side counter exactly.
    """

    def __init__(self) -> None:
        self._last: Dict[Tuple, float] = {}

    def snapshot(
        self, registries: List[Tuple[Dict[str, str], MetricsRegistry]]
    ) -> List[list]:
        out: List[list] = []
        for extra_labels, registry in registries:
            for sample in registry.collect():
                labels = dict(sample.labels)
                labels.update(extra_labels)
                key = _sample_key(sample.name, labels)
                if sample.kind in _ACCUMULATED:
                    delta = sample.value - self._last.get(key, 0)
                    self._last[key] = sample.value
                    if delta <= 0:
                        continue
                    out.append([sample.name, labels, sample.kind, delta])
                else:
                    out.append([sample.name, labels, sample.kind, sample.value])
        return out


# -- the worker -------------------------------------------------------------


@dataclass
class _WalkState:
    """A packet mid-walk: where it is and where it has been."""

    index: int
    node: str
    port: int
    data: bytes
    hops: int = 0
    path: List[str] = field(default_factory=list)


class DeviceWorker:
    """One shard: a named set of devices plus a framed command loop."""

    def __init__(
        self,
        name: str,
        devices: Dict[str, object],
        wires: Dict[Tuple[str, int], Tuple[str, int]],
        max_hops: int = 16,
        plan_cache: Optional[UpdatePlanCache] = None,
    ) -> None:
        self.name = name
        self.devices = dict(devices)
        self.wires = wires
        self.max_hops = max_hops
        self.plan_cache = plan_cache
        self.requests = ControlChannel(QueueTransport())
        self.replies = ControlChannel(QueueTransport())
        self.metrics = MetricsRegistry()
        self._n_commands = self.metrics.counter("worker.commands")
        self._n_errors = self.metrics.counter("worker.command_errors")
        self._hop_forwarded: Dict[Tuple[str, int], object] = {}
        self._hop_dropped: Dict[str, object] = {}
        self._delivered: Dict[Tuple[str, int], object] = {}
        self._snapshotter = ShardSnapshotter()
        self._staged: Dict[str, object] = {}
        self._staged_seq = 0
        self._thread: Optional[threading.Thread] = None
        self._stopping = False
        self._lock = threading.Lock()  # one in-flight request at a time
        if plan_cache is not None:
            for controller in self.devices.values():
                controller.plan_cache = plan_cache

    # -- client side -----------------------------------------------------

    def request(self, kind: str, payload: dict, timeout: float = 60.0) -> dict:
        """Send one framed command and wait for its framed reply.

        Runs the command inline when the worker has no serving thread
        (deterministic mode); otherwise blocks on the reply queue.
        Worker-side failures surface as :class:`WorkerError`.
        """
        with self._lock:
            self.requests.post(payload, kind=kind)
            if self._thread is None:
                self.serve_once(timeout=0.0)
            _kind, reply, _seq = self.replies.deliver(timeout=timeout)
        return self._check_reply(kind, reply)

    def post_request(self, kind: str, payload: dict) -> int:
        """Queue one framed command without waiting (scatter half).

        The fabric pipelines shards this way: post a batch command to
        every worker, let their serving threads grind concurrently,
        then :meth:`collect_reply` from each -- no extra thread pool,
        no per-command roundtrip serialization.  Replies come back in
        FIFO order per worker.
        """
        with self._lock:
            return self.requests.post(payload, kind=kind)

    def collect_reply(self, kind: str = "", timeout: float = 60.0) -> dict:
        """Wait for the oldest outstanding reply (gather half)."""
        with self._lock:
            if self._thread is None and self.replies.transport.pending() == 0:
                self.serve_once(timeout=0.0)
            _kind, reply, _seq = self.replies.deliver(timeout=timeout)
        return self._check_reply(kind, reply)

    def _check_reply(self, kind: str, reply: dict) -> dict:
        error = reply.get("error")
        if error:
            raise WorkerError(
                f"worker {self.name!r} {kind} failed: "
                f"{error['type']}: {error['message']}",
                kind=kind,
                node=error.get("node", ""),
            )
        return reply

    # -- serve loop ------------------------------------------------------

    def start(self) -> "DeviceWorker":
        """Run the receive loop on a daemon thread."""
        if self._thread is not None:
            return self
        self._stopping = False
        self._thread = threading.Thread(
            target=self._serve_forever, name=f"device-worker-{self.name}",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the serving thread (if any) and join it."""
        thread = self._thread
        if thread is None:
            return
        with self._lock:
            self.requests.post({}, kind="worker.stop")
            self.replies.deliver(timeout=10.0)
        thread.join(timeout=10.0)
        self._thread = None

    def _serve_forever(self) -> None:
        while not self._stopping:
            try:
                self.serve_once(timeout=1.0)
            except ChannelError:
                continue  # idle poll; check the stop flag again

    def serve_once(self, timeout: Optional[float] = 1.0) -> bool:
        """Receive, execute, and answer one framed command."""
        kind, payload, seq = self.requests.deliver(timeout=timeout)
        self._n_commands.inc()
        if kind == "worker.stop":
            self._stopping = True
            self.replies.post({"stopped": True}, kind="worker.stopped")
            return False
        try:
            reply = self.execute(kind, payload)
        except Exception as exc:  # ship the failure, keep serving
            self._n_errors.inc()
            reply = {
                "error": {
                    "type": type(exc).__name__,
                    "message": str(exc),
                    "node": str(payload.get("node", "")),
                }
            }
        self.replies.post(reply, kind=f"{kind}.reply")
        return True

    # -- command execution ----------------------------------------------

    def execute(self, kind: str, payload: dict) -> dict:
        if kind == "worker.inject_batch":
            return self._cmd_inject_batch(payload)
        if kind == "worker.stage":
            return self._cmd_stage(payload)
        if kind == "worker.stage_batch":
            return self._cmd_stage_batch(payload)
        if kind == "worker.commit":
            return self._cmd_commit(payload)
        if kind == "worker.commit_batch":
            return self._cmd_commit_batch(payload)
        if kind == "worker.abort":
            return self._cmd_abort(payload)
        if kind == "worker.rollback":
            return self._cmd_rollback(payload)
        if kind == "worker.probe":
            return self._cmd_probe(payload)
        if kind == "worker.probe_batch":
            return self._cmd_probe_batch(payload)
        if kind == "worker.metrics":
            return self._cmd_metrics(payload)
        raise WorkerError(f"unknown command kind {kind!r}", kind=kind)

    def _device(self, node: str):
        try:
            return self.devices[node]
        except KeyError:
            raise WorkerError(
                f"worker {self.name!r} does not own node {node!r}",
                node=node,
            ) from None

    # Traffic: walk every item hop by hop through owned devices; a hop
    # landing on a foreign node comes back as a handoff for the owner.

    def _hop_counter(self, node: str, port: int):
        counter = self._hop_forwarded.get((node, port))
        if counter is None:
            counter = self.metrics.counter(
                "fabric.hop_forwarded", node=node, port=str(port)
            )
            self._hop_forwarded[(node, port)] = counter
        return counter

    def _cmd_inject_batch(self, payload: dict) -> dict:
        deliveries: List[dict] = []
        handoffs: List[dict] = []
        dropped: List[int] = []
        loops: List[int] = []
        for item in payload["items"]:
            state = _WalkState(
                index=item["i"],
                node=item["node"],
                port=item["port"],
                data=bytes.fromhex(item["data"]),
                hops=item.get("hops", 0),
                path=list(item.get("path", [])),
            )
            self._walk(state, deliveries, handoffs, dropped, loops)
        return {
            "deliveries": deliveries,
            "handoffs": handoffs,
            "dropped": dropped,
            "loops": loops,
        }

    def _walk(self, state, deliveries, handoffs, dropped, loops) -> None:
        while True:
            controller = self.devices.get(state.node)
            if controller is None:
                handoffs.append(
                    {
                        "i": state.index,
                        "node": state.node,
                        "port": state.port,
                        "data": state.data.hex(),
                        "hops": state.hops,
                        "path": state.path,
                    }
                )
                return
            if state.hops >= self.max_hops:
                loops.append(state.index)
                return
            state.path.append(state.node)
            out = controller.switch.inject(state.data, state.port)
            state.hops += 1
            if out is None:
                counter = self._hop_dropped.get(state.node)
                if counter is None:
                    counter = self.metrics.counter(
                        "fabric.hop_dropped", node=state.node
                    )
                    self._hop_dropped[state.node] = counter
                counter.inc()
                dropped.append(state.index)
                return
            self._hop_counter(state.node, out.port).inc()
            wire = self.wires.get((state.node, out.port))
            if wire is None:
                key = (state.node, out.port)
                counter = self._delivered.get(key)
                if counter is None:
                    counter = self.metrics.counter(
                        "fabric.delivered",
                        node=state.node,
                        port=str(out.port),
                    )
                    self._delivered[key] = counter
                counter.inc()
                deliveries.append(
                    {
                        "i": state.index,
                        "node": state.node,
                        "port": out.port,
                        "data": out.data.hex(),
                        "hops": state.hops,
                        "path": state.path,
                    }
                )
                return
            state.data = out.data
            state.node, state.port = wire

    # Updates: the controller's transactional staging engine, driven
    # remotely.  Staged updates park in the worker under a token until
    # the coordinator decides to flip or abort them.

    def _cmd_stage(self, payload: dict) -> dict:
        controller = self._device(payload["node"])
        staged = controller.stage_update(
            payload["script"], payload.get("sources") or None
        )
        self._staged_seq += 1
        token = f"{self.name}:{self._staged_seq}"
        self._staged[token] = staged
        return {
            "token": token,
            "txn": staged.txn.txn_id,
            "compile_seconds": staged.timing.compile_seconds,
        }

    @staticmethod
    def _error_entry(node: str, exc: Exception) -> dict:
        return {
            "node": node,
            "error": {"type": type(exc).__name__, "message": str(exc)},
        }

    def _cmd_stage_batch(self, payload: dict) -> dict:
        """Stage one update on several owned nodes, one frame.

        The fleet-rollout amortizer: a wave's nodes on this shard cost
        a single command roundtrip instead of one each.  Stops at the
        first failure -- nodes after it are never staged, and the
        caller sees exactly which via the per-node results.
        """
        results: List[dict] = []
        for node in payload["nodes"]:
            try:
                reply = self._cmd_stage(
                    {
                        "node": node,
                        "script": payload["script"],
                        "sources": payload.get("sources"),
                    }
                )
            except Exception as exc:
                results.append(self._error_entry(node, exc))
                break
            results.append({**reply, "node": node})
        return {"results": results}

    def _cmd_commit_batch(self, payload: dict) -> dict:
        """Commit staged tokens in order; stops at the first failure
        (later tokens stay parked for the caller to abort)."""
        results: List[dict] = []
        for item in payload["items"]:
            try:
                reply = self._cmd_commit(item)
            except Exception as exc:
                results.append(
                    {**self._error_entry(item["node"], exc),
                     "token": item["token"]}
                )
                break
            results.append(
                {**reply, "node": item["node"], "token": item["token"]}
            )
        return {"results": results}

    def _staged_update(self, token: str):
        staged = self._staged.get(token)
        if staged is None:
            raise WorkerError(f"no staged update under token {token!r}")
        return staged

    def _cmd_commit(self, payload: dict) -> dict:
        staged = self._staged_update(payload["token"])
        try:
            _plan, stats, timing = staged.commit()
        finally:
            self._staged.pop(payload["token"], None)
        return {
            "stall_seconds": stats.stall_seconds,
            "compile_seconds": timing.compile_seconds,
            "load_seconds": timing.load_seconds,
            "total_seconds": timing.total_seconds,
            "epoch": staged.controller.switch.dp.epoch,
        }

    def _cmd_abort(self, payload: dict) -> dict:
        staged = self._staged_update(payload["token"])
        try:
            staged.abort()
        finally:
            self._staged.pop(payload["token"], None)
        return {"aborted": True}

    def _cmd_rollback(self, payload: dict) -> dict:
        controller = self._device(payload["node"])
        restored = controller.rollback()
        return {"restored": restored}

    def _cmd_probe(self, payload: dict) -> dict:
        """One front-door probe batch on a single owned device --
        rollout health gates use this so probe traffic runs on the
        device's owning thread, serialized with in-flight traffic."""
        controller = self._device(payload["node"])
        trace = [
            (bytes.fromhex(data), port) for data, port in payload["items"]
        ]
        result = controller.switch.inject_batch(trace)
        return {
            "total": len(result),
            "forwarded": result.forwarded,
            "dropped": result.dropped,
        }

    def _cmd_probe_batch(self, payload: dict) -> dict:
        """The same probe trace through several owned nodes' front
        doors, one frame -- the wave gate's fast path."""
        trace = [
            (bytes.fromhex(data), port) for data, port in payload["items"]
        ]
        results: List[dict] = []
        for node in payload["nodes"]:
            controller = self._device(node)
            result = controller.switch.inject_batch(trace)
            results.append(
                {
                    "node": node,
                    "total": len(result),
                    "forwarded": result.forwarded,
                    "dropped": result.dropped,
                }
            )
        return {"results": results}

    # Metrics: one delta snapshot covering every owned device's
    # registries plus the worker's own hop/delivery counters.

    def _cmd_metrics(self, payload: dict) -> dict:
        registries: List[Tuple[Dict[str, str], MetricsRegistry]] = [
            ({}, self.metrics)
        ]
        for node, controller in self.devices.items():
            registries.append(({"node": node}, controller.switch.metrics))
            registries.append(({"node": node}, controller.metrics))
        return {
            "shard": {
                "worker": self.name,
                "devices": sorted(self.devices),
                "samples": self._snapshotter.snapshot(registries),
            }
        }

"""Transactional in-service updates: prepare -> validate -> commit (-> abort).

The paper's headline claim is that in-situ updates avoid the
recompile-and-reload disruption -- but a stop-the-world patch path
still stalls traffic for the whole template-parse + plan-recompile
window and strands partial state if any step throws.  This module
turns a device update into a transaction:

* **prepare** builds *shadow state* -- cloned header/linkage schema,
  shadow action/table dictionaries, pre-parsed ``StageRuntime``
  templates, and a **pre-compiled dp plan** against a shadow device
  view -- while the old plans keep serving traffic.  Nothing live is
  touched.
* **validate** checks the staged state (selector bounds, resolved
  table/action references, caller-installed validators) before a
  single live byte moves.
* **commit** pauses intake, flips the live dictionaries and the dp
  epoch pointer, and resumes -- the stall window covers only this
  pointer swap.  In-flight packets that entered under the old epoch
  then *complete through the retained old plan* (no traffic
  discarded), interleaved with new-epoch intake.
* **abort** (or any prepare/validate failure) discards the shadow
  state; the live config, tables, memory mappings, and compiled plans
  are untouched, byte for byte.

Each phase records a span on the device's ``apply_update`` timeline
and bumps ``txn.*`` metrics on the device registry.
"""

from __future__ import annotations

import enum
import itertools
from types import SimpleNamespace
from typing import Callable, Dict, List, Optional

from repro.compiler.lowering import action_from_json
from repro.ipsa.pipeline import ElasticPipeline, PipelineError, SelectorConfig
from repro.ipsa.tsp import StageRuntime, TspState

#: Histogram edges (seconds) for commit stall windows.
TXN_STALL_BOUNDS = (1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0)


class TxnError(Exception):
    """Base class for transaction failures."""


class TxnStateError(TxnError):
    """A phase was invoked out of protocol order."""


class TxnValidationError(TxnError):
    """The validate phase rejected the staged update."""

    def __init__(self, findings: List[str]) -> None:
        super().__init__("update rejected by validate: " + "; ".join(findings))
        self.findings = list(findings)


class TxnPhase(enum.Enum):
    PENDING = "pending"
    PREPARED = "prepared"
    VALIDATED = "validated"
    COMMITTED = "committed"
    ABORTED = "aborted"


class _ShadowTsp:
    """A TSP as it will look post-commit: same stats sink, staged
    side/stages/state.  Duck-types what the plan compiler reads."""

    __slots__ = ("index", "side", "stages", "state", "stats")

    def __init__(self, index, side, stages, state, stats) -> None:
        self.index = index
        self.side = side
        self.stages = stages
        self.state = state
        self.stats = stats

    @property
    def active(self) -> bool:
        return self.state is TspState.ACTIVE and bool(self.stages)


class _DeviceTransaction:
    """Shared phase machinery for both architectures."""

    _ids = itertools.count(1)

    def __init__(self, switch, timeline_label: str) -> None:
        self.switch = switch
        self.txn_id = next(self._ids)
        self.phase = TxnPhase.PENDING
        #: Caller-installed extra checks, run during validate.  Each
        #: callable receives the transaction; raising aborts it.
        self.validators: List[Callable[["_DeviceTransaction"], None]] = []
        self.findings: List[str] = []
        self._timeline = None
        self._timeline_label = timeline_label

    # -- protocol ------------------------------------------------------

    def prepare(self) -> "_DeviceTransaction":
        self._require(TxnPhase.PENDING, "prepare")
        self._timeline = self.switch.timelines.begin(
            self._timeline_label, txn=self.txn_id
        )
        try:
            self._build_shadow()
        except Exception as exc:
            self._abort_on_failure(exc)
            raise
        self._mark_phase("prepare", **self._prepare_attrs())
        self.phase = TxnPhase.PREPARED
        self._count("txn.prepared")
        return self

    def validate(self) -> "_DeviceTransaction":
        self._require(TxnPhase.PREPARED, "validate")
        self.findings = []
        try:
            self._check_shadow()
            for check in self.validators:
                check(self)
        except Exception as exc:
            self._abort_on_failure(exc)
            raise
        if self.findings:
            error = TxnValidationError(self.findings)
            self._abort_on_failure(error)
            raise error
        self._mark_phase("validate", findings=len(self.findings))
        self.phase = TxnPhase.VALIDATED
        self._count("txn.validated")
        return self

    def commit(self):
        if self.phase is TxnPhase.PENDING:
            self.prepare()
        if self.phase is TxnPhase.PREPARED:
            self.validate()
        self._require(TxnPhase.VALIDATED, "commit")
        result = self._flip_live()
        self.phase = TxnPhase.COMMITTED
        self._count("txn.committed")
        self._flight_record("txn_commit")
        return result

    def abort(self) -> None:
        """Discard the shadow state; idempotent; zero live mutation."""
        if self.phase is TxnPhase.COMMITTED:
            raise TxnStateError("cannot abort a committed transaction")
        if self.phase is TxnPhase.ABORTED:
            return
        self._drop_shadow()
        if self._timeline is not None and self._timeline.end is None:
            self._mark_phase("abort")
            self._timeline.finish()
        self.phase = TxnPhase.ABORTED
        self._count("txn.aborted")
        self._flight_record("txn_abort")

    # -- helpers -------------------------------------------------------

    def _require(self, expected: TxnPhase, verb: str) -> None:
        if self.phase is not expected:
            raise TxnStateError(
                f"cannot {verb} a {self.phase.value} transaction "
                f"(expected {expected.value})"
            )

    def _abort_on_failure(self, exc: Exception) -> None:
        self._drop_shadow()
        if self._timeline is not None and self._timeline.end is None:
            self._mark_phase("abort", error=type(exc).__name__)
            self._timeline.finish()
        self.phase = TxnPhase.ABORTED
        self._count("txn.aborted")
        self._flight_record("txn_abort", error=type(exc).__name__)

    def _mark_phase(self, name: str, **attrs):
        if self._timeline is not None:
            return self._timeline.phase(name, **attrs)
        return None

    def _count(self, name: str) -> None:
        metrics = getattr(self.switch, "metrics", None)
        if metrics is not None:
            metrics.counter(name).inc()

    def _flight_record(self, kind: str, **attrs: object) -> None:
        recorder = getattr(self.switch, "flight_recorder", None)
        if recorder is not None:
            recorder.record(kind, txn=self.txn_id, **attrs)

    def _observe_stall(self, seconds: float) -> None:
        metrics = getattr(self.switch, "metrics", None)
        if metrics is not None:
            metrics.histogram("txn.stall_seconds", TXN_STALL_BOUNDS).observe(
                seconds
            )

    # -- architecture hooks --------------------------------------------

    def _build_shadow(self) -> None:
        raise NotImplementedError

    def _prepare_attrs(self) -> Dict[str, object]:
        return {}

    def _check_shadow(self) -> None:
        raise NotImplementedError

    def _flip_live(self):
        raise NotImplementedError

    def _drop_shadow(self) -> None:
        raise NotImplementedError


class IpsaUpdateTransaction(_DeviceTransaction):
    """Transactional :meth:`IpsaSwitch.apply_update`.

    ``update`` is the same rp4bc UpdatePlan JSON the in-place path
    consumes; the timeline label stays ``apply_update`` so exported
    timelines keep their identity, with phases
    ``prepare/validate/serve/flip/resume/complete``.
    """

    def __init__(self, switch, update: dict) -> None:
        super().__init__(switch, "apply_update")
        self.update = update
        #: Optional pre-parsed template list ``[(index, side, stages,
        #: words), ...]`` shared by a fleet-wide plan cache: the
        #: parsed :class:`StageRuntime` objects are read-only after
        #: parse (TSPs rebind ``stages`` wholesale, never mutate the
        #: list), so content-identical peers skip re-parsing.
        self.shared_templates: Optional[List[tuple]] = None
        self._generation_at_prepare = -1
        self._shadow_plan = None
        self._stats = None

    # -- prepare -------------------------------------------------------

    def _build_shadow(self) -> None:
        from repro.ipsa.switch import (
            UpdateStats,
            ensure_instance,
            register_header,
            table_from_spec,
        )

        switch = self.switch
        update = self.update
        stats = UpdateStats()
        self._generation_at_prepare = switch.dp.generation

        metadata = dict(switch.metadata_defaults)
        for name, _width in update.get("new_metadata", []):
            metadata.setdefault(name, 0)

        header_types = dict(switch.header_types)
        linkage = switch.linkage.clone()
        for name, spec in update.get("new_headers", {}).items():
            register_header(header_types, linkage, name, spec)
        for pre, tag, nxt in update.get("link_headers", []):
            ensure_instance(header_types, linkage, nxt)
            linkage.add_link(pre, nxt, tag)
            stats.links_added += 1
        for pre, tag in update.get("unlink_headers", []):
            linkage.del_link(pre, tag)
            stats.links_removed += 1

        actions = dict(switch.actions)
        for name, spec in update.get("new_actions", {}).items():
            actions[name] = action_from_json(spec)

        tables = dict(switch.tables)
        for name, spec in update.get("new_tables", {}).items():
            tables[name] = table_from_spec(name, spec)
            stats.tables_created.append(name)
        for name in update.get("freed_tables", []):
            tables.pop(name, None)
            stats.tables_removed.append(name)

        # Template parsing happens HERE, outside any stall window.
        n_tsps = len(switch.pipeline.tsps)
        if self.shared_templates is not None:
            parsed = list(self.shared_templates)
            for index, _side, _stages, _words in parsed:
                if not 0 <= index < n_tsps:
                    raise PipelineError(
                        f"template targets unknown TSP {index}"
                    )
        else:
            parsed = []
            for template in update.get("templates", []):
                index = template["tsp"]
                if not 0 <= index < n_tsps:
                    raise PipelineError(
                        f"template targets unknown TSP {index}"
                    )
                stages = [
                    StageRuntime.from_json(s) for s in template["stages"]
                ]
                words = sum(s.template_words() for s in stages)
                parsed.append(
                    (index, template.get("side", "ingress"), stages, words)
                )
        stats.templates_written = len(parsed)
        stats.template_words = sum(words for *_rest, words in parsed)

        selector = SelectorConfig.from_json(update.get("selector", {}))

        # The shadow pipeline view: staged TSPs over the live TM.
        staged = {index: (side, stages) for index, side, stages, _ in parsed}
        shadow_tsps = []
        for tsp in switch.pipeline.tsps:
            side, stages = staged.get(tsp.index, (tsp.side, tsp.stages))
            if tsp.index not in selector.active:
                # Same rule as the in-place path: a TSP the new
                # selector no longer references drops its template.
                stages = []
            state = (
                TspState.ACTIVE
                if tsp.index in selector.active and stages
                else TspState.BYPASSED
            )
            shadow_tsps.append(
                _ShadowTsp(tsp.index, side, stages, state, tsp.stats)
            )
        view_pipeline = ElasticPipeline.__new__(ElasticPipeline)
        view_pipeline.tsps = shadow_tsps
        view_pipeline.selector = selector
        view_pipeline.tm = switch.pipeline.tm
        view_pipeline.on_change = None

        view = SimpleNamespace(
            pipeline=view_pipeline,
            tables=tables,
            actions=actions,
            metadata_defaults=metadata,
            first_header=switch.first_header,
        )
        self._shadow_plan = switch.dp.compile_shadow(view)
        self._metadata = metadata
        self._header_types = header_types
        self._linkage = linkage
        self._actions = actions
        self._tables = tables
        self._parsed = parsed
        self._selector = selector
        self._view = view
        self._stats = stats

    def _prepare_attrs(self) -> Dict[str, object]:
        stats = self._stats
        return {
            "templates": stats.templates_written,
            "template_words": stats.template_words,
            "tables_created": list(stats.tables_created),
            "tables_removed": list(stats.tables_removed),
            "links_added": stats.links_added,
            "links_removed": stats.links_removed,
        }

    # -- validate ------------------------------------------------------

    def _check_shadow(self) -> None:
        try:
            self._selector.validate(len(self.switch.pipeline.tsps))
        except PipelineError as exc:
            self.findings.append(str(exc))
        plan = self._shadow_plan
        for tsp_plan in tuple(plan.ingress) + tuple(plan.egress):
            for stage in tsp_plan.stages:
                for arm in stage.arms:
                    if arm.table_name is not None and arm.table is None:
                        self.findings.append(
                            f"stage {stage.name!r} applies unknown table "
                            f"{arm.table_name!r}"
                        )
                pairs = list(stage.tag_actions.values()) + [stage.default_pair]
                for name, action in pairs:
                    if action is None:
                        self.findings.append(
                            f"stage {stage.name!r} runs unknown action "
                            f"{name!r}"
                        )

    # -- commit --------------------------------------------------------

    def _flip_live(self):
        switch = self.switch
        stats = self._stats
        # Live state moved since prepare (e.g. a concurrent table
        # repoint)?  Rebuild the shadow against the current snapshot --
        # still outside the stall window.
        if switch.dp.generation != self._generation_at_prepare:
            self._build_shadow()
        self._mark_phase(
            "serve", generation=switch.dp.generation
        )

        switch.paused = True  # back pressure: intake waits out the flip
        stats.held_packets = len(switch.rx_queue)
        # Retain the old-epoch plan: packets already in the TM entered
        # under it and will complete under it -- after the flip.
        old_plan = switch.dp.plan()

        # The flip itself: swap the live dictionaries, install the
        # pre-parsed templates, and advance the epoch pointer.  No
        # parsing, no compilation, no invalidation in this window.
        switch.metadata_defaults = self._metadata
        switch.header_types = self._header_types
        switch.linkage = self._linkage
        switch.actions = self._actions
        switch.tables = self._tables
        pipeline = switch.pipeline
        for index, side, stages, words in self._parsed:
            tsp = pipeline.tsps[index]
            tsp.side = side
            tsp.stages = stages
            tsp.stats.templates_written += 1
            tsp.stats.template_words_written += words
            tsp.state = TspState.ACTIVE
        for tsp in pipeline.tsps:
            if tsp.index in self._selector.active and tsp.stages:
                tsp.state = TspState.ACTIVE
            else:
                if tsp.stages:
                    tsp.clear()
                tsp.state = TspState.BYPASSED
        pipeline.selector = self._selector
        stats.epoch = switch.dp.flip(self._shadow_plan, "txn_commit")
        self._mark_phase(
            "flip",
            templates_written=stats.templates_written,
            template_words=stats.template_words,
            tables_created=list(stats.tables_created),
            tables_removed=list(stats.tables_removed),
            held_packets=stats.held_packets,
            epoch=stats.epoch,
        )

        switch.paused = False  # release back pressure
        self._mark_phase("resume", active_tsps=len(self._selector.active))

        # Old-epoch packets finish under the old plan, interleaved with
        # new-epoch intake -- this is delivery, not stall.
        stats.completed_packets = len(switch.quiesce(old_plan))
        stats.drained_packets = switch.drain()
        self._mark_phase(
            "complete",
            completed_packets=stats.completed_packets,
            drained_packets=stats.drained_packets,
        )
        timeline = self._timeline
        timeline.finish()
        durations = timeline.durations()
        stats.stall_seconds = (
            durations.get("flip", 0.0) + durations.get("resume", 0.0)
        )
        self._observe_stall(stats.stall_seconds)
        return stats

    def _drop_shadow(self) -> None:
        self._shadow_plan = None
        self._view = None
        for name in ("_metadata", "_header_types", "_linkage", "_actions",
                     "_tables", "_parsed", "_selector"):
            if hasattr(self, name):
                delattr(self, name)


class PisaReloadTransaction(_DeviceTransaction):
    """Transactional :meth:`PisaSwitch.reload`.

    PISA still cannot patch a running pipeline -- the whole
    configuration is rebuilt -- but the rebuild (parse, lower, table
    repopulation, plan compile) now happens against shadow objects
    while the old pipeline keeps forwarding; the swap itself is a
    pointer flip.  A failed reload leaves the old design serving.
    """

    def __init__(self, switch, program, entries: Optional[dict] = None) -> None:
        super().__init__(switch, "reload")
        self.program = program
        self.entries = entries or {}
        self._stats = None

    def _build_shadow(self) -> None:
        from repro.compiler.lowering import (
            builtin_actions,
            lower_action,
            lower_table,
        )
        from repro.p4.hlir import build_hlir
        from repro.p4.parser import parse_p4
        from repro.pisa.parser import FrontEndParser
        from repro.pisa.pipeline import FixedPipeline
        from repro.pisa.switch import ReloadStats
        from repro.tables.table import TableEntry

        switch = self.switch
        stats = ReloadStats()
        hlir = (
            build_hlir(parse_p4(self.program))
            if isinstance(self.program, str)
            else self.program
        )
        parser = FrontEndParser(hlir)
        actions = builtin_actions()
        for name, action in hlir.actions.items():
            actions[name] = lower_action(action)
        tables = {}
        for name, table in hlir.tables.items():
            tables[name] = lower_table(
                name,
                list(table.keys),
                table.size,
                default_action=table.default_action,
            )
        metadata = {name: 0 for name, _ in hlir.metadata}
        pipeline = FixedPipeline(
            hlir, tables, actions, n_stages=switch.n_stages
        )

        # Repopulate the controller's shadow entry copies into the
        # *staged* tables -- still zero live mutation.
        for table_name, rows in self.entries.items():
            table = tables.get(table_name)
            if table is None:
                continue
            for entry in rows:
                table.add_entry(
                    TableEntry(
                        key=entry.key,
                        action=entry.action,
                        action_data=dict(entry.action_data),
                        tag=entry.tag,
                        priority=entry.priority,
                    )
                )
                stats.entries_repopulated += 1
            stats.tables_repopulated += 1

        view = SimpleNamespace(
            pipeline=pipeline,
            parser=parser,
            tables=tables,
            actions=actions,
            metadata_defaults=metadata,
        )
        self._shadow_plan = switch.dp.compile_shadow(view)
        self._hlir = hlir
        self._parser = parser
        self._actions = actions
        self._tables = tables
        self._metadata = metadata
        self._pipeline = pipeline
        self._stats = stats

    def _prepare_attrs(self) -> Dict[str, object]:
        stats = self._stats
        return {
            "tables": len(self._tables),
            "entries_repopulated": stats.entries_repopulated,
        }

    def _check_shadow(self) -> None:
        for table_name, rows in self.entries.items():
            table = self._tables.get(table_name)
            if table is None:
                continue  # PISA tolerates stale shadow-copy tables
            for entry in rows:
                if entry.action not in self._actions:
                    self.findings.append(
                        f"table {table_name!r} entry references unknown "
                        f"action {entry.action!r}"
                    )

    def _flip_live(self):
        switch = self.switch
        stats = self._stats
        self._mark_phase("serve")
        switch.parser = self._parser
        switch.actions = self._actions
        switch.tables = self._tables
        switch.metadata_defaults = self._metadata
        switch.pipeline = self._pipeline
        switch.pipeline.device = switch
        switch.dp.flip(self._shadow_plan, "reload")
        flip = self._mark_phase(
            "flip",
            tables=stats.tables_repopulated,
            entries=stats.entries_repopulated,
        )
        timeline = self._timeline
        timeline.finish()
        stats.stall_seconds = flip.duration if flip is not None else 0.0
        stats.seconds = timeline.total_seconds
        self._observe_stall(stats.stall_seconds)
        return stats

    def _drop_shadow(self) -> None:
        self._shadow_plan = None
        for name in ("_hlir", "_parser", "_actions", "_tables", "_metadata",
                     "_pipeline"):
            if hasattr(self, name):
                delattr(self, name)

"""The controller (paper Sec. 4.1): runtime configuration and in-situ
programming.

:class:`~repro.runtime.controller.Controller` drives the full rP4
design flow against a live :class:`~repro.ipsa.switch.IpsaSwitch`:
compile the base design, download it, then load/offload functions at
runtime from Fig.-5-style scripts.  Everything crosses a
:class:`~repro.runtime.channel.ControlChannel` that actually
serializes the JSON, so loading time includes the communication cost
the paper mentions.

Updates are transactional (:mod:`repro.runtime.txn`): the controller
stages an update (compile, lint, transfer, shadow-state prepare,
validate) and commits it with an epoch flip whose stall window covers
only the pointer swap; fleets roll out via
:meth:`~repro.runtime.fabric.Fabric.staged_rollout` with canary
health gates and automatic rollback.
"""

from repro.runtime.channel import (
    ChannelError,
    ControlChannel,
    FrameError,
    LoopbackTransport,
    QueueTransport,
    Transport,
)
from repro.runtime.controller import (
    Controller,
    ControllerError,
    FlowTiming,
    StagedUpdate,
    UnsafeUpdateError,
)
from repro.runtime.fabric import (
    Delivery,
    Fabric,
    HealthGateError,
    RolloutError,
    RolloutReport,
)
from repro.runtime.stats import diff, format_stats, snapshot
from repro.runtime.workers import (
    DeviceWorker,
    UpdatePlanCache,
    WorkerError,
    merge_shard_into,
)
from repro.runtime.table_api import TableApi
from repro.runtime.txn import (
    TxnError,
    TxnPhase,
    TxnStateError,
    TxnValidationError,
)

__all__ = [
    "ChannelError",
    "ControlChannel",
    "Controller",
    "ControllerError",
    "Delivery",
    "DeviceWorker",
    "Fabric",
    "FlowTiming",
    "FrameError",
    "HealthGateError",
    "LoopbackTransport",
    "QueueTransport",
    "RolloutError",
    "RolloutReport",
    "StagedUpdate",
    "TableApi",
    "Transport",
    "UpdatePlanCache",
    "WorkerError",
    "TxnError",
    "TxnPhase",
    "TxnStateError",
    "TxnValidationError",
    "UnsafeUpdateError",
    "diff",
    "format_stats",
    "merge_shard_into",
    "snapshot",
]

"""The controller (paper Sec. 4.1): runtime configuration and in-situ
programming.

:class:`~repro.runtime.controller.Controller` drives the full rP4
design flow against a live :class:`~repro.ipsa.switch.IpsaSwitch`:
compile the base design, download it, then load/offload functions at
runtime from Fig.-5-style scripts.  Everything crosses a
:class:`~repro.runtime.channel.ControlChannel` that actually
serializes the JSON, so loading time includes the communication cost
the paper mentions.
"""

from repro.runtime.channel import ControlChannel
from repro.runtime.controller import (
    Controller,
    ControllerError,
    FlowTiming,
    UnsafeUpdateError,
)
from repro.runtime.fabric import Delivery, Fabric
from repro.runtime.stats import diff, format_stats, snapshot
from repro.runtime.table_api import TableApi

__all__ = [
    "ControlChannel",
    "Controller",
    "ControllerError",
    "Delivery",
    "Fabric",
    "FlowTiming",
    "TableApi",
    "UnsafeUpdateError",
    "diff",
    "format_stats",
    "snapshot",
]

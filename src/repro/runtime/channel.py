"""The control channel between controller and device (the CCM analogue).

Messages are genuinely serialized to JSON text and parsed back on the
"device side", so the measured loading time includes the
communication/marshalling cost -- the paper notes t_L "contains the
communication time with the device" and that the true pipeline stall
is shorter.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import List


@dataclass
class ChannelStats:
    messages: int = 0
    bytes_sent: int = 0


class ControlChannel:
    """A serializing in-process channel."""

    def __init__(self) -> None:
        self.stats = ChannelStats()
        self.log: List[str] = []

    def send(self, message: dict) -> dict:
        """Serialize, 'transmit', and deserialize a message."""
        text = json.dumps(message, sort_keys=True)
        self.stats.messages += 1
        self.stats.bytes_sent += len(text)
        self.log.append(text[:120])
        return json.loads(text)

"""The control channel between controller and device (the CCM analogue).

Messages are genuinely serialized to JSON text and parsed back on the
"device side", so the measured loading time includes the
communication/marshalling cost -- the paper notes t_L "contains the
communication time with the device" and that the true pipeline stall
is shorter.

Every message travels in an envelope ``{"seq": n, "kind": k,
"payload": ...}``: ``seq`` is a channel-monotonic sequence number
(verified on the receive side -- a replay or reordering is a
:class:`ChannelError`; gaps are legal, they are what a lost message
leaves behind), and ``kind`` names the protocol step
(``config.load``, ``update.prepare``, ``update.commit``,
``update.abort``, ``update.rollback``), with per-kind message/byte
counters exported through the metrics registry.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.obs.metrics import Sample


class ChannelError(Exception):
    """The channel refused or lost a message."""


@dataclass
class KindStats:
    """Per-message-kind traffic accounting."""

    messages: int = 0
    bytes_sent: int = 0


@dataclass
class ChannelStats:
    messages: int = 0
    bytes_sent: int = 0
    by_kind: Dict[str, KindStats] = field(default_factory=dict)


class ControlChannel:
    """A serializing in-process channel with sequenced envelopes."""

    def __init__(self) -> None:
        self.stats = ChannelStats()
        self.log: List[str] = []
        self.seq = 0
        self._last_delivered = 0
        #: Fault injection: kinds in this set are "lost in transit" --
        #: the send raises :class:`ChannelError` after serialization,
        #: so byte accounting still sees the attempt.
        self.drop_kinds: Set[str] = set()

    def send(self, message: dict, kind: str = "config.load") -> dict:
        """Serialize, 'transmit', and deserialize a message.

        Returns the deserialized *payload* (what the device acts on),
        exactly as the pre-envelope channel returned the message.
        """
        self.seq += 1
        envelope = {"seq": self.seq, "kind": kind, "payload": message}
        text = json.dumps(envelope, sort_keys=True)
        self.stats.messages += 1
        self.stats.bytes_sent += len(text)
        per_kind = self.stats.by_kind.setdefault(kind, KindStats())
        per_kind.messages += 1
        per_kind.bytes_sent += len(text)
        self.log.append(text[:120])
        if kind in self.drop_kinds:
            raise ChannelError(f"message seq={self.seq} kind={kind!r} dropped")
        received = json.loads(text)
        if received["seq"] <= self._last_delivered:
            raise ChannelError(
                f"out-of-order delivery: got seq={received['seq']}, "
                f"already delivered up to {self._last_delivered}"
            )
        self._last_delivered = received["seq"]
        return received["payload"]

    # -- observability -------------------------------------------------

    def metrics_samples(self):
        yield Sample("channel.messages", self.stats.messages)
        yield Sample("channel.bytes_sent", self.stats.bytes_sent)
        yield Sample("channel.seq", self.seq, {}, "gauge")
        for kind, stats in self.stats.by_kind.items():
            yield Sample("channel.messages", stats.messages, {"kind": kind})
            yield Sample("channel.bytes_sent", stats.bytes_sent, {"kind": kind})

"""The control channel between controller and device (the CCM analogue).

Messages are genuinely serialized -- each envelope ``{"seq": n,
"kind": k, "payload": ...}`` becomes a length-prefixed UTF-8 frame
(a 4-byte big-endian length followed by the JSON body) that crosses
an abstract :class:`Transport` before the "device side" parses it
back, so the measured loading time includes the communication/
marshalling cost -- the paper notes t_L "contains the communication
time with the device" and that the true pipeline stall is shorter.

``seq`` is a channel-monotonic sequence number (verified on the
receive side -- a replay or reordering is a :class:`ChannelError`;
gaps are legal, they are what a lost message leaves behind), and
``kind`` names the protocol step (``config.load``, ``update.prepare``,
``update.commit``, ``update.abort``, ``update.rollback``, plus the
``worker.*`` command kinds the sharded runtime adds).  Both sides are
accounted: per-kind message/byte counters for send *and* receive, and
a per-kind transit-latency histogram, all exported through the
metrics registry.

Two transports ship:

* :class:`LoopbackTransport` -- an in-process frame queue, the
  default; ``send()`` stays synchronous exactly as before.
* :class:`QueueTransport` -- frames over a pair of queue objects
  (``queue.Queue`` by default; ``multiprocessing.Queue`` works too
  since only bytes cross), which is what the device workers use to
  run each shard's receive loop on its own thread/process.
"""

from __future__ import annotations

import json
import queue
import struct
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Optional, Set, Tuple

from repro.obs.metrics import Histogram, Sample

#: Default size of the in-memory message log ring.  The log is a
#: debugging aid (the first bytes of recent frames), not an audit
#: trail -- a soak that pushes millions of envelopes must not grow it.
DEFAULT_LOG_CAPACITY = 256

#: Bucket edges (seconds) for the per-kind transit-latency histogram.
LATENCY_SECONDS_BOUNDS = (
    1e-6, 5e-6, 1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 0.1,
)

_LENGTH = struct.Struct(">I")


class ChannelError(Exception):
    """The channel refused or lost a message."""


class FrameError(ChannelError):
    """A byte frame failed to encode or decode."""


def encode_frame(envelope: dict) -> bytes:
    """Serialize an envelope into one length-prefixed UTF-8 frame."""
    body = json.dumps(envelope, sort_keys=True).encode("utf-8")
    return _LENGTH.pack(len(body)) + body


def decode_frame(frame: bytes) -> dict:
    """Parse one length-prefixed frame back into its envelope."""
    if len(frame) < _LENGTH.size:
        raise FrameError(f"short frame: {len(frame)} bytes")
    (length,) = _LENGTH.unpack_from(frame)
    body = frame[_LENGTH.size:]
    if len(body) != length:
        raise FrameError(
            f"frame length prefix says {length} bytes, got {len(body)}"
        )
    try:
        envelope = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FrameError(f"undecodable frame body: {exc}") from exc
    if not isinstance(envelope, dict) or "seq" not in envelope:
        raise FrameError("frame body is not an envelope")
    return envelope


class Transport:
    """Where frames travel: an ordered byte-frame pipe."""

    def send(self, frame: bytes) -> None:
        raise NotImplementedError

    def recv(self, timeout: Optional[float] = None) -> bytes:
        """Next frame; raises :class:`ChannelError` on timeout."""
        raise NotImplementedError

    def pending(self) -> int:
        """Frames sent but not yet received (best effort)."""
        raise NotImplementedError


class LoopbackTransport(Transport):
    """In-process transport: frames sit in a deque until received."""

    def __init__(self) -> None:
        self._frames: Deque[bytes] = deque()

    def send(self, frame: bytes) -> None:
        self._frames.append(frame)

    def recv(self, timeout: Optional[float] = None) -> bytes:
        if not self._frames:
            raise ChannelError("loopback transport is empty")
        return self._frames.popleft()

    def pending(self) -> int:
        return len(self._frames)


class QueueTransport(Transport):
    """Frames over a queue object (``queue.Queue`` by default).

    Only bytes cross, so any queue with ``put``/``get``/``qsize``
    works -- including ``multiprocessing.Queue`` for a true remote
    device side.  ``recv`` blocks up to ``timeout`` seconds.
    """

    def __init__(self, channel_queue=None) -> None:
        self._queue = channel_queue if channel_queue is not None else queue.Queue()

    def send(self, frame: bytes) -> None:
        self._queue.put(frame)

    def recv(self, timeout: Optional[float] = None) -> bytes:
        try:
            return self._queue.get(timeout=timeout)
        except queue.Empty:
            raise ChannelError(
                f"no frame within {timeout!r}s"
            ) from None

    def pending(self) -> int:
        try:
            return self._queue.qsize()
        except NotImplementedError:  # macOS multiprocessing queues
            return 0


@dataclass
class KindStats:
    """Per-message-kind traffic accounting (both directions)."""

    messages: int = 0
    bytes_sent: int = 0
    messages_received: int = 0
    bytes_received: int = 0


@dataclass
class ChannelStats:
    messages: int = 0
    bytes_sent: int = 0
    messages_received: int = 0
    bytes_received: int = 0
    by_kind: Dict[str, KindStats] = field(default_factory=dict)


class ControlChannel:
    """A serializing byte channel with sequenced envelopes.

    ``send()`` is the synchronous path the controller uses over the
    default loopback: serialize, transmit, receive, return the parsed
    payload.  The sharded runtime splits the two halves -- ``post()``
    on the sending side, ``deliver()`` wherever the receive loop runs
    -- over a :class:`QueueTransport` pair.
    """

    def __init__(
        self,
        transport: Optional[Transport] = None,
        log_capacity: int = DEFAULT_LOG_CAPACITY,
        clock=None,
    ) -> None:
        if log_capacity <= 0:
            raise ValueError("log_capacity must be positive")
        self.transport = transport if transport is not None else LoopbackTransport()
        self.stats = ChannelStats()
        #: Bounded ring of recent frame prefixes (debugging aid).
        self.log: Deque[str] = deque(maxlen=log_capacity)
        self.seq = 0
        self._last_delivered = 0
        self._clock = clock if clock is not None else time.perf_counter
        #: seq -> send timestamp, popped at delivery (transit latency).
        self._sent_at: Dict[int, float] = {}
        self._latency: Dict[str, Histogram] = {}
        #: Fault injection: kinds in this set are "lost in transit" --
        #: the send raises :class:`ChannelError` after serialization,
        #: so byte accounting still sees the attempt.
        self.drop_kinds: Set[str] = set()
        #: Fault injection: a kind in this set is held back one send
        #: and transmitted *after* the next frame -- the receive-side
        #: sequence check then reports the reordering.
        self.reorder_kinds: Set[str] = set()
        self._held: Optional[bytes] = None

    @property
    def log_capacity(self) -> int:
        return self.log.maxlen or 0

    # -- send side -------------------------------------------------------

    def post(
        self,
        message: dict,
        kind: str = "config.load",
        payload_json: Optional[str] = None,
    ) -> int:
        """Serialize and transmit one envelope; returns its ``seq``.

        The receive half (:meth:`deliver`) may run on another thread
        or process; the synchronous :meth:`send` composes the two.

        ``payload_json`` is an optional pre-serialized (sorted-keys)
        rendering of ``message``: a fleet sending the same large
        update to a thousand nodes serializes it once and splices it
        into each frame.  The bytes on the wire are identical to the
        un-spliced encoding.
        """
        self.seq += 1
        seq = self.seq
        if payload_json is None:
            envelope = {"seq": seq, "kind": kind, "payload": message}
            frame = encode_frame(envelope)
        else:
            body = (
                '{"kind": ' + json.dumps(kind)
                + ', "payload": ' + payload_json
                + ', "seq": ' + str(seq) + "}"
            ).encode("utf-8")
            frame = _LENGTH.pack(len(body)) + body
        self.stats.messages += 1
        self.stats.bytes_sent += len(frame)
        per_kind = self.stats.by_kind.setdefault(kind, KindStats())
        per_kind.messages += 1
        per_kind.bytes_sent += len(frame)
        self.log.append(frame[_LENGTH.size:_LENGTH.size + 120].decode(
            "utf-8", "replace"
        ))
        self._sent_at[seq] = self._clock()
        if kind in self.drop_kinds:
            self._sent_at.pop(seq, None)
            raise ChannelError(f"message seq={seq} kind={kind!r} dropped")
        if kind in self.reorder_kinds and self._held is None:
            self._held = frame  # transmitted behind the next frame
            return seq
        self.transport.send(frame)
        if self._held is not None:
            held, self._held = self._held, None
            self.transport.send(held)
        return seq

    # -- receive side ----------------------------------------------------

    def deliver(self, timeout: Optional[float] = None) -> Tuple[str, dict, int]:
        """Receive, verify, and account one frame.

        Returns ``(kind, payload, seq)``.  A replayed or reordered
        sequence number is a :class:`ChannelError` -- the frame is
        still accounted (the device *did* receive the bytes).
        """
        frame = self.transport.recv(timeout)
        envelope = decode_frame(frame)
        seq = int(envelope["seq"])
        kind = str(envelope.get("kind", ""))
        self.stats.messages_received += 1
        self.stats.bytes_received += len(frame)
        per_kind = self.stats.by_kind.setdefault(kind, KindStats())
        per_kind.messages_received += 1
        per_kind.bytes_received += len(frame)
        sent_at = self._sent_at.pop(seq, None)
        if sent_at is not None:
            histogram = self._latency.get(kind)
            if histogram is None:
                histogram = Histogram(
                    "channel.latency_seconds",
                    LATENCY_SECONDS_BOUNDS,
                    labels={"kind": kind},
                )
                self._latency[kind] = histogram
            histogram.observe(max(0.0, self._clock() - sent_at))
        if seq <= self._last_delivered:
            raise ChannelError(
                f"out-of-order delivery: got seq={seq}, "
                f"already delivered up to {self._last_delivered}"
            )
        self._last_delivered = seq
        return kind, envelope["payload"], seq

    # -- synchronous composition ------------------------------------------

    def send(
        self,
        message: dict,
        kind: str = "config.load",
        payload_json: Optional[str] = None,
    ) -> dict:
        """Serialize, 'transmit', and deserialize a message.

        Returns the deserialized *payload* (what the device acts on),
        exactly as the pre-envelope channel returned the message.
        """
        self.post(message, kind, payload_json)
        _kind, payload, _seq = self.deliver()
        return payload

    # -- observability -------------------------------------------------

    def metrics_samples(self):
        yield Sample("channel.messages", self.stats.messages)
        yield Sample("channel.bytes_sent", self.stats.bytes_sent)
        yield Sample(
            "channel.messages_received", self.stats.messages_received
        )
        yield Sample("channel.bytes_received", self.stats.bytes_received)
        yield Sample("channel.seq", self.seq, {}, "gauge")
        for kind, stats in self.stats.by_kind.items():
            yield Sample("channel.messages", stats.messages, {"kind": kind})
            yield Sample(
                "channel.bytes_sent", stats.bytes_sent, {"kind": kind}
            )
            yield Sample(
                "channel.messages_received",
                stats.messages_received,
                {"kind": kind},
            )
            yield Sample(
                "channel.bytes_received",
                stats.bytes_received,
                {"kind": kind},
            )
        for histogram in self._latency.values():
            yield from histogram.samples()

"""A multi-switch fabric: wire ipbm instances into a topology.

Each switch port is either an edge port (packets exit the fabric) or
wired to a peer switch's port.  ``send`` walks a packet hop by hop --
every hop is a full pipeline traversal on that device -- until it
exits at an edge or is dropped.  With every node independently
runtime-programmable, this is the "autonomous networks" setting the
paper's introduction sketches: functions can be rolled out node by
node while traffic keeps flowing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.runtime.controller import Controller


class FabricError(Exception):
    """Raised on malformed topologies."""


@dataclass(frozen=True)
class Delivery:
    """Where a packet left the fabric."""

    node: str
    port: int
    data: bytes
    hops: int
    path: Tuple[str, ...]


@dataclass
class FabricStats:
    injected: int = 0
    delivered: int = 0
    dropped: int = 0
    loops_cut: int = 0


class Fabric:
    """Named controllers plus a port-level wiring table."""

    def __init__(self, max_hops: int = 16) -> None:
        if max_hops <= 0:
            raise ValueError("max_hops must be positive")
        self.max_hops = max_hops
        self.nodes: Dict[str, Controller] = {}
        # (node, egress port) -> (peer node, peer ingress port)
        self._wires: Dict[Tuple[str, int], Tuple[str, int]] = {}
        self.stats = FabricStats()

    # -- topology -------------------------------------------------------

    def add_node(self, name: str, controller: Controller) -> Controller:
        if name in self.nodes:
            raise FabricError(f"node {name!r} already exists")
        self.nodes[name] = controller
        return controller

    def node(self, name: str) -> Controller:
        try:
            return self.nodes[name]
        except KeyError:
            raise FabricError(f"no node named {name!r}") from None

    def wire(self, a: str, port_a: int, b: str, port_b: int) -> None:
        """Connect two ports bidirectionally."""
        self.node(a)
        self.node(b)
        for end, peer in (
            ((a, port_a), (b, port_b)),
            ((b, port_b), (a, port_a)),
        ):
            if end in self._wires:
                raise FabricError(f"port {end} is already wired")
            self._wires[end] = peer

    def peer(self, node: str, port: int) -> Optional[Tuple[str, int]]:
        return self._wires.get((node, port))

    # -- traffic ------------------------------------------------------------

    def send(self, node: str, data: bytes, port: int = 0) -> Optional[Delivery]:
        """Walk a packet through the fabric; None if dropped."""
        self.stats.injected += 1
        path: List[str] = []
        current, in_port = node, port
        for hop in range(self.max_hops):
            controller = self.node(current)
            path.append(current)
            out = controller.switch.inject(data, in_port)
            if out is None:
                self.stats.dropped += 1
                return None
            wire = self.peer(current, out.port)
            if wire is None:
                self.stats.delivered += 1
                return Delivery(
                    node=current,
                    port=out.port,
                    data=out.data,
                    hops=hop + 1,
                    path=tuple(path),
                )
            data = out.data
            current, in_port = wire
        self.stats.loops_cut += 1
        return None

    def send_many(
        self, node: str, trace: List[Tuple[bytes, int]]
    ) -> List[Optional[Delivery]]:
        return [self.send(node, data, port) for data, port in trace]

    # -- fleet-wide updates ----------------------------------------------------

    def rollout(
        self,
        script_text: str,
        sources: Optional[Dict[str, str]] = None,
        nodes: Optional[List[str]] = None,
    ) -> Dict[str, float]:
        """Apply one in-situ update script across (some) nodes.

        Returns per-node total stall+compile seconds.  Nodes are
        updated one at a time -- traffic through the others keeps
        flowing, which is the whole point of in-situ programmability.
        """
        timings: Dict[str, float] = {}
        for name in nodes if nodes is not None else list(self.nodes):
            controller = self.node(name)
            _plan, _stats, timing = controller.run_script(script_text, sources)
            timings[name] = timing.total_seconds
        return timings

"""A multi-switch fabric: wire ipbm instances into a topology.

Each switch port is either an edge port (packets exit the fabric) or
wired to a peer switch's port.  ``send`` walks a packet hop by hop --
every hop is a full pipeline traversal on that device -- until it
exits at an edge or is dropped.  With every node independently
runtime-programmable, this is the "autonomous networks" setting the
paper's introduction sketches: functions can be rolled out node by
node while traffic keeps flowing.

The fabric runs in one of two modes:

* **Serial** (the default): every hop executes inline in the calling
  thread, exactly as before.
* **Sharded** (:meth:`Fabric.shard`): the nodes are partitioned
  across :class:`~repro.runtime.workers.DeviceWorker` shards, each
  with its own receive loop over framed byte envelopes.  Traffic
  batches fan out to the shards concurrently (cross-shard hops come
  back as handoffs and are re-dispatched), staged rollouts stage
  whole waves in parallel (commit order stays the listed wave order,
  so reverse-order rollback is deterministic), and each worker's
  metric shard snapshots merge losslessly into :attr:`Fabric.metrics`
  -- stats, health rules, and Prometheus export are shard-transparent.

Per-hop delivery accounting flows through :attr:`Fabric.metrics` in
both modes: ``fabric.injected{node}``, ``fabric.hop_forwarded{node,
port}``, ``fabric.hop_dropped{node}``, ``fabric.delivered{node,port}``
-- so a health rule can target a single device's forwarding rate
instead of only the aggregate :class:`FabricStats`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.obs.metrics import MetricsRegistry
from repro.runtime.controller import Controller
from repro.runtime.workers import (
    TRAFFIC_CHUNK,
    DeviceWorker,
    UpdatePlanCache,
    WorkerError,
    merge_shard_into,
)


class FabricError(Exception):
    """Raised on malformed topologies."""


class RolloutError(FabricError):
    """A fleet-wide update failed part-way.

    Carries exactly what a production controller needs to reason about
    the blast radius: which nodes committed the new design
    (``updated``), which node failed and why (``failed``/``cause``),
    which committed nodes were automatically rolled back
    (``rolled_back``), and which were never touched (``pending``).
    """

    def __init__(
        self,
        message: str,
        updated: List[str],
        failed: str,
        cause: Exception,
        rolled_back: Optional[List[str]] = None,
        pending: Optional[List[str]] = None,
        report: Optional["RolloutReport"] = None,
    ) -> None:
        super().__init__(
            f"{message}: node {failed!r} failed "
            f"({type(cause).__name__}: {cause}); "
            f"updated={updated} rolled_back={rolled_back or []} "
            f"pending={pending or []}"
        )
        self.updated = list(updated)
        self.failed = failed
        self.cause = cause
        self.rolled_back = list(rolled_back or [])
        self.pending = list(pending or [])
        #: The partial rollout report -- alert transitions and the
        #: flight-recorder dump captured up to the abort live here.
        self.report = report


@dataclass(frozen=True)
class Delivery:
    """Where a packet left the fabric."""

    node: str
    port: int
    data: bytes
    hops: int
    path: Tuple[str, ...]


@dataclass
class FabricStats:
    injected: int = 0
    delivered: int = 0
    dropped: int = 0
    loops_cut: int = 0


class Fabric:
    """Named controllers plus a port-level wiring table."""

    def __init__(self, max_hops: int = 16) -> None:
        if max_hops <= 0:
            raise ValueError("max_hops must be positive")
        self.max_hops = max_hops
        self.nodes: Dict[str, Controller] = {}
        # (node, egress port) -> (peer node, peer ingress port)
        self._wires: Dict[Tuple[str, int], Tuple[str, int]] = {}
        self.stats = FabricStats()
        #: Central registry: per-hop delivery counters plus (when
        #: sharded) every worker's merged metric shard.
        self.metrics = MetricsRegistry()
        self._injected: Dict[str, object] = {}
        self._hop_forwarded: Dict[Tuple[str, int], object] = {}
        self._hop_dropped: Dict[str, object] = {}
        self._delivered: Dict[Tuple[str, int], object] = {}
        # Sharded mode (see shard()): device workers, node -> owner.
        self.workers: List[DeviceWorker] = []
        self._owner: Dict[str, DeviceWorker] = {}
        self.plan_cache: Optional[UpdatePlanCache] = None
        # Edge-side INT collector (see attach_int_collector): None
        # keeps delivery untouched.
        self.int_collector = None
        self._int_strip = True
        # Streaming health engine (see attach_health): None keeps the
        # legacy one-shot probe gate in staged_rollout.
        self.health = None

    # -- topology -------------------------------------------------------

    def add_node(self, name: str, controller: Controller) -> Controller:
        if name in self.nodes:
            raise FabricError(f"node {name!r} already exists")
        self.nodes[name] = controller
        return controller

    def node(self, name: str) -> Controller:
        try:
            return self.nodes[name]
        except KeyError:
            raise FabricError(f"no node named {name!r}") from None

    def wire(self, a: str, port_a: int, b: str, port_b: int) -> None:
        """Connect two ports bidirectionally."""
        self.node(a)
        self.node(b)
        for end, peer in (
            ((a, port_a), (b, port_b)),
            ((b, port_b), (a, port_a)),
        ):
            if end in self._wires:
                raise FabricError(f"port {end} is already wired")
            self._wires[end] = peer

    def peer(self, node: str, port: int) -> Optional[Tuple[str, int]]:
        return self._wires.get((node, port))

    # -- sharding -------------------------------------------------------

    @property
    def sharded(self) -> bool:
        return bool(self.workers)

    def shard(
        self,
        n_workers: int = 4,
        plan_cache: Optional[UpdatePlanCache] = None,
        start: bool = True,
    ) -> List[DeviceWorker]:
        """Partition the nodes across ``n_workers`` device workers.

        Each worker owns a disjoint set of devices and serves framed
        commands on its own thread; traffic, staged updates, and
        metric snapshots all cross the byte transport.  One
        :class:`UpdatePlanCache` is shared fleet-wide so a rollout
        compiles/lints/verifies once per distinct content.  Pass
        ``start=False`` to drive the workers synchronously
        (deterministic tests).  Returns the workers.
        """
        if self.workers:
            raise FabricError("fabric is already sharded")
        if n_workers <= 0:
            raise ValueError("n_workers must be positive")
        if not self.nodes:
            raise FabricError("cannot shard an empty fabric")
        cache = plan_cache if plan_cache is not None else UpdatePlanCache()
        self.plan_cache = cache
        names = list(self.nodes)
        shards: List[Dict[str, Controller]] = [
            {} for _ in range(min(n_workers, len(names)))
        ]
        for index, name in enumerate(names):
            shards[index % len(shards)][name] = self.nodes[name]
        self.workers = [
            DeviceWorker(
                f"shard{index}",
                devices,
                wires=self._wires,
                max_hops=self.max_hops,
                plan_cache=cache,
            )
            for index, devices in enumerate(shards)
        ]
        self._owner = {
            name: worker
            for worker in self.workers
            for name in worker.devices
        }
        if start:
            for worker in self.workers:
                worker.start()
        return self.workers

    def unshard(self) -> None:
        """Stop the workers and return to serial mode.

        Final metric shards are merged first, so nothing is lost; the
        per-controller plan caches are uninstalled to restore exact
        serial semantics.
        """
        if not self.workers:
            return
        self.sync_metrics()
        for worker in self.workers:
            worker.stop()
        self.workers = []
        self._owner = {}
        self.plan_cache = None
        for controller in self.nodes.values():
            controller.plan_cache = None

    def sync_metrics(self) -> int:
        """Pull one metric shard snapshot from every worker and merge
        the deltas into :attr:`metrics`.  Returns samples applied."""
        applied = 0
        for worker in self.workers:
            shard = worker.request("worker.metrics", {})["shard"]
            applied += merge_shard_into(self.metrics, shard)
        return applied

    def _worker_of(self, node: str) -> DeviceWorker:
        worker = self._owner.get(node)
        if worker is None:
            raise FabricError(f"no node named {node!r}")
        return worker

    def _scatter(self, calls):
        """Post every ``(worker, kind, payload)`` command, then gather
        the framed replies in the same order.

        The shards grind concurrently on their own serving threads
        while this (single) client thread pipelines the frames -- no
        fan-out thread pool.  A failed call leaves its exception in
        the corresponding slot instead of raising, so every posted
        command is still collected and the reply queues stay aligned.
        """
        for worker, kind, payload in calls:
            worker.post_request(kind, payload)
        replies: List[object] = []
        for worker, kind, _payload in calls:
            try:
                replies.append(worker.collect_reply(kind))
            except Exception as exc:
                replies.append(exc)
        return replies

    # -- telemetry ------------------------------------------------------

    def attach_int_collector(self, collector=None, strip: bool = True):
        """Feed every edge delivery through an INT collector.

        The collector (default: a fresh
        :class:`repro.obs.intcol.IntCollector`) sees each packet as it
        exits the fabric; with ``strip=True`` the delivered bytes have
        the INT shim removed and the original EtherType restored, so
        the edge observes un-instrumented traffic while the collector
        keeps the telemetry.  Returns the collector.
        """
        if collector is None:
            from repro.obs.intcol import IntCollector

            collector = IntCollector()
        self.int_collector = collector
        self._int_strip = strip
        return collector

    def detach_int_collector(self):
        """Stop collecting at the edge; returns the detached collector."""
        collector, self.int_collector = self.int_collector, None
        return collector

    def attach_health(self, engine=None, rules=None, clock=None):
        """Attach a streaming health engine over every current node.

        The engine (default: a fresh :class:`repro.obs.health.
        HealthEngine` on ``clock``) gets one source per node -- the
        device registry plus the switch/controller timeline recorders
        -- and watches the INT collector when one is attached.  With
        an engine attached, :meth:`staged_rollout` gates on continuous
        health scores instead of the one-shot probe drop-rate check.
        ``rules`` defaults to :func:`repro.obs.health.default_rules`
        when the engine has none installed.  Returns the engine.
        """
        from repro.obs.health import HealthEngine, default_rules

        if engine is None:
            engine = HealthEngine(clock=clock)
        if rules is not None:
            engine.install(rules)
        elif not engine.rules:
            engine.install(default_rules())
        for name, controller in self.nodes.items():
            engine.add_source(
                name,
                controller.switch.metrics,
                switch=controller.switch,
                timelines=(controller.timelines, controller.switch.timelines),
            )
        # The fabric's own registry rides along as a source, so rules
        # can target a single device's forwarding rate via the per-hop
        # counters (fabric.hop_forwarded{node,port} and friends).
        engine.add_source("fabric", self.metrics)
        if self.int_collector is not None:
            engine.watch_int(self.int_collector)
        self.health = engine
        return engine

    def detach_health(self):
        """Drop the health engine; returns the detached engine."""
        engine, self.health = self.health, None
        if engine is not None:
            for name in list(self.nodes):
                engine.remove_source(name)
            engine.remove_source("fabric")
        return engine

    # -- traffic ------------------------------------------------------------

    def _count_injected(self, node: str) -> None:
        counter = self._injected.get(node)
        if counter is None:
            counter = self.metrics.counter("fabric.injected", node=node)
            self._injected[node] = counter
        counter.inc()

    def _count_forwarded(self, node: str, port: int) -> None:
        counter = self._hop_forwarded.get((node, port))
        if counter is None:
            counter = self.metrics.counter(
                "fabric.hop_forwarded", node=node, port=str(port)
            )
            self._hop_forwarded[(node, port)] = counter
        counter.inc()

    def _count_hop_dropped(self, node: str) -> None:
        counter = self._hop_dropped.get(node)
        if counter is None:
            counter = self.metrics.counter("fabric.hop_dropped", node=node)
            self._hop_dropped[node] = counter
        counter.inc()

    def _count_delivered(self, node: str, port: int) -> None:
        counter = self._delivered.get((node, port))
        if counter is None:
            counter = self.metrics.counter(
                "fabric.delivered", node=node, port=str(port)
            )
            self._delivered[(node, port)] = counter
        counter.inc()

    def send(self, node: str, data: bytes, port: int = 0) -> Optional[Delivery]:
        """Walk a packet through the fabric; None if dropped."""
        if self.workers:
            return self._send_many_sharded([(node, data, port)])[0]
        self.stats.injected += 1
        self._count_injected(node)
        path: List[str] = []
        current, in_port = node, port
        for hop in range(self.max_hops):
            controller = self.node(current)
            path.append(current)
            out = controller.switch.inject(data, in_port)
            if out is None:
                self.stats.dropped += 1
                self._count_hop_dropped(current)
                return None
            self._count_forwarded(current, out.port)
            wire = self.peer(current, out.port)
            if wire is None:
                self.stats.delivered += 1
                self._count_delivered(current, out.port)
                delivered = out.data
                if self.int_collector is not None:
                    ingest = self.int_collector.ingest(
                        delivered, node=current, port=out.port
                    )
                    if self._int_strip:
                        delivered = ingest.stripped
                return Delivery(
                    node=current,
                    port=out.port,
                    data=delivered,
                    hops=hop + 1,
                    path=tuple(path),
                )
            data = out.data
            current, in_port = wire
        self.stats.loops_cut += 1
        return None

    def send_many(
        self, node: str, trace: List[Tuple[bytes, int]]
    ) -> List[Optional[Delivery]]:
        """Inject a trace; index-aligned deliveries (None = dropped).

        Sharded fabrics fan the batch out to the device workers
        concurrently; hops that cross a shard boundary come back as
        handoffs and are re-dispatched to their owner until every
        packet exits or drops.
        """
        if self.workers:
            return self._send_many_sharded(
                [(node, data, port) for data, port in trace]
            )
        return [self.send(node, data, port) for data, port in trace]

    def _send_many_sharded(
        self, items: List[Tuple[str, bytes, int]]
    ) -> List[Optional[Delivery]]:
        results: List[Optional[Delivery]] = [None] * len(items)
        batches: Dict[DeviceWorker, List[dict]] = {}
        for index, (node, data, port) in enumerate(items):
            self.stats.injected += 1
            self._count_injected(node)
            batches.setdefault(self._worker_of(node), []).append(
                {"i": index, "node": node, "port": port, "data": data.hex()}
            )

        while batches:
            calls = [
                (
                    worker,
                    "worker.inject_batch",
                    {"items": batch[at:at + TRAFFIC_CHUNK]},
                )
                for worker, batch in batches.items()
                for at in range(0, len(batch), TRAFFIC_CHUNK)
            ]
            replies = self._scatter(calls)
            batches = {}
            for reply in replies:
                if isinstance(reply, Exception):
                    raise reply
                self.stats.dropped += len(reply["dropped"])
                self.stats.loops_cut += len(reply["loops"])
                for delivery in reply["deliveries"]:
                    self.stats.delivered += 1
                    delivered = bytes.fromhex(delivery["data"])
                    if self.int_collector is not None:
                        ingest = self.int_collector.ingest(
                            delivered,
                            node=delivery["node"],
                            port=delivery["port"],
                        )
                        if self._int_strip:
                            delivered = ingest.stripped
                    results[delivery["i"]] = Delivery(
                        node=delivery["node"],
                        port=delivery["port"],
                        data=delivered,
                        hops=delivery["hops"],
                        path=tuple(delivery["path"]),
                    )
                for handoff in reply["handoffs"]:
                    batches.setdefault(
                        self._worker_of(handoff["node"]), []
                    ).append(handoff)
        return results

    def send_batch(
        self, items: List[Tuple[str, bytes, int]]
    ) -> List[Optional[Delivery]]:
        """Inject ``(node, data, port)`` items, index-aligned.

        Unlike :meth:`send_many` the start node varies per item, so
        one batch can cover the whole fleet -- the soak harness's
        replay path.  Sharded fabrics fan out across the workers.
        """
        if self.workers:
            return self._send_many_sharded(list(items))
        return [self.send(node, data, port) for node, data, port in items]

    # -- fleet-wide updates ----------------------------------------------------

    def rollback_all(self, nodes: Optional[List[str]] = None) -> List[str]:
        """Roll every (given) node back one update, in reverse order.

        The counterpart of a completed rollout -- an A/B soak cycle is
        ``staged_rollout`` forward, ``rollback_all`` back.  Returns
        the nodes in the order rolled back.
        """
        order = list(nodes) if nodes is not None else list(self.nodes)
        rolled: List[str] = []
        for name in reversed(order):
            if self.workers:
                self._worker_of(name).request(
                    "worker.rollback", {"node": name}
                )
            else:
                self.node(name).rollback()
            rolled.append(name)
        return rolled

    def rollout(
        self,
        script_text: str,
        sources: Optional[Dict[str, str]] = None,
        nodes: Optional[List[str]] = None,
    ) -> Dict[str, float]:
        """Apply one in-situ update script across (some) nodes.

        Returns per-node total stall+compile seconds.  Nodes are
        updated one at a time -- traffic through the others keeps
        flowing, which is the whole point of in-situ programmability.

        A mid-rollout failure raises :class:`RolloutError` naming the
        nodes that already committed, the failing node, and the nodes
        never reached -- already-updated nodes are *not* reverted (use
        :meth:`staged_rollout` for automatic rollback).
        """
        order = list(nodes) if nodes is not None else list(self.nodes)
        timings: Dict[str, float] = {}
        updated: List[str] = []
        for position, name in enumerate(order):
            controller = self.node(name)
            try:
                _plan, _stats, timing = controller.run_script(
                    script_text, sources
                )
            except Exception as exc:
                raise RolloutError(
                    "rollout aborted",
                    updated=updated,
                    failed=name,
                    cause=exc,
                    pending=order[position + 1:],
                ) from exc
            timings[name] = timing.total_seconds
            updated.append(name)
        return timings

    def staged_rollout(
        self,
        script_text: str,
        sources: Optional[Dict[str, str]] = None,
        nodes: Optional[List[str]] = None,
        canary: Optional[str] = None,
        wave_size: int = 2,
        probe_trace: Optional[List[Tuple[bytes, int]]] = None,
        max_drop_rate: float = 0.0,
        evidence_trace: Optional[List[Tuple[bytes, int]]] = None,
        evidence_node: Optional[str] = None,
        soak_ticks: int = 3,
        min_health: float = 1.0,
        verify: str = "error",
    ) -> "RolloutReport":
        """Canary -> health gate -> waves, with automatic rollback.

        **Verify-before-canary.**  The canary's controller runs its
        rp4verify staging gate in ``verify`` mode (default ``error``):
        a staged update whose differential verification finds a
        confirmed unintended divergence is aborted while still shadow
        -- the rollout fails before *any* node in the fabric flips an
        epoch.  Pass ``verify="inherit"`` to keep the node's own gate
        mode, or ``"strict"``/``"warn"``/``"off"`` to override.
        Non-canary waves always inherit their node's configuration
        (the canary already proved the update).

        1. The **canary** node (default: the first) stages and commits
           the update, then must pass the health gate.  A failing
           canary is rolled back and :class:`RolloutError` raised --
           every node is left on its old design/epoch.
        2. Remaining nodes are updated in **waves** of ``wave_size``,
           each node gated the same way.  Any failure (update error or
           gate breach) triggers reverse-order rollback of *every*
           committed node before :class:`RolloutError` propagates.

        On a **sharded** fabric (:meth:`shard`) each wave's staging
        fans out across the owning device workers in parallel, then
        commits and gates in listed order -- the committed sequence,
        and therefore the reverse-order rollback, is deterministic
        regardless of thread timing.  A staging failure aborts the
        whole wave while every member is still shadow, so a wave is
        all-or-nothing; soak and fleet gates evaluate while traffic
        batches keep flowing through the other shards' queues.

        **The gate.**  Without a health engine attached the gate is the
        legacy one-shot check: ``probe_trace`` is injected through the
        node's front door and the observed drop rate must not exceed
        ``max_drop_rate``.  With :meth:`attach_health`, the gate is
        continuous: after each commit the node **soaks** for
        ``soak_ticks`` engine ticks (probe traffic re-injected each
        tick), its health score must stay at or above ``min_health``,
        and after every evidence checkpoint the whole committed fleet
        is re-checked -- a regression *between* waves aborts too.
        Every alert transition lands in :attr:`RolloutReport.alerts`;
        on abort the flight recorder freezes into
        :attr:`RolloutReport.flight_record` and the report rides the
        raised :class:`RolloutError` (``err.report``).

        With an INT collector attached and an ``evidence_trace``, the
        trace is sent end-to-end from ``evidence_node`` (default: the
        first rollout node) after the canary and after every wave;
        each checkpoint records the dataplane epochs the packets
        carried in-band in :attr:`RolloutReport.epoch_evidence` --
        mixed epochs are the packet's-eye view of the flip window.
        """
        if wave_size <= 0:
            raise ValueError("wave_size must be positive")
        order = list(nodes) if nodes is not None else list(self.nodes)
        if not order:
            return RolloutReport()
        canary = canary if canary is not None else order[0]
        if canary not in order:
            raise FabricError(f"canary {canary!r} is not in the rollout set")
        rest = [name for name in order if name != canary]
        waves = [
            rest[i:i + wave_size] for i in range(0, len(rest), wave_size)
        ]
        report = RolloutReport(canary=canary, waves=waves)
        committed: List[str] = []

        def evidence_checkpoint(after: str) -> None:
            collector = self.int_collector
            if collector is None or evidence_trace is None:
                return
            origin = evidence_node if evidence_node is not None else order[0]
            start = len(collector.records)
            for data, port in evidence_trace:
                self.send(origin, data, port)
            fresh = collector.records[start:]
            epochs = sorted({e for r in fresh for e in r["epochs"]})
            report.epoch_evidence.append(
                {
                    "after": after,
                    "packets": len(fresh),
                    "epochs": epochs,
                    "mismatched_packets": sum(
                        1 for r in fresh if r["epoch_mismatch"]
                    ),
                }
            )

        def probe(name: str) -> float:
            if self.workers:
                reply = self._worker_of(name).request(
                    "worker.probe",
                    {
                        "node": name,
                        "items": [
                            [data.hex(), port] for data, port in probe_trace
                        ],
                    },
                )
                total, dropped = reply["total"], reply["dropped"]
            else:
                result = self.node(name).switch.inject_batch(probe_trace)
                total, dropped = len(result), result.dropped
            rate = dropped / total if total else 0.0
            report.probes[name] = rate
            return rate

        def soak(name: str) -> None:
            """Continuous gate: probe + engine tick, ``soak_ticks``
            times; the node's score must hold ``min_health``."""
            engine = self.health
            for _ in range(max(1, soak_ticks)):
                if probe_trace is not None:
                    probe(name)
                for transition in engine.tick():
                    report.alerts.append(transition.to_dict())
                score = engine.device_health(name)
                report.health[name] = score
                if score < min_health:
                    raise HealthGateError(
                        f"node {name!r} health {score:.2f} fell below "
                        f"gate {min_health:.2f} during soak: "
                        + ", ".join(
                            a.rule.name for a in engine.firing(name)
                        )
                    )

        def fleet_check(after: str) -> None:
            """Between-wave gate: one tick, every committed node must
            still hold ``min_health``."""
            engine = self.health
            if engine is None or not committed:
                return
            for transition in engine.tick():
                report.alerts.append(transition.to_dict())
            for name in committed:
                score = engine.device_health(name)
                report.health[name] = score
                if score < min_health:
                    raise HealthGateError(
                        f"node {name!r} health {score:.2f} fell below "
                        f"gate {min_health:.2f} after {after}"
                    )

        def stage_node(name: str):
            """Stage on the owning worker (sharded) or inline; the
            handle is whatever :func:`commit_node` needs later."""
            if self.workers:
                reply = self._worker_of(name).request(
                    "worker.stage",
                    {
                        "node": name,
                        "script": script_text,
                        "sources": sources,
                    },
                )
                return reply["token"]
            return self.node(name).stage_update(script_text, sources)

        def commit_node(name: str, staged) -> float:
            if self.workers:
                reply = self._worker_of(name).request(
                    "worker.commit", {"node": name, "token": staged}
                )
                return reply["total_seconds"]
            _plan, _stats, timing = staged.commit()
            return timing.total_seconds

        def abort_node(name: str, staged) -> None:
            try:
                if self.workers:
                    self._worker_of(name).request(
                        "worker.abort", {"node": name, "token": staged}
                    )
                else:
                    staged.abort()
            except Exception:
                pass  # best effort; the triggering failure is the headline

        def gate(name: str) -> None:
            if self.health is not None:
                soak(name)
            elif probe_trace is not None:
                rate = probe(name)
                if rate > max_drop_rate:
                    raise HealthGateError(
                        f"node {name!r} drop rate {rate:.3f} exceeds "
                        f"gate {max_drop_rate:.3f}"
                    )

        def update_and_gate(name: str) -> None:
            staged = stage_node(name)
            total_seconds = commit_node(name, staged)
            committed.append(name)
            report.timings[name] = total_seconds
            gate(name)

        def unwind(failed: str, cause: Exception, pending: List[str]) -> None:
            rolled_back: List[str] = []
            for name in reversed(committed):
                if self.workers:
                    self._worker_of(name).request(
                        "worker.rollback", {"node": name}
                    )
                else:
                    self.node(name).rollback()
                rolled_back.append(name)
            if self.health is not None:
                report.flight_record = self.health.recorder.dump(
                    reason="rollout_abort"
                )
            raise RolloutError(
                "staged rollout aborted",
                updated=list(committed),
                failed=failed,
                cause=cause,
                rolled_back=rolled_back,
                pending=pending,
                report=report,
            ) from cause

        canary_controller = self.node(canary)
        previous_verify = canary_controller.verify_updates
        if verify != "inherit":
            canary_controller.verify_updates = verify
        try:
            update_and_gate(canary)
        except Exception as exc:
            unwind(canary, exc, rest)
        finally:
            canary_controller.verify_updates = previous_verify
        evidence_checkpoint(f"canary:{canary}")
        try:
            fleet_check(f"canary:{canary}")
        except HealthGateError as exc:
            unwind(canary, exc, rest)
        def run_wave_serial(wave_index: int, wave: List[str]) -> None:
            for position, name in enumerate(wave):
                try:
                    update_and_gate(name)
                except Exception as exc:
                    pending = wave[position + 1:] + [
                        n for w in waves[wave_index + 1:] for n in w
                    ]
                    unwind(name, exc, pending)

        def run_wave_sharded(wave_index: int, wave: List[str]) -> None:
            """Fan the wave out across the owning workers with *one
            batched command per worker per phase* (stage, commit,
            probe) -- the wave's cost is three roundtrips per shard
            rather than three per node.  Bookkeeping stays in listed
            order: the committed sequence (and therefore reverse-order
            rollback) is deterministic regardless of which shard
            finishes first.  A staging failure anywhere aborts the
            whole wave while every member is still shadow: nothing in
            the wave commits."""
            later = [n for w in waves[wave_index + 1:] for n in w]
            by_worker: List[Tuple[DeviceWorker, List[str]]] = []
            grouped: Dict[str, List[str]] = {}
            for name in wave:
                worker = self._worker_of(name)
                if worker.name not in grouped:
                    grouped[worker.name] = []
                    by_worker.append((worker, grouped[worker.name]))
                grouped[worker.name].append(name)

            def batch_error(entry: dict, kind: str) -> WorkerError:
                detail = entry["error"]
                return WorkerError(
                    f"{detail['type']}: {detail['message']}",
                    kind=kind,
                    node=entry["node"],
                )

            # Phase 1: stage everywhere (still all-shadow on failure).
            replies = self._scatter([
                (
                    worker,
                    "worker.stage_batch",
                    {"nodes": names, "script": script_text,
                     "sources": sources},
                )
                for worker, names in by_worker
            ])
            tokens: Dict[str, str] = {}
            stage_errors: Dict[str, Exception] = {}
            for (_worker, names), reply in zip(by_worker, replies):
                if isinstance(reply, Exception):
                    stage_errors[names[0]] = reply
                    continue
                for entry in reply["results"]:
                    if entry.get("error"):
                        stage_errors[entry["node"]] = batch_error(
                            entry, "worker.stage"
                        )
                    else:
                        tokens[entry["node"]] = entry["token"]
            if stage_errors:
                for name, token in tokens.items():
                    abort_node(name, token)
                failed = next(n for n in wave if n in stage_errors)
                unwind(
                    failed, stage_errors[failed],
                    [n for n in wave if n != failed] + later,
                )

            # Phase 2: commit; a shard stops at its first failure and
            # leaves the rest of its tokens staged for us to abort.
            replies = self._scatter([
                (
                    worker,
                    "worker.commit_batch",
                    {"items": [
                        {"node": n, "token": tokens[n]} for n in names
                    ]},
                )
                for worker, names in by_worker
            ])
            commit_ok: Dict[str, float] = {}
            commit_errors: Dict[str, Exception] = {}
            skipped: List[str] = []
            for (_worker, names), reply in zip(by_worker, replies):
                if isinstance(reply, Exception):
                    commit_errors[names[0]] = reply
                    skipped.extend(names[1:])
                    continue
                results = reply["results"]
                attempted = {entry["node"] for entry in results}
                for entry in results:
                    if entry.get("error"):
                        commit_errors[entry["node"]] = batch_error(
                            entry, "worker.commit"
                        )
                    else:
                        commit_ok[entry["node"]] = entry["total_seconds"]
                skipped.extend(n for n in names if n not in attempted)
            for name in wave:
                if name in commit_ok:
                    committed.append(name)
                    report.timings[name] = commit_ok[name]
            if commit_errors:
                for name in skipped:
                    abort_node(name, tokens[name])
                failed = next(n for n in wave if n in commit_errors)
                unwind(
                    failed, commit_errors[failed],
                    [n for n in wave if n in skipped] + later,
                )

            # Phase 3: gate.  With a health engine the soak must tick
            # the (central) engine per node; the probe-only gate
            # batches per shard like the other phases.
            if self.health is not None:
                for name in wave:
                    try:
                        soak(name)
                    except Exception as exc:
                        unwind(name, exc, later)
            elif probe_trace is not None:
                probe_items = [
                    [data.hex(), port] for data, port in probe_trace
                ]
                replies = self._scatter([
                    (
                        worker,
                        "worker.probe_batch",
                        {"nodes": names, "items": probe_items},
                    )
                    for worker, names in by_worker
                ])
                rates: Dict[str, float] = {}
                for reply in replies:
                    if isinstance(reply, Exception):
                        raise reply
                    for entry in reply["results"]:
                        total, dropped = entry["total"], entry["dropped"]
                        rates[entry["node"]] = (
                            dropped / total if total else 0.0
                        )
                for name in wave:
                    rate = rates.get(name, 0.0)
                    report.probes[name] = rate
                    if rate > max_drop_rate:
                        unwind(
                            name,
                            HealthGateError(
                                f"node {name!r} drop rate {rate:.3f} "
                                f"exceeds gate {max_drop_rate:.3f}"
                            ),
                            later,
                        )

        for wave_index, wave in enumerate(waves):
            if self.workers and len(wave) > 1:
                run_wave_sharded(wave_index, wave)
            else:
                run_wave_serial(wave_index, wave)
            evidence_checkpoint(f"wave:{wave_index}")
            try:
                fleet_check(f"wave:{wave_index}")
            except HealthGateError as exc:
                pending = [n for w in waves[wave_index + 1:] for n in w]
                unwind(wave[-1] if wave else canary, exc, pending)
        if self.health is not None:
            for name in committed:
                report.health[name] = self.health.device_health(name)
        return report


class HealthGateError(FabricError):
    """A post-commit probe exceeded the allowed drop rate."""


@dataclass
class RolloutReport:
    """What a staged rollout did: per-node timings, probe drop rates,
    the canary, and the wave plan."""

    timings: Dict[str, float] = field(default_factory=dict)
    probes: Dict[str, float] = field(default_factory=dict)
    canary: Optional[str] = None
    waves: List[List[str]] = field(default_factory=list)
    #: In-band epoch observations, one dict per checkpoint (after the
    #: canary and after every wave): ``{"after", "packets", "epochs",
    #: "mismatched_packets"}`` -- see ``staged_rollout``.
    epoch_evidence: List[dict] = field(default_factory=list)
    #: With a health engine attached: every alert transition observed
    #: during soak and fleet checks (``AlertTransition.to_dict()``).
    alerts: List[dict] = field(default_factory=list)
    #: Last observed health score per gated node.
    health: Dict[str, float] = field(default_factory=dict)
    #: Flight-recorder post-mortem bundle, captured on abort (after
    #: the automatic rollbacks, so their events are included).
    flight_record: Optional[dict] = None

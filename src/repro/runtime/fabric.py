"""A multi-switch fabric: wire ipbm instances into a topology.

Each switch port is either an edge port (packets exit the fabric) or
wired to a peer switch's port.  ``send`` walks a packet hop by hop --
every hop is a full pipeline traversal on that device -- until it
exits at an edge or is dropped.  With every node independently
runtime-programmable, this is the "autonomous networks" setting the
paper's introduction sketches: functions can be rolled out node by
node while traffic keeps flowing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.runtime.controller import Controller


class FabricError(Exception):
    """Raised on malformed topologies."""


class RolloutError(FabricError):
    """A fleet-wide update failed part-way.

    Carries exactly what a production controller needs to reason about
    the blast radius: which nodes committed the new design
    (``updated``), which node failed and why (``failed``/``cause``),
    which committed nodes were automatically rolled back
    (``rolled_back``), and which were never touched (``pending``).
    """

    def __init__(
        self,
        message: str,
        updated: List[str],
        failed: str,
        cause: Exception,
        rolled_back: Optional[List[str]] = None,
        pending: Optional[List[str]] = None,
        report: Optional["RolloutReport"] = None,
    ) -> None:
        super().__init__(
            f"{message}: node {failed!r} failed "
            f"({type(cause).__name__}: {cause}); "
            f"updated={updated} rolled_back={rolled_back or []} "
            f"pending={pending or []}"
        )
        self.updated = list(updated)
        self.failed = failed
        self.cause = cause
        self.rolled_back = list(rolled_back or [])
        self.pending = list(pending or [])
        #: The partial rollout report -- alert transitions and the
        #: flight-recorder dump captured up to the abort live here.
        self.report = report


@dataclass(frozen=True)
class Delivery:
    """Where a packet left the fabric."""

    node: str
    port: int
    data: bytes
    hops: int
    path: Tuple[str, ...]


@dataclass
class FabricStats:
    injected: int = 0
    delivered: int = 0
    dropped: int = 0
    loops_cut: int = 0


class Fabric:
    """Named controllers plus a port-level wiring table."""

    def __init__(self, max_hops: int = 16) -> None:
        if max_hops <= 0:
            raise ValueError("max_hops must be positive")
        self.max_hops = max_hops
        self.nodes: Dict[str, Controller] = {}
        # (node, egress port) -> (peer node, peer ingress port)
        self._wires: Dict[Tuple[str, int], Tuple[str, int]] = {}
        self.stats = FabricStats()
        # Edge-side INT collector (see attach_int_collector): None
        # keeps delivery untouched.
        self.int_collector = None
        self._int_strip = True
        # Streaming health engine (see attach_health): None keeps the
        # legacy one-shot probe gate in staged_rollout.
        self.health = None

    # -- topology -------------------------------------------------------

    def add_node(self, name: str, controller: Controller) -> Controller:
        if name in self.nodes:
            raise FabricError(f"node {name!r} already exists")
        self.nodes[name] = controller
        return controller

    def node(self, name: str) -> Controller:
        try:
            return self.nodes[name]
        except KeyError:
            raise FabricError(f"no node named {name!r}") from None

    def wire(self, a: str, port_a: int, b: str, port_b: int) -> None:
        """Connect two ports bidirectionally."""
        self.node(a)
        self.node(b)
        for end, peer in (
            ((a, port_a), (b, port_b)),
            ((b, port_b), (a, port_a)),
        ):
            if end in self._wires:
                raise FabricError(f"port {end} is already wired")
            self._wires[end] = peer

    def peer(self, node: str, port: int) -> Optional[Tuple[str, int]]:
        return self._wires.get((node, port))

    # -- telemetry ------------------------------------------------------

    def attach_int_collector(self, collector=None, strip: bool = True):
        """Feed every edge delivery through an INT collector.

        The collector (default: a fresh
        :class:`repro.obs.intcol.IntCollector`) sees each packet as it
        exits the fabric; with ``strip=True`` the delivered bytes have
        the INT shim removed and the original EtherType restored, so
        the edge observes un-instrumented traffic while the collector
        keeps the telemetry.  Returns the collector.
        """
        if collector is None:
            from repro.obs.intcol import IntCollector

            collector = IntCollector()
        self.int_collector = collector
        self._int_strip = strip
        return collector

    def detach_int_collector(self):
        """Stop collecting at the edge; returns the detached collector."""
        collector, self.int_collector = self.int_collector, None
        return collector

    def attach_health(self, engine=None, rules=None, clock=None):
        """Attach a streaming health engine over every current node.

        The engine (default: a fresh :class:`repro.obs.health.
        HealthEngine` on ``clock``) gets one source per node -- the
        device registry plus the switch/controller timeline recorders
        -- and watches the INT collector when one is attached.  With
        an engine attached, :meth:`staged_rollout` gates on continuous
        health scores instead of the one-shot probe drop-rate check.
        ``rules`` defaults to :func:`repro.obs.health.default_rules`
        when the engine has none installed.  Returns the engine.
        """
        from repro.obs.health import HealthEngine, default_rules

        if engine is None:
            engine = HealthEngine(clock=clock)
        if rules is not None:
            engine.install(rules)
        elif not engine.rules:
            engine.install(default_rules())
        for name, controller in self.nodes.items():
            engine.add_source(
                name,
                controller.switch.metrics,
                switch=controller.switch,
                timelines=(controller.timelines, controller.switch.timelines),
            )
        if self.int_collector is not None:
            engine.watch_int(self.int_collector)
        self.health = engine
        return engine

    def detach_health(self):
        """Drop the health engine; returns the detached engine."""
        engine, self.health = self.health, None
        if engine is not None:
            for name in list(self.nodes):
                engine.remove_source(name)
        return engine

    # -- traffic ------------------------------------------------------------

    def send(self, node: str, data: bytes, port: int = 0) -> Optional[Delivery]:
        """Walk a packet through the fabric; None if dropped."""
        self.stats.injected += 1
        path: List[str] = []
        current, in_port = node, port
        for hop in range(self.max_hops):
            controller = self.node(current)
            path.append(current)
            out = controller.switch.inject(data, in_port)
            if out is None:
                self.stats.dropped += 1
                return None
            wire = self.peer(current, out.port)
            if wire is None:
                self.stats.delivered += 1
                delivered = out.data
                if self.int_collector is not None:
                    ingest = self.int_collector.ingest(
                        delivered, node=current, port=out.port
                    )
                    if self._int_strip:
                        delivered = ingest.stripped
                return Delivery(
                    node=current,
                    port=out.port,
                    data=delivered,
                    hops=hop + 1,
                    path=tuple(path),
                )
            data = out.data
            current, in_port = wire
        self.stats.loops_cut += 1
        return None

    def send_many(
        self, node: str, trace: List[Tuple[bytes, int]]
    ) -> List[Optional[Delivery]]:
        return [self.send(node, data, port) for data, port in trace]

    # -- fleet-wide updates ----------------------------------------------------

    def rollout(
        self,
        script_text: str,
        sources: Optional[Dict[str, str]] = None,
        nodes: Optional[List[str]] = None,
    ) -> Dict[str, float]:
        """Apply one in-situ update script across (some) nodes.

        Returns per-node total stall+compile seconds.  Nodes are
        updated one at a time -- traffic through the others keeps
        flowing, which is the whole point of in-situ programmability.

        A mid-rollout failure raises :class:`RolloutError` naming the
        nodes that already committed, the failing node, and the nodes
        never reached -- already-updated nodes are *not* reverted (use
        :meth:`staged_rollout` for automatic rollback).
        """
        order = list(nodes) if nodes is not None else list(self.nodes)
        timings: Dict[str, float] = {}
        updated: List[str] = []
        for position, name in enumerate(order):
            controller = self.node(name)
            try:
                _plan, _stats, timing = controller.run_script(
                    script_text, sources
                )
            except Exception as exc:
                raise RolloutError(
                    "rollout aborted",
                    updated=updated,
                    failed=name,
                    cause=exc,
                    pending=order[position + 1:],
                ) from exc
            timings[name] = timing.total_seconds
            updated.append(name)
        return timings

    def staged_rollout(
        self,
        script_text: str,
        sources: Optional[Dict[str, str]] = None,
        nodes: Optional[List[str]] = None,
        canary: Optional[str] = None,
        wave_size: int = 2,
        probe_trace: Optional[List[Tuple[bytes, int]]] = None,
        max_drop_rate: float = 0.0,
        evidence_trace: Optional[List[Tuple[bytes, int]]] = None,
        evidence_node: Optional[str] = None,
        soak_ticks: int = 3,
        min_health: float = 1.0,
        verify: str = "error",
    ) -> "RolloutReport":
        """Canary -> health gate -> waves, with automatic rollback.

        **Verify-before-canary.**  The canary's controller runs its
        rp4verify staging gate in ``verify`` mode (default ``error``):
        a staged update whose differential verification finds a
        confirmed unintended divergence is aborted while still shadow
        -- the rollout fails before *any* node in the fabric flips an
        epoch.  Pass ``verify="inherit"`` to keep the node's own gate
        mode, or ``"strict"``/``"warn"``/``"off"`` to override.
        Non-canary waves always inherit their node's configuration
        (the canary already proved the update).

        1. The **canary** node (default: the first) stages and commits
           the update, then must pass the health gate.  A failing
           canary is rolled back and :class:`RolloutError` raised --
           every node is left on its old design/epoch.
        2. Remaining nodes are updated in **waves** of ``wave_size``,
           each node gated the same way.  Any failure (update error or
           gate breach) triggers reverse-order rollback of *every*
           committed node before :class:`RolloutError` propagates.

        **The gate.**  Without a health engine attached the gate is the
        legacy one-shot check: ``probe_trace`` is injected through the
        node's front door and the observed drop rate must not exceed
        ``max_drop_rate``.  With :meth:`attach_health`, the gate is
        continuous: after each commit the node **soaks** for
        ``soak_ticks`` engine ticks (probe traffic re-injected each
        tick), its health score must stay at or above ``min_health``,
        and after every evidence checkpoint the whole committed fleet
        is re-checked -- a regression *between* waves aborts too.
        Every alert transition lands in :attr:`RolloutReport.alerts`;
        on abort the flight recorder freezes into
        :attr:`RolloutReport.flight_record` and the report rides the
        raised :class:`RolloutError` (``err.report``).

        With an INT collector attached and an ``evidence_trace``, the
        trace is sent end-to-end from ``evidence_node`` (default: the
        first rollout node) after the canary and after every wave;
        each checkpoint records the dataplane epochs the packets
        carried in-band in :attr:`RolloutReport.epoch_evidence` --
        mixed epochs are the packet's-eye view of the flip window.
        """
        if wave_size <= 0:
            raise ValueError("wave_size must be positive")
        order = list(nodes) if nodes is not None else list(self.nodes)
        if not order:
            return RolloutReport()
        canary = canary if canary is not None else order[0]
        if canary not in order:
            raise FabricError(f"canary {canary!r} is not in the rollout set")
        rest = [name for name in order if name != canary]
        waves = [
            rest[i:i + wave_size] for i in range(0, len(rest), wave_size)
        ]
        report = RolloutReport(canary=canary, waves=waves)
        committed: List[str] = []

        def evidence_checkpoint(after: str) -> None:
            collector = self.int_collector
            if collector is None or evidence_trace is None:
                return
            origin = evidence_node if evidence_node is not None else order[0]
            start = len(collector.records)
            for data, port in evidence_trace:
                self.send(origin, data, port)
            fresh = collector.records[start:]
            epochs = sorted({e for r in fresh for e in r["epochs"]})
            report.epoch_evidence.append(
                {
                    "after": after,
                    "packets": len(fresh),
                    "epochs": epochs,
                    "mismatched_packets": sum(
                        1 for r in fresh if r["epoch_mismatch"]
                    ),
                }
            )

        def probe(name: str) -> float:
            result = self.node(name).switch.inject_batch(probe_trace)
            rate = result.dropped / len(result) if len(result) else 0.0
            report.probes[name] = rate
            return rate

        def soak(name: str) -> None:
            """Continuous gate: probe + engine tick, ``soak_ticks``
            times; the node's score must hold ``min_health``."""
            engine = self.health
            for _ in range(max(1, soak_ticks)):
                if probe_trace is not None:
                    probe(name)
                for transition in engine.tick():
                    report.alerts.append(transition.to_dict())
                score = engine.device_health(name)
                report.health[name] = score
                if score < min_health:
                    raise HealthGateError(
                        f"node {name!r} health {score:.2f} fell below "
                        f"gate {min_health:.2f} during soak: "
                        + ", ".join(
                            a.rule.name for a in engine.firing(name)
                        )
                    )

        def fleet_check(after: str) -> None:
            """Between-wave gate: one tick, every committed node must
            still hold ``min_health``."""
            engine = self.health
            if engine is None or not committed:
                return
            for transition in engine.tick():
                report.alerts.append(transition.to_dict())
            for name in committed:
                score = engine.device_health(name)
                report.health[name] = score
                if score < min_health:
                    raise HealthGateError(
                        f"node {name!r} health {score:.2f} fell below "
                        f"gate {min_health:.2f} after {after}"
                    )

        def update_and_gate(name: str) -> None:
            controller = self.node(name)
            staged = controller.stage_update(script_text, sources)
            _plan, _stats, timing = staged.commit()
            committed.append(name)
            report.timings[name] = timing.total_seconds
            if self.health is not None:
                soak(name)
            elif probe_trace is not None:
                rate = probe(name)
                if rate > max_drop_rate:
                    raise HealthGateError(
                        f"node {name!r} drop rate {rate:.3f} exceeds "
                        f"gate {max_drop_rate:.3f}"
                    )

        def unwind(failed: str, cause: Exception, pending: List[str]) -> None:
            rolled_back: List[str] = []
            for name in reversed(committed):
                self.node(name).rollback()
                rolled_back.append(name)
            if self.health is not None:
                report.flight_record = self.health.recorder.dump(
                    reason="rollout_abort"
                )
            raise RolloutError(
                "staged rollout aborted",
                updated=list(committed),
                failed=failed,
                cause=cause,
                rolled_back=rolled_back,
                pending=pending,
                report=report,
            ) from cause

        canary_controller = self.node(canary)
        previous_verify = canary_controller.verify_updates
        if verify != "inherit":
            canary_controller.verify_updates = verify
        try:
            update_and_gate(canary)
        except Exception as exc:
            unwind(canary, exc, rest)
        finally:
            canary_controller.verify_updates = previous_verify
        evidence_checkpoint(f"canary:{canary}")
        try:
            fleet_check(f"canary:{canary}")
        except HealthGateError as exc:
            unwind(canary, exc, rest)
        for wave_index, wave in enumerate(waves):
            for position, name in enumerate(wave):
                try:
                    update_and_gate(name)
                except Exception as exc:
                    pending = wave[position + 1:] + [
                        n for w in waves[wave_index + 1:] for n in w
                    ]
                    unwind(name, exc, pending)
            evidence_checkpoint(f"wave:{wave_index}")
            try:
                fleet_check(f"wave:{wave_index}")
            except HealthGateError as exc:
                pending = [n for w in waves[wave_index + 1:] for n in w]
                unwind(wave[-1] if wave else canary, exc, pending)
        if self.health is not None:
            for name in committed:
                report.health[name] = self.health.device_health(name)
        return report


class HealthGateError(FabricError):
    """A post-commit probe exceeded the allowed drop rate."""


@dataclass
class RolloutReport:
    """What a staged rollout did: per-node timings, probe drop rates,
    the canary, and the wave plan."""

    timings: Dict[str, float] = field(default_factory=dict)
    probes: Dict[str, float] = field(default_factory=dict)
    canary: Optional[str] = None
    waves: List[List[str]] = field(default_factory=list)
    #: In-band epoch observations, one dict per checkpoint (after the
    #: canary and after every wave): ``{"after", "packets", "epochs",
    #: "mismatched_packets"}`` -- see ``staged_rollout``.
    epoch_evidence: List[dict] = field(default_factory=list)
    #: With a health engine attached: every alert transition observed
    #: during soak and fleet checks (``AlertTransition.to_dict()``).
    alerts: List[dict] = field(default_factory=list)
    #: Last observed health score per gated node.
    health: Dict[str, float] = field(default_factory=dict)
    #: Flight-recorder post-mortem bundle, captured on abort (after
    #: the automatic rollbacks, so their events are included).
    flight_record: Optional[dict] = None

"""Device introspection: structured statistics snapshots.

The controller reads these over the control channel to monitor a live
switch -- per-TSP activity, per-table occupancy/hit rates, TM queue
behavior, and device-level packet counters.  Snapshots are plain
dicts (JSON-serializable) and support diffing, so a monitoring loop
can report *rates* between polls.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.ipsa.switch import IpsaSwitch


def snapshot(switch: IpsaSwitch) -> dict:
    """A JSON-serializable statistics snapshot of a live device."""
    tsps = []
    for tsp in switch.pipeline.tsps:
        tsps.append(
            {
                "index": tsp.index,
                "side": tsp.side,
                "state": tsp.state.value,
                "stages": [s.name for s in tsp.stages],
                "packets": tsp.stats.packets,
                "lookups": tsp.stats.lookups,
                "headers_parsed": tsp.stats.headers_parsed,
                "actions_run": tsp.stats.actions_run,
                "templates_written": tsp.stats.templates_written,
            }
        )
    tables = {}
    for name, table in switch.tables.items():
        tables[name] = {
            "entries": len(table),
            "size": table.size,
            "hits": table.hit_count,
            "misses": table.miss_count,
        }
    tm = switch.pipeline.tm
    sketches = {
        name: {"updates": sk.updates, "columns": sk.columns, "rows": len(sk.rows)}
        for name, sk in switch.externs.sketches.items()
    }
    meters = {
        name: {
            "rate": bucket.rate,
            "burst": bucket.burst,
            "conforming": bucket.stats.conforming,
            "exceeding": bucket.stats.exceeding,
        }
        for name, bucket in switch.meters._meters.items()
    }
    return {
        "device": {
            "packets_in": switch.packets_in,
            "packets_out": switch.packets_out,
            "packets_dropped": switch.packets_dropped,
            "punted": switch.punted,
            "active_tsps": switch.active_tsp_count(),
        },
        "tsps": tsps,
        "tables": tables,
        "tm": {
            "enqueued": tm.stats.enqueued,
            "dequeued": tm.stats.dequeued,
            "dropped": tm.stats.dropped,
            "max_occupancy": tm.stats.max_occupancy,
        },
        "sketches": sketches,
        "meters": meters,
    }


def diff(before: dict, after: dict) -> dict:
    """Counter deltas between two snapshots (same shape, ints diffed).

    Non-counter fields (names, states) are taken from ``after``.
    """

    def diff_value(b, a):
        if isinstance(a, int) and isinstance(b, int) and not isinstance(a, bool):
            return a - b
        if isinstance(a, dict) and isinstance(b, dict):
            return {k: diff_value(b.get(k, 0 if isinstance(v, int) else v), v)
                    for k, v in a.items()}
        if isinstance(a, list) and isinstance(b, list) and len(a) == len(b):
            return [diff_value(x, y) for x, y in zip(b, a)]
        return a

    return diff_value(before, after)


def format_stats(stats: dict) -> str:
    """Human-readable rendering of a snapshot (or a diff)."""
    lines: List[str] = []
    device = stats.get("device", {})
    lines.append(
        "device: in={packets_in} out={packets_out} drop={packets_dropped} "
        "punt={punted} active_tsps={active_tsps}".format(**device)
    )
    for tsp in stats.get("tsps", []):
        if not tsp["stages"] and not tsp["packets"]:
            continue
        lines.append(
            f"  TSP {tsp['index']} [{tsp['side']:7s} {tsp['state']:8s}] "
            f"{'+'.join(tsp['stages']) or '-':32s} "
            f"pkts={tsp['packets']:<6d} lookups={tsp['lookups']:<6d} "
            f"parsed={tsp['headers_parsed']}"
        )
    for name, table in sorted(stats.get("tables", {}).items()):
        lines.append(
            f"  table {name:16s} {table['entries']}/{table['size']} entries, "
            f"hits={table['hits']} misses={table['misses']}"
        )
    tm = stats.get("tm", {})
    if tm:
        lines.append(
            f"  TM: enq={tm['enqueued']} deq={tm['dequeued']} "
            f"drop={tm['dropped']} max_occ={tm['max_occupancy']}"
        )
    return "\n".join(lines)

"""Device introspection: structured statistics snapshots.

The controller reads these over the control channel to monitor a live
switch -- per-TSP activity, per-table occupancy/hit rates, TM queue
behavior, and device-level packet counters.  Snapshots are plain
dicts (JSON-serializable) and support diffing, so a monitoring loop
can report *rates* between polls.

Since the obs layer landed, every numeric field here is sourced from
the switch's :class:`repro.obs.metrics.MetricsRegistry` -- this module
is a *compatibility view* that pivots the registry's flat samples
back into the legacy nested snapshot shape (plus the non-numeric
structure -- TSP sides/states/stage names -- which is configuration,
not metrics).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.ipsa.switch import IpsaSwitch
from repro.obs.metrics import Sample

_SampleIndex = Dict[str, Dict[Tuple[Tuple[str, str], ...], float]]


def _index(samples: List[Sample]) -> _SampleIndex:
    indexed: _SampleIndex = {}
    for sample in samples:
        indexed.setdefault(sample.name, {})[
            tuple(sorted(sample.labels.items()))
        ] = sample.value
    return indexed


def _value(indexed: _SampleIndex, name: str, **labels: object):
    key = tuple(sorted((k, str(v)) for k, v in labels.items()))
    return indexed.get(name, {}).get(key, 0)


def _labelled(indexed: _SampleIndex, name: str, label: str) -> Dict[str, float]:
    """Every sample of ``name``, keyed by its ``label`` value."""
    out = {}
    for label_items, value in indexed.get(name, {}).items():
        labels = dict(label_items)
        if label in labels:
            out[labels[label]] = value
    return out


def snapshot(switch: IpsaSwitch) -> dict:
    """A JSON-serializable statistics snapshot of a live device.

    A thin pivot of ``switch.metrics.collect()`` into the legacy
    nested shape (the registry is the source of truth).
    """
    indexed = _index(switch.metrics.collect())

    tsps = []
    for tsp in switch.pipeline.tsps:
        tsps.append(
            {
                "index": tsp.index,
                "side": tsp.side,
                "state": tsp.state.value,
                "stages": [s.name for s in tsp.stages],
                "packets": _value(indexed, "tsp.packets", tsp=tsp.index),
                "lookups": _value(indexed, "tsp.lookups", tsp=tsp.index),
                "headers_parsed": _value(
                    indexed, "tsp.headers_parsed", tsp=tsp.index
                ),
                "actions_run": _value(
                    indexed, "tsp.actions_run", tsp=tsp.index
                ),
                "templates_written": _value(
                    indexed, "tsp.templates_written", tsp=tsp.index
                ),
            }
        )
    tables = {}
    for name in switch.tables:
        tables[name] = {
            "entries": _value(indexed, "table.entries", table=name),
            "size": _value(indexed, "table.size", table=name),
            "hits": _value(indexed, "table.hits", table=name),
            "misses": _value(indexed, "table.misses", table=name),
        }
    sketches = {
        name: {
            "updates": _value(indexed, "sketch.updates", sketch=name),
            "columns": _value(indexed, "sketch.columns", sketch=name),
            "rows": _value(indexed, "sketch.rows", sketch=name),
        }
        for name in switch.externs.sketches
    }
    meters = {
        name: {
            "rate": _value(indexed, "meter.rate", meter=name),
            "burst": _value(indexed, "meter.burst", meter=name),
            "conforming": _value(indexed, "meter.conforming", meter=name),
            "exceeding": _value(indexed, "meter.exceeding", meter=name),
        }
        for name in switch.meters.names()
    }
    return {
        "device": {
            "packets_in": _value(indexed, "device.packets_in"),
            "packets_out": _value(indexed, "device.packets_out"),
            "packets_dropped": _value(indexed, "device.packets_dropped"),
            "punted": _value(indexed, "device.punted"),
            "active_tsps": _value(indexed, "device.active_tsps"),
            "drop_reasons": _labelled(indexed, "device.drops", "reason"),
        },
        "tsps": tsps,
        "tables": tables,
        "tm": {
            "enqueued": _value(indexed, "tm.enqueued"),
            "dequeued": _value(indexed, "tm.dequeued"),
            "dropped": _value(indexed, "tm.dropped"),
            "max_occupancy": _value(indexed, "tm.max_occupancy"),
        },
        "sketches": sketches,
        "meters": meters,
    }


def diff(before: dict, after: dict) -> dict:
    """Counter deltas between two snapshots (same shape, ints diffed).

    Non-counter fields (names, states) are taken from ``after``.
    Lists whose lengths differ (e.g. a TSP list that changed across an
    elastic-pipeline resize) are aligned by each element's ``index``
    key when present, otherwise positionally; elements present only in
    ``after`` pass through unchanged.
    """

    def diff_value(b, a):
        if isinstance(a, int) and isinstance(b, int) and not isinstance(a, bool):
            return a - b
        if isinstance(a, dict) and isinstance(b, dict):
            return {k: diff_value(b.get(k, 0 if isinstance(v, int) else v), v)
                    for k, v in a.items()}
        if isinstance(a, list) and isinstance(b, list):
            return diff_list(b, a)
        return a

    def diff_list(b, a):
        def indexable(items):
            return all(
                isinstance(item, dict) and "index" in item for item in items
            )

        if indexable(a) and indexable(b):
            by_index = {item["index"]: item for item in b}
            return [
                diff_value(by_index[item["index"]], item)
                if item["index"] in by_index
                else item
                for item in a
            ]
        return [
            diff_value(b[i], item) if i < len(b) else item
            for i, item in enumerate(a)
        ]

    return diff_value(before, after)


def format_stats(stats: dict) -> str:
    """Human-readable rendering of a snapshot (or a diff).

    Tolerates partial snapshots: sections or fields a filtered diff
    dropped are skipped (or rendered with zero defaults) rather than
    raising ``KeyError``.
    """
    lines: List[str] = []
    device = stats.get("device") or {}
    if device:
        lines.append(
            "device: in={packets_in} out={packets_out} drop={packets_dropped} "
            "punt={punted} active_tsps={active_tsps}".format(
                packets_in=device.get("packets_in", 0),
                packets_out=device.get("packets_out", 0),
                packets_dropped=device.get("packets_dropped", 0),
                punted=device.get("punted", 0),
                active_tsps=device.get("active_tsps", 0),
            )
        )
        reasons = device.get("drop_reasons") or {}
        if any(reasons.values()):
            rendered = " ".join(
                f"{reason}={count}"
                for reason, count in sorted(reasons.items())
                if count
            )
            lines.append(f"  drops by reason: {rendered}")
    for tsp in stats.get("tsps", []):
        if not tsp.get("stages") and not tsp.get("packets"):
            continue
        lines.append(
            f"  TSP {tsp.get('index', '?')} "
            f"[{tsp.get('side', '?'):7s} {tsp.get('state', '?'):8s}] "
            f"{'+'.join(tsp.get('stages', [])) or '-':32s} "
            f"pkts={tsp.get('packets', 0):<6d} "
            f"lookups={tsp.get('lookups', 0):<6d} "
            f"parsed={tsp.get('headers_parsed', 0)}"
        )
    for name, table in sorted((stats.get("tables") or {}).items()):
        lines.append(
            f"  table {name:16s} "
            f"{table.get('entries', 0)}/{table.get('size', 0)} entries, "
            f"hits={table.get('hits', 0)} misses={table.get('misses', 0)}"
        )
    tm = stats.get("tm") or {}
    if tm:
        lines.append(
            f"  TM: enq={tm.get('enqueued', 0)} deq={tm.get('dequeued', 0)} "
            f"drop={tm.get('dropped', 0)} max_occ={tm.get('max_occupancy', 0)}"
        )
    return "\n".join(lines)

"""Runtime table access APIs (the machinery rp4fc's generated classes
bind to).

A :class:`TableApi` validates key shape and match kinds, assigns the
executor tag from the action name, and installs entries into the live
table object -- what a controller would do over P4Runtime/gRPC in a
production deployment.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.tables.table import Table, TableEntry

KeyPart = Union[int, Tuple[int, int]]


class TableApiError(Exception):
    """Raised on malformed API calls."""


class TableApi:
    """Validated access to one logical table."""

    #: Overridden by generated subclasses.
    TABLE: str = ""
    KEY_FIELDS: List[str] = []
    MATCH_KINDS: List[str] = []
    SIZE: int = 0

    def __init__(
        self,
        table: Table,
        action_tags: Optional[Dict[str, int]] = None,
    ) -> None:
        self._table = table
        self._action_tags = dict(action_tags or {})
        if not self.TABLE:
            self.TABLE = table.name
        if not self.KEY_FIELDS:
            self.KEY_FIELDS = [k.ref for k in table.key]
            self.MATCH_KINDS = [k.kind.value for k in table.key]
            self.SIZE = table.size

    # -- entry management ---------------------------------------------------

    def install(
        self,
        key: Sequence[KeyPart],
        action: str,
        action_data: Optional[Dict[str, int]] = None,
        priority: int = 0,
        tag: Optional[int] = None,
    ) -> TableEntry:
        """Validate and install one entry; returns it for bookkeeping."""
        kinds = self.MATCH_KINDS
        is_hash = bool(kinds) and all(k == "hash" for k in kinds)
        key_tuple = tuple(key)
        if not is_hash and len(key_tuple) != len(kinds):
            raise TableApiError(
                f"table {self.TABLE!r}: key has {len(key_tuple)} parts, "
                f"expected {len(kinds)}"
            )
        if not is_hash:
            for part, kind in zip(key_tuple, kinds):
                if kind == "lpm" and not (
                    isinstance(part, tuple) and len(part) == 2
                ):
                    raise TableApiError(
                        f"table {self.TABLE!r}: lpm key part must be "
                        "(value, prefix_len)"
                    )
                if kind == "exact" and not isinstance(part, int):
                    raise TableApiError(
                        f"table {self.TABLE!r}: exact key part must be an int"
                    )
        entry = TableEntry(
            key=() if is_hash else key_tuple,
            action=action,
            action_data=dict(action_data or {}),
            tag=tag if tag is not None else self._action_tags.get(action, 1),
            priority=priority,
        )
        self._table.add_entry(entry)
        return entry

    def remove(self, entry: TableEntry) -> None:
        self._table.remove_entry(entry)

    def clear(self) -> None:
        self._table.clear()

    def entries(self) -> List[TableEntry]:
        return self._table.entries()

    def __len__(self) -> int:
        return len(self._table)

"""ipbm-ctl: a command-line controller for the ipbm software switch.

A batch-oriented CLI (each invocation runs a command file), mirroring
the paper's "simple command-line interface, allowing users to load or
offload on-demand protocols and functions at runtime"::

    ipbm-ctl base.rp4 --script updates.txt --snippet ecmp.rp4=./ecmp.rp4

prints the compile/load timings and the resulting TSP mapping.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional

from repro.compiler.merge import group_key
from repro.compiler.rp4bc import TargetSpec
from repro.runtime.controller import Controller


def _load_snippets(pairs: List[str]) -> Dict[str, str]:
    sources: Dict[str, str] = {}
    for pair in pairs:
        name, _, path = pair.partition("=")
        if not path:
            raise SystemExit(f"--snippet expects name=path, got {pair!r}")
        with open(path) as fh:
            sources[name] = fh.read()
    return sources


def _print_mapping(controller: Controller, out) -> None:
    design = controller.design
    assert design is not None
    out.write("TSP mapping:\n")
    for side, group in design.plan.all_groups():
        slot = design.layout.slot_of(group_key(group))
        out.write(f"  TSP {slot} [{side:7s}] {' + '.join(group)}\n")
    selector = design.config["selector"]
    out.write(
        f"selector: tm_input={selector['tm_input']} "
        f"tm_output={selector['tm_output']} bypassed={selector['bypassed']}\n"
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="ipbm-ctl", description="controller for the ipbm software switch"
    )
    parser.add_argument("base", help="rP4 base design file")
    parser.add_argument("--tsps", type=int, default=8)
    parser.add_argument("--script", help="in-situ update script to run")
    parser.add_argument(
        "--snippet", action="append", default=[],
        help="name=path for snippets referenced by the script",
    )
    parser.add_argument(
        "--populate", action="store_true",
        help="install the reference topology (base + known use-case tables)",
    )
    parser.add_argument("--pcap-in", help="replay this pcap through the switch")
    parser.add_argument("--pcap-out", help="write forwarded packets here")
    parser.add_argument(
        "--port", type=int, default=0, help="ingress port for --pcap-in"
    )
    parser.add_argument(
        "--stats", action="store_true", help="print device statistics at exit"
    )
    args = parser.parse_args(argv)
    out = sys.stdout

    with open(args.base) as fh:
        base_source = fh.read()
    controller = Controller(TargetSpec(n_tsps=args.tsps))
    timing = controller.load_base(base_source)
    out.write(
        f"base design loaded: t_C={timing.compile_seconds * 1000:.1f}ms "
        f"t_L={timing.load_seconds * 1000:.1f}ms\n"
    )
    _print_mapping(controller, out)
    if args.populate:
        _populate(controller, out)

    if args.script:
        with open(args.script) as fh:
            script_text = fh.read()
        plan, stats, timing = controller.run_script(
            script_text, _load_snippets(args.snippet)
        )
        out.write(
            f"update applied: t_C={timing.compile_seconds * 1000:.1f}ms "
            f"t_L={timing.load_seconds * 1000:.1f}ms "
            f"(templates={stats.templates_written}, "
            f"new tables={stats.tables_created}, "
            f"freed={stats.tables_removed})\n"
        )
        _print_mapping(controller, out)
        if args.populate:
            _populate(controller, out)

    if args.pcap_in:
        _replay(controller, args, out)

    if args.stats:
        from repro.runtime.stats import format_stats, snapshot

        out.write(format_stats(snapshot(controller.switch)) + "\n")
    return 0


def _populate(controller: Controller, out) -> None:
    """Best-effort reference population for whatever tables exist."""
    from repro import programs

    installed = []
    for populate in (
        programs.populate_base_tables,
        programs.populate_ecmp_tables,
        programs.populate_srv6_tables,
        programs.populate_flowprobe_tables,
    ):
        try:
            populate(controller.switch.tables)
            installed.append(populate.__name__)
        except KeyError:
            continue
    out.write(f"populated: {', '.join(installed) or 'nothing'}\n")


def _replay(controller: Controller, args, out) -> None:
    from repro.net.pcap import PcapWriter, load_trace

    trace = load_trace(args.pcap_in, port=args.port)
    writer = None
    sink = None
    if args.pcap_out:
        sink = open(args.pcap_out, "wb")
        writer = PcapWriter(sink)
    forwarded = dropped = 0
    try:
        for data, port in trace:
            result = controller.switch.inject(data, port)
            if result is None:
                dropped += 1
            else:
                forwarded += 1
                if writer is not None:
                    writer.write(result.data)
    finally:
        if sink is not None:
            sink.close()
    out.write(
        f"replayed {len(trace)} packets: {forwarded} forwarded, "
        f"{dropped} dropped\n"
    )

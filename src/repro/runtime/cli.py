"""ipbm-ctl: a command-line controller for the ipbm software switch.

A batch-oriented CLI (each invocation runs a command file), mirroring
the paper's "simple command-line interface, allowing users to load or
offload on-demand protocols and functions at runtime"::

    ipbm-ctl base.rp4 --script updates.txt --snippet ecmp.rp4=./ecmp.rp4

prints the compile/load timings and the resulting TSP mapping.

Observability flags capture what a run recorded (``--trace N`` +
``--trace-out``, ``--timeline-out``, ``--metrics-out``,
``--stats-out``), and three offline subcommands render those exports
back into human-readable form::

    ipbm-ctl stats stats.json            # snapshot/diff -> text
    ipbm-ctl trace traces.jsonl          # packet trace trees
    ipbm-ctl timeline timelines.jsonl    # update phase breakdowns

Two performance subcommands run scenarios live: ``profile`` replays a
workload under the profiler and renders the per-stage cost table (plus
an optional folded-stack file for flamegraph tooling), and ``bench``
is a shortcut to the benchmark harness (``python -m
repro.bench.harness``)::

    ipbm-ctl profile --switch ipsa --case C1 --packets 500
    ipbm-ctl bench --smoke --out BENCH_ci.json

``ipbm-ctl lint`` is the rp4lint static analyzer (also installed as
the ``rp4lint`` console script): parse-soundness, dead-code, and
memory-feasibility diagnostics over rP4 sources and config JSON
before anything touches a device::

    ipbm-ctl lint base.rp4 --strict --format sarif
    ipbm-ctl lint --shipped

``ipbm-ctl verify`` is the rp4verify symbolic differential verifier
(also installed as the ``rp4verify`` console script): it stages an
update against a freshly loaded base, enumerates symbolic flow
classes live-vs-shadow, classifies each as equivalent / intended /
unintended, and synthesizes replayable witness packets for every
divergence -- then aborts the txn without touching the device::

    ipbm-ctl verify base.rp4 updates.txt acl.rp4 --format sarif
    ipbm-ctl verify --shipped --max-seconds 2.0

``ipbm-ctl update`` drives the transactional update path explicitly:
``--staged`` stages (prepare + validate) and then commits with the
stall reported, ``--abort`` stops after staging and proves the device
untouched (a dry run), and ``--nodes N`` runs a canary -> waves staged
rollout across an N-node fabric::

    ipbm-ctl update base.rp4 --script updates.txt --staged
    ipbm-ctl update base.rp4 --script updates.txt --abort
    ipbm-ctl update base.rp4 --script updates.txt --nodes 4 --wave-size 2

``ipbm-ctl int`` stands up a line fabric with multi-hop in-band
telemetry enabled and renders (or exports) what the collector
reconstructed from the hop stacks::

    ipbm-ctl int report --nodes 3 --packets 12
    ipbm-ctl int export records.jsonl --metrics-out int.prom

``ipbm-ctl health`` drives the streaming health engine against an
example fabric: ``check`` runs a fixed number of evaluation ticks and
exits non-zero if any alert is firing, ``watch`` streams per-tick
transitions, ``rules`` renders/round-trips rule files, and ``dump``
runs a deliberately faulty staged rollout and writes the resulting
flight-recorder post-mortem::

    ipbm-ctl health check --nodes 3 --packets 6 --ticks 4
    ipbm-ctl health check --fault n1 --json
    ipbm-ctl health rules --out rules.json
    ipbm-ctl health dump postmortem.json --nodes 4

``ipbm-ctl soak`` runs the fleet soak harness (``python -m
repro.bench.soak``): a sharded fleet replays a known-forwarding trace
through every node while staged rollouts cycle continuously, then the
run's traffic, metric-consistency, memory, and rollout checks are
reported (``--validate`` gates on them)::

    ipbm-ctl soak --nodes 50 --packets 100000 --validate
    ipbm-ctl soak                       # full: 1000 nodes, 10M packets
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional

from repro.compiler.merge import group_key
from repro.compiler.rp4bc import TargetSpec
from repro.runtime.controller import Controller

OBS_COMMANDS = ("stats", "trace", "timeline", "profile", "bench")


def _load_snippets(pairs: List[str]) -> Dict[str, str]:
    sources: Dict[str, str] = {}
    for pair in pairs:
        name, _, path = pair.partition("=")
        if not path:
            raise SystemExit(f"--snippet expects name=path, got {pair!r}")
        with open(path) as fh:
            sources[name] = fh.read()
    return sources


def _print_mapping(controller: Controller, out) -> None:
    design = controller.design
    assert design is not None
    out.write("TSP mapping:\n")
    for side, group in design.plan.all_groups():
        slot = design.layout.slot_of(group_key(group))
        out.write(f"  TSP {slot} [{side:7s}] {' + '.join(group)}\n")
    selector = design.config["selector"]
    out.write(
        f"selector: tm_input={selector['tm_input']} "
        f"tm_output={selector['tm_output']} bypassed={selector['bypassed']}\n"
    )


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] in OBS_COMMANDS:
        return _obs_main(argv)
    if argv and argv[0] == "lint":
        from repro.analysis.cli import main as rp4lint_main

        return rp4lint_main(argv[1:])
    if argv and argv[0] == "verify":
        from repro.analysis.verify_cli import main as rp4verify_main

        return rp4verify_main(argv[1:])
    if argv and argv[0] == "update":
        return _update_main(argv[1:])
    if argv and argv[0] == "int":
        return _int_main(argv[1:])
    if argv and argv[0] == "health":
        return _health_main(argv[1:])
    if argv and argv[0] == "soak":
        from repro.bench.soak import main as soak_main

        return soak_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="ipbm-ctl", description="controller for the ipbm software switch"
    )
    parser.add_argument("base", help="rP4 base design file")
    parser.add_argument("--tsps", type=int, default=8)
    parser.add_argument("--script", help="in-situ update script to run")
    parser.add_argument(
        "--snippet", action="append", default=[],
        help="name=path for snippets referenced by the script",
    )
    parser.add_argument(
        "--populate", action="store_true",
        help="install the reference topology (base + known use-case tables)",
    )
    parser.add_argument("--pcap-in", help="replay this pcap through the switch")
    parser.add_argument("--pcap-out", help="write forwarded packets here")
    parser.add_argument(
        "--port", type=int, default=0, help="ingress port for --pcap-in"
    )
    parser.add_argument(
        "--stats", action="store_true", help="print device statistics at exit"
    )
    parser.add_argument(
        "--stats-out", help="write the final statistics snapshot (JSON)"
    )
    parser.add_argument(
        "--trace", type=int, default=0, metavar="N",
        help="trace the first N replayed packets (needs --pcap-in)",
    )
    parser.add_argument(
        "--trace-out", help="write captured packet traces (JSON lines)"
    )
    parser.add_argument(
        "--timeline-out",
        help="write controller + device update timelines (JSON lines)",
    )
    parser.add_argument(
        "--metrics-out", help="write Prometheus-style metrics exposition"
    )
    args = parser.parse_args(argv)
    out = sys.stdout

    with open(args.base) as fh:
        base_source = fh.read()
    controller = Controller(TargetSpec(n_tsps=args.tsps))
    timing = controller.load_base(base_source)
    out.write(
        f"base design loaded: t_C={timing.compile_seconds * 1000:.1f}ms "
        f"t_L={timing.load_seconds * 1000:.1f}ms\n"
    )
    _print_mapping(controller, out)
    if args.populate:
        _populate(controller, out)

    if args.script:
        with open(args.script) as fh:
            script_text = fh.read()
        plan, stats, timing = controller.run_script(
            script_text, _load_snippets(args.snippet)
        )
        out.write(
            f"update applied: t_C={timing.compile_seconds * 1000:.1f}ms "
            f"t_L={timing.load_seconds * 1000:.1f}ms "
            f"(templates={stats.templates_written}, "
            f"new tables={stats.tables_created}, "
            f"freed={stats.tables_removed})\n"
        )
        _print_mapping(controller, out)
        if args.populate:
            _populate(controller, out)

    captured_tracer = None
    if args.pcap_in:
        captured_tracer = _replay(controller, args, out)

    if args.stats:
        from repro.runtime.stats import format_stats, snapshot

        out.write(format_stats(snapshot(controller.switch)) + "\n")
    _write_exports(controller, args, out, captured_tracer)
    return 0


def _populate(controller: Controller, out) -> None:
    """Best-effort reference population for whatever tables exist."""
    from repro import programs

    installed = []
    for populate in (
        programs.populate_base_tables,
        programs.populate_ecmp_tables,
        programs.populate_srv6_tables,
        programs.populate_flowprobe_tables,
    ):
        try:
            populate(controller.switch.tables)
            installed.append(populate.__name__)
        except KeyError:
            continue
    out.write(f"populated: {', '.join(installed) or 'nothing'}\n")


def _replay(controller: Controller, args, out):
    """Replay the pcap; returns the packet tracer if tracing was on."""
    from repro.net.pcap import PcapWriter, load_trace

    trace = load_trace(args.pcap_in, port=args.port)
    writer = None
    sink = None
    if args.pcap_out:
        sink = open(args.pcap_out, "wb")
        writer = PcapWriter(sink)
    tracer = None
    if args.trace > 0:
        tracer = controller.switch.enable_tracing(capacity=args.trace)
    forwarded = dropped = 0
    try:
        for i, (data, port) in enumerate(trace):
            if tracer is not None and i == args.trace:
                controller.switch.disable_tracing()  # captured enough
            result = controller.switch.inject(data, port)
            if result is None:
                dropped += 1
            else:
                forwarded += 1
                if writer is not None:
                    writer.write(result.data)
    finally:
        if sink is not None:
            sink.close()
    out.write(
        f"replayed {len(trace)} packets: {forwarded} forwarded, "
        f"{dropped} dropped\n"
    )
    return tracer


def _write_exports(controller: Controller, args, out, captured_tracer=None) -> None:
    """Persist whatever observability sinks the flags asked for."""
    from repro.obs.export import export_timelines, export_traces

    if args.trace_out:
        tracer = captured_tracer or controller.switch.tracer
        if tracer is None:
            from repro.obs.trace import PacketTracer

            tracer = PacketTracer()  # empty export: still a valid file
        count = export_traces(tracer, args.trace_out)
        out.write(f"wrote {count} packet traces to {args.trace_out}\n")
    if args.timeline_out:
        count = export_timelines(
            [controller.timelines, controller.switch.timelines],
            args.timeline_out,
        )
        out.write(f"wrote {count} timelines to {args.timeline_out}\n")
    if args.metrics_out:
        with open(args.metrics_out, "w") as fh:
            fh.write(controller.switch.metrics.to_prometheus())
            fh.write(controller.metrics.to_prometheus())
        out.write(f"wrote metrics exposition to {args.metrics_out}\n")
    if args.stats_out:
        from repro.runtime.stats import snapshot

        with open(args.stats_out, "w") as fh:
            json.dump(snapshot(controller.switch), fh, indent=2, sort_keys=True)
            fh.write("\n")
        out.write(f"wrote statistics snapshot to {args.stats_out}\n")


# -- transactional update subcommand ---------------------------------------


def _update_main(argv: List[str]) -> int:
    """``ipbm-ctl update``: the staged / transactional update path."""
    parser = argparse.ArgumentParser(
        prog="ipbm-ctl update",
        description="stage, commit, or abort an in-situ update "
        "transactionally (optionally across a fabric)",
    )
    parser.add_argument("base", help="rP4 base design file")
    parser.add_argument("--script", required=True, help="update script")
    parser.add_argument(
        "--snippet", action="append", default=[],
        help="name=path for snippets referenced by the script",
    )
    parser.add_argument("--tsps", type=int, default=8)
    parser.add_argument(
        "--staged", action="store_true",
        help="report the staging phases before committing (the default "
        "path is the same transaction, committed immediately)",
    )
    parser.add_argument(
        "--abort", action="store_true",
        help="stage the update, then abort instead of committing "
        "(a dry run: validates against the live device, changes nothing)",
    )
    parser.add_argument(
        "--nodes", type=int, default=1, metavar="N",
        help="run a staged rollout across an N-node fabric",
    )
    parser.add_argument(
        "--canary", help="canary node name for --nodes (default: first)"
    )
    parser.add_argument("--wave-size", type=int, default=2)
    args = parser.parse_args(argv)
    out = sys.stdout

    with open(args.base) as fh:
        base_source = fh.read()
    with open(args.script) as fh:
        script_text = fh.read()
    sources = _load_snippets(args.snippet)

    if args.nodes > 1:
        return _staged_rollout(args, base_source, script_text, sources, out)

    controller = Controller(TargetSpec(n_tsps=args.tsps))
    controller.load_base(base_source)

    if not (args.staged or args.abort):
        # One-shot: the same transaction, committed immediately.
        _plan, stats, timing = controller.run_script(script_text, sources)
        out.write(
            f"update applied: t_C={timing.compile_seconds * 1000:.1f}ms "
            f"t_L={timing.load_seconds * 1000:.1f}ms "
            f"stall={stats.stall_seconds * 1e6:.1f}us\n"
        )
        _print_mapping(controller, out)
        return 0

    epoch_before = controller.switch.dp.epoch
    try:
        staged = controller.stage_update(script_text, sources)
    except Exception as exc:
        out.write(f"staging failed ({type(exc).__name__}): {exc}\n")
        out.write(
            f"device unchanged: still on epoch {epoch_before}, "
            "no transaction reached commit\n"
        )
        return 1
    txn = staged.txn
    out.write(
        f"staged txn {txn.txn_id}: phase={txn.phase.value} "
        f"t_C={staged.timing.compile_seconds * 1000:.1f}ms\n"
    )
    if args.abort:
        staged.abort()
        out.write(
            f"aborted txn {txn.txn_id}: device state unchanged "
            f"(epoch {controller.switch.dp.epoch})\n"
        )
        return 0
    _plan, stats, timing = staged.commit()
    out.write(
        f"committed txn {txn.txn_id}: epoch {controller.switch.dp.epoch}, "
        f"stall={stats.stall_seconds * 1e6:.1f}us "
        f"t_L={timing.load_seconds * 1000:.1f}ms "
        f"(templates={stats.templates_written}, "
        f"new tables={stats.tables_created}, freed={stats.tables_removed})\n"
    )
    _print_mapping(controller, out)
    return 0


def _staged_rollout(args, base_source, script_text, sources, out) -> int:
    from repro.runtime.fabric import Fabric, RolloutError

    fabric = Fabric()
    for i in range(args.nodes):
        controller = Controller(TargetSpec(n_tsps=args.tsps))
        controller.load_base(base_source)
        fabric.add_node(f"n{i}", controller)
    try:
        report = fabric.staged_rollout(
            script_text,
            sources,
            canary=args.canary,
            wave_size=args.wave_size,
        )
    except RolloutError as err:
        out.write(f"rollout FAILED at node {err.failed!r}: {err.cause}\n")
        out.write(
            f"  committed then rolled back: "
            f"{', '.join(err.rolled_back) or 'none'}\n"
        )
        out.write(f"  never reached: {', '.join(err.pending) or 'none'}\n")
        return 1
    out.write(
        f"rollout complete: canary={report.canary} "
        f"waves={report.waves}\n"
    )
    for name, seconds in report.timings.items():
        out.write(f"  {name}: {seconds * 1000:.1f}ms\n")
    return 0


# -- in-band telemetry subcommand ------------------------------------------


def _int_main(argv: List[str]) -> int:
    """``ipbm-ctl int``: run a multi-hop INT fabric and report on it.

    ``report`` stands up a line fabric with ``int_insert`` enabled on
    every node, replays the watched flow, and renders what the
    collector reconstructed; ``export`` does the same but writes the
    collector records (JSON lines) and optionally the Prometheus
    exposition with the latency histograms.
    """
    from repro.bench.scenarios import INT_STRIP_MODES, make_int_fabric
    from repro.workloads import ipv4_packet

    parser = argparse.ArgumentParser(
        prog="ipbm-ctl int",
        description="multi-hop in-band telemetry: run, report, export",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def _common(p):
        p.add_argument(
            "--nodes", type=int, default=3, metavar="N",
            help="line-fabric length (default: 3)",
        )
        p.add_argument(
            "--packets", type=int, default=12,
            help="watched-flow packets to replay (default: 12)",
        )
        p.add_argument(
            "--strip", choices=INT_STRIP_MODES, default="edge",
            help="where the stack is stripped: the fabric edge hook or "
            "a dataplane int_strip on the last node (default: edge)",
        )

    report_p = sub.add_parser(
        "report", help="replay the watched flow, render the collector view"
    )
    _common(report_p)
    report_p.add_argument(
        "--json", action="store_true",
        help="emit the collector summary as JSON instead of text",
    )

    export_p = sub.add_parser(
        "export", help="replay, then write collector records (JSON lines)"
    )
    _common(export_p)
    export_p.add_argument("out", help="destination for the JSONL records")
    export_p.add_argument(
        "--metrics-out",
        help="also write the Prometheus exposition (latency histograms)",
    )

    args = parser.parse_args(argv)
    out = sys.stdout

    fabric, collector = make_int_fabric(n_nodes=args.nodes, strip=args.strip)
    trace = [
        (ipv4_packet("10.1.0.1", "10.2.0.1", sport=1024 + i), 0)
        for i in range(args.packets)
    ]
    deliveries = fabric.send_many("sw0", trace)
    delivered = sum(1 for d in deliveries if d is not None)
    out.write(
        f"{args.nodes}-node line fabric [{args.strip} strip]: "
        f"{len(trace)} packets sent, {delivered} delivered\n"
    )

    summary = collector.summary()
    if args.command == "report":
        if args.json:
            out.write(json.dumps(summary, indent=2, sort_keys=True) + "\n")
            return 0
        out.write(
            f"collector: {summary['packets']} packets, "
            f"{summary['hop_records']} hop records, "
            f"{summary['path_changes']} path changes, "
            f"{summary['epoch_mismatch_packets']} epoch-mismatch packets\n"
        )
        for flow, path in sorted(summary["flows"].items()):
            hops = " -> ".join(f"switch {hop}" for hop in path)
            out.write(f"  {flow}: {hops}\n")
        if collector.records:
            record = collector.records[-1]
            out.write(
                f"  last e2e: {record['e2e_latency_ns']} ns over "
                f"{len(record['hops'])} hops "
                f"(epochs {record['epochs']})\n"
            )
        return 0

    count = collector.export_jsonl(args.out)
    out.write(f"wrote {count} collector records to {args.out}\n")
    if args.metrics_out:
        with open(args.metrics_out, "w") as fh:
            fh.write(collector.metrics.to_prometheus())
        out.write(f"wrote metrics exposition to {args.metrics_out}\n")
    return 0


# -- streaming health subcommand -------------------------------------------


def _health_fabric(n_nodes: int, tsps: int = 8):
    """N independent base nodes (the example fleet the health engine
    watches); a manual clock so ticks are deterministic."""
    from repro.programs import base_rp4_source, populate_base_tables
    from repro.runtime.fabric import Fabric

    fabric = Fabric()
    base_source = base_rp4_source()
    for i in range(n_nodes):
        controller = Controller(TargetSpec(n_tsps=tsps))
        controller.load_base(base_source)
        populate_base_tables(controller.switch.tables)
        fabric.add_node(f"n{i}", controller)
    return fabric


def _health_rules(path: Optional[str]):
    from repro.obs.health import default_rules, load_rules

    if path is None:
        return default_rules()
    with open(path) as fh:
        return load_rules(json.load(fh))


def _health_main(argv: List[str]) -> int:
    """``ipbm-ctl health``: check, watch, rules, dump."""
    from repro.obs.clock import ManualClock
    from repro.obs.health import dump_rules
    from repro.workloads import ipv4_packet

    parser = argparse.ArgumentParser(
        prog="ipbm-ctl health",
        description="streaming health engine: evaluate, watch, "
        "round-trip rules, capture post-mortems",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def _common(p):
        p.add_argument(
            "--nodes", type=int, default=3, metavar="N",
            help="fleet size (default: 3)",
        )
        p.add_argument(
            "--packets", type=int, default=6,
            help="packets injected per node per tick (default: 6)",
        )
        p.add_argument(
            "--ticks", type=int, default=4,
            help="evaluation ticks to run (default: 4)",
        )
        p.add_argument(
            "--fault", metavar="NODE",
            help="inject this node's traffic into an unwired port "
            "(guaranteed drops) to trip the drop-rate rule",
        )
        p.add_argument(
            "--rules", metavar="FILE",
            help="JSON rule file (default: the stock rule set)",
        )

    check_p = sub.add_parser(
        "check", help="run N ticks; exit 1 if any alert is firing"
    )
    _common(check_p)
    check_p.add_argument(
        "--json", action="store_true",
        help="emit the health summary as JSON instead of text",
    )
    check_p.add_argument(
        "--metrics-out",
        help="write the engine's Prometheus exposition (ALERTS series)",
    )

    watch_p = sub.add_parser(
        "watch", help="like check, but stream every tick's transitions"
    )
    _common(watch_p)

    rules_p = sub.add_parser(
        "rules", help="render the rule set (and round-trip rule files)"
    )
    rules_p.add_argument(
        "--rules", metavar="FILE", help="load rules from this JSON file"
    )
    rules_p.add_argument("--out", metavar="FILE", help="write rules as JSON")
    rules_p.add_argument(
        "--json", action="store_true", help="emit the rule set as JSON"
    )

    dump_p = sub.add_parser(
        "dump",
        help="run a deliberately faulty staged rollout, write the "
        "flight-recorder post-mortem",
    )
    dump_p.add_argument("out", help="destination for the post-mortem JSON")
    dump_p.add_argument("--nodes", type=int, default=4, metavar="N")
    dump_p.add_argument(
        "--fault", metavar="NODE",
        help="wave node whose routing table is cleared pre-rollout "
        "(default: the last node)",
    )
    dump_p.add_argument("--rules", metavar="FILE")

    args = parser.parse_args(argv)
    out = sys.stdout

    if args.command == "rules":
        rules = _health_rules(args.rules)
        payload = dump_rules(rules)
        if args.out:
            with open(args.out, "w") as fh:
                json.dump(payload, fh, indent=2, sort_keys=True)
                fh.write("\n")
            out.write(f"wrote {len(payload)} rules to {args.out}\n")
        if args.json:
            out.write(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        elif not args.out:
            for rule in rules:
                spec = rule.to_dict()
                detail = ", ".join(
                    f"{k}={v}"
                    for k, v in sorted(spec.items())
                    if k not in ("kind", "name", "severity") and v not in (None, {})
                )
                out.write(
                    f"{spec['name']} [{spec['kind']}/{spec['severity']}]: "
                    f"{detail}\n"
                )
        return 0

    if args.command == "dump":
        return _health_dump(args, out)

    # check / watch: drive a fleet for N ticks under a manual clock.
    fabric = _health_fabric(args.nodes)
    if args.fault is not None and args.fault not in fabric.nodes:
        raise SystemExit(f"--fault {args.fault!r}: no such node")
    engine = fabric.attach_health(
        rules=_health_rules(args.rules), clock=ManualClock(tick=0.5)
    )
    packet = ipv4_packet("10.1.0.1", "10.2.0.5")
    for tick in range(args.ticks):
        for name, controller in fabric.nodes.items():
            # A faulted node's traffic arrives on an unwired port the
            # port tables don't know: every packet drops.
            port = 42 if name == args.fault else 0
            for _ in range(args.packets):
                controller.switch.inject(packet, port)
        transitions = engine.tick()
        if args.command == "watch":
            scores = " ".join(
                f"{name}={engine.device_health(name):.2f}"
                for name in fabric.nodes
            )
            out.write(f"tick {tick}: {scores}\n")
            for transition in transitions:
                t = transition.to_dict()
                out.write(
                    f"  {t['rule']}@{t['device']}: "
                    f"{t['from']} -> {t['to']} [{t['severity']}]\n"
                )

    summary = engine.health_summary()
    firing = engine.firing()
    if args.command == "check":
        if getattr(args, "metrics_out", None):
            with open(args.metrics_out, "w") as fh:
                fh.write(engine.to_prometheus())
            out.write(f"wrote metrics exposition to {args.metrics_out}\n")
        if args.json:
            out.write(json.dumps(summary, indent=2, sort_keys=True) + "\n")
        else:
            for name, device in sorted(summary["devices"].items()):
                states = [a["rule"] for a in device["firing"]]
                out.write(
                    f"{name}: health={device['score']:.2f}"
                    + (f" firing={','.join(states)}" if states else "")
                    + "\n"
                )
            out.write(
                f"{len(firing)} firing, "
                f"{summary['transitions']} transitions over "
                f"{args.ticks} ticks\n"
            )
    else:
        out.write(f"{len(firing)} alerts firing after {args.ticks} ticks\n")
    return 1 if firing else 0


def _health_dump(args, out) -> int:
    """Fault a wave node, run the staged rollout, write the post-mortem."""
    from repro.obs.clock import ManualClock
    from repro.programs import srv6_load_script, srv6_rp4_source
    from repro.runtime.fabric import RolloutError
    from repro.workloads import ipv4_packet

    if args.nodes < 2:
        raise SystemExit("dump needs --nodes >= 2 (a canary plus a wave)")
    fabric = _health_fabric(args.nodes)
    engine = fabric.attach_health(
        rules=_health_rules(args.rules), clock=ManualClock(tick=1.0)
    )
    victim = args.fault if args.fault is not None else f"n{args.nodes - 1}"
    if victim not in fabric.nodes:
        raise SystemExit(f"--fault {victim!r}: no such node")
    lpm = fabric.node(victim).switch.table("ipv4_lpm")
    for entry in list(lpm.entries()):
        lpm.remove_entry(entry)

    probe = [(ipv4_packet("10.1.0.1", "10.2.0.5"), 0)]
    try:
        fabric.staged_rollout(
            srv6_load_script(),
            {"srv6.rp4": srv6_rp4_source()},
            probe_trace=probe,
            soak_ticks=4,
        )
    except RolloutError as err:
        record = err.report.flight_record
        out.write(
            f"rollout aborted at {err.failed!r} "
            f"({type(err.cause).__name__}); rolled back: "
            f"{', '.join(err.rolled_back) or 'none'}\n"
        )
        out.write(
            "alert transitions: "
            + "; ".join(
                f"{a['rule']}@{a['device']} {a['from']}->{a['to']}"
                for a in err.report.alerts
            )
            + "\n"
        )
    else:
        # No fault tripped (e.g. rules too lax): still dump the ring.
        record = engine.recorder.dump(reason="manual")
        out.write("rollout completed; dumping the flight ring anyway\n")
    with open(args.out, "w") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")
    counts = ", ".join(
        f"{kind}={n}" for kind, n in sorted(record["counts"].items())
    )
    out.write(
        f"wrote flight record ({record['reason']}, "
        f"{len(record['events'])} events: {counts}) to {args.out}\n"
    )
    return 0


# -- offline observability subcommands ------------------------------------


def _obs_main(argv: List[str]) -> int:
    if argv and argv[0] == "bench":
        # The harness owns its whole flag surface; forward verbatim.
        from repro.bench.harness import main as bench_main

        return bench_main(argv[1:])
    if argv and argv[0] == "profile":
        return _profile_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="ipbm-ctl", description="render exported observability data"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    stats_p = sub.add_parser("stats", help="render a snapshot/diff JSON file")
    stats_p.add_argument("file", help="snapshot JSON (see --stats-out)")

    trace_p = sub.add_parser("trace", help="render packet traces (JSON lines)")
    trace_p.add_argument("file", help="trace JSONL (see --trace-out)")
    trace_p.add_argument(
        "--seq", type=int, default=None, help="render only this packet seq"
    )
    trace_p.add_argument(
        "--json", action="store_true", help="re-emit as JSON (round-trip check)"
    )

    timeline_p = sub.add_parser(
        "timeline", help="render update timelines (JSON lines)"
    )
    timeline_p.add_argument("file", help="timeline JSONL (see --timeline-out)")
    timeline_p.add_argument(
        "--label", help="only timelines with this label (e.g. apply_update)"
    )
    timeline_p.add_argument(
        "--json", action="store_true", help="re-emit as JSON (round-trip check)"
    )

    args = parser.parse_args(argv)
    out = sys.stdout

    if args.command == "stats":
        from repro.runtime.stats import format_stats

        with open(args.file) as fh:
            out.write(format_stats(json.load(fh)) + "\n")
        return 0

    if args.command == "trace":
        from repro.obs.export import load_traces
        from repro.obs.trace import format_trace

        traces = load_traces(args.file)
        if args.seq is not None:
            traces = [t for t in traces if t.seq == args.seq]
        if args.json:
            for trace in traces:
                out.write(json.dumps(trace.to_dict(), sort_keys=True) + "\n")
        else:
            for trace in traces:
                out.write(format_trace(trace) + "\n")
        return 0

    if args.command == "timeline":
        from repro.obs.export import load_timelines
        from repro.obs.timeline import format_timeline

        timelines = load_timelines(args.file)
        if args.label:
            timelines = [t for t in timelines if t.label == args.label]
        if args.json:
            for timeline in timelines:
                out.write(json.dumps(timeline.to_dict(), sort_keys=True) + "\n")
        else:
            for timeline in timelines:
                out.write(format_timeline(timeline) + "\n")
        return 0

    return 2


def _profile_main(argv: List[str]) -> int:
    """``ipbm-ctl profile``: run one scenario under the profiler."""
    from repro.bench.scenarios import CASES, SWITCHES, case_trace, make_switch
    from repro.obs.prof import format_profile

    parser = argparse.ArgumentParser(
        prog="ipbm-ctl profile",
        description="replay a workload under the per-stage profiler",
    )
    parser.add_argument("--switch", choices=SWITCHES, default="ipsa")
    parser.add_argument("--case", choices=CASES, default="base")
    parser.add_argument("--packets", type=int, default=300)
    parser.add_argument("--seed", type=int, default=23)
    parser.add_argument(
        "--top", type=int, default=0,
        help="show only the N most expensive rows (0 = all)",
    )
    parser.add_argument(
        "--folded", metavar="PATH",
        help="also write folded stacks (flamegraph.pl-compatible)",
    )
    args = parser.parse_args(argv)
    out = sys.stdout

    switch = make_switch(args.switch, args.case)
    trace = case_trace(args.case, args.packets, seed=args.seed)
    profiler = switch.enable_profiling()
    batch = switch.inject_batch(trace)
    switch.disable_profiling()
    forwarded, dropped = batch.forwarded, batch.dropped

    out.write(
        f"{args.switch}/{args.case}: {len(trace)} packets "
        f"({forwarded} forwarded, {dropped} dropped)\n"
    )
    out.write(format_profile(profiler, top=args.top) + "\n")
    if args.folded:
        with open(args.folded, "w") as fh:
            fh.write("\n".join(profiler.folded(root=args.switch)) + "\n")
        out.write(f"wrote folded stacks to {args.folded}\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())

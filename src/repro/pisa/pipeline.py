"""The fixed PISA match-action pipeline.

Placement packs the program's tables into the fixed number of
physical stages (the PISA back-end compiler's job).  Unlike IPSA
there is no elastic boundary: ingress and egress stage budgets are
silicon properties, and a design that needs more stages than the chip
has simply fails to fit (one of the two drawbacks Sec. 2.3 lists).

Execution lives in :mod:`repro.dp`: the device compiles the HLIR
control flows into a plan of apply/branch steps with pre-resolved
table and action references, and :func:`repro.dp.exec.run_flow`
interprets it plain, traced, or profiled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.compiler.dependency import analyze_dependencies
from repro.compiler.merge import MergeMode, plan_merge
from repro.compiler.rp4fc import rp4fc
from repro.net.packet import Packet
from repro.p4.hlir import Hlir
from repro.tables.actions import ActionDef
from repro.tables.table import Table


class FitError(Exception):
    """The design needs more physical stages than the chip has."""


@dataclass
class PisaStage:
    """One physical stage and the tables packed into it."""

    index: int
    side: str
    tables: List[str] = field(default_factory=list)


@dataclass
class PipelineStats:
    packets: int = 0
    lookups: int = 0
    actions_run: int = 0

    def account_batch(
        self, packets: int = 0, lookups: int = 0, actions_run: int = 0
    ) -> None:
        """Bulk counter update for the columnar batch path."""
        self.packets += packets
        self.lookups += lookups
        self.actions_run += actions_run


class FixedPipeline:
    """Interprets the ingress/egress flows against packed stages."""

    def __init__(
        self,
        hlir: Hlir,
        tables: Dict[str, Table],
        actions: Dict[str, ActionDef],
        n_stages: Optional[int] = None,
    ) -> None:
        self.hlir = hlir
        self.tables = tables
        self.actions = actions
        self.stats = PipelineStats()
        self.stages = self._place(n_stages)
        #: Set by the owning switch so stateful externs can resolve.
        self.device = None

    # -- placement --------------------------------------------------------

    def _place(self, n_stages: Optional[int]) -> List[PisaStage]:
        """Pack tables into physical stages via the same dependency
        machinery the rP4 flow uses (a stand-in for the proprietary
        PISA back-end compiler)."""
        program = rp4fc(self.hlir).program
        ingress = list(program.ingress_stages)
        egress = list(program.egress_stages)
        deps = analyze_dependencies(program, ingress + egress)
        plan = plan_merge(ingress, egress, deps, mode=MergeMode.FULL)
        if n_stages is not None and plan.tsp_count > n_stages:
            raise FitError(
                f"design needs {plan.tsp_count} stages but the chip has "
                f"{n_stages} (PISA cannot elastically rebalance)"
            )
        stages = []
        for index, (side, group) in enumerate(plan.all_groups()):
            stages.append(PisaStage(index=index, side=side, tables=group))
        return stages

    def stage_count(self, side: Optional[str] = None) -> int:
        if side is None:
            return len(self.stages)
        return sum(1 for s in self.stages if s.side == side)

    # -- execution -----------------------------------------------------------

    def run_ingress(self, packet: Packet) -> None:
        """Compatibility wrapper over :mod:`repro.dp` (ingress flow)."""
        self.stats.packets += 1
        self._run_side("ingress", packet)

    def run_egress(self, packet: Packet) -> None:
        """Compatibility wrapper over :mod:`repro.dp` (egress flow)."""
        self._run_side("egress", packet)

    def _run_side(self, side: str, packet: Packet) -> None:
        from repro.dp.exec import run_flow
        from repro.dp.hooks import resolve_hooks

        device = self.device
        plan = device.dp.plan()
        steps = plan.ingress if side == "ingress" else plan.egress
        run_flow(steps, packet, device, resolve_hooks(device), self.stats)

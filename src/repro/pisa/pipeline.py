"""The fixed PISA match-action pipeline.

Execution interprets the compiled control flow; placement packs the
program's tables into the fixed number of physical stages (the PISA
back-end compiler's job).  Unlike IPSA there is no elastic boundary:
ingress and egress stage budgets are silicon properties, and a design
that needs more stages than the chip has simply fails to fit (one of
the two drawbacks Sec. 2.3 lists).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.compiler.dependency import analyze_dependencies
from repro.compiler.lowering import eval_predicate
from repro.compiler.merge import MergeMode, plan_merge
from repro.compiler.rp4fc import rp4fc
from repro.lang.expr import SApply, SIf, Stmt
from repro.net.packet import Packet
from repro.p4.hlir import Hlir
from repro.tables.actions import ActionDef
from repro.tables.table import Table


class FitError(Exception):
    """The design needs more physical stages than the chip has."""


@dataclass
class PisaStage:
    """One physical stage and the tables packed into it."""

    index: int
    side: str
    tables: List[str] = field(default_factory=list)


@dataclass
class PipelineStats:
    packets: int = 0
    lookups: int = 0
    actions_run: int = 0


class FixedPipeline:
    """Interprets the ingress/egress flows against packed stages."""

    def __init__(
        self,
        hlir: Hlir,
        tables: Dict[str, Table],
        actions: Dict[str, ActionDef],
        n_stages: Optional[int] = None,
    ) -> None:
        self.hlir = hlir
        self.tables = tables
        self.actions = actions
        self.stats = PipelineStats()
        self.stages = self._place(n_stages)
        #: Set by the owning switch so stateful externs can resolve.
        self.device = None

    # -- placement --------------------------------------------------------

    def _place(self, n_stages: Optional[int]) -> List[PisaStage]:
        """Pack tables into physical stages via the same dependency
        machinery the rP4 flow uses (a stand-in for the proprietary
        PISA back-end compiler)."""
        program = rp4fc(self.hlir).program
        ingress = list(program.ingress_stages)
        egress = list(program.egress_stages)
        deps = analyze_dependencies(program, ingress + egress)
        plan = plan_merge(ingress, egress, deps, mode=MergeMode.FULL)
        if n_stages is not None and plan.tsp_count > n_stages:
            raise FitError(
                f"design needs {plan.tsp_count} stages but the chip has "
                f"{n_stages} (PISA cannot elastically rebalance)"
            )
        stages = []
        for index, (side, group) in enumerate(plan.all_groups()):
            stages.append(PisaStage(index=index, side=side, tables=group))
        return stages

    def stage_count(self, side: Optional[str] = None) -> int:
        if side is None:
            return len(self.stages)
        return sum(1 for s in self.stages if s.side == side)

    # -- execution -----------------------------------------------------------

    def run_ingress(self, packet: Packet) -> None:
        self.stats.packets += 1
        self._run(self.hlir.ingress_flow, packet)

    def run_egress(self, packet: Packet) -> None:
        self._run(self.hlir.egress_flow, packet)

    def _run(self, flow: List[Stmt], packet: Packet) -> None:
        for stmt in flow:
            if packet.metadata.get("drop"):
                return
            if isinstance(stmt, SApply):
                self._apply(stmt.table, packet)
            elif isinstance(stmt, SIf):
                if eval_predicate(stmt.cond, packet):
                    self._run(stmt.then_body, packet)
                else:
                    self._run(stmt.else_body, packet)
            else:
                raise TypeError(f"unsupported flow statement {stmt!r}")

    def _apply(self, table_name: str, packet: Packet) -> None:
        tracer = getattr(self.device, "tracer", None)
        if tracer is not None and tracer.current is not None:
            self._apply_traced(table_name, packet, tracer)
            return
        profiler = getattr(self.device, "profiler", None)
        if profiler is not None:
            self._apply_profiled(table_name, packet, profiler)
            return
        table = self.tables[table_name]
        result = table.lookup(packet)
        self.stats.lookups += 1
        action = self.actions.get(result.action)
        if action is None:
            raise KeyError(
                f"table {table_name!r} selected unknown action {result.action!r}"
            )
        action.execute(
            packet, result.action_data, entry=result.entry, device=self.device,
        )
        self.stats.actions_run += 1

    def _apply_traced(self, table_name: str, packet: Packet, tracer) -> None:
        """Traced twin of :meth:`_apply`: a ``stage`` span with match
        and execute children (the PISA analogue of a TSP span)."""
        stage_span = tracer.start_span(table_name, kind="stage", table=table_name)
        try:
            table = self.tables[table_name]
            match_span = tracer.start_span("match", kind="match", table=table_name)
            result = table.lookup(packet)
            match_span.attrs["hit"] = result.hit
            match_span.attrs["tag"] = result.tag
            tracer.end_span(match_span)
            self.stats.lookups += 1
            action = self.actions.get(result.action)
            if action is None:
                raise KeyError(
                    f"table {table_name!r} selected unknown action "
                    f"{result.action!r}"
                )
            execute_span = tracer.start_span(
                "execute", kind="execute", action=result.action,
                ops=len(action.ops),
            )
            action.execute(
                packet, result.action_data, entry=result.entry,
                device=self.device,
            )
            tracer.end_span(execute_span)
            self.stats.actions_run += 1
        finally:
            tracer.end_span(stage_span)

    def _apply_profiled(
        self, table_name: str, packet: Packet, profiler
    ) -> None:
        """Profiled twin of :meth:`_apply`: match/execute wall-time
        attributed to the applying table (the PISA stage analogue)."""
        table = self.tables[table_name]
        started = profiler.now()
        result = table.lookup(packet)
        profiler.add((table_name, "match", table_name), started, lookups=1)
        profiler.note_engine(table.engine_kind)
        self.stats.lookups += 1
        action = self.actions.get(result.action)
        if action is None:
            raise KeyError(
                f"table {table_name!r} selected unknown action "
                f"{result.action!r}"
            )
        started = profiler.now()
        action.execute(
            packet, result.action_data, entry=result.entry,
            device=self.device,
        )
        profiler.add(
            (table_name, "execute", result.action), started,
            ops=len(action.ops),
        )
        self.stats.actions_run += 1

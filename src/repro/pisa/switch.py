"""PisaSwitch: the bmv2-analog baseline device.

The crucial contrast with :class:`repro.ipsa.switch.IpsaSwitch` is
:meth:`reload`: PISA cannot patch a running pipeline, so *any* change
-- even one new table -- swaps the entire configuration and
repopulates **every** table.  Table 1's loading-time gap comes from
exactly this difference.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Union

from repro.compiler.lowering import builtin_actions, lower_action, lower_table
from repro.dp import frontdoor
from repro.dp.core import PisaCore
from repro.dp.frontdoor import PACKET_BYTES_BOUNDS, BatchResult, PortOut
from repro.obs.clock import Clock
from repro.obs.metrics import MetricsRegistry, Sample
from repro.obs.prof import Profiler
from repro.obs.timeline import TimelineRecorder
from repro.obs.trace import DropReason, PacketTracer
from repro.p4.hlir import Hlir, build_hlir
from repro.p4.parser import parse_p4
from repro.pisa.deparser import Deparser
from repro.pisa.parser import FrontEndParser
from repro.pisa.pipeline import FixedPipeline
from repro.tables.meters import MeterBank
from repro.tables.registers import ExternStore
from repro.tables.table import Table, TableEntry


@dataclass
class ReloadStats:
    """Cost of a full configuration swap."""

    tables_repopulated: int = 0
    entries_repopulated: int = 0
    seconds: float = 0.0
    #: Traffic-visible window: only the pointer flip, now that the
    #: rebuild happens against shadow state.
    stall_seconds: float = 0.0


class PisaSwitch:
    """A PISA behavioral switch configured from HLIR."""

    def __init__(self, n_stages: Optional[int] = None) -> None:
        self.n_stages = n_stages
        self.parser: Optional[FrontEndParser] = None
        self.pipeline: Optional[FixedPipeline] = None
        self.deparser = Deparser()
        self.tables: Dict[str, Table] = {}
        self.actions = builtin_actions()
        self.metadata_defaults: Dict[str, int] = {}
        self.packets_in = 0
        self.packets_out = 0
        self.packets_dropped = 0
        self.punted = 0
        self.externs = ExternStore()
        self.meters = MeterBank()
        self.clock = 0
        self.drop_reasons: Dict[str, int] = {}
        self.tracer: Optional[PacketTracer] = None
        self.profiler: Optional[Profiler] = None
        # INT instrumentation (see IpsaSwitch): None on the hot path.
        self.int_clock: Optional[Clock] = None
        self.int_collector = None
        self.int_node: Optional[str] = None
        self.timelines = TimelineRecorder()
        self.metrics = MetricsRegistry()
        self._packet_bytes = self.metrics.histogram(
            "device.packet_bytes", PACKET_BYTES_BOUNDS
        )
        # The shared dataplane execution core (compiled flow plans),
        # invalidated on every full (re)load.
        self.dp = PisaCore(self)
        self.dp.register_metrics(self.metrics)
        self._register_metrics()

    # -- observability -----------------------------------------------------

    def _register_metrics(self) -> None:
        metrics = self.metrics
        metrics.add_collector("device", self._device_samples)
        metrics.add_collector(
            "tables",
            lambda: (
                s
                for table in list(self.tables.values())
                for s in table.metrics_samples()
            ),
        )
        metrics.add_collector("meters", lambda: self.meters.metrics_samples())

    def _device_samples(self):
        yield Sample("device.packets_in", self.packets_in)
        yield Sample("device.packets_out", self.packets_out)
        yield Sample("device.packets_dropped", self.packets_dropped)
        yield Sample("device.punted", self.punted)
        for reason, count in self.drop_reasons.items():
            yield Sample("device.drops", count, {"reason": reason})
        if self.parser is not None:
            yield Sample("parser.packets", self.parser.stats.packets)
            yield Sample(
                "parser.headers_extracted", self.parser.stats.headers_extracted
            )
        if self.pipeline is not None:
            yield Sample("pipeline.packets", self.pipeline.stats.packets)
            yield Sample("pipeline.lookups", self.pipeline.stats.lookups)
            yield Sample("pipeline.actions_run", self.pipeline.stats.actions_run)
        for name, sketch in self.externs.sketches.items():
            yield Sample("sketch.updates", sketch.updates, {"sketch": name})

    def note_drop(self, reason: DropReason) -> None:
        key = reason.value
        self.drop_reasons[key] = self.drop_reasons.get(key, 0) + 1

    def enable_tracing(self, capacity: int = 256) -> PacketTracer:
        if self.tracer is None:
            self.tracer = PacketTracer(capacity=capacity)
        return self.tracer

    def disable_tracing(self) -> Optional[PacketTracer]:
        tracer, self.tracer = self.tracer, None
        return tracer

    def enable_profiling(self, clock: Optional[Clock] = None) -> Profiler:
        """Attach (and return) the wall-time profiler; idempotent."""
        if self.profiler is None:
            self.profiler = Profiler(clock=clock)
        return self.profiler

    def disable_profiling(self) -> Optional[Profiler]:
        profiler, self.profiler = self.profiler, None
        return profiler

    def enable_int(self, clock: Optional[Clock] = None) -> Clock:
        """Turn on INT timestamping (see IpsaSwitch); idempotent."""
        if self.int_clock is None:
            from repro.obs.clock import MONOTONIC

            self.int_clock = clock if clock is not None else MONOTONIC
        return self.int_clock

    def disable_int(self) -> Optional[Clock]:
        clock, self.int_clock = self.int_clock, None
        return clock

    def attach_int_collector(self, collector, node: Optional[str] = None) -> None:
        """Attach a sink-side INT collector fed by ``pop_int``."""
        self.int_collector = collector
        self.int_node = node

    # -- configuration ----------------------------------------------------

    def load(self, program: Union[str, Hlir]) -> None:
        """Full (re)load from P4 source or HLIR. Drops every table."""
        hlir = build_hlir(parse_p4(program)) if isinstance(program, str) else program
        self.parser = FrontEndParser(hlir)
        self.actions = builtin_actions()
        for name, action in hlir.actions.items():
            self.actions[name] = lower_action(action)
        self.tables = {}
        for name, table in hlir.tables.items():
            self.tables[name] = lower_table(
                name,
                list(table.keys),
                table.size,
                default_action=table.default_action,
            )
        self.metadata_defaults = {name: 0 for name, _ in hlir.metadata}
        self.pipeline = FixedPipeline(
            hlir, self.tables, self.actions, n_stages=self.n_stages
        )
        self.pipeline.device = self
        self.dp.invalidate("load")

    def begin_reload(
        self,
        program: Union[str, Hlir],
        entries: Optional[Dict[str, List[TableEntry]]] = None,
    ):
        """Stage a full configuration swap as a transaction.

        The new design is parsed, lowered, repopulated, and compiled
        against shadow objects while the old pipeline keeps serving;
        ``commit()`` swaps the pointers.  See
        :class:`repro.runtime.txn.PisaReloadTransaction`.
        """
        from repro.runtime.txn import PisaReloadTransaction

        return PisaReloadTransaction(self, program, entries)

    def reload(
        self,
        program: Union[str, Hlir],
        entries: Dict[str, List[TableEntry]],
    ) -> ReloadStats:
        """Swap the whole design in and repopulate every table.

        ``entries`` is the controller's shadow copy of the desired
        table state -- PISA loses all entries on reload, so they must
        all be pushed again (the paper: "the P4 design flow also needs
        to populate all the tables after loading the design").  The
        rebuild is transactional: a parse or lowering failure leaves
        the old design serving, and the traffic-visible stall is only
        the pointer flip (``ReloadStats.stall_seconds``).
        """
        txn = self.begin_reload(program, entries)
        started = time.perf_counter()
        txn.prepare()
        txn.validate()
        stats = txn.commit()
        stats.seconds = time.perf_counter() - started
        return stats

    # -- traffic --------------------------------------------------------------

    def inject(self, data: bytes, port: int = 0) -> Optional[PortOut]:
        if self.parser is None or self.pipeline is None:
            raise RuntimeError("switch has no design loaded")
        return frontdoor.inject(self.dp, data, port)

    def inject_batch(self, trace) -> BatchResult:
        """Push a ``(data, port)`` trace through, amortizing the front
        door (see :func:`repro.dp.frontdoor.inject_batch`)."""
        if self.parser is None or self.pipeline is None:
            raise RuntimeError("switch has no design loaded")
        return frontdoor.inject_batch(self.dp, trace)

    def set_table(self, name: str, table: Table) -> None:
        """Repoint a table name at a different :class:`Table` object.

        The compiled flow plan holds direct table references, so a
        repoint must invalidate it (counted under ``table_repoint``).
        """
        self.tables[name] = table
        if self.pipeline is not None:
            self.pipeline.tables[name] = table
        self.dp.invalidate("table_repoint")

    def table(self, name: str) -> Table:
        try:
            return self.tables[name]
        except KeyError:
            raise KeyError(f"switch has no table {name!r}") from None

"""The PISA front-end parser (paper Sec. 2.1's foil).

One standalone parser extracts the complete header stack before any
match-action stage runs.  Because it is generated from the program's
parse graph at compile time, adding a protocol (SRv6's SRH) requires
a full recompile -- there is no runtime ``link_header`` here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.net.headers import FieldDef, HeaderType
from repro.net.linkage import HeaderLinkageTable
from repro.net.packet import Packet
from repro.p4.hlir import Hlir


@dataclass
class ParserStats:
    packets: int = 0
    headers_extracted: int = 0


class FrontEndParser:
    """Compile-time-fixed full-stack parser."""

    def __init__(self, hlir: Hlir) -> None:
        self.header_types: Dict[str, HeaderType] = {}
        for instance, fields in hlir.headers.items():
            self.header_types[instance] = HeaderType(
                instance, [FieldDef(n, w) for n, w in fields]
            )
        self.linkage = HeaderLinkageTable()
        selectors: Dict[str, str] = {}
        for edge in hlir.parse_edges:
            if edge.tag < 0:
                continue
            selectors.setdefault(edge.instance, edge.selector)
        for instance, selector in selectors.items():
            self.linkage.set_selector(instance, selector)
        for edge in hlir.parse_edges:
            if edge.tag < 0:
                continue
            self.linkage.add_link(edge.instance, edge.next_instance, edge.tag)
        self.first_header = hlir.first_header or "ethernet"
        self.stats = ParserStats()

    def parse(self, packet: Packet) -> int:
        """Extract the full reachable header stack (no JIT here)."""
        self.stats.packets += 1
        extracted = packet.parse_all(self.header_types, self.linkage)
        self.stats.headers_extracted += extracted
        return extracted

"""The PISA baseline: a bmv2-like behavioral switch.

PISA's architectural constraints -- the ones IPSA removes -- are
modeled faithfully:

* a monolithic front-end parser extracts *every* header up front;
* the match-action pipeline is fixed at design time; any change means
  a full recompile of the whole program;
* loading swaps the entire configuration and **repopulates every
  table**, not just the new ones;
* an explicit deparser reserializes at egress.
"""

from repro.pisa.deparser import Deparser
from repro.pisa.parser import FrontEndParser
from repro.pisa.pipeline import FixedPipeline, PisaStage
from repro.pisa.switch import PisaSwitch, ReloadStats

__all__ = [
    "Deparser",
    "FixedPipeline",
    "FrontEndParser",
    "PisaStage",
    "PisaSwitch",
    "ReloadStats",
]

"""The PISA egress deparser.

IPSA needs none ("the complete packet headers are maintained
throughout the pipeline"); PISA reserializes explicitly.  The
behavioral deparser is thin, but it exists as a distinct component so
the hardware model can charge resources to it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.packet import Packet


@dataclass
class DeparserStats:
    packets: int = 0
    bytes_emitted: int = 0


class Deparser:
    """Reserialize the parsed representation onto the wire."""

    def __init__(self) -> None:
        self.stats = DeparserStats()

    def deparse(self, packet: Packet) -> bytes:
        data = packet.emit()
        self.stats.packets += 1
        self.stats.bytes_emitted += len(data)
        return data

"""Per-packet tracing: a span tree for one packet's device lifecycle.

When a :class:`PacketTracer` is attached to a switch
(``switch.tracer = PacketTracer()``), every injected packet records:

* a root ``packet`` span;
* one ``tsp`` span per TSP traversed (or ``stage`` spans on the PISA
  baseline), each with ``parse`` / ``match`` / ``execute`` children
  carrying header names, table hit/miss + executor tag, and the
  action fired;
* ``tm.enqueue`` / ``tm.dequeue`` events around the traffic manager;
* a terminal outcome (``emit`` with the egress port, ``punt``, or
  ``drop`` with a :class:`DropReason`).

Tracing is **off by default**: the forwarding hot path pays a single
``is None`` check per packet/TSP when no tracer is attached.  Traces
are JSON-round-trippable (:meth:`PacketTrace.to_dict` /
:meth:`PacketTrace.from_dict`) and human-renderable
(:func:`format_trace`).
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

from repro.obs.clock import Clock, MONOTONIC


class DropReason(enum.Enum):
    """Why a packet (or one multicast copy) died inside the device."""

    #: An ingress action set ``meta.drop`` (ACL deny, table-miss
    #: default ``drop``, policer pointing at ``meta.drop``...).
    INGRESS_ACTION = "ingress_action"
    #: An egress action set ``meta.drop``.
    EGRESS_ACTION = "egress_action"
    #: The TM's shared buffer was full (tail drop).
    TM_TAIL_DROP = "tm_tail_drop"
    #: ``meta.mcast_grp`` named a group with no installed members.
    MCAST_UNKNOWN_GROUP = "mcast_unknown_group"
    #: The device could not attribute the drop (defensive fallback).
    UNKNOWN = "unknown"


@dataclass
class Span:
    """One timed node in a packet's trace tree."""

    name: str
    kind: str = ""
    start: float = 0.0
    end: float = 0.0
    attrs: Dict[str, object] = field(default_factory=dict)
    children: List["Span"] = field(default_factory=list)

    @property
    def duration(self) -> float:
        return max(0.0, self.end - self.start)

    def child(self, name: str, kind: str = "", **attrs: object) -> "Span":
        span = Span(name=name, kind=kind, attrs=dict(attrs))
        self.children.append(span)
        return span

    def find(self, kind: str) -> List["Span"]:
        """Every descendant (depth-first) of the given kind."""
        found = []
        for child in self.children:
            if child.kind == kind:
                found.append(child)
            found.extend(child.find(kind))
        return found

    def to_dict(self, origin: float = 0.0) -> dict:
        """JSON form; a nonzero ``origin`` rebases timestamps onto a
        trace-relative axis (see :func:`repro.obs.export.export_traces`).
        ``duration`` is computed from the rebased endpoints so the
        stored triple is internally consistent bit-for-bit."""
        start = self.start - origin
        end = self.end - origin
        return {
            "name": self.name,
            "kind": self.kind,
            "start": start,
            "end": end,
            "duration": max(0.0, end - start),
            "attrs": dict(self.attrs),
            "children": [c.to_dict(origin) for c in self.children],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        return cls(
            name=data["name"],
            kind=data.get("kind", ""),
            start=data.get("start", 0.0),
            end=data.get("end", 0.0),
            attrs=dict(data.get("attrs", {})),
            children=[cls.from_dict(c) for c in data.get("children", [])],
        )


@dataclass
class PacketTrace:
    """The full record of one packet's traversal."""

    seq: int
    clock: int = 0
    ingress_port: int = 0
    length: int = 0
    root: Span = field(default_factory=lambda: Span("packet", kind="packet"))
    outcome: str = ""  # "emit" | "punt" | "drop" | "multicast"
    drop_reason: Optional[str] = None
    egress_ports: List[int] = field(default_factory=list)

    def tsp_spans(self) -> List[Span]:
        return [s for s in self.root.children if s.kind == "tsp"]

    def to_dict(self, rebase: bool = False) -> dict:
        """JSON form; ``rebase=True`` shifts every span onto a
        trace-relative time axis (root span starts at 0.0), making
        exports comparable across runs and machines."""
        origin = self.root.start if rebase else 0.0
        return {
            "seq": self.seq,
            "clock": self.clock,
            "ingress_port": self.ingress_port,
            "length": self.length,
            "outcome": self.outcome,
            "drop_reason": self.drop_reason,
            "egress_ports": list(self.egress_ports),
            "root": self.root.to_dict(origin),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PacketTrace":
        return cls(
            seq=data["seq"],
            clock=data.get("clock", 0),
            ingress_port=data.get("ingress_port", 0),
            length=data.get("length", 0),
            root=Span.from_dict(data["root"]),
            outcome=data.get("outcome", ""),
            drop_reason=data.get("drop_reason"),
            egress_ports=list(data.get("egress_ports", [])),
        )


class PacketTracer:
    """Records one :class:`PacketTrace` per injected packet.

    Holds the last ``capacity`` finished traces in a bounded deque.
    The tracer is single-flight by construction: the behavioral
    switches process one packet to completion per ``inject``.
    """

    def __init__(
        self, capacity: int = 256, clock: Optional[Clock] = None
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._clock = clock or MONOTONIC
        self.traces: Deque[PacketTrace] = deque(maxlen=capacity)
        self.current: Optional[PacketTrace] = None
        self._stack: List[Span] = []
        self._seq = 0

    # -- lifecycle ---------------------------------------------------------

    def begin(self, clock: int = 0, port: int = 0, length: int = 0) -> PacketTrace:
        trace = PacketTrace(
            seq=self._seq, clock=clock, ingress_port=port, length=length
        )
        self._seq += 1
        trace.root.start = self._clock.now()
        self.current = trace
        self._stack = [trace.root]
        return trace

    def end(self, outcome: str, **attrs: object) -> Optional[PacketTrace]:
        trace = self.current
        if trace is None:
            return None
        now = self._clock.now()
        # Close anything a mid-pipeline exception left open.
        for span in self._stack[1:]:
            if not span.end:
                span.end = now
        trace.root.end = now
        trace.root.attrs.update(attrs)
        trace.outcome = outcome
        self.traces.append(trace)
        self.current = None
        self._stack = []
        return trace

    # -- span construction -------------------------------------------------

    def start_span(self, name: str, kind: str = "", **attrs: object) -> Span:
        span = self._stack[-1].child(name, kind=kind, **attrs)
        span.start = self._clock.now()
        self._stack.append(span)
        return span

    def end_span(self, span: Span) -> None:
        span.end = self._clock.now()
        while self._stack and self._stack[-1] is not span:
            self._stack.pop()
        if self._stack:
            self._stack.pop()

    def event(self, name: str, kind: str = "event", **attrs: object) -> Span:
        """A zero-duration child of the innermost open span."""
        span = self._stack[-1].child(name, kind=kind, **attrs)
        span.start = span.end = self._clock.now()
        return span

    def note_drop(self, reason: DropReason) -> None:
        if self.current is not None and self.current.drop_reason is None:
            self.current.drop_reason = reason.value

    def note_egress(self, port: int) -> None:
        if self.current is not None:
            self.current.egress_ports.append(port)


def format_trace(trace: PacketTrace) -> str:
    """Human-readable tree dump of one packet trace."""
    header = (
        f"packet #{trace.seq} clock={trace.clock} "
        f"in_port={trace.ingress_port} len={trace.length}B"
    )
    if trace.outcome == "drop":
        tail = f"DROP ({trace.drop_reason or 'unknown'})"
    elif trace.outcome:
        ports = ",".join(str(p) for p in trace.egress_ports) or "-"
        tail = f"{trace.outcome.upper()} -> port {ports}"
    else:
        tail = "(unfinished)"
    lines = [f"{header}  {tail}"]

    def render(span: Span, depth: int) -> None:
        attrs = " ".join(f"{k}={_short(v)}" for k, v in span.attrs.items())
        us = span.duration * 1e6
        lines.append(
            f"{'  ' * depth}- {span.name}"
            + (f" [{attrs}]" if attrs else "")
            + (f" ({us:.1f}us)" if span.end else "")
        )
        for child in span.children:
            render(child, depth + 1)

    for child in trace.root.children:
        render(child, 1)
    return "\n".join(lines)


def _short(value: object) -> str:
    if isinstance(value, (list, tuple)):
        return "+".join(str(v) for v in value)
    return str(value)

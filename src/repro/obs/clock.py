"""Injectable time sources for every obs instrument.

Everything in ``repro.obs`` that timestamps (the packet tracer, the
update timelines, the profiler) and every measurement loop in
``repro.hw`` reads time through a :class:`Clock` instead of calling
``time.perf_counter()`` directly.  Production code uses the process
default (:data:`MONOTONIC`); tests inject a :class:`ManualClock` so
durations are exact and no test sleeps or depends on scheduler jitter.
"""

from __future__ import annotations

import time


class Clock:
    """A monotonic time source: ``now()`` returns seconds as float.

    Only monotonicity matters -- the obs layer works with durations
    and rebases absolute values on export, so the epoch is arbitrary.
    """

    def now(self) -> float:
        raise NotImplementedError


class MonotonicClock(Clock):
    """The real wall clock (``time.perf_counter``)."""

    def now(self) -> float:
        return time.perf_counter()


class ManualClock(Clock):
    """A deterministic clock for tests.

    Time only moves when told to: either explicitly via
    :meth:`advance`, or automatically by ``tick`` seconds on every
    ``now()`` read (handy for code that brackets work with two reads
    and would otherwise measure zero).
    """

    def __init__(self, start: float = 0.0, tick: float = 0.0) -> None:
        if tick < 0:
            raise ValueError("tick must be non-negative")
        self._now = float(start)
        self.tick = float(tick)
        self.reads = 0

    def now(self) -> float:
        value = self._now
        self._now += self.tick
        self.reads += 1
        return value

    def advance(self, seconds: float) -> float:
        """Move time forward; returns the new current time."""
        if seconds < 0:
            raise ValueError("time cannot move backwards")
        self._now += seconds
        return self._now


#: Process-wide default used when no clock is injected.
MONOTONIC = MonotonicClock()

"""Exporters: JSON-lines event sinks and their loaders.

Everything the obs layer records is a plain dict, so the export
format is one JSON object per line -- appendable, greppable, and
streamable.  The loaders reverse the exporters exactly, which is
what the ``ipbm-ctl trace`` / ``timeline`` subcommands rely on.
The Prometheus text exposition lives on
:meth:`repro.obs.metrics.MetricsRegistry.to_prometheus`.
"""

from __future__ import annotations

import json
from typing import IO, Iterable, List, Union

from repro.obs.timeline import Timeline, TimelineRecorder
from repro.obs.trace import PacketTrace, PacketTracer

PathOrFile = Union[str, IO[str]]


def write_jsonl(dest: PathOrFile, records: Iterable[dict]) -> int:
    """Write one JSON object per line; returns the record count."""
    count = 0
    if isinstance(dest, str):
        with open(dest, "w") as fh:
            return write_jsonl(fh, records)
    for record in records:
        dest.write(json.dumps(record, sort_keys=True) + "\n")
        count += 1
    return count


def read_jsonl(source: PathOrFile) -> List[dict]:
    if isinstance(source, str):
        with open(source) as fh:
            return read_jsonl(fh)
    return [json.loads(line) for line in source if line.strip()]


# -- traces ----------------------------------------------------------------


def export_traces(
    tracer: PacketTracer, dest: PathOrFile, rebase: bool = True
) -> int:
    """Dump every captured trace (oldest first) as JSON lines.

    By default every trace is **rebased**: span timestamps become
    trace-relative (the root span starts at 0.0) and each span carries
    an explicit ``duration``, so two exports are directly comparable
    even across runs and machines whose monotonic epochs differ.
    ``rebase=False`` keeps the raw clock values (spans of different
    traces from one run then share a time axis).
    """
    return write_jsonl(dest, (t.to_dict(rebase=rebase) for t in tracer.traces))


def load_traces(source: PathOrFile) -> List[PacketTrace]:
    return [PacketTrace.from_dict(d) for d in read_jsonl(source)]


# -- timelines -------------------------------------------------------------


def export_timelines(
    recorders: Union[TimelineRecorder, Iterable[TimelineRecorder]],
    dest: PathOrFile,
) -> int:
    """Dump one or several recorders' timelines as JSON lines."""
    if isinstance(recorders, TimelineRecorder):
        recorders = [recorders]
    records = [t for r in recorders for t in r.to_dicts()]
    return write_jsonl(dest, records)


def load_timelines(source: PathOrFile) -> List[Timeline]:
    return [Timeline.from_dict(d) for d in read_jsonl(source)]

"""Fabric-wide INT collector: per-flow paths from in-band hop stacks.

Transit switches push one 18-byte hop record per traversal (see
``repro.net.headers.INT_HOP_FIELDS``); this module is the sink side.
:class:`IntCollector` consumes instrumented packets -- either wire
bytes via :meth:`IntCollector.ingest` (the :class:`~repro.runtime.
fabric.Fabric` delivery hook) or already-parsed hop stacks via
:meth:`IntCollector.observe_strip` (the ``pop_int`` device hook) --
and turns them into:

* per-hop and end-to-end latency histograms in a
  :class:`~repro.obs.metrics.MetricsRegistry` (Prometheus-exportable);
* reconstructed per-flow paths with **path-change events** whenever a
  flow's hop list differs from the last one seen;
* **epoch-mismatch observations**: each hop record carries the
  dataplane plan epoch it was forwarded under, so a packet crossing a
  half-updated fabric carries the staged rollout's progress in-band.
  ``staged_rollout`` reads these back as rollout evidence.

Everything the collector records is a plain dict, exported as JSON
lines through :func:`repro.obs.export.write_jsonl`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.net.addresses import format_ipv4
from repro.net.headers import (
    INT_ETHERTYPE,
    INT_SHIM,
    HeaderType,
    int_hop_records,
    standard_header_types,
)
from repro.net.linkage import standard_linkage
from repro.net.packet import Packet
from repro.obs.export import PathOrFile, write_jsonl
from repro.obs.metrics import Histogram, MetricsRegistry

#: Latency bucket edges in nanoseconds (1us .. 10s, decade ladder).
LATENCY_BOUNDS_NS = tuple(10**k for k in range(3, 11))

#: Hop timestamps are 48-bit and wrap; differences are taken mod 2^48.
_TS_MODULUS = 1 << 48


def _ts_delta(start: int, end: int) -> int:
    """Wrap-aware difference of two 48-bit nanosecond stamps."""
    return (end - start) % _TS_MODULUS


@dataclass
class PathChange:
    """A flow's hop list differed from the previous packet's."""

    flow: str
    old_path: Tuple[int, ...]
    new_path: Tuple[int, ...]
    packet_index: int  # collector-wide packet ordinal

    def to_dict(self) -> dict:
        return {
            "event": "path_change",
            "flow": self.flow,
            "old_path": list(self.old_path),
            "new_path": list(self.new_path),
            "packet_index": self.packet_index,
        }


@dataclass
class IntIngest:
    """Outcome of one wire-side ingest."""

    record: Optional[dict]  # None if the packet carried no INT shim
    stripped: bytes  # delivery bytes with the shim removed


class IntCollector:
    """Sink-side INT consumer (see module docstring)."""

    def __init__(self, metrics: Optional[MetricsRegistry] = None) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.records: List[dict] = []
        self.path_changes: List[PathChange] = []
        self._flow_paths: Dict[str, Tuple[int, ...]] = {}
        self._packets = self.metrics.counter("int.packets")
        self._hop_records = self.metrics.counter("int.hop_records")
        self._path_change_count = self.metrics.counter("int.path_changes")
        self._mismatch_packets = self.metrics.counter(
            "int.epoch_mismatch_packets"
        )
        self.metrics.gauge("int.flows", fn=lambda: len(self._flow_paths))
        self._e2e = self.metrics.histogram(
            "int.e2e_latency_ns", LATENCY_BOUNDS_NS
        )
        self._hop_hists: Dict[int, Histogram] = {}
        # Collector-side parse schema: the standard wire types plus
        # the INT shim (a runtime-loaded type on devices).
        self._types: Dict[str, HeaderType] = dict(standard_header_types())
        self._types["int_shim"] = INT_SHIM
        self._linkage = standard_linkage()
        self._linkage.set_selector("int_shim", "orig_ethertype")
        self._linkage.add_link("ethernet", "int_shim", INT_ETHERTYPE)
        for tag in (0x0800, 0x86DD):
            nxt = "ipv4" if tag == 0x0800 else "ipv6"
            self._linkage.add_link("int_shim", nxt, tag)

    # -- intake ------------------------------------------------------------

    def ingest(
        self,
        data: bytes,
        node: Optional[str] = None,
        port: Optional[int] = None,
    ) -> IntIngest:
        """Consume one delivered wire packet.

        Parses the INT shim (if any), records its telemetry, and
        returns the packet with the shim stripped and the original
        EtherType restored -- what the edge link would have carried
        had the fabric not been instrumented.
        """
        packet = Packet(data)
        packet.parse_all(self._types, self._linkage)
        if not packet.is_valid("int_shim"):
            return IntIngest(record=None, stripped=data)
        shim = packet.remove_header("int_shim")
        orig = shim.get("orig_ethertype")
        assert isinstance(orig, int)
        packet.write("ethernet.ethertype", orig)
        record = self._observe(
            self._flow_key(packet), int_hop_records(shim), node, port
        )
        return IntIngest(record=record, stripped=packet.emit())

    def observe_strip(
        self, packet: Packet, hops: List[dict], node: Optional[str] = None
    ) -> dict:
        """Device-side intake: ``pop_int`` already removed the shim and
        hands over the decoded hop records."""
        return self._observe(self._flow_key(packet), hops, node, None)

    # -- analytics ---------------------------------------------------------

    def _flow_key(self, packet: Packet) -> str:
        if packet.is_valid("ipv4"):
            src = packet.read("ipv4.src_addr")
            dst = packet.read("ipv4.dst_addr")
            assert isinstance(src, int) and isinstance(dst, int)
            return f"{format_ipv4(src)}->{format_ipv4(dst)}"
        ethertype = packet.read("ethernet.ethertype")
        assert isinstance(ethertype, int)
        return f"ethertype:{ethertype:#06x}"

    def _observe(
        self,
        flow: str,
        hops: List[dict],
        node: Optional[str],
        port: Optional[int],
    ) -> dict:
        index = int(self._packets.value)
        self._packets.inc()
        self._hop_records.inc(len(hops))
        path = tuple(hop["switch_id"] for hop in hops)
        epochs = sorted({hop["dp_epoch"] for hop in hops})
        mismatch = len(epochs) > 1
        if mismatch:
            self._mismatch_packets.inc()

        annotated = []
        for hop in hops:
            latency = _ts_delta(hop["ingress_ts"], hop["egress_ts"])
            self._hop_histogram(hop["switch_id"]).observe(latency)
            annotated.append(dict(hop, latency_ns=latency))
        e2e = (
            _ts_delta(hops[0]["ingress_ts"], hops[-1]["egress_ts"])
            if hops
            else 0
        )
        self._e2e.observe(e2e)

        previous = self._flow_paths.get(flow)
        if previous is not None and previous != path:
            self._path_change_count.inc()
            self.path_changes.append(
                PathChange(flow, previous, path, packet_index=index)
            )
        self._flow_paths[flow] = path

        record = {
            "flow": flow,
            "node": node,
            "port": port,
            "path": list(path),
            "hops": annotated,
            "e2e_latency_ns": e2e,
            "epochs": epochs,
            "epoch_mismatch": mismatch,
        }
        self.records.append(record)
        return record

    def _hop_histogram(self, switch_id: int) -> Histogram:
        hist = self._hop_hists.get(switch_id)
        if hist is None:
            hist = self.metrics.histogram(
                "int.hop_latency_ns", LATENCY_BOUNDS_NS, switch=str(switch_id)
            )
            self._hop_hists[switch_id] = hist
        return hist

    # -- views -------------------------------------------------------------

    def flow_path(self, flow: str) -> Optional[Tuple[int, ...]]:
        """Last observed hop list (switch ids) for ``flow``."""
        return self._flow_paths.get(flow)

    def flows(self) -> Dict[str, Tuple[int, ...]]:
        return dict(self._flow_paths)

    def epoch_evidence(self) -> List[dict]:
        """Every packet that carried more than one dataplane epoch --
        the in-band trace of a fabric mid-update."""
        return [r for r in self.records if r["epoch_mismatch"]]

    # -- export ------------------------------------------------------------

    def to_dicts(self) -> List[dict]:
        """Packet records followed by path-change events (the jsonl
        export body)."""
        return list(self.records) + [
            change.to_dict() for change in self.path_changes
        ]

    def export_jsonl(self, dest: PathOrFile) -> int:
        """Dump records + events as JSON lines; returns the count."""
        return write_jsonl(dest, self.to_dicts())

    def latency_quantile(
        self, q: float, switch_id: Optional[int] = None
    ) -> Optional[float]:
        """Estimated latency quantile in ns -- end-to-end by default,
        per-hop when ``switch_id`` is given.  Shares the bucket-walk
        implementation with :meth:`Histogram.quantile`, so health rules
        and INT analytics agree on the math."""
        if switch_id is None:
            return self._e2e.quantile(q)
        hist = self._hop_hists.get(switch_id)
        return hist.quantile(q) if hist is not None else None

    def summary(self) -> dict:
        """Aggregate view backing ``ipbm-ctl int report``."""
        return {
            "packets": int(self._packets.value),
            "hop_records": int(self._hop_records.value),
            "flows": {
                flow: list(path) for flow, path in self._flow_paths.items()
            },
            "path_changes": len(self.path_changes),
            "epoch_mismatch_packets": int(self._mismatch_packets.value),
            "e2e_latency_ns": {
                "p50": self._e2e.quantile(0.50),
                "p99": self._e2e.quantile(0.99),
            },
            "hop_latency_p99_ns": {
                str(switch): hist.quantile(0.99)
                for switch, hist in sorted(self._hop_hists.items())
            },
        }

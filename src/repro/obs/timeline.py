"""Phase timelines for control-plane operations.

``load_base``, ``run_script``, ``rollback``, and the device's own
``apply_update`` each record a :class:`Timeline`: an ordered list of
**contiguous** phases (each phase starts where the previous one
ended), so phase durations tile the operation and sum to its total.
That is what lets a Table-1-style compile/load number decompose: how
long the drain took, how long template writes took, where the stall
actually went.

Timelines round-trip through JSON (:meth:`Timeline.to_dict` /
:meth:`Timeline.from_dict`) and render with :func:`format_timeline`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

from repro.obs.clock import Clock, MONOTONIC


@dataclass
class Phase:
    """One timed phase of an operation."""

    name: str
    start: float
    end: float
    attrs: Dict[str, object] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "duration_seconds": self.duration,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Phase":
        return cls(
            name=data["name"],
            start=data.get("start", 0.0),
            end=data.get("end", 0.0),
            attrs=dict(data.get("attrs", {})),
        )


class Timeline:
    """Contiguous phases of one operation on a shared clock."""

    def __init__(
        self, label: str, clock: Optional[Clock] = None, **attrs: object
    ) -> None:
        self.label = label
        self.attrs: Dict[str, object] = dict(attrs)
        self._clock = clock or MONOTONIC
        self.start = self._clock.now()
        self._cursor = self.start
        self.end: Optional[float] = None
        self.phases: List[Phase] = []

    def phase(self, name: str, **attrs: object) -> Phase:
        """Close the phase that has been running since the previous
        boundary (or since ``start``) under ``name``."""
        now = self._clock.now()
        phase = Phase(name=name, start=self._cursor, end=now, attrs=dict(attrs))
        self.phases.append(phase)
        self._cursor = now
        return phase

    def finish(self) -> "Timeline":
        """Seal the timeline; the end is the last phase boundary, so
        phase durations sum to :attr:`total_seconds` exactly."""
        self.end = self._cursor if self.phases else self._clock.now()
        return self

    @property
    def total_seconds(self) -> float:
        end = self.end if self.end is not None else self._cursor
        return end - self.start

    def durations(self) -> Dict[str, float]:
        return {p.name: p.duration for p in self.phases}

    def to_dict(self) -> dict:
        return {
            "label": self.label,
            "attrs": dict(self.attrs),
            "start": self.start,
            "end": self.end if self.end is not None else self._cursor,
            "total_seconds": self.total_seconds,
            "phases": [p.to_dict() for p in self.phases],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Timeline":
        timeline = cls.__new__(cls)
        timeline._clock = MONOTONIC
        timeline.label = data["label"]
        timeline.attrs = dict(data.get("attrs", {}))
        timeline.start = data.get("start", 0.0)
        timeline.end = data.get("end", timeline.start)
        timeline._cursor = timeline.end
        timeline.phases = [Phase.from_dict(p) for p in data.get("phases", [])]
        return timeline


class TimelineRecorder:
    """Bounded history of finished (and in-flight) timelines."""

    def __init__(
        self, capacity: int = 64, clock: Optional[Clock] = None
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self._clock = clock or MONOTONIC
        self.timelines: Deque[Timeline] = deque(maxlen=capacity)

    def begin(self, label: str, **attrs: object) -> Timeline:
        timeline = Timeline(label, clock=self._clock, **attrs)
        self.timelines.append(timeline)
        return timeline

    def latest(self, label: Optional[str] = None) -> Optional[Timeline]:
        for timeline in reversed(self.timelines):
            if label is None or timeline.label == label:
                return timeline
        return None

    def to_dicts(self) -> List[dict]:
        return [t.to_dict() for t in self.timelines]


def format_timeline(timeline: Timeline) -> str:
    """Human-readable phase breakdown of one timeline."""
    total = timeline.total_seconds
    attrs = " ".join(f"{k}={v}" for k, v in timeline.attrs.items())
    lines = [
        f"{timeline.label}: total {total * 1e3:.3f}ms"
        + (f" [{attrs}]" if attrs else "")
    ]
    for phase in timeline.phases:
        share = (phase.duration / total * 100) if total > 0 else 0.0
        detail = " ".join(f"{k}={v}" for k, v in phase.attrs.items())
        lines.append(
            f"  {phase.name:12s} {phase.duration * 1e3:8.3f}ms {share:5.1f}%"
            + (f"  {detail}" if detail else "")
        )
    return "\n".join(lines)

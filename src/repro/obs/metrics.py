"""A device-level metrics registry: counters, gauges, histograms.

Two publication styles coexist:

* **Owned instruments** (:class:`Counter`, :class:`Gauge`,
  :class:`Histogram`) are created through the registry and mutated
  directly -- used where the registry is the natural home of the
  state (controller flow timings, packet-size distribution).
* **Collectors** are callables returning :class:`Sample`s at collect
  time.  Components that already keep hot-path counters (TSPs, the
  TM, tables, meters) register a collector instead of doubling every
  increment, so enabling the registry costs the forwarding path
  nothing.

``collect()`` merges both into one flat sample list;
``to_prometheus()`` renders the standard text exposition and
``runtime.stats.snapshot()`` pivots the same samples back into the
legacy nested snapshot shape.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, str]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


@dataclass
class Sample:
    """One exported data point: a name, a value, and string labels."""

    name: str
    value: float
    labels: Dict[str, str] = field(default_factory=dict)
    kind: str = "counter"  # "counter" | "gauge"

    def key(self) -> Tuple[str, LabelKey]:
        return (self.name, _label_key(self.labels))


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("name", "labels", "value")

    kind = "counter"

    def __init__(self, name: str, labels: Optional[Dict[str, str]] = None) -> None:
        self.name = name
        self.labels = dict(labels or {})
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount

    def samples(self) -> Iterable[Sample]:
        yield Sample(self.name, self.value, dict(self.labels), "counter")


class Gauge:
    """A value that can go up and down, or be computed at collect time."""

    __slots__ = ("name", "labels", "value", "fn")

    kind = "gauge"

    def __init__(
        self,
        name: str,
        labels: Optional[Dict[str, str]] = None,
        fn: Optional[Callable[[], float]] = None,
    ) -> None:
        self.name = name
        self.labels = dict(labels or {})
        self.value: float = 0
        self.fn = fn

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def dec(self, amount: float = 1) -> None:
        self.value -= amount

    def samples(self) -> Iterable[Sample]:
        value = self.fn() if self.fn is not None else self.value
        yield Sample(self.name, value, dict(self.labels), "gauge")


def bucket_quantile(
    bounds: Sequence[float], bucket_counts: Sequence[int], q: float
) -> Optional[float]:
    """Estimate the ``q``-quantile of a bucketed distribution.

    ``bucket_counts`` are per-bucket (not cumulative) counts, one per
    edge in ``bounds`` plus the trailing ``+Inf`` bucket.  The estimate
    linearly interpolates within the winning bucket, with the first
    bucket's lower edge taken as 0 -- the same convention Prometheus'
    ``histogram_quantile`` uses.  A quantile that lands in the ``+Inf``
    bucket clamps to the highest finite edge; an empty distribution
    returns ``None``.
    """
    total = sum(bucket_counts)
    if total <= 0:
        return None
    q = min(max(q, 0.0), 1.0)
    rank = q * total
    cumulative = 0.0
    for i, count in enumerate(bucket_counts):
        if count == 0:
            continue
        if cumulative + count >= rank:
            if i >= len(bounds):  # +Inf bucket: clamp to the last edge
                return float(bounds[-1])
            lower = float(bounds[i - 1]) if i > 0 else 0.0
            upper = float(bounds[i])
            fraction = (rank - cumulative) / count
            return lower + (upper - lower) * min(max(fraction, 0.0), 1.0)
        cumulative += count
    return float(bounds[-1])


@dataclass(frozen=True)
class HistogramSnapshot:
    """An immutable point-in-time copy of a histogram's buckets.

    Snapshots subtract (``later.delta(earlier)``), which is what turns
    a cumulative histogram into a *windowed* one: the delta between
    two snapshots taken ``w`` seconds apart holds exactly the
    observations of that window, and :meth:`quantile` reads percentiles
    off it.  The health engine and the INT collector both lean on this
    instead of keeping raw observation lists.
    """

    name: str
    bounds: Tuple[float, ...]
    counts: Tuple[int, ...]  # per-bucket, last = +Inf
    count: int
    sum: float

    def quantile(self, q: float) -> Optional[float]:
        return bucket_quantile(self.bounds, self.counts, q)

    def delta(self, earlier: "HistogramSnapshot") -> "HistogramSnapshot":
        """Observations recorded after ``earlier`` was taken.  Counter
        resets (a shrinking bucket) clamp to zero."""
        if earlier.bounds != self.bounds:
            raise ValueError(
                f"snapshot delta over mismatched bounds for {self.name!r}"
            )
        return HistogramSnapshot(
            name=self.name,
            bounds=self.bounds,
            counts=tuple(
                max(0, now - then)
                for now, then in zip(self.counts, earlier.counts)
            ),
            count=max(0, self.count - earlier.count),
            sum=max(0.0, self.sum - earlier.sum),
        )

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
        }


class Histogram:
    """A bounded-bucket histogram (cumulative ``le`` semantics).

    ``bounds`` are the upper bucket edges, strictly increasing; an
    implicit ``+Inf`` bucket catches the rest.  An observation equal
    to an edge lands in that edge's bucket, exactly as Prometheus'
    ``le`` (less-or-equal) buckets do.
    """

    __slots__ = ("name", "labels", "bounds", "bucket_counts", "count", "sum")

    kind = "histogram"

    def __init__(
        self,
        name: str,
        bounds: Sequence[float],
        labels: Optional[Dict[str, str]] = None,
    ) -> None:
        if not bounds:
            raise ValueError(f"histogram {name!r} needs at least one bucket edge")
        edges = [float(b) for b in bounds]
        if any(later <= earlier for later, earlier in zip(edges[1:], edges)):
            raise ValueError(f"histogram {name!r}: edges must strictly increase")
        self.name = name
        self.labels = dict(labels or {})
        self.bounds: Tuple[float, ...] = tuple(edges)
        self.bucket_counts = [0] * (len(edges) + 1)  # last = +Inf
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value

    def bucket_edges(self) -> List[str]:
        return [repr(b) for b in self.bounds] + ["+Inf"]

    def cumulative_counts(self) -> List[int]:
        out, running = [], 0
        for count in self.bucket_counts:
            running += count
            out.append(running)
        return out

    def quantile(self, q: float) -> Optional[float]:
        """Estimated ``q``-quantile over all observations so far."""
        return bucket_quantile(self.bounds, self.bucket_counts, q)

    def snapshot(self) -> HistogramSnapshot:
        return HistogramSnapshot(
            name=self.name,
            bounds=self.bounds,
            counts=tuple(self.bucket_counts),
            count=self.count,
            sum=self.sum,
        )

    def samples(self) -> Iterable[Sample]:
        for edge, cum in zip(self.bucket_edges(), self.cumulative_counts()):
            labels = dict(self.labels)
            labels["le"] = edge
            yield Sample(self.name + "_bucket", cum, labels, "counter")
        yield Sample(self.name + "_count", self.count, dict(self.labels), "counter")
        yield Sample(self.name + "_sum", self.sum, dict(self.labels), "counter")


class MetricsRegistry:
    """Named instruments plus collect-time sample collectors."""

    def __init__(self) -> None:
        self._instruments: Dict[Tuple[str, LabelKey], object] = {}
        self._collectors: Dict[str, Callable[[], Iterable[Sample]]] = {}

    # -- owned instruments ------------------------------------------------

    def _get_or_create(self, cls, name: str, labels: Dict[str, str], *args):
        key = (name, _label_key(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = cls(name, *args, labels=labels)
            self._instruments[key] = instrument
        elif not isinstance(instrument, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(instrument).__name__}"
            )
        return instrument

    def counter(self, name: str, **labels: str) -> Counter:
        return self._get_or_create(Counter, name, labels)

    def gauge(
        self, name: str, fn: Optional[Callable[[], float]] = None, **labels: str
    ) -> Gauge:
        key = (name, _label_key(labels))
        gauge = self._instruments.get(key)
        if gauge is None:
            gauge = Gauge(name, labels=labels, fn=fn)
            self._instruments[key] = gauge
        elif not isinstance(gauge, Gauge):
            raise TypeError(f"metric {name!r} already registered as non-gauge")
        return gauge

    def histogram(
        self, name: str, bounds: Sequence[float], **labels: str
    ) -> Histogram:
        key = (name, _label_key(labels))
        histogram = self._instruments.get(key)
        if histogram is None:
            histogram = Histogram(name, bounds, labels=labels)
            self._instruments[key] = histogram
        elif not isinstance(histogram, Histogram):
            raise TypeError(f"metric {name!r} already registered as non-histogram")
        return histogram

    # -- collectors --------------------------------------------------------

    def add_collector(
        self, name: str, fn: Callable[[], Iterable[Sample]]
    ) -> None:
        """Register a callable producing samples at collect time."""
        self._collectors[name] = fn

    def remove_collector(self, name: str) -> None:
        self._collectors.pop(name, None)

    # -- export ------------------------------------------------------------

    def collect(self) -> List[Sample]:
        samples: List[Sample] = []
        for instrument in self._instruments.values():
            samples.extend(instrument.samples())  # type: ignore[attr-defined]
        for fn in self._collectors.values():
            samples.extend(fn())
        return samples

    def value(self, name: str, default: float = 0, **labels: str) -> float:
        """Look a single sample up by name + labels (collects first).

        Histograms are addressable by base name too: a miss on ``name``
        falls back to ``name_count`` (the observation count), so rules
        and callers can target any metric kind uniformly.
        """
        key = _label_key({k: str(v) for k, v in labels.items()})
        wanted = (name, key)
        fallback = (name + "_count", key)
        hit = None
        for sample in self.collect():
            sample_key = sample.key()
            if sample_key == wanted:
                return sample.value
            if sample_key == fallback and hit is None:
                hit = sample.value
        return default if hit is None else hit

    def histogram_snapshot(
        self, name: str, **labels: str
    ) -> Optional[HistogramSnapshot]:
        """Rebuild a :class:`HistogramSnapshot` from collected samples.

        Works for owned histograms *and* collector-produced ones: the
        cumulative ``name_bucket{le=...}`` samples are undiffed back
        into per-bucket counts.  Returns ``None`` when no buckets with
        the given name + labels exist.
        """
        return snapshot_from_samples(self.collect(), name, labels)

    def to_dict(self) -> Dict[str, float]:
        """Flat ``name{label="v",...}`` -> value mapping (JSON-friendly)."""
        return {
            _exposition_name(sample): sample.value for sample in self.collect()
        }

    def to_prometheus(self) -> str:
        """Prometheus text exposition (names sanitized to [a-z_])."""
        by_name: Dict[str, List[Sample]] = {}
        kinds: Dict[str, str] = {}
        for sample in self.collect():
            metric = _sanitize(sample.name)
            by_name.setdefault(metric, []).append(sample)
            kinds.setdefault(metric, sample.kind)
        lines: List[str] = []
        for metric in sorted(by_name):
            lines.append(f"# TYPE {metric} {kinds[metric]}")
            for sample in by_name[metric]:
                lines.append(f"{_exposition_name(sample)} {_fmt(sample.value)}")
        return "\n".join(lines) + "\n"


def snapshot_from_samples(
    samples: Iterable[Sample],
    name: str,
    labels: Optional[Dict[str, str]] = None,
) -> Optional[HistogramSnapshot]:
    """Rebuild a histogram snapshot from an already-collected sample
    list (see :meth:`MetricsRegistry.histogram_snapshot`)."""
    key = _label_key({k: str(v) for k, v in (labels or {}).items()})
    buckets: List[Tuple[float, float]] = []  # (edge, cumulative)
    inf_cum: Optional[float] = None
    count = 0
    total = 0.0
    seen = False
    for sample in samples:
        if sample.name == name + "_bucket":
            rest = {k: v for k, v in sample.labels.items() if k != "le"}
            if _label_key(rest) != key:
                continue
            seen = True
            edge = sample.labels.get("le", "+Inf")
            if edge == "+Inf":
                inf_cum = sample.value
            else:
                buckets.append((float(edge), sample.value))
        elif sample.key() == (name + "_count", key):
            count = int(sample.value)
        elif sample.key() == (name + "_sum", key):
            total = float(sample.value)
    if not seen:
        return None
    buckets.sort(key=lambda pair: pair[0])
    bounds = tuple(edge for edge, _ in buckets)
    cumulative = [cum for _, cum in buckets]
    cumulative.append(inf_cum if inf_cum is not None else float(count))
    counts: List[int] = []
    previous = 0.0
    for cum in cumulative:
        counts.append(int(max(0.0, cum - previous)))
        previous = cum
    return HistogramSnapshot(
        name=name, bounds=bounds, counts=tuple(counts), count=count, sum=total
    )


def _sanitize(name: str) -> str:
    return name.replace(".", "_").replace("-", "_")


def _fmt(value: float) -> str:
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, int) or (isinstance(value, float) and value.is_integer()):
        return str(int(value))
    return repr(value)


def _escape_label_value(value: object) -> str:
    """Escape per the Prometheus text format: backslash first, then
    the quote and newline (the only characters the format escapes)."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _exposition_name(sample: Sample) -> str:
    metric = _sanitize(sample.name)
    if not sample.labels:
        return metric
    rendered = ",".join(
        f'{_sanitize(k)}="{_escape_label_value(v)}"'
        for k, v in sorted(sample.labels.items())
    )
    return f"{metric}{{{rendered}}}"

"""Low-overhead performance profiler: where did the packet's time go.

PR 1's tracer answers *what the packet did*; the :class:`Profiler`
answers *where the time went*.  Attached to a switch
(``switch.enable_profiling()``) it attributes wall-time and work
counters (headers parsed, table lookups, primitive ops, TM enqueues)
to hierarchical paths like ``("tsp3", "match", "ipv4_lpm")`` or
``("parser", "parse")``.  The path's second element is always the
**phase** (``parse`` / ``match`` / ``execute`` / ``enqueue`` /
``dequeue`` / ``deparse``), which is what makes per-stage shares --
the paper's Sec. 5 cost decomposition -- a one-liner
(:meth:`Profiler.phase_seconds`).

Profiling is **off by default**, same discipline as the tracer: the
untouched hot path pays one ``is None`` check per packet/TSP.  Output
surfaces:

* :func:`format_profile` -- a top-style table sorted by self time;
* :meth:`Profiler.folded` -- Brendan-Gregg folded-stack lines
  (``ipsa;tsp3;match;ipv4_lpm 127``) ready for ``flamegraph.pl`` or
  speedscope;
* :meth:`Profiler.to_dict` -- the JSON the bench harness embeds in
  ``BENCH_*.json``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.obs.clock import Clock, MONOTONIC

Path = Tuple[str, ...]

#: Canonical phase names (the second path element).
PHASES = ("parse", "match", "execute", "enqueue", "dequeue", "deparse")


@dataclass
class ProfileRecord:
    """Accumulated cost of one attribution path."""

    path: Path
    calls: int = 0
    seconds: float = 0.0
    work: Dict[str, int] = field(default_factory=dict)

    @property
    def phase(self) -> str:
        return self.path[1] if len(self.path) > 1 else self.path[0]

    def to_dict(self) -> dict:
        return {
            "path": list(self.path),
            "calls": self.calls,
            "seconds": self.seconds,
            "work": dict(self.work),
        }


class Profiler:
    """Attributes wall-time + work counters to component paths.

    The hot-path contract is two calls per timed region::

        started = profiler.now()
        ...work...
        profiler.add(("tsp3", "match", "ipv4_lpm"), started, lookups=1)

    ``add`` reads the clock once, so a region costs exactly two clock
    reads.  Pure counters (no timing) go through :meth:`count`.
    """

    def __init__(self, clock: Optional[Clock] = None) -> None:
        self._clock = clock or MONOTONIC
        self.records: Dict[Path, ProfileRecord] = {}
        self.packets = 0
        self.engine_lookups: Dict[str, int] = {}

    # -- hot path ----------------------------------------------------------

    def now(self) -> float:
        return self._clock.now()

    def add(self, path: Path, started: float, **work: int) -> float:
        """Close a timed region opened at ``started``; returns now."""
        now = self._clock.now()
        record = self.records.get(path)
        if record is None:
            record = self.records[path] = ProfileRecord(path)
        record.calls += 1
        record.seconds += now - started
        for key, amount in work.items():
            record.work[key] = record.work.get(key, 0) + amount
        return now

    def count(self, path: Path, **work: int) -> None:
        """Bump work counters on a path without timing it."""
        record = self.records.get(path)
        if record is None:
            record = self.records[path] = ProfileRecord(path)
        record.calls += 1
        for key, amount in work.items():
            record.work[key] = record.work.get(key, 0) + amount

    def note_engine(self, kind: str) -> None:
        """Attribute one table lookup to a match-engine kind."""
        self.engine_lookups[kind] = self.engine_lookups.get(kind, 0) + 1

    # -- aggregation -------------------------------------------------------

    def total_seconds(self) -> float:
        return sum(r.seconds for r in self.records.values())

    def phase_seconds(self) -> Dict[str, float]:
        """Attributed seconds per phase (parse/match/execute/...)."""
        out: Dict[str, float] = {}
        for record in self.records.values():
            phase = record.phase
            out[phase] = out.get(phase, 0.0) + record.seconds
        return out

    def phase_shares(self) -> Dict[str, float]:
        """Per-phase fraction of all attributed time (sums to 1.0)."""
        seconds = self.phase_seconds()
        total = sum(seconds.values())
        if total <= 0:
            return {phase: 0.0 for phase in seconds}
        return {phase: s / total for phase, s in seconds.items()}

    def work_totals(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for record in self.records.values():
            for key, amount in record.work.items():
                out[key] = out.get(key, 0) + amount
        return out

    def sorted_records(self) -> List[ProfileRecord]:
        """Records by descending self time (the top-style ordering)."""
        return sorted(
            self.records.values(), key=lambda r: (-r.seconds, r.path)
        )

    def reset(self) -> None:
        self.records.clear()
        self.engine_lookups.clear()
        self.packets = 0

    # -- export ------------------------------------------------------------

    def folded(self, root: str = "device") -> List[str]:
        """Brendan-Gregg folded stacks, one line per path.

        The sample unit is the microsecond (rounded, min 1 for any
        path that was hit), so flamegraph widths are time-proportional.
        Untimed counter-only paths weigh their call count instead.
        """
        lines = []
        for record in sorted(self.records.values(), key=lambda r: r.path):
            if record.seconds > 0:
                weight = max(1, round(record.seconds * 1e6))
            else:
                weight = max(1, record.calls)
            lines.append(";".join((root,) + record.path) + f" {weight}")
        return lines

    def to_dict(self) -> dict:
        return {
            "packets": self.packets,
            "total_seconds": self.total_seconds(),
            "phase_seconds": self.phase_seconds(),
            "phase_shares": self.phase_shares(),
            "work": self.work_totals(),
            "engine_lookups": dict(self.engine_lookups),
            "records": [r.to_dict() for r in self.sorted_records()],
        }


def format_profile(profiler: Profiler, top: int = 0) -> str:
    """Top-style rendering: hottest attribution paths first."""
    total = profiler.total_seconds()
    packets = max(1, profiler.packets)
    records = profiler.sorted_records()
    if top > 0:
        records = records[:top]
    lines = [
        f"profile: {profiler.packets} packets, "
        f"{total * 1e3:.3f}ms attributed"
        + (
            f" ({total / packets * 1e9:.0f}ns/pkt)"
            if profiler.packets
            else ""
        ),
        f"{'path':32s} {'calls':>8s} {'total_ms':>9s} {'ns/call':>9s} "
        f"{'share':>6s}  work",
    ]
    for record in records:
        path = ";".join(record.path)
        share = (record.seconds / total * 100) if total > 0 else 0.0
        ns_call = (
            record.seconds / record.calls * 1e9 if record.calls else 0.0
        )
        work = " ".join(
            f"{k}={v}" for k, v in sorted(record.work.items())
        )
        lines.append(
            f"{path:32s} {record.calls:8d} {record.seconds * 1e3:9.3f} "
            f"{ns_call:9.0f} {share:5.1f}%  {work}"
        )
    shares = profiler.phase_shares()
    if shares:
        lines.append(
            "phases: "
            + " ".join(
                f"{phase}={share * 100:.1f}%"
                for phase, share in sorted(
                    shares.items(), key=lambda kv: -kv[1]
                )
            )
        )
    if profiler.engine_lookups:
        lines.append(
            "engines: "
            + " ".join(
                f"{kind}={count}"
                for kind, count in sorted(profiler.engine_lookups.items())
            )
        )
    return "\n".join(lines)

"""Streaming health engine: sliding windows, alert rules, flight recorder.

Everything upstream of this module *produces* signals -- the metrics
registry, INT latency histograms, update timelines, epoch evidence.
Nothing *judged* them continuously: the staged-rollout health gate was
a one-shot snapshot check, and a regression between waves went
unnoticed.  This module closes that loop in the same spirit as the
rest of rP4 -- declaratively, at runtime, without touching the packet
hot path:

* :class:`WindowedSeries` / windowed histogram snapshots -- sliding-
  window views (rate, delta, EWMA, quantiles) over sampled metric
  values, pruned to a bounded horizon.
* Rules -- :class:`ThresholdRule` (any metric, any window signal),
  :class:`BurnRateRule` (multiwindow SLO burn), :class:`AbsenceRule`
  (heartbeat).  All carry for-duration hysteresis and serialize
  to/from plain dicts, so rule sets install at runtime exactly like
  dataplane programs do.
* :class:`AlertInstance` -- the ``inactive -> pending -> firing ->
  resolved`` lifecycle per (rule, device).
* :class:`HealthEngine` -- pull-based evaluator: each ``tick()`` takes
  one snapshot per attached source on the injectable ``obs.clock``,
  feeds the windows, steps every alert lifecycle, and exports
  ``ALERTS{alertname=...}`` plus per-device ``health.score`` gauges
  through its own registry.  ``device_health()`` is the score the
  staged-rollout gate consumes.
* :class:`FlightRecorder` -- a bounded ring buffer of metric deltas,
  alert transitions, timeline phases, path changes, and txn/rollback
  events.  On a configured trigger (rollback, by default) it freezes
  the ring into a post-mortem JSON bundle.

The engine is strictly *outside* the forwarding path: devices never
call into it; it reads their registries at tick time.  The
``health_overhead`` bench cell keeps that claim honest.
"""

from __future__ import annotations

import json
import re
from collections import deque
from dataclasses import dataclass
from typing import (
    Callable,
    Deque,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.obs.clock import Clock, MONOTONIC
from repro.obs.metrics import (
    HistogramSnapshot,
    LabelKey,
    MetricsRegistry,
    Sample,
    _label_key,
    snapshot_from_samples,
)

SEVERITIES = ("info", "warning", "critical")

#: How much a single firing alert subtracts from a device's score.
SEVERITY_WEIGHT = {"info": 0.0, "warning": 0.4, "critical": 1.0}

_OPS: Dict[str, Callable[[float, float], bool]] = {
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
}

_QUANTILE_RE = re.compile(r"^p(\d{1,2}(?:\.\d+)?)$")


# ---------------------------------------------------------------------------
# sliding windows
# ---------------------------------------------------------------------------


class WindowedSeries:
    """Timestamped scalar samples pruned to a bounded horizon.

    The engine pushes one sample per tick; rules read windowed views.
    All views take ``now`` explicitly so a tick evaluates every rule
    against one coherent instant.
    """

    __slots__ = ("horizon", "_points")

    def __init__(self, horizon: float = 300.0) -> None:
        self.horizon = horizon
        self._points: Deque[Tuple[float, float]] = deque()

    def push(self, t: float, value: float) -> None:
        self._points.append((t, float(value)))
        floor = t - self.horizon
        while self._points and self._points[0][0] < floor:
            self._points.popleft()

    def __len__(self) -> int:
        return len(self._points)

    def latest(self) -> Optional[float]:
        return self._points[-1][1] if self._points else None

    def _window(self, now: float, window: float) -> List[Tuple[float, float]]:
        floor = now - window
        return [p for p in self._points if p[0] >= floor]

    def spans(self, now: float, window: float) -> bool:
        """True when sampling reaches back at least ``window`` seconds."""
        return bool(self._points) and self._points[0][0] <= now - window

    def delta(self, now: float, window: float) -> Optional[float]:
        pts = self._window(now, window)
        if len(pts) < 2:
            return None
        return pts[-1][1] - pts[0][1]

    def rate(self, now: float, window: float) -> Optional[float]:
        """Per-second increase over the window; counter resets clamp
        to zero rather than going negative."""
        pts = self._window(now, window)
        if len(pts) < 2:
            return None
        span = pts[-1][0] - pts[0][0]
        if span <= 0:
            return None
        return max(0.0, (pts[-1][1] - pts[0][1]) / span)

    def ewma(self, now: float, half_life: float) -> Optional[float]:
        if not self._points or half_life <= 0:
            return self.latest()
        weighted = total = 0.0
        for t, value in self._points:
            weight = 0.5 ** ((now - t) / half_life)
            weighted += weight * value
            total += weight
        return weighted / total if total > 0 else None


class HistogramSeries:
    """Timestamped histogram snapshots; windowed quantiles via delta."""

    __slots__ = ("horizon", "_points")

    def __init__(self, horizon: float = 300.0) -> None:
        self.horizon = horizon
        self._points: Deque[Tuple[float, HistogramSnapshot]] = deque()

    def push(self, t: float, snapshot: HistogramSnapshot) -> None:
        self._points.append((t, snapshot))
        floor = t - self.horizon
        while self._points and self._points[0][0] < floor:
            self._points.popleft()

    def __len__(self) -> int:
        return len(self._points)

    def quantile(
        self, now: float, window: float, q: float
    ) -> Optional[float]:
        """Quantile over observations recorded inside the window
        (cumulative snapshots differenced, then bucket-walked)."""
        floor = now - window
        pts = [p for p in self._points if p[0] >= floor]
        if not pts:
            return None
        if len(pts) == 1:
            return pts[0][1].quantile(q)
        return pts[-1][1].delta(pts[0][1]).quantile(q)


# ---------------------------------------------------------------------------
# rules
# ---------------------------------------------------------------------------


@dataclass
class AlertTransition:
    """One lifecycle edge of one (rule, device) alert."""

    ts: float
    rule: str
    device: str
    from_state: str
    to_state: str
    severity: str

    def to_dict(self) -> dict:
        return {
            "ts": self.ts,
            "rule": self.rule,
            "device": self.device,
            "from": self.from_state,
            "to": self.to_state,
            "severity": self.severity,
        }


class _EvalContext:
    """What one rule sees when evaluated against one device."""

    __slots__ = ("now", "uptime", "_scalars", "_hists")

    def __init__(
        self,
        now: float,
        uptime: float,
        scalars: Dict[Tuple[str, LabelKey], WindowedSeries],
        hists: Dict[Tuple[str, LabelKey], HistogramSeries],
    ) -> None:
        self.now = now
        self.uptime = uptime
        self._scalars = scalars
        self._hists = hists

    def scalar(
        self, metric: str, labels: Dict[str, str]
    ) -> Optional[WindowedSeries]:
        return self._scalars.get((metric, _label_key(labels)))

    def histogram(
        self, metric: str, labels: Dict[str, str]
    ) -> Optional[HistogramSeries]:
        return self._hists.get((metric, _label_key(labels)))


class Rule:
    """Base class: identity, hysteresis, and serialization plumbing.

    Subclasses define ``condition(ctx) -> bool`` and ``needs()`` (the
    metric series the engine must maintain for them).  ``device=None``
    means the rule is instantiated per attached source; naming a
    device scopes it to that one.
    """

    kind = "rule"

    def __init__(
        self,
        name: str,
        severity: str = "critical",
        for_seconds: float = 0.0,
        resolve_seconds: float = 0.0,
        device: Optional[str] = None,
    ) -> None:
        if severity not in SEVERITIES:
            raise ValueError(f"unknown severity {severity!r}")
        self.name = name
        self.severity = severity
        self.for_seconds = float(for_seconds)
        self.resolve_seconds = float(resolve_seconds)
        self.device = device

    def condition(self, ctx: _EvalContext) -> bool:
        raise NotImplementedError

    def needs(self) -> List[Tuple[str, Dict[str, str], str]]:
        """(metric, labels, "scalar"|"histogram") series this rule reads."""
        raise NotImplementedError

    def _base_dict(self) -> dict:
        return {
            "kind": self.kind,
            "name": self.name,
            "severity": self.severity,
            "for_seconds": self.for_seconds,
            "resolve_seconds": self.resolve_seconds,
            "device": self.device,
        }

    def to_dict(self) -> dict:
        raise NotImplementedError


class ThresholdRule(Rule):
    """``signal(metric) op value`` over a sliding window.

    ``signal`` is one of ``value`` (latest sample), ``rate``, ``delta``,
    ``ewma`` (half-life = window), or ``pNN``/``pNN.N`` for a windowed
    histogram quantile (e.g. ``p99``).  A window without enough
    samples evaluates to *not in violation* -- absence of data is the
    :class:`AbsenceRule`'s job.
    """

    kind = "threshold"

    def __init__(
        self,
        name: str,
        metric: str,
        value: float,
        signal: str = "value",
        op: str = ">",
        window: float = 10.0,
        labels: Optional[Dict[str, str]] = None,
        **common: object,
    ) -> None:
        super().__init__(name, **common)  # type: ignore[arg-type]
        if op not in _OPS:
            raise ValueError(f"unknown op {op!r}")
        quantile = _QUANTILE_RE.match(signal)
        if signal not in ("value", "rate", "delta", "ewma") and not quantile:
            raise ValueError(f"unknown signal {signal!r}")
        self.metric = metric
        self.value = float(value)
        self.signal = signal
        self.op = op
        self.window = float(window)
        self.labels = dict(labels or {})
        self._quantile = float(quantile.group(1)) / 100.0 if quantile else None

    def needs(self) -> List[Tuple[str, Dict[str, str], str]]:
        kind = "histogram" if self._quantile is not None else "scalar"
        return [(self.metric, dict(self.labels), kind)]

    def observed(self, ctx: _EvalContext) -> Optional[float]:
        """The signal's current windowed value (None = insufficient data)."""
        if self._quantile is not None:
            hist = ctx.histogram(self.metric, self.labels)
            if hist is None:
                return None
            return hist.quantile(ctx.now, self.window, self._quantile)
        series = ctx.scalar(self.metric, self.labels)
        if series is None:
            return None
        if self.signal == "value":
            return series.latest()
        if self.signal == "rate":
            return series.rate(ctx.now, self.window)
        if self.signal == "delta":
            return series.delta(ctx.now, self.window)
        return series.ewma(ctx.now, self.window)

    def condition(self, ctx: _EvalContext) -> bool:
        observed = self.observed(ctx)
        if observed is None:
            return False
        return _OPS[self.op](observed, self.value)

    def to_dict(self) -> dict:
        data = self._base_dict()
        data.update(
            metric=self.metric,
            value=self.value,
            signal=self.signal,
            op=self.op,
            window=self.window,
            labels=dict(self.labels),
        )
        return data


class BurnRateRule(Rule):
    """Multiwindow SLO burn-rate alert (errors/total vs. an objective).

    Burn over a window is ``(d_errors / d_total) / objective``; the
    alert condition requires **both** the short and the long window to
    burn faster than ``burn_factor`` -- the standard multiwindow trick:
    the long window keeps one transient spike from paging, the short
    window resolves quickly once the bleed stops.
    """

    kind = "burn_rate"

    def __init__(
        self,
        name: str,
        errors: str,
        total: str,
        objective: float = 0.01,
        short_window: float = 5.0,
        long_window: float = 60.0,
        burn_factor: float = 1.0,
        labels: Optional[Dict[str, str]] = None,
        **common: object,
    ) -> None:
        super().__init__(name, **common)  # type: ignore[arg-type]
        if objective <= 0:
            raise ValueError("objective must be positive")
        self.errors = errors
        self.total = total
        self.objective = float(objective)
        self.short_window = float(short_window)
        self.long_window = float(long_window)
        self.burn_factor = float(burn_factor)
        self.labels = dict(labels or {})

    def needs(self) -> List[Tuple[str, Dict[str, str], str]]:
        return [
            (self.errors, dict(self.labels), "scalar"),
            (self.total, dict(self.labels), "scalar"),
        ]

    def burn(self, ctx: _EvalContext, window: float) -> Optional[float]:
        errors = ctx.scalar(self.errors, self.labels)
        total = ctx.scalar(self.total, self.labels)
        if errors is None or total is None:
            return None
        d_err = errors.delta(ctx.now, window)
        d_tot = total.delta(ctx.now, window)
        if d_err is None or d_tot is None or d_tot <= 0:
            return None
        return (max(0.0, d_err) / d_tot) / self.objective

    def condition(self, ctx: _EvalContext) -> bool:
        short = self.burn(ctx, self.short_window)
        long = self.burn(ctx, self.long_window)
        if short is None or long is None:
            return False
        return short > self.burn_factor and long > self.burn_factor

    def to_dict(self) -> dict:
        data = self._base_dict()
        data.update(
            errors=self.errors,
            total=self.total,
            objective=self.objective,
            short_window=self.short_window,
            long_window=self.long_window,
            burn_factor=self.burn_factor,
            labels=dict(self.labels),
        )
        return data


class AbsenceRule(Rule):
    """Fires when a metric stops moving (or never appears) for a window.

    The heartbeat complement of :class:`ThresholdRule`: a threshold
    rule treats missing data as healthy, this one treats it as the
    problem.
    """

    kind = "absence"

    def __init__(
        self,
        name: str,
        metric: str,
        window: float = 30.0,
        labels: Optional[Dict[str, str]] = None,
        severity: str = "warning",
        **common: object,
    ) -> None:
        super().__init__(name, severity=severity, **common)  # type: ignore[arg-type]
        self.metric = metric
        self.window = float(window)
        self.labels = dict(labels or {})

    def needs(self) -> List[Tuple[str, Dict[str, str], str]]:
        return [(self.metric, dict(self.labels), "scalar")]

    def condition(self, ctx: _EvalContext) -> bool:
        series = ctx.scalar(self.metric, self.labels)
        if series is None or len(series) == 0:
            return ctx.uptime > self.window
        if not series.spans(ctx.now, self.window):
            return False
        return series.delta(ctx.now, self.window) == 0

    def to_dict(self) -> dict:
        data = self._base_dict()
        data.update(
            metric=self.metric, window=self.window, labels=dict(self.labels)
        )
        return data


_RULE_KINDS = {
    ThresholdRule.kind: ThresholdRule,
    BurnRateRule.kind: BurnRateRule,
    AbsenceRule.kind: AbsenceRule,
}


def rule_from_dict(data: dict) -> Rule:
    """Inverse of ``Rule.to_dict()`` -- ``kind`` picks the class."""
    spec = dict(data)
    kind = spec.pop("kind", None)
    cls = _RULE_KINDS.get(kind)
    if cls is None:
        raise ValueError(f"unknown rule kind {kind!r}")
    return cls(**spec)


def dump_rules(rules: Sequence[Rule]) -> List[dict]:
    return [rule.to_dict() for rule in rules]


def load_rules(data: Iterable[dict]) -> List[Rule]:
    return [rule_from_dict(d) for d in data]


def default_rules() -> List[Rule]:
    """The stock fabric rule set: drops, drop-SLO burn, heartbeat."""
    return [
        ThresholdRule(
            "device-drop-rate",
            metric="device.packets_dropped",
            signal="rate",
            window=5.0,
            op=">",
            value=0.0,
            for_seconds=1.0,
            severity="critical",
        ),
        BurnRateRule(
            "drop-slo-burn",
            errors="device.packets_dropped",
            total="device.packets_in",
            objective=0.01,
            short_window=5.0,
            long_window=60.0,
            burn_factor=1.0,
            for_seconds=1.0,
            severity="critical",
        ),
        AbsenceRule(
            "traffic-heartbeat",
            metric="device.packets_in",
            window=30.0,
            severity="warning",
        ),
    ]


# ---------------------------------------------------------------------------
# alert lifecycle
# ---------------------------------------------------------------------------


class AlertInstance:
    """State machine for one (rule, device) pair.

    ``inactive -> pending`` when the condition first holds; ``pending
    -> firing`` once it has held for ``for_seconds`` (both edges on
    the same tick when ``for_seconds`` is 0); ``pending -> inactive``
    the moment it stops holding; ``firing -> resolved`` only after the
    condition has been clear for ``resolve_seconds``.
    """

    __slots__ = ("rule", "device", "state", "since", "_pending_since", "_ok_since")

    def __init__(self, rule: Rule, device: str) -> None:
        self.rule = rule
        self.device = device
        self.state = "inactive"
        self.since: Optional[float] = None
        self._pending_since: Optional[float] = None
        self._ok_since: Optional[float] = None

    def _edge(self, now: float, to_state: str) -> AlertTransition:
        transition = AlertTransition(
            ts=now,
            rule=self.rule.name,
            device=self.device,
            from_state=self.state,
            to_state=to_state,
            severity=self.rule.severity,
        )
        self.state = "inactive" if to_state == "resolved" else to_state
        self.since = now
        return transition

    def step(self, now: float, condition: bool) -> List[AlertTransition]:
        out: List[AlertTransition] = []
        if condition:
            self._ok_since = None
            if self.state == "inactive":
                self._pending_since = now
                out.append(self._edge(now, "pending"))
            if (
                self.state == "pending"
                and self._pending_since is not None
                and now - self._pending_since >= self.rule.for_seconds
            ):
                out.append(self._edge(now, "firing"))
        else:
            if self.state == "pending":
                self._pending_since = None
                out.append(self._edge(now, "inactive"))
            elif self.state == "firing":
                if self._ok_since is None:
                    self._ok_since = now
                if now - self._ok_since >= self.rule.resolve_seconds:
                    self._pending_since = None
                    self._ok_since = None
                    out.append(self._edge(now, "resolved"))
        return out

    def to_dict(self) -> dict:
        return {
            "rule": self.rule.name,
            "device": self.device,
            "state": self.state,
            "since": self.since,
            "severity": self.rule.severity,
        }


# ---------------------------------------------------------------------------
# flight recorder
# ---------------------------------------------------------------------------


class FlightRecorder:
    """Bounded ring buffer of recent observability events.

    Cheap to write (dict append), bounded by construction, and
    freezable: when an event of a ``dump_on`` kind arrives (rollback,
    by default), the ring is snapshotted into a post-mortem bundle so
    the moments *before* the failure survive the failure.
    """

    def __init__(
        self,
        capacity: int = 256,
        clock: Optional[Clock] = None,
        dump_on: Sequence[str] = ("rollback",),
        dump_capacity: int = 4,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.clock = clock or MONOTONIC
        self.events: Deque[dict] = deque(maxlen=capacity)
        self.dump_on = tuple(dump_on)
        self.dumps: Deque[dict] = deque(maxlen=dump_capacity)

    def record(self, kind: str, ts: Optional[float] = None, **attrs: object) -> dict:
        event = {"ts": self.clock.now() if ts is None else ts, "kind": kind}
        event.update(attrs)
        self.events.append(event)
        if kind in self.dump_on:
            self.dump(reason=kind, ts=event["ts"])
        return event

    def bind(self, device: str) -> "_BoundRecorder":
        """A handle that stamps every event with a device label --
        what gets hung on ``switch.flight_recorder``."""
        return _BoundRecorder(self, device)

    def dump(self, reason: str = "manual", ts: Optional[float] = None) -> dict:
        counts: Dict[str, int] = {}
        for event in self.events:
            kind = str(event.get("kind"))
            counts[kind] = counts.get(kind, 0) + 1
        bundle = {
            "reason": reason,
            "ts": self.clock.now() if ts is None else ts,
            "events": [dict(e) for e in self.events],
            "counts": counts,
        }
        self.dumps.append(bundle)
        return bundle

    def last_dump(self) -> Optional[dict]:
        return self.dumps[-1] if self.dumps else None

    def dump_json(self, reason: str = "manual") -> str:
        return json.dumps(self.dump(reason=reason), indent=2)


class _BoundRecorder:
    """Device-scoped view over a shared :class:`FlightRecorder`."""

    __slots__ = ("parent", "device")

    def __init__(self, parent: FlightRecorder, device: str) -> None:
        self.parent = parent
        self.device = device

    def record(self, kind: str, ts: Optional[float] = None, **attrs: object) -> dict:
        attrs.setdefault("device", self.device)
        return self.parent.record(kind, ts=ts, **attrs)


# ---------------------------------------------------------------------------
# the engine
# ---------------------------------------------------------------------------


class _Source:
    """One attached device: its registry plus per-device window state."""

    __slots__ = (
        "name",
        "metrics",
        "switch",
        "timelines",
        "scalars",
        "hists",
        "last_values",
        "seen_timelines",
    )

    def __init__(self, name, metrics, switch, timelines) -> None:
        self.name = name
        self.metrics = metrics
        self.switch = switch
        self.timelines = tuple(timelines)
        self.scalars: Dict[Tuple[str, LabelKey], WindowedSeries] = {}
        self.hists: Dict[Tuple[str, LabelKey], HistogramSeries] = {}
        self.last_values: Dict[Tuple[str, LabelKey], float] = {}
        self.seen_timelines: set = set()


class HealthEngine:
    """Pull-based streaming evaluator over attached metric sources."""

    def __init__(
        self,
        clock: Optional[Clock] = None,
        recorder: Optional[FlightRecorder] = None,
        registry: Optional[MetricsRegistry] = None,
        horizon: float = 300.0,
    ) -> None:
        self.clock = clock or MONOTONIC
        self.recorder = (
            recorder if recorder is not None else FlightRecorder(clock=self.clock)
        )
        self.registry = registry if registry is not None else MetricsRegistry()
        self.horizon = horizon
        self.rules: List[Rule] = []
        self._sources: Dict[str, _Source] = {}
        self._int = None
        self._int_seen_changes = 0
        self._alerts: Dict[Tuple[str, str], AlertInstance] = {}
        self.transitions: List[AlertTransition] = []
        self._started: Optional[float] = None
        self._ticks = self.registry.counter("health.ticks")
        self._transition_count = self.registry.counter("health.transitions")
        self.registry.add_collector("health.alerts", self._alert_samples)

    # -- wiring ------------------------------------------------------------

    def install(self, rules: Iterable[Rule]) -> None:
        self.rules.extend(rules)

    def clear_rules(self) -> None:
        self.rules = []
        self._alerts = {}

    def add_source(
        self,
        name: str,
        metrics: MetricsRegistry,
        switch: object = None,
        timelines: Sequence[object] = (),
    ) -> None:
        """Attach a device's registry; optionally hang a device-bound
        flight-recorder handle on its switch so control-plane events
        (txn aborts, rollbacks) land in the same ring."""
        self._sources[name] = _Source(name, metrics, switch, timelines)
        if switch is not None and getattr(switch, "flight_recorder", None) is None:
            switch.flight_recorder = self.recorder.bind(name)

    def remove_source(self, name: str) -> None:
        source = self._sources.pop(name, None)
        if source is not None and source.switch is not None:
            recorder = getattr(source.switch, "flight_recorder", None)
            if isinstance(recorder, _BoundRecorder) and recorder.parent is self.recorder:
                source.switch.flight_recorder = None

    def watch_int(self, collector) -> None:
        self._int = collector
        self._int_seen_changes = len(collector.path_changes)

    # -- evaluation --------------------------------------------------------

    def _needed(self) -> List[Tuple[str, Dict[str, str], str]]:
        needed: List[Tuple[str, Dict[str, str], str]] = []
        seen = set()
        for rule in self.rules:
            for metric, labels, kind in rule.needs():
                key = (metric, _label_key(labels), kind)
                if key not in seen:
                    seen.add(key)
                    needed.append((metric, labels, kind))
        return needed

    def tick(self) -> List[AlertTransition]:
        """Take one snapshot of every source and step every alert.

        The instant is read from the clock exactly once, so every
        series, rule, and recorded event within a tick shares one
        timestamp (important under ``ManualClock`` auto-advance).
        """
        now = self.clock.now()
        if self._started is None:
            self._started = now
        uptime = now - self._started
        self._ticks.inc()
        needed = self._needed()
        transitions: List[AlertTransition] = []

        for source in self._sources.values():
            samples = source.metrics.collect()
            indexed: Dict[Tuple[str, LabelKey], Sample] = {}
            for sample in samples:
                indexed.setdefault(sample.key(), sample)
            for metric, labels, kind in needed:
                key = (metric, _label_key(labels))
                if kind == "histogram":
                    snapshot = snapshot_from_samples(samples, metric, labels)
                    if snapshot is None:
                        continue
                    series_h = source.hists.get(key)
                    if series_h is None:
                        series_h = source.hists[key] = HistogramSeries(self.horizon)
                    series_h.push(now, snapshot)
                    continue
                sample = indexed.get(key)
                if sample is None:
                    sample = indexed.get((metric + "_count", key[1]))
                if sample is None:
                    continue
                series = source.scalars.get(key)
                if series is None:
                    series = source.scalars[key] = WindowedSeries(self.horizon)
                series.push(now, sample.value)
                last = source.last_values.get(key)
                if last is None or sample.value != last:
                    self.recorder.record(
                        "metric",
                        ts=now,
                        device=source.name,
                        metric=metric,
                        value=sample.value,
                        delta=0.0 if last is None else sample.value - last,
                    )
                source.last_values[key] = sample.value

            ctx = _EvalContext(now, uptime, source.scalars, source.hists)
            for rule in self.rules:
                if rule.device is not None and rule.device != source.name:
                    continue
                instance = self._alerts.get((rule.name, source.name))
                if instance is None:
                    instance = AlertInstance(rule, source.name)
                    self._alerts[(rule.name, source.name)] = instance
                for transition in instance.step(now, rule.condition(ctx)):
                    self.recorder.record(
                        "alert",
                        ts=now,
                        rule=transition.rule,
                        device=transition.device,
                        from_state=transition.from_state,
                        to_state=transition.to_state,
                        severity=transition.severity,
                    )
                    transitions.append(transition)

            self._poll_timelines(source, now)

        self._poll_int(now)
        self.transitions.extend(transitions)
        self._transition_count.inc(len(transitions))
        return transitions

    def _poll_timelines(self, source: _Source, now: float) -> None:
        for recorder in source.timelines:
            for timeline in getattr(recorder, "timelines", ()):
                if timeline.end is None or id(timeline) in source.seen_timelines:
                    continue
                source.seen_timelines.add(id(timeline))
                self.recorder.record(
                    "timeline",
                    ts=now,
                    device=source.name,
                    label=timeline.label,
                    total_seconds=timeline.total_seconds,
                    phases={p.name: p.duration for p in timeline.phases},
                )

    def _poll_int(self, now: float) -> None:
        if self._int is None:
            return
        changes = self._int.path_changes
        for change in changes[self._int_seen_changes :]:
            self.recorder.record(
                "path_change",
                ts=now,
                flow=change.flow,
                old_path=list(change.old_path),
                new_path=list(change.new_path),
            )
        self._int_seen_changes = len(changes)

    # -- views -------------------------------------------------------------

    def alerts(self) -> List[AlertInstance]:
        return list(self._alerts.values())

    def firing(self, device: Optional[str] = None) -> List[AlertInstance]:
        return [
            a
            for a in self._alerts.values()
            if a.state == "firing" and (device is None or a.device == device)
        ]

    def device_health(self, name: str) -> float:
        """1.0 = healthy; each firing alert subtracts its severity
        weight; floor at 0."""
        penalty = sum(
            SEVERITY_WEIGHT.get(a.rule.severity, 1.0) for a in self.firing(name)
        )
        return max(0.0, 1.0 - penalty)

    def health_summary(self) -> dict:
        devices = {}
        for name in self._sources:
            devices[name] = {
                "score": self.device_health(name),
                "firing": [a.to_dict() for a in self.firing(name)],
                "pending": [
                    a.to_dict()
                    for a in self._alerts.values()
                    if a.state == "pending" and a.device == name
                ],
            }
        return {
            "devices": devices,
            "rules": len(self.rules),
            "transitions": len(self.transitions),
        }

    # -- export ------------------------------------------------------------

    def _alert_samples(self) -> List[Sample]:
        """``ALERTS{alertname=...,alertstate=...}`` convention plus a
        per-device ``health.score`` gauge."""
        samples: List[Sample] = []
        for instance in self._alerts.values():
            if instance.state in ("pending", "firing"):
                samples.append(
                    Sample(
                        "ALERTS",
                        1,
                        {
                            "alertname": instance.rule.name,
                            "alertstate": instance.state,
                            "device": instance.device,
                            "severity": instance.rule.severity,
                        },
                        "gauge",
                    )
                )
        for name in self._sources:
            samples.append(
                Sample("health.score", self.device_health(name), {"device": name}, "gauge")
            )
        return samples

    def to_prometheus(self) -> str:
        return self.registry.to_prometheus()

"""Observability layer: metrics registry, packet tracer, update timelines.

The paper's whole pitch is *runtime* reprogrammability, and runtime
behavior needs runtime visibility.  This package provides the three
instruments the rest of the tree threads through:

* :mod:`repro.obs.metrics` -- a device-level registry of counters,
  gauges, and bounded-bucket histograms.  Components publish their
  live counters through collectors, so the hot path pays nothing and
  the registry is the single enumeration/export surface
  (``runtime.stats.snapshot()`` is a compatibility view over it).
* :mod:`repro.obs.trace` -- an opt-in per-packet tracer recording a
  span tree for a packet's lifecycle (parse/match/execute per TSP,
  TM enqueue/dequeue, emit/drop with a drop-reason taxonomy).
* :mod:`repro.obs.timeline` -- timestamped phase timelines for
  control-plane operations (``load_base``, ``run_script``,
  ``apply_update``, ``rollback``), so Table-1-style numbers decompose
  into phases.
* :mod:`repro.obs.export` -- JSON-lines sinks and loaders plus the
  Prometheus-style text exposition.
* :mod:`repro.obs.clock` -- the injectable time source every
  instrument reads through (tests use :class:`ManualClock` for exact,
  jitter-free durations).
* :mod:`repro.obs.prof` -- an opt-in low-overhead profiler that
  attributes wall-time and work counters (headers parsed, lookups,
  primitive ops, TM enqueues) to parse/match/execute phases per
  component; feeds the bench harness and flamegraph tooling.
"""

from repro.obs.clock import Clock, ManualClock, MonotonicClock, MONOTONIC
from repro.obs.health import (
    AbsenceRule,
    AlertInstance,
    AlertTransition,
    BurnRateRule,
    FlightRecorder,
    HealthEngine,
    HistogramSeries,
    Rule,
    ThresholdRule,
    WindowedSeries,
    default_rules,
    dump_rules,
    load_rules,
    rule_from_dict,
)
from repro.obs.intcol import IntCollector, IntIngest, PathChange
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    HistogramSnapshot,
    MetricsRegistry,
    Sample,
    bucket_quantile,
)
from repro.obs.prof import (
    PHASES,
    ProfileRecord,
    Profiler,
    format_profile,
)
from repro.obs.timeline import Phase, Timeline, TimelineRecorder, format_timeline
from repro.obs.trace import (
    DropReason,
    PacketTrace,
    PacketTracer,
    Span,
    format_trace,
)

__all__ = [
    "AbsenceRule",
    "AlertInstance",
    "AlertTransition",
    "BurnRateRule",
    "Clock",
    "Counter",
    "DropReason",
    "FlightRecorder",
    "Gauge",
    "HealthEngine",
    "Histogram",
    "HistogramSeries",
    "HistogramSnapshot",
    "IntCollector",
    "IntIngest",
    "MONOTONIC",
    "ManualClock",
    "MetricsRegistry",
    "MonotonicClock",
    "PHASES",
    "PacketTrace",
    "PacketTracer",
    "PathChange",
    "Phase",
    "ProfileRecord",
    "Profiler",
    "Rule",
    "Sample",
    "Span",
    "ThresholdRule",
    "Timeline",
    "TimelineRecorder",
    "WindowedSeries",
    "bucket_quantile",
    "default_rules",
    "dump_rules",
    "format_profile",
    "format_timeline",
    "format_trace",
    "load_rules",
    "rule_from_dict",
]

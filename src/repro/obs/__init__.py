"""Observability layer: metrics registry, packet tracer, update timelines.

The paper's whole pitch is *runtime* reprogrammability, and runtime
behavior needs runtime visibility.  This package provides the three
instruments the rest of the tree threads through:

* :mod:`repro.obs.metrics` -- a device-level registry of counters,
  gauges, and bounded-bucket histograms.  Components publish their
  live counters through collectors, so the hot path pays nothing and
  the registry is the single enumeration/export surface
  (``runtime.stats.snapshot()`` is a compatibility view over it).
* :mod:`repro.obs.trace` -- an opt-in per-packet tracer recording a
  span tree for a packet's lifecycle (parse/match/execute per TSP,
  TM enqueue/dequeue, emit/drop with a drop-reason taxonomy).
* :mod:`repro.obs.timeline` -- timestamped phase timelines for
  control-plane operations (``load_base``, ``run_script``,
  ``apply_update``, ``rollback``), so Table-1-style numbers decompose
  into phases.
* :mod:`repro.obs.export` -- JSON-lines sinks and loaders plus the
  Prometheus-style text exposition.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Sample,
)
from repro.obs.timeline import Phase, Timeline, TimelineRecorder, format_timeline
from repro.obs.trace import (
    DropReason,
    PacketTrace,
    PacketTracer,
    Span,
    format_trace,
)

__all__ = [
    "Counter",
    "DropReason",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PacketTrace",
    "PacketTracer",
    "Phase",
    "Sample",
    "Span",
    "Timeline",
    "TimelineRecorder",
    "format_timeline",
    "format_trace",
]

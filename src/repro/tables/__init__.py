"""Match-action substrate: tables, match engines, and the action VM.

Both switch models execute the same table and action machinery; what
differs between PISA and IPSA is *where* tables live (per-stage SRAM
vs. the disaggregated pool) and *when* actions are bound to stages
(compile time vs. template download at runtime).
"""

from repro.tables.actions import (
    ActionCall,
    ActionContext,
    ActionDef,
    BinOp,
    Const,
    CountAndMark,
    FieldRef,
    HashExpr,
    Param,
    PyPrimitive,
    RemoveHeaderOp,
    SetField,
    evaluate,
)
from repro.tables.engines import (
    ExactEngine,
    HashEngine,
    LpmEngine,
    TernaryEngine,
)
from repro.tables.table import (
    KeyField,
    LookupResult,
    MatchKind,
    Table,
    TableEntry,
)

__all__ = [
    "ActionCall",
    "ActionContext",
    "ActionDef",
    "BinOp",
    "Const",
    "CountAndMark",
    "ExactEngine",
    "FieldRef",
    "HashEngine",
    "HashExpr",
    "KeyField",
    "LookupResult",
    "LpmEngine",
    "MatchKind",
    "Param",
    "PyPrimitive",
    "RemoveHeaderOp",
    "SetField",
    "Table",
    "TableEntry",
    "TernaryEngine",
    "evaluate",
]

"""Named behavioral primitives (the extern library).

rP4 action bodies may call primitives the expression language cannot
express -- SRv6 endpoint processing, TTL decrement, header push/pop.
The compiler lowers each call to a :class:`PyPrimitive` looked up in
this registry, mirroring how bmv2 binds P4 externs to C++ code.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.net.headers import (
    INT_ETHERTYPE,
    SRH,
    HeaderInstance,
    int_hop_records,
    int_push_hop,
    srh_segment,
)
from repro.tables.actions import ActionContext, PyPrimitive


def prim_drop(ctx: ActionContext) -> None:
    """Set the intrinsic drop flag."""
    ctx.packet.metadata["drop"] = 1


def prim_mark_to_cpu(ctx: ActionContext) -> None:
    """Punt a copy of the packet to the controller."""
    ctx.packet.metadata["to_cpu"] = 1


def prim_no_op(ctx: ActionContext) -> None:
    """Do nothing (placeholder arm)."""


def prim_decrement_ttl(ctx: ActionContext) -> None:
    """Decrement IPv4 TTL or IPv6 hop limit; drop on expiry."""
    packet = ctx.packet
    if packet.is_valid("ipv4"):
        ttl = packet.read("ipv4.ttl")
        assert isinstance(ttl, int)
        if ttl <= 1:
            packet.metadata["drop"] = 1
            packet.write("ipv4.ttl", 0)
        else:
            packet.write("ipv4.ttl", ttl - 1)
    elif packet.is_valid("ipv6"):
        hop = packet.read("ipv6.hop_limit")
        assert isinstance(hop, int)
        if hop <= 1:
            packet.metadata["drop"] = 1
            packet.write("ipv6.hop_limit", 0)
        else:
            packet.write("ipv6.hop_limit", hop - 1)


def _read_segment(srh, index: int) -> int:
    """Read segment ``index`` from either SRH layout.

    The library SRH type carries a variable-length ``segment_list``;
    device programs declare a bounded layout with ``seg0``/``seg1``
    fields (the usual P4 idiom).  Both are supported here.
    """
    if srh.htype.varlen_field == "segment_list":
        return srh_segment(srh, index)
    value = srh.get(f"seg{index}")
    assert isinstance(value, int)
    return value


def prim_srv6_end(ctx: ActionContext) -> None:
    """SRv6 End behavior (RFC 8754): advance to the next segment.

    ``segments_left -= 1`` and the IPv6 destination becomes
    ``segment_list[segments_left]``.  Packets with no segments left
    are dropped (no USP/PSP flavors in the behavioral model).
    """
    packet = ctx.packet
    if not (packet.is_valid("srh") and packet.is_valid("ipv6")):
        packet.metadata["drop"] = 1
        return
    srh = packet.header("srh")
    left = srh.get("segments_left")
    assert isinstance(left, int)
    if left == 0:
        packet.metadata["drop"] = 1
        return
    left -= 1
    srh.set("segments_left", left)
    packet.write("ipv6.dst_addr", _read_segment(srh, left))


def prim_srv6_transit(ctx: ActionContext) -> None:
    """SRv6 transit-node behavior: plain IPv6 forwarding of the outer
    header (hop limit handled by the rewrite stage); nothing to do to
    the SRH itself."""


def prim_pop_srh(ctx: ActionContext) -> None:
    """Remove the SRH (End.DX-style decap of the routing header).

    Restores ``ipv6.next_hdr`` from the SRH and shrinks the payload
    length accordingly.
    """
    packet = ctx.packet
    if not packet.is_valid("srh"):
        return
    srh = packet.remove_header("srh")
    next_hdr = srh.get("next_hdr")
    assert isinstance(next_hdr, int)
    srh_bytes = srh.htype.bit_length(srh.values) // 8
    if packet.is_valid("ipv6"):
        packet.write("ipv6.next_hdr", next_hdr)
        plen = packet.read("ipv6.payload_len")
        assert isinstance(plen, int)
        packet.write("ipv6.payload_len", max(0, plen - srh_bytes))


def prim_push_srh(ctx: ActionContext) -> None:
    """Insert an empty SRH after the outer IPv6 header (encap shell).

    Segment lists are populated by the controller in the behavioral
    model; this primitive only splices the header and fixes linkage
    fields.
    """
    packet = ctx.packet
    if not packet.is_valid("ipv6") or packet.is_valid("srh"):
        return
    old_next = packet.read("ipv6.next_hdr")
    assert isinstance(old_next, int)
    srh = HeaderInstance(
        SRH,
        {
            "next_hdr": old_next,
            "hdr_ext_len": 0,
            "routing_type": 4,
            "segments_left": 0,
            "last_entry": 0,
            "segment_list": b"",
        },
    )
    packet.insert_header(srh, after="ipv6")
    packet.write("ipv6.next_hdr", 43)
    plen = packet.read("ipv6.payload_len")
    assert isinstance(plen, int)
    packet.write("ipv6.payload_len", plen + 8)


def _device_header_types(device):
    """Header-type dictionary of either switch family (IPSA keeps it
    on the device, PISA on its front-end parser)."""
    types = getattr(device, "header_types", None)
    if types is not None:
        return types
    parser = getattr(device, "parser", None)
    return getattr(parser, "header_types", None)


def _int_timestamps_ns(ctx: ActionContext) -> tuple:
    """(ingress, egress) nanosecond stamps for this hop.

    Ingress comes from the front-door stamp (written when the device
    has INT enabled); egress reads the device's INT clock now.  With
    no clock attached both fall back to 0 -- the record still carries
    switch id / queue depth / epoch.
    """
    packet = ctx.packet
    clock = getattr(ctx.device, "int_clock", None)
    egress = int(clock.now() * 1e9) if clock is not None else 0
    ingress = packet.metadata.get("ingress_ts_ns")
    if not isinstance(ingress, int):
        ingress = egress
    return ingress, egress


def prim_push_int(ctx: ActionContext) -> None:
    """Push one INT hop record (INT-over-L2, paper use case C5).

    Ensures the telemetry shim sits after Ethernet (inserting it on
    the first instrumented hop: ``orig_ethertype`` preserves the
    displaced EtherType, the wire EtherType becomes
    :data:`INT_ETHERTYPE`), then appends this switch's hop record
    ``{switch_id, ingress_ts, egress_ts, queue_depth, dp_epoch}`` to
    the stack and bumps ``hop_count``.  The switch id arrives as the
    enclosing action's ``switch_id`` parameter (table action data).
    """
    packet = ctx.packet
    device = ctx.device
    types = _device_header_types(device)
    if device is None or types is None:
        raise RuntimeError("push_int requires a device with header types")
    shim_type = types.get("int_shim")
    if shim_type is None or not packet.is_valid("ethernet"):
        packet.metadata["drop"] = 1
        return
    if not packet.is_valid("int_shim"):
        orig = packet.read("ethernet.ethertype")
        assert isinstance(orig, int)
        shim = HeaderInstance(
            shim_type,
            {"orig_ethertype": orig, "hop_count": 0, "hop_stack": b""},
            "int_shim",
        )
        packet.insert_header(shim, after="ethernet")
        packet.write("ethernet.ethertype", INT_ETHERTYPE)
    ingress, egress = _int_timestamps_ns(ctx)
    tm = getattr(getattr(device, "pipeline", None), "tm", None)
    dp = getattr(device, "dp", None)
    int_push_hop(
        packet.header("int_shim"),
        {
            "switch_id": ctx.params.get("switch_id", 0),
            "ingress_ts": ingress,
            "egress_ts": egress,
            "queue_depth": tm.occupancy() if tm is not None else 0,
            "dp_epoch": getattr(dp, "epoch", 0),
        },
    )


def prim_pop_int(ctx: ActionContext) -> None:
    """Strip the INT shim at a sink: restore the original EtherType
    and hand the hop stack to the device's collector (if attached)."""
    packet = ctx.packet
    if not packet.is_valid("int_shim"):
        return
    shim = packet.remove_header("int_shim")
    orig = shim.get("orig_ethertype")
    assert isinstance(orig, int)
    packet.write("ethernet.ethertype", orig)
    collector = getattr(ctx.device, "int_collector", None)
    if collector is not None:
        collector.observe_strip(
            packet,
            int_hop_records(shim),
            node=getattr(ctx.device, "int_node", None),
        )


#: Registry consumed by the action-lowering pass of the compilers.
PRIMITIVES: Dict[str, Callable[[ActionContext], None]] = {
    "drop": prim_drop,
    "mark_to_cpu": prim_mark_to_cpu,
    "no_op": prim_no_op,
    "decrement_ttl": prim_decrement_ttl,
    "srv6_end": prim_srv6_end,
    "srv6_transit": prim_srv6_transit,
    "pop_srh": prim_pop_srh,
    "push_srh": prim_push_srh,
    "push_int": prim_push_int,
    "pop_int": prim_pop_int,
}


def primitive(name: str) -> PyPrimitive:
    """Look up a primitive by name and wrap it as an action op."""
    try:
        return PyPrimitive(name, PRIMITIVES[name])
    except KeyError:
        raise KeyError(f"unknown primitive {name!r}") from None

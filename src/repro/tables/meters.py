"""Token-bucket meters (the QoS policing extern).

The flow-probe story ends with "the controller may apply some ACL or
QoS rules to the flow"; the ACL is :mod:`repro.programs.acl`, the QoS
rule is this.  The behavioral model has no wall clock, so meters run
on the device's *logical clock*: one tick per injected packet.  Rates
are therefore expressed in permitted-packets-per-tick window -- fully
deterministic and testable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Tuple

from repro.obs.metrics import Sample


class MeterError(Exception):
    """Raised on invalid meter configuration."""


@dataclass
class MeterStats:
    conforming: int = 0
    exceeding: int = 0


class TokenBucket:
    """A single-rate two-color token bucket on a logical clock.

    ``rate`` tokens arrive per tick (fractional rates allowed);
    ``burst`` caps the bucket.  Each metered packet costs one token:
    green (conforming) if a token is available, red (exceeding)
    otherwise.
    """

    def __init__(self, name: str, rate: float, burst: float) -> None:
        if rate <= 0:
            raise MeterError(f"meter {name!r}: rate must be positive")
        if burst < 1:
            raise MeterError(f"meter {name!r}: burst must be >= 1")
        self.name = name
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._last_tick = 0
        self.stats = MeterStats()

    def color(self, tick: int) -> str:
        """Meter one packet at logical time ``tick``: 'green' or 'red'."""
        if tick < self._last_tick:
            raise MeterError(
                f"meter {self.name!r}: logical clock went backwards "
                f"({tick} < {self._last_tick})"
            )
        elapsed = tick - self._last_tick
        self._last_tick = tick
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            self.stats.conforming += 1
            return "green"
        self.stats.exceeding += 1
        return "red"

    def reset(self) -> None:
        self._tokens = self.burst
        self._last_tick = 0
        self.stats = MeterStats()


class MeterBank:
    """Named meters, created on demand (like the extern store)."""

    def __init__(self) -> None:
        self._meters: Dict[str, TokenBucket] = {}

    def meter(self, name: str, rate: float = 0.5, burst: float = 4) -> TokenBucket:
        if name not in self._meters:
            self._meters[name] = TokenBucket(name, rate, burst)
        return self._meters[name]

    def configure(self, name: str, rate: float, burst: float) -> TokenBucket:
        """Install (or replace) a meter with explicit parameters."""
        self._meters[name] = TokenBucket(name, rate, burst)
        return self._meters[name]

    def drop(self, name: str) -> bool:
        return self._meters.pop(name, None) is not None

    def __contains__(self, name: str) -> bool:
        return name in self._meters

    # -- public iteration (the introspection surface) ----------------------

    def __len__(self) -> int:
        return len(self._meters)

    def __iter__(self) -> Iterator[str]:
        return iter(self._meters)

    def names(self) -> List[str]:
        return list(self._meters)

    def items(self) -> List[Tuple[str, TokenBucket]]:
        """(name, bucket) pairs -- stats/exporters iterate this, not
        the private store."""
        return list(self._meters.items())

    def metrics_samples(self) -> Iterable[Sample]:
        for name, bucket in self._meters.items():
            labels = {"meter": name}
            yield Sample("meter.rate", bucket.rate, dict(labels), "gauge")
            yield Sample("meter.burst", bucket.burst, dict(labels), "gauge")
            yield Sample(
                "meter.conforming", bucket.stats.conforming, dict(labels)
            )
            yield Sample(
                "meter.exceeding", bucket.stats.exceeding, dict(labels)
            )

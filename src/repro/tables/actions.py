"""Action definitions and the small expression VM that executes them.

An :class:`ActionDef` is a named list of primitive operations over a
tiny expression language (constants, action parameters, dotted field
references, binary operators, and a hash primitive).  Table entries
bind an action name to concrete parameter values; the executor
sub-module of a TSP (or a PISA stage) runs the ops against the packet.

The op set matches what the paper's executor templates need: field
assignment, header add/remove, a flow-hash primitive for ECMP, and a
count-and-mark primitive for the event-triggered flow probe (C3).
``PyPrimitive`` is the extern escape hatch for behaviors that a
behavioral model implements natively (e.g. SRv6 segment-endpoint
processing), mirroring bmv2's extern mechanism.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.net.fields import mask_to_width
from repro.net.packet import Packet

# --------------------------------------------------------------------------
# Expression language
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Const:
    """A literal integer."""

    value: int


@dataclass(frozen=True)
class Param:
    """A reference to an action parameter (bound per table entry)."""

    name: str


@dataclass(frozen=True)
class FieldRef:
    """A dotted reference: ``"ipv4.dst_addr"`` or ``"meta.bd"``."""

    ref: str


@dataclass(frozen=True)
class BinOp:
    """A binary operation over two sub-expressions."""

    op: str  # one of + - & | ^ << >> *
    left: "Expr"
    right: "Expr"


@dataclass(frozen=True)
class HashExpr:
    """Hash of the named fields, truncated to ``width`` bits.

    This is the flow-ID hash ECMP uses for next-hop selection.
    """

    fields: Tuple[str, ...]
    width: int = 32


Expr = Union[Const, Param, FieldRef, BinOp, HashExpr]

_BINOPS: Dict[str, Callable[[int, int], int]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "&": lambda a, b: a & b,
    "|": lambda a, b: a | b,
    "^": lambda a, b: a ^ b,
    "<<": lambda a, b: a << b,
    ">>": lambda a, b: a >> b,
}


def flow_hash(values: List[int]) -> int:
    """Deterministic 32-bit hash of a list of field values (CRC32)."""
    blob = b"".join(
        v.to_bytes((max(v.bit_length(), 1) + 7) // 8, "big") for v in values
    )
    return zlib.crc32(blob) & 0xFFFFFFFF


def evaluate(expr: Expr, packet: Packet, params: Dict[str, int]) -> int:
    """Evaluate an expression against a packet and bound parameters."""
    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, Param):
        try:
            return params[expr.name]
        except KeyError:
            raise KeyError(f"action parameter {expr.name!r} not bound") from None
    if isinstance(expr, FieldRef):
        value = packet.read(expr.ref)
        if not isinstance(value, int):
            raise TypeError(f"field {expr.ref!r} is not an integer field")
        return value
    if isinstance(expr, BinOp):
        fn = _BINOPS.get(expr.op)
        if fn is None:
            raise ValueError(f"unsupported operator {expr.op!r}")
        return fn(
            evaluate(expr.left, packet, params),
            evaluate(expr.right, packet, params),
        )
    if isinstance(expr, HashExpr):
        values = []
        for ref in expr.fields:
            value = packet.read(ref)
            if not isinstance(value, int):
                raise TypeError(f"hash input {ref!r} is not an integer field")
            values.append(value)
        return mask_to_width(flow_hash(values), expr.width)
    raise TypeError(f"not an expression: {expr!r}")


# --------------------------------------------------------------------------
# Primitive operations
# --------------------------------------------------------------------------


@dataclass
class ActionContext:
    """Everything an op may touch: the packet, bound params, the
    matched entry, and (for stateful externs) the device."""

    packet: Packet
    params: Dict[str, int] = field(default_factory=dict)
    entry: Optional[object] = None  # TableEntry; avoids a circular import
    device: Optional[object] = None  # the hosting switch (extern store)


@dataclass(frozen=True)
class SetField:
    """``dest = expr`` -- the workhorse primitive."""

    dest: str
    expr: Expr

    def execute(self, ctx: ActionContext) -> None:
        # Widths are enforced by Packet.write via HeaderInstance.set.
        ctx.packet.write(self.dest, evaluate(self.expr, ctx.packet, ctx.params))


@dataclass(frozen=True)
class RemoveHeaderOp:
    """Invalidate (pop) a header instance."""

    header: str

    def execute(self, ctx: ActionContext) -> None:
        ctx.packet.remove_header(self.header)


@dataclass(frozen=True)
class CountAndMark:
    """Increment the matched entry's counter; mark once it exceeds a
    threshold.  This is the C3 flow-probe primitive."""

    threshold_param: str
    dest: str

    def execute(self, ctx: ActionContext) -> None:
        entry = ctx.entry
        if entry is None:
            raise RuntimeError("count_and_mark requires a matched table entry")
        entry.counter += 1  # type: ignore[attr-defined]
        threshold = ctx.params.get(self.threshold_param)
        if threshold is None:
            raise KeyError(
                f"action parameter {self.threshold_param!r} not bound"
            )
        if entry.counter > threshold:  # type: ignore[attr-defined]
            ctx.packet.write(self.dest, 1)


@dataclass(frozen=True)
class SketchUpdate:
    """Count this packet's key in a device-resident count-min sketch
    and write the min-estimate to ``dest`` (heavy-hitter detection)."""

    sketch: str
    fields: Tuple[str, ...]
    dest: str

    def execute(self, ctx: ActionContext) -> None:
        device = ctx.device
        if device is None or not hasattr(device, "externs"):
            raise RuntimeError(
                "sketch_update requires a device with an extern store"
            )
        values = []
        for ref in self.fields:
            value = ctx.packet.read(ref)
            if not isinstance(value, int):
                raise TypeError(f"sketch key {ref!r} is not an integer field")
            values.append(value)
        estimate = device.externs.sketch(self.sketch).update(values)
        ctx.packet.write(self.dest, estimate)


@dataclass(frozen=True)
class MarkAbove:
    """``dest = 1`` when ``src`` exceeds a threshold parameter."""

    src: str
    threshold_param: str
    dest: str

    def execute(self, ctx: ActionContext) -> None:
        threshold = ctx.params.get(self.threshold_param)
        if threshold is None:
            raise KeyError(
                f"action parameter {self.threshold_param!r} not bound"
            )
        value = ctx.packet.read(self.src)
        if not isinstance(value, int):
            raise TypeError(f"mark_above source {self.src!r} is not an int")
        if value > threshold:
            ctx.packet.write(self.dest, 1)


@dataclass(frozen=True)
class Police:
    """Meter this packet against a device token bucket; write 1 to
    ``dest`` when it exceeds the configured rate.  Pointing ``dest``
    at ``meta.drop`` polices (drops red); pointing it at a user field
    merely colors the packet for downstream stages."""

    meter: str
    dest: str

    def execute(self, ctx: ActionContext) -> None:
        device = ctx.device
        if device is None or not hasattr(device, "meters"):
            raise RuntimeError("police requires a device with a meter bank")
        tick = getattr(device, "clock", 0)
        color = device.meters.meter(self.meter).color(tick)
        if color == "red":
            ctx.packet.write(self.dest, 1)


@dataclass(frozen=True)
class PyPrimitive:
    """Extern escape hatch: a named Python callable.

    Behavioral-model equivalents of hardware primitives too rich for
    the expression language (SRv6 END processing, encap/decap).
    """

    name: str
    fn: Callable[[ActionContext], None]

    def execute(self, ctx: ActionContext) -> None:
        self.fn(ctx)


Op = Union[SetField, RemoveHeaderOp, CountAndMark, SketchUpdate, MarkAbove, Police, PyPrimitive]


# --------------------------------------------------------------------------
# Actions
# --------------------------------------------------------------------------


@dataclass
class ActionDef:
    """A named action: typed parameters plus a list of primitive ops."""

    name: str
    params: List[Tuple[str, int]] = field(default_factory=list)  # (name, width)
    ops: List[Op] = field(default_factory=list)

    def param_names(self) -> List[str]:
        return [name for name, _ in self.params]

    def execute(
        self,
        packet: Packet,
        action_data: Dict[str, int],
        entry: Optional[object] = None,
        device: Optional[object] = None,
    ) -> None:
        """Run all ops; action data is truncated to declared widths."""
        bound: Dict[str, int] = {}
        for name, width in self.params:
            if name not in action_data:
                raise KeyError(
                    f"action {self.name!r} missing parameter {name!r}"
                )
            bound[name] = mask_to_width(action_data[name], width)
        ctx = ActionContext(packet=packet, params=bound, entry=entry, device=device)
        for op in self.ops:
            op.execute(ctx)


@dataclass(frozen=True)
class ActionCall:
    """An action name plus bound data, as stored in a table entry."""

    action: str
    data: Tuple[Tuple[str, int], ...] = ()

    def data_dict(self) -> Dict[str, int]:
        return dict(self.data)


NO_ACTION = ActionDef("NoAction", [], [])


def drop_action() -> ActionDef:
    """The standard drop action: sets the intrinsic drop flag."""
    return ActionDef("drop", [], [SetField("meta.drop", Const(1))])


def mark_to_cpu_action() -> ActionDef:
    """Punt-to-controller action used by telemetry probes."""
    return ActionDef("mark_to_cpu", [], [SetField("meta.to_cpu", Const(1))])

"""Stateful extern objects: register arrays and a count-min sketch.

The paper's intro motivates *transitory in-network computing* and
*dynamic network visibility*: functions with per-device state that are
loaded only while needed.  These externs supply that state.  They live
on the device (not in a table entry), are created on demand when a
template references them, and are destroyed when the owning function
is offloaded -- the same lifecycle as the memory-pool tables.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.tables.actions import flow_hash


class RegisterArray:
    """A fixed-size array of ``width``-bit counters."""

    def __init__(self, name: str, size: int, width: int = 32) -> None:
        if size <= 0:
            raise ValueError(f"register {name!r}: size must be positive")
        if width <= 0:
            raise ValueError(f"register {name!r}: width must be positive")
        self.name = name
        self.size = size
        self.width = width
        self._mask = (1 << width) - 1
        self._cells: List[int] = [0] * size

    def read(self, index: int) -> int:
        return self._cells[self._check(index)]

    def write(self, index: int, value: int) -> None:
        self._cells[self._check(index)] = value & self._mask

    def add(self, index: int, delta: int = 1) -> int:
        """Saturating add; returns the new value."""
        index = self._check(index)
        value = min(self._cells[index] + delta, self._mask)
        self._cells[index] = value
        return value

    def clear(self) -> None:
        self._cells = [0] * self.size

    def _check(self, index: int) -> int:
        if not 0 <= index < self.size:
            raise IndexError(
                f"register {self.name!r}: index {index} out of range "
                f"[0, {self.size})"
            )
        return index

    def __len__(self) -> int:
        return self.size


class CountMinSketch:
    """A count-min sketch over ``rows`` independent hash rows.

    ``update`` increments every row's counter for the key and returns
    the min estimate -- the classic heavy-hitter building block (the
    paper cites Elastic Sketch et al. as the telemetry workloads IPSA
    should host transiently).
    """

    def __init__(
        self, name: str, rows: int = 4, columns: int = 1024, width: int = 32
    ) -> None:
        if rows <= 0 or columns <= 0:
            raise ValueError(f"sketch {name!r}: rows/columns must be positive")
        self.name = name
        self.rows = [
            RegisterArray(f"{name}[{r}]", columns, width) for r in range(rows)
        ]
        self.columns = columns
        self.updates = 0

    def _indices(self, key_values: Sequence[int]) -> List[int]:
        return [
            flow_hash([r + 1, *key_values]) % self.columns
            for r in range(len(self.rows))
        ]

    def update(self, key_values: Sequence[int], delta: int = 1) -> int:
        """Count one occurrence; returns the min-estimate after update."""
        self.updates += 1
        return min(
            row.add(index, delta)
            for row, index in zip(self.rows, self._indices(key_values))
        )

    def estimate(self, key_values: Sequence[int]) -> int:
        """Read the current min-estimate without counting."""
        return min(
            row.read(index)
            for row, index in zip(self.rows, self._indices(key_values))
        )

    def clear(self) -> None:
        for row in self.rows:
            row.clear()
        self.updates = 0


class ExternStore:
    """Per-device store of named extern objects (lazily created)."""

    def __init__(self) -> None:
        self.registers: Dict[str, RegisterArray] = {}
        self.sketches: Dict[str, CountMinSketch] = {}

    def register_array(
        self, name: str, size: int = 1024, width: int = 32
    ) -> RegisterArray:
        if name not in self.registers:
            self.registers[name] = RegisterArray(name, size, width)
        return self.registers[name]

    def sketch(
        self, name: str, rows: int = 4, columns: int = 1024
    ) -> CountMinSketch:
        if name not in self.sketches:
            self.sketches[name] = CountMinSketch(name, rows, columns)
        return self.sketches[name]

    def drop(self, name: str) -> bool:
        """Destroy an extern when its function is offloaded."""
        return (
            self.registers.pop(name, None) is not None
            or self.sketches.pop(name, None) is not None
        )

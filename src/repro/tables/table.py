"""The logical table facade shared by PISA stages and IPSA TSPs.

A :class:`Table` declares key fields (each with a match kind), a
capacity, and holds entries binding actions.  The engine is chosen
from the declared kinds:

* all ``EXACT``                      -> :class:`ExactEngine`
* exactly one ``LPM`` (rest exact)   -> :class:`LpmEngine`
* any ``TERNARY``                    -> :class:`TernaryEngine`
* any ``HASH``                       -> :class:`HashEngine` (ECMP selector)

Lookup returns a :class:`LookupResult` carrying the matched entry and
its *executor tag* -- the small integer the rP4 executor template maps
to an action (Fig. 5(a): ``executor { 1: set_bd_dmac; ... }``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.net.packet import Packet
from repro.tables.engines import ExactEngine, HashEngine, LpmEngine, TernaryEngine


class MatchKind(enum.Enum):
    """P4/rP4 match kinds supported by the behavioral models."""

    EXACT = "exact"
    LPM = "lpm"
    TERNARY = "ternary"
    HASH = "hash"

    @classmethod
    def from_str(cls, text: str) -> "MatchKind":
        try:
            return cls(text)
        except ValueError:
            raise ValueError(f"unknown match kind {text!r}") from None


@dataclass(frozen=True)
class KeyField:
    """One key field: a dotted reference plus its match kind and width."""

    ref: str
    kind: MatchKind
    width: int = 32


@dataclass
class TableEntry:
    """One installed entry: match spec + action binding + counters.

    ``key`` items are ints for exact/hash fields, ``(value, prefix_len)``
    for LPM fields, and ``(value, mask)`` for ternary fields.
    """

    key: Tuple[Union[int, Tuple[int, int]], ...]
    action: str
    action_data: Dict[str, int] = field(default_factory=dict)
    tag: int = 1
    priority: int = 0
    counter: int = 0  # direct counter (used by the C3 flow probe)
    hits: int = 0
    bytes: int = 0  # direct byte counter (accumulated on hit)


@dataclass
class LookupResult:
    """Outcome of a table lookup."""

    hit: bool
    table: str
    entry: Optional[TableEntry] = None
    tag: int = 0  # executor tag: entry tag on hit, 0 (default) on miss
    action: str = ""
    action_data: Dict[str, int] = field(default_factory=dict)


def _compile_key_reader(ref: str):
    """Dotted key reference -> prebound accessor closure.

    Preserves :meth:`repro.net.packet.Packet.read` error semantics
    (malformed refs, unknown metadata fields, unparsed headers) plus
    the lookup-time integer check, so misconfigured keys fail with the
    same exceptions they always did.
    """
    scope, _, field_name = ref.partition(".")
    if not field_name:
        def read_malformed(packet: Packet):
            raise ValueError(f"malformed field reference {ref!r}")
        return read_malformed
    if scope == "meta":
        def read_meta(packet: Packet) -> int:
            metadata = packet.metadata
            if field_name not in metadata:
                raise KeyError(f"unknown metadata field {field_name!r}")
            value = metadata[field_name]
            if not isinstance(value, int):
                raise TypeError(
                    f"key field {ref!r} is not an integer field"
                )
            return value
        return read_meta

    def read_header(packet: Packet) -> int:
        value = packet.header(scope).get(field_name)
        if not isinstance(value, int):
            raise TypeError(f"key field {ref!r} is not an integer field")
        return value
    return read_header


class Table:
    """A logical match-action table."""

    def __init__(
        self,
        name: str,
        key: Sequence[KeyField],
        size: int = 1024,
        default_action: str = "NoAction",
        default_data: Optional[Dict[str, int]] = None,
    ) -> None:
        if size <= 0:
            raise ValueError(f"table {name!r}: size must be positive")
        self.name = name
        self.key = list(key)
        self.size = size
        self.default_action = default_action
        self.default_data = dict(default_data or {})
        self.hit_count = 0
        self.miss_count = 0
        self._engine = self._pick_engine()
        # Key-field accessors prebound at construction: lookup is the
        # hot path, so the dotted-ref parse happens once per table
        # instead of once per packet per field.
        self._key_readers = tuple(
            _compile_key_reader(kf.ref) for kf in self.key
        )

    @property
    def engine_kind(self) -> str:
        """Which match engine backs this table (exact/lpm/ternary/hash)."""
        return self._engine.kind

    # -- engine selection ------------------------------------------------

    def _pick_engine(self):
        kinds = [k.kind for k in self.key]
        if not kinds:
            raise ValueError(f"table {self.name!r} has no key fields")
        if any(k is MatchKind.HASH for k in kinds):
            if not all(k is MatchKind.HASH for k in kinds):
                raise ValueError(
                    f"table {self.name!r}: hash keys cannot be mixed with "
                    "other match kinds"
                )
            return HashEngine()
        if any(k is MatchKind.TERNARY for k in kinds):
            return TernaryEngine(len(kinds))
        lpm_positions = [i for i, k in enumerate(kinds) if k is MatchKind.LPM]
        if len(lpm_positions) > 1:
            raise ValueError(
                f"table {self.name!r}: at most one LPM key field is allowed"
            )
        if lpm_positions:
            if lpm_positions[0] != len(kinds) - 1:
                raise ValueError(
                    f"table {self.name!r}: the LPM field must be the last key field"
                )
            return LpmEngine(len(kinds) - 1, self.key[-1].width)
        return ExactEngine()

    @property
    def match_kind(self) -> MatchKind:
        """The dominant match kind (what memory type the table needs)."""
        kinds = {k.kind for k in self.key}
        if MatchKind.TERNARY in kinds:
            return MatchKind.TERNARY
        if MatchKind.LPM in kinds:
            return MatchKind.LPM
        if MatchKind.HASH in kinds:
            return MatchKind.HASH
        return MatchKind.EXACT

    def key_width(self) -> int:
        """Total key width in bits (drives memory block demand)."""
        return sum(k.width for k in self.key)

    # -- entry management --------------------------------------------------

    def add_entry(self, entry: TableEntry) -> None:
        """Install an entry; raises once the declared size is exceeded."""
        if len(self._engine) >= self.size:
            raise OverflowError(
                f"table {self.name!r} is full ({self.size} entries)"
            )
        engine = self._engine
        if isinstance(engine, ExactEngine):
            engine.insert(self._exact_key(entry), entry)
        elif isinstance(engine, LpmEngine):
            *exact, lpm = entry.key
            if not (isinstance(lpm, tuple) and len(lpm) == 2):
                raise TypeError(
                    f"table {self.name!r}: LPM key part must be (value, prefix_len)"
                )
            engine.insert(tuple(self._as_int(p) for p in exact), lpm[0], lpm[1], entry)
        elif isinstance(engine, TernaryEngine):
            values, masks = self._ternary_key(entry)
            engine.insert(values, masks, entry.priority, entry)
        else:  # HashEngine: entries are group members, key is ignored
            engine.insert(entry)

    def remove_entry(self, entry: TableEntry) -> None:
        """Remove a previously installed entry."""
        engine = self._engine
        if isinstance(engine, ExactEngine):
            engine.remove(self._exact_key(entry))
        elif isinstance(engine, LpmEngine):
            *exact, lpm = entry.key
            assert isinstance(lpm, tuple)
            engine.remove(tuple(self._as_int(p) for p in exact), lpm[0], lpm[1])
        elif isinstance(engine, TernaryEngine):
            values, masks = self._ternary_key(entry)
            engine.remove(values, masks)
        else:
            members = engine.entries()
            try:
                engine.remove_member(members.index(entry))
            except ValueError:
                raise KeyError(
                    f"entry not present in hash table {self.name!r}"
                ) from None

    def clear(self) -> None:
        """Drop every entry (used when a PISA reload repopulates tables)."""
        self._engine = self._pick_engine()

    def entries(self) -> List[TableEntry]:
        return list(self._engine.entries())  # type: ignore[arg-type]

    def __len__(self) -> int:
        return len(self._engine)

    def metrics_samples(self):
        """This table's registry samples (labels carry the table name)."""
        from repro.obs.metrics import Sample

        labels = {"table": self.name}
        yield Sample("table.entries", len(self._engine), dict(labels), "gauge")
        yield Sample("table.size", self.size, dict(labels), "gauge")
        yield Sample("table.hits", self.hit_count, dict(labels))
        yield Sample("table.misses", self.miss_count, dict(labels))

    # -- lookup -------------------------------------------------------------

    def lookup(self, packet: Packet) -> LookupResult:
        """Match the packet; on miss, fall back to the default action."""
        entry = self._engine.lookup(
            tuple([read(packet) for read in self._key_readers])
        )
        if entry is None:
            self.miss_count += 1
            return LookupResult(
                hit=False,
                table=self.name,
                tag=0,
                action=self.default_action,
                action_data=dict(self.default_data),
            )
        assert isinstance(entry, TableEntry)
        entry.hits += 1
        length = packet.metadata.get("packet_length", 0)
        if isinstance(length, int):
            entry.bytes += length
        self.hit_count += 1
        return LookupResult(
            hit=True,
            table=self.name,
            entry=entry,
            tag=entry.tag,
            action=entry.action,
            action_data=dict(entry.action_data),
        )

    # -- batched lookup (columnar fast path) -------------------------------

    def batch_field_bytes(self):
        """Record bytes per key field (8 or 16), or ``None`` if any
        field is too wide for the packed-record batch index."""
        field_bytes = []
        for kf in self.key:
            if kf.width <= 64:
                field_bytes.append(8)
            elif kf.width <= 128:
                field_bytes.append(16)
            else:
                return None
        return tuple(field_bytes)

    def prepare_batch(self, np) -> bool:
        """Build (or reuse) the engine's batch index before a columnar
        batch touches any counters; ``False`` -> run the batch scalar."""
        engine = self._engine
        if engine.kind == "hash":
            return True
        if engine.kind not in ("exact", "lpm"):
            return False
        field_bytes = self.batch_field_bytes()
        if field_bytes is None:
            return False
        return engine.build_batch_index(np, field_bytes)

    def lookup_batch(self, np, cols, lengths):
        """Vectorized :meth:`lookup` over ``m`` rows.

        ``cols[i]`` is the i-th key field's column (``uint64`` array,
        or an ``(hi, lo)`` pair for >64-bit fields); ``lengths`` is the
        per-row ``packet_length`` column.  Applies the same counter
        side effects as ``m`` scalar lookups (table hit/miss counts,
        per-entry hit and byte counters) and returns ``(idx, entries)``
        where ``idx[r] == -1`` means miss (default action) and
        otherwise indexes ``entries``.
        """
        engine = self._engine
        m = len(lengths)
        if engine.kind == "hash":
            idx, entries = self._hash_lookup_rows(np, cols, m)
        elif engine.kind == "lpm":
            idx, entries = engine.lookup_batch(np, cols[:-1], cols[-1], m)
        else:
            idx, entries = engine.lookup_batch(np, cols, m)
        hit = idx >= 0
        hits = int(hit.sum())
        self.hit_count += hits
        self.miss_count += m - hits
        if hits and entries:
            ranks = idx[hit]
            counts = np.bincount(ranks, minlength=len(entries))
            byte_sums = np.zeros(len(entries), np.int64)
            np.add.at(byte_sums, ranks, lengths[hit].astype(np.int64))
            for rank, entry in enumerate(entries):
                count = int(counts[rank])
                if count:
                    entry.hits += count
                    entry.bytes += int(byte_sums[rank])
        return idx, entries

    def _hash_lookup_rows(self, np, cols, m):
        """Hash-engine rows keep the scalar flow hash (cheap, exact)."""
        engine = self._engine
        entries = engine.entries()
        rank_of = {id(entry): rank for rank, entry in enumerate(entries)}
        value_lists = []
        for col in cols:
            if isinstance(col, tuple):
                hi, lo = col
                value_lists.append(
                    [(h << 64) | l for h, l in zip(hi.tolist(), lo.tolist())]
                )
            else:
                value_lists.append(col.tolist())
        idx = np.empty(m, np.int64)
        for row in range(m):
            entry = engine.lookup(
                tuple(values[row] for values in value_lists)
            )
            idx[row] = -1 if entry is None else rank_of[id(entry)]
        return idx, entries

    # -- helpers -----------------------------------------------------------

    @staticmethod
    def _as_int(part: Union[int, Tuple[int, int]]) -> int:
        if not isinstance(part, int):
            raise TypeError(f"expected an exact key part, got {part!r}")
        return part

    def _exact_key(self, entry: TableEntry) -> Tuple[int, ...]:
        if len(entry.key) != len(self.key):
            raise ValueError(
                f"table {self.name!r}: entry key has {len(entry.key)} parts, "
                f"expected {len(self.key)}"
            )
        return tuple(self._as_int(p) for p in entry.key)

    def _ternary_key(
        self, entry: TableEntry
    ) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        values, masks = [], []
        for part, kf in zip(entry.key, self.key):
            if isinstance(part, tuple):
                values.append(part[0])
                masks.append(part[1])
            else:
                values.append(part)
                masks.append((1 << kf.width) - 1)
        return tuple(values), tuple(masks)

    def __repr__(self) -> str:
        kinds = ",".join(k.kind.value for k in self.key)
        return f"Table({self.name!r}, [{kinds}], {len(self)}/{self.size})"

"""Match engines: exact, LPM, ternary (TCAM), and hash (ECMP selector).

Each engine stores :class:`~repro.tables.table.TableEntry` objects and
answers point lookups against a tuple of key-field values.  The
:class:`~repro.tables.table.Table` facade picks the engine from the
declared match kinds.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.tables.actions import flow_hash

__all__ = [
    "ExactEngine",
    "LpmEngine",
    "TernaryEngine",
    "HashEngine",
    "ENGINES",
    "MATCH_KINDS",
    "P4_MATCH_KINDS",
]


class ExactEngine:
    """All key fields matched exactly: a plain hash map."""

    kind = "exact"

    def __init__(self) -> None:
        self._entries: Dict[Tuple[int, ...], object] = {}

    def insert(self, key: Tuple[int, ...], entry: object) -> None:
        self._entries[key] = entry

    def remove(self, key: Tuple[int, ...]) -> object:
        try:
            return self._entries.pop(key)
        except KeyError:
            raise KeyError(f"no exact entry for key {key}") from None

    def lookup(self, values: Tuple[int, ...]) -> Optional[object]:
        return self._entries.get(values)

    def entries(self) -> List[object]:
        return list(self._entries.values())

    def __len__(self) -> int:
        return len(self._entries)


class LpmEngine:
    """One longest-prefix-match field, optionally preceded by exact fields.

    The LPM field's key is a ``(value, prefix_len)`` pair.  Lookup
    scans installed prefix lengths from longest to shortest; within a
    length the match is a hash lookup, so cost is O(#distinct lengths).
    """

    kind = "lpm"

    def __init__(self, exact_count: int, lpm_width: int) -> None:
        self.exact_count = exact_count
        self.lpm_width = lpm_width
        # prefix_len -> {(exact..., masked_value): entry}
        self._by_len: Dict[int, Dict[Tuple[int, ...], object]] = {}

    def _mask(self, value: int, prefix_len: int) -> int:
        if prefix_len == 0:
            return 0
        shift = self.lpm_width - prefix_len
        return (value >> shift) << shift

    def insert(
        self, exact: Tuple[int, ...], value: int, prefix_len: int, entry: object
    ) -> None:
        if not 0 <= prefix_len <= self.lpm_width:
            raise ValueError(
                f"prefix length {prefix_len} out of range for "
                f"{self.lpm_width}-bit LPM field"
            )
        if len(exact) != self.exact_count:
            raise ValueError(
                f"expected {self.exact_count} exact key parts, got {len(exact)}"
            )
        bucket = self._by_len.setdefault(prefix_len, {})
        bucket[exact + (self._mask(value, prefix_len),)] = entry

    def remove(self, exact: Tuple[int, ...], value: int, prefix_len: int) -> object:
        bucket = self._by_len.get(prefix_len, {})
        key = exact + (self._mask(value, prefix_len),)
        try:
            entry = bucket.pop(key)
        except KeyError:
            raise KeyError(f"no LPM entry for {value:#x}/{prefix_len}") from None
        if not bucket:
            del self._by_len[prefix_len]
        return entry

    def lookup(self, values: Tuple[int, ...]) -> Optional[object]:
        exact, lpm_value = values[:-1], values[-1]
        for plen in sorted(self._by_len, reverse=True):
            key = exact + (self._mask(lpm_value, plen),)
            entry = self._by_len[plen].get(key)
            if entry is not None:
                return entry
        return None

    def entries(self) -> List[object]:
        return [e for bucket in self._by_len.values() for e in bucket.values()]

    def __len__(self) -> int:
        return sum(len(b) for b in self._by_len.values())


class TernaryEngine:
    """TCAM model: value/mask per field, highest priority wins."""

    kind = "ternary"

    def __init__(self, field_count: int) -> None:
        self.field_count = field_count
        # (values, masks, priority, entry), kept sorted by priority desc.
        self._rows: List[Tuple[Tuple[int, ...], Tuple[int, ...], int, object]] = []

    def insert(
        self,
        values: Tuple[int, ...],
        masks: Tuple[int, ...],
        priority: int,
        entry: object,
    ) -> None:
        if len(values) != self.field_count or len(masks) != self.field_count:
            raise ValueError(
                f"expected {self.field_count} values and masks, got "
                f"{len(values)}/{len(masks)}"
            )
        row = (tuple(v & m for v, m in zip(values, masks)), tuple(masks), priority, entry)
        self._rows.append(row)
        self._rows.sort(key=lambda r: -r[2])

    def remove(self, values: Tuple[int, ...], masks: Tuple[int, ...]) -> object:
        masked = tuple(v & m for v, m in zip(values, masks))
        for i, row in enumerate(self._rows):
            if row[0] == masked and row[1] == tuple(masks):
                return self._rows.pop(i)[3]
        raise KeyError(f"no ternary entry for {values}/{masks}")

    def lookup(self, values: Tuple[int, ...]) -> Optional[object]:
        for masked, masks, _prio, entry in self._rows:
            if all((v & m) == mv for v, m, mv in zip(values, masks, masked)):
                return entry
        return None

    def entries(self) -> List[object]:
        return [row[3] for row in self._rows]

    def __len__(self) -> int:
        return len(self._rows)


class HashEngine:
    """ECMP-style selector: a flow hash picks one of the member entries.

    The paper's ``key = { meta.nexthop: hash; ipv4.dst_addr: hash; }``
    means the key fields feed a flow hash whose value selects among the
    installed member entries (next-hop group members).  Members are
    kept in insertion order; the hash is reduced modulo the member
    count, so a fixed flow always picks the same member while distinct
    flows spread across members.
    """

    kind = "hash"

    def __init__(self) -> None:
        self._members: List[object] = []

    def insert(self, entry: object) -> None:
        self._members.append(entry)

    def remove_member(self, index: int) -> object:
        try:
            return self._members.pop(index)
        except IndexError:
            raise KeyError(f"no hash member at index {index}") from None

    def lookup(self, values: Tuple[int, ...]) -> Optional[object]:
        if not self._members:
            return None
        index = flow_hash(list(values)) % len(self._members)
        return self._members[index]

    def entries(self) -> List[object]:
        return list(self._members)

    def __len__(self) -> int:
        return len(self._members)


#: The engine registry: canonical match kind -> engine class.  Every
#: front end and validator derives its accepted match kinds from this
#: registry, so adding an engine automatically teaches the parsers,
#: the config validator, and rp4lint about the new kind.
ENGINES = {
    engine.kind: engine
    for engine in (ExactEngine, LpmEngine, TernaryEngine, HashEngine)
}

#: Match kinds an rP4 table key may declare (one per engine).
MATCH_KINDS = frozenset(ENGINES)

#: The mini-P4 front end additionally accepts ``selector`` (an
#: action-selector key), which it lowers onto the hash engine.
P4_MATCH_KINDS = frozenset(MATCH_KINDS | {"selector"})

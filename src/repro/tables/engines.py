"""Match engines: exact, LPM, ternary (TCAM), and hash (ECMP selector).

Each engine stores :class:`~repro.tables.table.TableEntry` objects and
answers point lookups against a tuple of key-field values.  The
:class:`~repro.tables.table.Table` facade picks the engine from the
declared match kinds.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.tables.actions import flow_hash

__all__ = [
    "ExactEngine",
    "LpmEngine",
    "TernaryEngine",
    "HashEngine",
    "ENGINES",
    "MATCH_KINDS",
    "P4_MATCH_KINDS",
]


def _pack_key_records(np, keys, field_bytes):
    """Pack python-int key tuples into fixed-width big-endian records.

    Returns a ``numpy`` byte-string array (one record per key) or
    ``None`` when any key part does not fit its declared field width
    (negative or oversized values) -- the caller then keeps the scalar
    lookup path.  Fixed-width big-endian records compare bytewise in
    the same order as the integer tuples, so a sorted record array
    supports ``searchsorted`` batch lookups.
    """
    record = sum(field_bytes)
    packed = []
    for key in keys:
        try:
            packed.append(
                b"".join(
                    int(v).to_bytes(nb, "big")
                    for v, nb in zip(key, field_bytes)
                )
            )
        except (OverflowError, TypeError, AttributeError):
            return None
    return np.array(packed, dtype=f"S{record}")


def _pack_query_records(np, cols, field_bytes, m):
    """Column arrays -> the same fixed-width records, one per row.

    ``cols[i]`` is a ``uint64`` array for an 8-byte field or an
    ``(hi, lo)`` pair of ``uint64`` arrays for a 16-byte field.
    """
    parts = []
    for col, nb in zip(cols, field_bytes):
        if nb == 16:
            hi, lo = col
            parts.append(
                np.ascontiguousarray(hi.astype(">u8"))
                .view(np.uint8).reshape(m, 8)
            )
            parts.append(
                np.ascontiguousarray(lo.astype(">u8"))
                .view(np.uint8).reshape(m, 8)
            )
        else:
            parts.append(
                np.ascontiguousarray(col.astype(">u8"))
                .view(np.uint8).reshape(m, 8)
            )
    mat = parts[0] if len(parts) == 1 else np.concatenate(parts, axis=1)
    mat = np.ascontiguousarray(mat)
    return mat.view(f"S{mat.shape[1]}").ravel()


class ExactEngine:
    """All key fields matched exactly: a plain hash map."""

    kind = "exact"

    def __init__(self) -> None:
        self._entries: Dict[Tuple[int, ...], object] = {}
        #: Bumped on every mutation; batch indexes cache against it.
        self.version = 0
        self._batch = None

    def insert(self, key: Tuple[int, ...], entry: object) -> None:
        self._entries[key] = entry
        self.version += 1

    def remove(self, key: Tuple[int, ...]) -> object:
        try:
            entry = self._entries.pop(key)
        except KeyError:
            raise KeyError(f"no exact entry for key {key}") from None
        self.version += 1
        return entry

    def lookup(self, values: Tuple[int, ...]) -> Optional[object]:
        return self._entries.get(values)

    def build_batch_index(self, np, field_bytes) -> bool:
        """(Re)build the sorted-record index; ``False`` -> stay scalar."""
        cached = self._batch
        if (
            cached is not None
            and cached[0] == self.version
            and cached[1] == field_bytes
        ):
            return True
        items = list(self._entries.items())
        recs = _pack_key_records(np, [k for k, _ in items], field_bytes)
        if recs is None:
            self._batch = None
            return False
        order = np.argsort(recs)
        self._batch = (
            self.version,
            field_bytes,
            recs[order],
            [items[int(i)][1] for i in order],
        )
        return True

    def lookup_batch(self, np, cols, m):
        """Batched lookup: (entry-rank array with -1 for miss, entries)."""
        _version, field_bytes, sorted_recs, entries = self._batch
        if not entries:
            return np.full(m, -1, np.int64), entries
        query = _pack_query_records(np, cols, field_bytes, m)
        pos = np.searchsorted(sorted_recs, query)
        clamped = np.minimum(pos, len(entries) - 1)
        hit = sorted_recs[clamped] == query
        return np.where(hit, clamped, -1).astype(np.int64), entries

    def entries(self) -> List[object]:
        return list(self._entries.values())

    def __len__(self) -> int:
        return len(self._entries)


class LpmEngine:
    """One longest-prefix-match field, optionally preceded by exact fields.

    The LPM field's key is a ``(value, prefix_len)`` pair.  Lookup
    scans installed prefix lengths from longest to shortest; within a
    length the match is a hash lookup, so cost is O(#distinct lengths).
    """

    kind = "lpm"

    def __init__(self, exact_count: int, lpm_width: int) -> None:
        self.exact_count = exact_count
        self.lpm_width = lpm_width
        # prefix_len -> {(exact..., masked_value): entry}
        self._by_len: Dict[int, Dict[Tuple[int, ...], object]] = {}
        #: Bumped on every mutation; batch indexes cache against it.
        self.version = 0
        self._batch = None

    def _mask(self, value: int, prefix_len: int) -> int:
        if prefix_len == 0:
            return 0
        shift = self.lpm_width - prefix_len
        return (value >> shift) << shift

    def insert(
        self, exact: Tuple[int, ...], value: int, prefix_len: int, entry: object
    ) -> None:
        if not 0 <= prefix_len <= self.lpm_width:
            raise ValueError(
                f"prefix length {prefix_len} out of range for "
                f"{self.lpm_width}-bit LPM field"
            )
        if len(exact) != self.exact_count:
            raise ValueError(
                f"expected {self.exact_count} exact key parts, got {len(exact)}"
            )
        bucket = self._by_len.setdefault(prefix_len, {})
        bucket[exact + (self._mask(value, prefix_len),)] = entry
        self.version += 1

    def remove(self, exact: Tuple[int, ...], value: int, prefix_len: int) -> object:
        bucket = self._by_len.get(prefix_len, {})
        key = exact + (self._mask(value, prefix_len),)
        try:
            entry = bucket.pop(key)
        except KeyError:
            raise KeyError(f"no LPM entry for {value:#x}/{prefix_len}") from None
        if not bucket:
            del self._by_len[prefix_len]
        self.version += 1
        return entry

    def lookup(self, values: Tuple[int, ...]) -> Optional[object]:
        exact, lpm_value = values[:-1], values[-1]
        for plen in sorted(self._by_len, reverse=True):
            key = exact + (self._mask(lpm_value, plen),)
            entry = self._by_len[plen].get(key)
            if entry is not None:
                return entry
        return None

    def build_batch_index(self, np, field_bytes) -> bool:
        """Per-prefix-length sorted-record indexes (longest first)."""
        cached = self._batch
        if (
            cached is not None
            and cached[0] == self.version
            and cached[1] == field_bytes
        ):
            return True
        buckets = []
        for plen in sorted(self._by_len, reverse=True):
            items = list(self._by_len[plen].items())
            recs = _pack_key_records(np, [k for k, _ in items], field_bytes)
            if recs is None:
                self._batch = None
                return False
            order = np.argsort(recs)
            buckets.append(
                (plen, recs[order], [items[int(i)][1] for i in order])
            )
        self._batch = (self.version, field_bytes, buckets)
        return True

    def _mask_col(self, np, col, prefix_len):
        """Vector version of :meth:`_mask` (handles the (hi, lo) pair
        representation of >64-bit LPM fields)."""
        width = self.lpm_width
        if isinstance(col, tuple):
            hi, lo = col
            shift = width - prefix_len
            if prefix_len == 0:
                zero = np.zeros_like(hi)
                return (zero, zero)
            if shift >= 64:
                hs = shift - 64
                masked_hi = hi if hs == 0 else (hi >> hs) << hs
                return (masked_hi, np.zeros_like(lo))
            if shift == 0:
                return (hi, lo)
            return (hi, (lo >> shift) << shift)
        if prefix_len == 0:
            return np.zeros_like(col)
        shift = width - prefix_len
        if shift == 0:
            return col
        return (col >> shift) << shift

    def lookup_batch(self, np, exact_cols, lpm_col, m):
        """Batched longest-prefix match, one masked pass per length."""
        _version, field_bytes, buckets = self._batch
        total = sum(len(entries) for _p, _r, entries in buckets)
        idx = np.full(m, -1, np.int64)
        entries_all: List[object] = []
        if not total:
            return idx, entries_all
        unresolved = np.ones(m, bool)
        base = 0
        for plen, sorted_recs, entries in buckets:
            if unresolved.any():
                masked = self._mask_col(np, lpm_col, plen)
                query = _pack_query_records(
                    np, list(exact_cols) + [masked], field_bytes, m
                )
                pos = np.searchsorted(sorted_recs, query)
                clamped = np.minimum(pos, len(entries) - 1)
                hit = (sorted_recs[clamped] == query) & unresolved
                idx[hit] = base + clamped[hit]
                unresolved &= ~hit
            entries_all.extend(entries)
            base += len(entries)
        return idx, entries_all

    def entries(self) -> List[object]:
        return [e for bucket in self._by_len.values() for e in bucket.values()]

    def __len__(self) -> int:
        return sum(len(b) for b in self._by_len.values())


class TernaryEngine:
    """TCAM model: value/mask per field, highest priority wins."""

    kind = "ternary"

    def __init__(self, field_count: int) -> None:
        self.field_count = field_count
        # (values, masks, priority, entry), kept sorted by priority desc.
        self._rows: List[Tuple[Tuple[int, ...], Tuple[int, ...], int, object]] = []
        #: Bumped on every mutation (parity with the batchable engines).
        self.version = 0

    def insert(
        self,
        values: Tuple[int, ...],
        masks: Tuple[int, ...],
        priority: int,
        entry: object,
    ) -> None:
        if len(values) != self.field_count or len(masks) != self.field_count:
            raise ValueError(
                f"expected {self.field_count} values and masks, got "
                f"{len(values)}/{len(masks)}"
            )
        row = (tuple(v & m for v, m in zip(values, masks)), tuple(masks), priority, entry)
        self._rows.append(row)
        self._rows.sort(key=lambda r: -r[2])
        self.version += 1

    def remove(self, values: Tuple[int, ...], masks: Tuple[int, ...]) -> object:
        masked = tuple(v & m for v, m in zip(values, masks))
        for i, row in enumerate(self._rows):
            if row[0] == masked and row[1] == tuple(masks):
                self.version += 1
                return self._rows.pop(i)[3]
        raise KeyError(f"no ternary entry for {values}/{masks}")

    def lookup(self, values: Tuple[int, ...]) -> Optional[object]:
        for masked, masks, _prio, entry in self._rows:
            if all((v & m) == mv for v, m, mv in zip(values, masks, masked)):
                return entry
        return None

    def entries(self) -> List[object]:
        return [row[3] for row in self._rows]

    def __len__(self) -> int:
        return len(self._rows)


class HashEngine:
    """ECMP-style selector: a flow hash picks one of the member entries.

    The paper's ``key = { meta.nexthop: hash; ipv4.dst_addr: hash; }``
    means the key fields feed a flow hash whose value selects among the
    installed member entries (next-hop group members).  Members are
    kept in insertion order; the hash is reduced modulo the member
    count, so a fixed flow always picks the same member while distinct
    flows spread across members.
    """

    kind = "hash"

    def __init__(self) -> None:
        self._members: List[object] = []
        #: Bumped on every mutation; batch callers cache against it.
        self.version = 0

    def insert(self, entry: object) -> None:
        self._members.append(entry)
        self.version += 1

    def remove_member(self, index: int) -> object:
        try:
            member = self._members.pop(index)
        except IndexError:
            raise KeyError(f"no hash member at index {index}") from None
        self.version += 1
        return member

    def lookup(self, values: Tuple[int, ...]) -> Optional[object]:
        if not self._members:
            return None
        index = flow_hash(list(values)) % len(self._members)
        return self._members[index]

    def entries(self) -> List[object]:
        return list(self._members)

    def __len__(self) -> int:
        return len(self._members)


#: The engine registry: canonical match kind -> engine class.  Every
#: front end and validator derives its accepted match kinds from this
#: registry, so adding an engine automatically teaches the parsers,
#: the config validator, and rp4lint about the new kind.
ENGINES = {
    engine.kind: engine
    for engine in (ExactEngine, LpmEngine, TernaryEngine, HashEngine)
}

#: Match kinds an rP4 table key may declare (one per engine).
MATCH_KINDS = frozenset(ENGINES)

#: The mini-P4 front end additionally accepts ``selector`` (an
#: action-selector key), which it lowers onto the hash engine.
P4_MATCH_KINDS = frozenset(MATCH_KINDS | {"selector"})

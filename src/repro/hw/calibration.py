"""Per-unit hardware constants, calibrated to the paper's prototypes.

The paper's 8-stage FPGA prototypes report (Table 2, Table 3):

* PISA: front parser 0.88% LUT / 0.10% FF, processors 5.32% / 0.47%,
  total 6.20% / 0.57%; ~2.95 W for use case C3.
* IPSA: processors 5.83% / 0.85%, crossbar 1.29% / 0.07%, total
  7.12% / 0.92%; ~10% more power than PISA.

We divide those totals by the structural quantities of our own
compiled base design (parse-graph edges, stages, template words,
crossbar ports) once, here, and nowhere else.  All reports elsewhere
are computed *from designs* using these per-unit prices, so e.g. a
clustered crossbar or a smaller parse graph genuinely changes the
outputs.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Structural quantities of the paper's 8-stage prototypes that the
#: calibration divides by.
_CAL_STAGES = 8
_CAL_PARSE_EDGES = 6  # ethernet->{v4,v6}, v4->{tcp,udp}, v6->{tcp,udp}
_CAL_TEMPLATE_WORDS = 12  # typical words per TSP template
_CAL_XBAR_PORTS = 8 * 112  # 8 TSPs x (96 SRAM + 16 TCAM) blocks


@dataclass(frozen=True)
class HwCalibration:
    """Per-unit resource/power prices (percent of U280, watts)."""

    # -- LUT / FF prices (percent of device) --
    lut_parser_per_edge: float
    ff_parser_per_edge: float
    lut_stage_base: float
    ff_stage_base: float
    lut_tsp_parser_per_edge: float  # distributed parser share inside a TSP
    ff_template_per_word: float
    lut_xbar_per_port: float
    ff_xbar_per_port: float
    # -- power (watts) --
    p_base: float  # clocking / I/O / HBM shell
    p_parser: float  # PISA front parser
    p_stage_active: float  # PISA stage processor (always powered)
    p_tsp_active: float
    p_tsp_idle: float  # bypassed TSP in low-power state
    p_xbar: float
    # -- timing --
    clock_mhz: float
    parser_bus_bits: int  # front-parser extraction width per cycle
    mem_bus_bits: int  # TSP <-> memory pool data bus width
    tsp_config_cycles: int  # per-packet template parameter load


#: PISA prototype prices.
PISA_CAL = HwCalibration(
    lut_parser_per_edge=0.88 / _CAL_PARSE_EDGES,
    ff_parser_per_edge=0.10 / _CAL_PARSE_EDGES,
    lut_stage_base=5.32 / _CAL_STAGES,
    ff_stage_base=0.47 / _CAL_STAGES,
    lut_tsp_parser_per_edge=0.0,
    ff_template_per_word=0.0,
    lut_xbar_per_port=0.0,
    ff_xbar_per_port=0.0,
    p_base=1.20,
    p_parser=0.15,
    p_stage_active=0.20,
    p_tsp_active=0.0,
    p_tsp_idle=0.0,
    p_xbar=0.0,
    clock_mhz=200.0,
    parser_bus_bits=768,
    mem_bus_bits=0,
    tsp_config_cycles=0,
)

#: IPSA prototype prices.  The TSP is a PISA stage plus a distributed
#: parser slice and a template store; the crossbar is new.
IPSA_CAL = HwCalibration(
    lut_parser_per_edge=0.0,
    ff_parser_per_edge=0.0,
    lut_stage_base=5.32 / _CAL_STAGES,
    ff_stage_base=0.47 / _CAL_STAGES,
    # (5.83 - 5.32) extra LUT over 8 TSPs, priced per parse edge the
    # TSP's mini-parser must understand.
    lut_tsp_parser_per_edge=(5.83 - 5.32) / _CAL_STAGES / _CAL_PARSE_EDGES,
    # (0.85 - 0.47) extra FF over 8 TSPs is the template store.
    ff_template_per_word=(0.85 - 0.47) / _CAL_STAGES / _CAL_TEMPLATE_WORDS,
    lut_xbar_per_port=1.29 / _CAL_XBAR_PORTS,
    ff_xbar_per_port=0.07 / _CAL_XBAR_PORTS,
    p_base=1.20,
    p_parser=0.0,
    p_stage_active=0.0,
    p_tsp_active=0.24,
    p_tsp_idle=0.02,
    p_xbar=0.18,
    clock_mhz=200.0,
    parser_bus_bits=768,
    mem_bus_bits=256,
    tsp_config_cycles=1,
)

"""Cycle-level throughput model (reproduces Sec. 5's Mpps numbers).

Both prototypes run at 200 MHz and are pipelined, so throughput is
the clock divided by the *bottleneck* cycles per packet:

* **PISA** -- stages are single-cycle; the bottleneck is the front
  parser when the header stack exceeds its per-cycle extraction
  width (why the SRv6 case is the slowest).
* **IPSA** -- the bottleneck TSP pays (a) the per-packet template
  parameter load, (b) one cycle per JIT-parsed header, and (c)
  ``ceil(entry_width / bus_width)`` memory-pool accesses per lookup --
  exactly the two penalties Sec. 5 names ("memory access, especially
  when the table entry size exceeds the data bus width, and the extra
  time for loading the per-packet configuration parameters").

Models run on the *behavioral switches*, so cycles are charged to the
lookups and parses that actually happen for each trace packet.  The
report also carries the measured software packets/sec for the
bmv2-vs-ipbm style comparison.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.compiler.rp4bc import CompiledDesign
from repro.hw.calibration import IPSA_CAL, PISA_CAL, HwCalibration
from repro.ipsa.switch import IpsaSwitch
from repro.net.packet import Packet
from repro.obs.clock import Clock, MONOTONIC
from repro.pisa.switch import PisaSwitch

Trace = List[Tuple[bytes, int]]


@dataclass
class ThroughputReport:
    """Model + measurement for one architecture on one trace."""

    architecture: str
    packets: int = 0
    cycles_per_packet: float = 0.0
    model_mpps: float = 0.0
    software_pps: float = 0.0
    forwarded: int = 0
    dropped: int = 0


class _TspMeter:
    """Collects per-TSP parse/lookup events for one packet."""

    def __init__(self) -> None:
        self.parses: Dict[int, int] = defaultdict(int)
        self.lookups: Dict[int, List[str]] = defaultdict(list)

    def parsed(self, tsp_index: int, count: int) -> None:
        self.parses[tsp_index] += count

    def lookup(self, tsp_index: int, table: str) -> None:
        self.lookups[tsp_index].append(table)


def ipsa_throughput(
    switch: IpsaSwitch,
    design: CompiledDesign,
    trace: Trace,
    cal: Optional[HwCalibration] = None,
    clock: Optional[Clock] = None,
) -> ThroughputReport:
    """Run the trace through ipbm, pricing the bottleneck TSP."""
    cal = cal or IPSA_CAL
    clock = clock or MONOTONIC
    report = ThroughputReport(architecture="IPSA", packets=len(trace))
    entry_widths = {
        name: layout.entry_width for name, layout in design.table_layouts.items()
    }
    total_bottleneck = 0.0
    started = clock.now()
    for data, port in trace:
        meter = _TspMeter()
        out = switch.inject(data, port, meter=meter)
        if out is None:
            report.dropped += 1
        else:
            report.forwarded += 1
        bottleneck = 1.0
        touched = set(meter.parses) | set(meter.lookups)
        for tsp in touched:
            cycles = float(cal.tsp_config_cycles)
            cycles += meter.parses.get(tsp, 0)  # one cycle per JIT header
            for table in meter.lookups.get(tsp, []):
                width = entry_widths.get(table, cal.mem_bus_bits)
                cycles += max(1, math.ceil(width / cal.mem_bus_bits))
            bottleneck = max(bottleneck, cycles)
        total_bottleneck += bottleneck
    elapsed = clock.now() - started
    report.cycles_per_packet = total_bottleneck / max(1, len(trace))
    report.model_mpps = cal.clock_mhz / report.cycles_per_packet
    report.software_pps = len(trace) / elapsed if elapsed > 0 else 0.0
    return report


def pisa_throughput(
    switch: PisaSwitch,
    trace: Trace,
    cal: Optional[HwCalibration] = None,
    clock: Optional[Clock] = None,
) -> ThroughputReport:
    """Run the trace through the PISA model, pricing the front parser."""
    cal = cal or PISA_CAL
    clock = clock or MONOTONIC
    if switch.parser is None:
        raise RuntimeError("switch has no design loaded")
    report = ThroughputReport(architecture="PISA", packets=len(trace))
    total_cycles = 0.0
    started = clock.now()
    for data, port in trace:
        # Pre-measure the parse depth the front parser must extract.
        probe = Packet(data, first_header=switch.parser.first_header)
        probe.parse_all(switch.parser.header_types, switch.parser.linkage)
        stack_bits = probe.cursor_bits
        parse_cycles = max(1, math.ceil(stack_bits / cal.parser_bus_bits))
        total_cycles += float(parse_cycles)

        out = switch.inject(data, port)
        if out is None:
            report.dropped += 1
        else:
            report.forwarded += 1
    elapsed = clock.now() - started
    report.cycles_per_packet = total_cycles / max(1, len(trace))
    report.model_mpps = cal.clock_mhz / report.cycles_per_packet
    report.software_pps = len(trace) / elapsed if elapsed > 0 else 0.0
    return report

"""Parametric hardware model (the FPGA-prototype substitute).

The paper evaluates 8-stage FPGA prototypes of PISA and IPSA on an
Alveo U280.  We cannot synthesize Verilog here, so this package prices
the *structures* the two architectures differ in -- front parser
vs. distributed parsing, per-stage processors vs. TSPs with template
stores, and the memory crossbar -- with per-unit constants calibrated
once against the paper's 8-stage prototypes (see
:mod:`repro.hw.calibration`).  Because costs attach to structures, the
comparisons scale with the *actual compiled designs*: change the
design and the numbers move for architectural reasons, not because a
table was hard-coded.
"""

from repro.hw.calibration import IPSA_CAL, PISA_CAL, HwCalibration
from repro.hw.discussion import (
    capacity_vs_pipelines,
    ipsa_latency,
    latency_vs_stages,
    pisa_latency,
    stages_vs_table_size,
)
from repro.hw.power import ipsa_power, pisa_power, power_vs_stages
from repro.hw.resources import (
    ResourceReport,
    ipsa_resources,
    pisa_resources,
)
from repro.hw.throughput import (
    ThroughputReport,
    ipsa_throughput,
    pisa_throughput,
)

__all__ = [
    "HwCalibration",
    "IPSA_CAL",
    "PISA_CAL",
    "ResourceReport",
    "ThroughputReport",
    "ipsa_power",
    "ipsa_resources",
    "ipsa_throughput",
    "pisa_power",
    "pisa_resources",
    "pisa_throughput",
    "power_vs_stages",
    "capacity_vs_pipelines",
    "ipsa_latency",
    "latency_vs_stages",
    "pisa_latency",
    "stages_vs_table_size",
]

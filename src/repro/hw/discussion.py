"""Models for the paper's Sec. 5 "Discussion" arguments.

The paper argues IPSA's resource penalty (Table 2) is offset by three
structural advantages; each gets a quantitative model here (and a
bench in ``benchmarks/test_discussion_models.py``):

1. **Multi-pipeline table sharing** -- "PISA requires replicating most
   tables in each pipeline, reducing the effective table storage.  The
   disaggregated memory pool in IPSA can avoid table replication by
   providing multiple access ports to the memory blocks."
2. **Logical stage expansion** -- "To expand a flow table in PISA,
   multiple physical stages need to be combined to serve for a single
   logical stage ... reducing the effective pipeline stages.  In IPSA,
   a logical stage can always map into a single TSP."
3. **Pipeline latency** -- "Since only used TSPs are kept in the
   pipeline in IPSA, not only the power consumption but also the
   pipeline latency is reduced, which offsets the extra ... latency
   introduced by the crossbar and distributed parser."
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple



# -- (1) multi-pipeline table sharing ---------------------------------------


def pisa_effective_capacity(total_blocks: int, n_pipelines: int) -> int:
    """Blocks of *distinct* table state with per-pipeline replication.

    The chip's memory is spread evenly over the pipelines, and each
    pipeline needs its own copy of (most of) the tables, so effective
    capacity is one pipeline's share.
    """
    if n_pipelines <= 0:
        raise ValueError("n_pipelines must be positive")
    return total_blocks // n_pipelines


def ipsa_effective_capacity(
    total_blocks: int, n_pipelines: int, port_overhead: float = 0.05
) -> int:
    """Shared-pool capacity with multi-ported blocks.

    Multi-porting a block for ``n`` pipelines costs area; we charge
    ``port_overhead`` of capacity per extra pipeline rather than a
    full copy.
    """
    if n_pipelines <= 0:
        raise ValueError("n_pipelines must be positive")
    overhead = 1.0 + port_overhead * (n_pipelines - 1)
    return int(total_blocks / overhead)


def capacity_vs_pipelines(
    total_blocks: int = 112, max_pipelines: int = 4
) -> List[Tuple[int, int, int]]:
    """(pipelines, PISA effective blocks, IPSA effective blocks) series."""
    return [
        (
            n,
            pisa_effective_capacity(total_blocks, n),
            ipsa_effective_capacity(total_blocks, n),
        )
        for n in range(1, max_pipelines + 1)
    ]


# -- (2) logical stage expansion ---------------------------------------------


def pisa_effective_stages(
    n_stages: int, table_blocks: int, blocks_per_stage: int
) -> int:
    """Pipeline stages left after one table expands across stages.

    A table needing more memory than one stage owns consumes
    ``ceil(table_blocks / blocks_per_stage)`` consecutive stages whose
    processing logic is replicated -- all but one stop being usable
    for other logic.
    """
    if blocks_per_stage <= 0:
        raise ValueError("blocks_per_stage must be positive")
    consumed = math.ceil(table_blocks / blocks_per_stage)
    return max(0, n_stages - (consumed - 1))


def ipsa_effective_stages(n_stages: int, table_blocks: int, pool_blocks: int) -> int:
    """IPSA: the table lives in the pool; one TSP hosts the logic.

    The pipeline loses stages only if the pool itself cannot hold the
    table.
    """
    if table_blocks > pool_blocks:
        return 0  # does not fit at all
    return n_stages


def stages_vs_table_size(
    n_stages: int = 8,
    blocks_per_stage: int = 12,
    pool_blocks: int = 96,
    sizes: Optional[List[int]] = None,
) -> List[Tuple[int, int, int]]:
    """(table blocks, PISA effective stages, IPSA effective stages)."""
    sizes = sizes or [6, 12, 24, 48, 96]
    return [
        (
            blocks,
            pisa_effective_stages(n_stages, blocks, blocks_per_stage),
            ipsa_effective_stages(n_stages, blocks, pool_blocks),
        )
        for blocks in sizes
    ]


# -- (3) pipeline latency ------------------------------------------------------


@dataclass(frozen=True)
class LatencyModel:
    """Per-component latencies in clock cycles."""

    parser_cycles: int = 4  # PISA front parser depth
    deparser_cycles: int = 2
    stage_cycles: int = 3  # match+action latency of one stage/TSP
    tsp_extra_cycles: int = 1  # template load + distributed parse
    crossbar_cycles: int = 2  # pool access round trip


def pisa_latency(
    n_physical_stages: int = 8, model: Optional[LatencyModel] = None
) -> int:
    """Every physical stage is on the path, used or not (Sec. 2.3)."""
    m = model or LatencyModel()
    return (
        m.parser_cycles
        + n_physical_stages * m.stage_cycles
        + m.deparser_cycles
    )


def ipsa_latency(
    active_tsps: int, model: Optional[LatencyModel] = None
) -> int:
    """Only active TSPs are on the path; each pays the crossbar."""
    m = model or LatencyModel()
    return active_tsps * (
        m.stage_cycles + m.tsp_extra_cycles + m.crossbar_cycles
    )


def latency_vs_stages(
    n_physical_stages: int = 8, model: Optional[LatencyModel] = None
) -> List[Tuple[int, int, int]]:
    """(effective stages, PISA cycles, IPSA cycles) series."""
    return [
        (k, pisa_latency(n_physical_stages, model), ipsa_latency(k, model))
        for k in range(1, n_physical_stages + 1)
    ]

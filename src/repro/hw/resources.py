"""FPGA resource model (reproduces Table 2's structure).

Costs attach to structures of the *actual* design:

* PISA pays for a front parser sized by its parse graph, plus fixed
  stage processors.
* IPSA pays for TSPs (stage processor + distributed-parser slice +
  template store sized by real template words) plus crossbar
  crosspoints (full vs. clustered crossbars genuinely differ here).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.compiler.rp4bc import CompiledDesign
from repro.hw.calibration import IPSA_CAL, PISA_CAL, HwCalibration
from repro.ipsa.tsp import StageRuntime
from repro.p4.hlir import Hlir


@dataclass
class ResourceReport:
    """Percent of device resources, broken down as in Table 2."""

    architecture: str
    lut: Dict[str, float] = field(default_factory=dict)
    ff: Dict[str, float] = field(default_factory=dict)

    @property
    def lut_total(self) -> float:
        return sum(self.lut.values())

    @property
    def ff_total(self) -> float:
        return sum(self.ff.values())

    def rows(self):
        """(component, lut%, ff%) rows plus the total."""
        components = sorted(set(self.lut) | set(self.ff))
        out = [
            (c, self.lut.get(c, 0.0), self.ff.get(c, 0.0)) for c in components
        ]
        out.append(("Total", self.lut_total, self.ff_total))
        return out


def pisa_resources(
    hlir: Hlir,
    n_stages: int = 8,
    cal: Optional[HwCalibration] = None,
) -> ResourceReport:
    """Resource estimate for a PISA chip running this design."""
    cal = cal or PISA_CAL
    edges = sum(1 for e in hlir.parse_edges if e.tag >= 0)
    report = ResourceReport(architecture="PISA")
    report.lut["Front parser"] = cal.lut_parser_per_edge * edges
    report.ff["Front parser"] = cal.ff_parser_per_edge * edges
    report.lut["Processors"] = cal.lut_stage_base * n_stages
    report.ff["Processors"] = cal.ff_stage_base * n_stages
    return report


def _template_words(design: CompiledDesign) -> int:
    """Total template-store words across the design's templates."""
    words = 0
    for template in design.templates:
        for stage_json in template["stages"]:
            words += StageRuntime.from_json(stage_json).template_words()
    return words


def ipsa_resources(
    design: CompiledDesign,
    cal: Optional[HwCalibration] = None,
) -> ResourceReport:
    """Resource estimate for an IPSA chip running this compiled design.

    Every physical TSP is implemented (it must be programmable at
    runtime), so processor cost scales with ``n_tsps``, not with the
    currently active subset -- exactly why Table 2 charges IPSA more.
    """
    cal = cal or IPSA_CAL
    n_tsps = design.target.n_tsps
    # The distributed parser must understand the whole linkage the
    # device can be asked to parse (all declared implicit-parser edges).
    edges = sum(len(h.links) for h in design.program.headers.values())
    words_per_tsp = max(
        1, _template_words(design) // max(1, len(design.templates))
    )
    pool = design.pool
    ports = pool.crossbar.port_count(n_tsps, len(pool.blocks))

    report = ResourceReport(architecture="IPSA")
    report.lut["Processors"] = n_tsps * (
        cal.lut_stage_base + cal.lut_tsp_parser_per_edge * edges
    )
    report.ff["Processors"] = n_tsps * (
        cal.ff_stage_base + cal.ff_template_per_word * words_per_tsp
    )
    report.lut["Crossbar"] = cal.lut_xbar_per_port * ports
    report.ff["Crossbar"] = cal.ff_xbar_per_port * ports
    return report

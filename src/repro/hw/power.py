"""Power model (reproduces Table 3 and Fig. 6).

The architectural story: PISA powers every physical stage all the
time; IPSA powers only the active TSPs and idles the bypassed ones,
paying a crossbar tax.  At full occupancy IPSA costs ~10% more; with
few effective stages it crosses below PISA -- Fig. 6's curve.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.hw.calibration import IPSA_CAL, PISA_CAL, HwCalibration


@dataclass
class PowerReport:
    """Watts, broken down as in Table 3."""

    architecture: str
    components: Dict[str, float] = field(default_factory=dict)

    @property
    def total(self) -> float:
        return sum(self.components.values())


def pisa_power(
    n_stages: int = 8,
    cal: Optional[HwCalibration] = None,
) -> PowerReport:
    """PISA power: base + parser + *all* physical stages.

    There is no per-stage clock gating in the prototype: a stage not
    used by the design still sits in the pipeline and burns power
    ("non-functional stages remain in the pipeline, costing extra
    latency and power", Sec. 2.3).
    """
    cal = cal or PISA_CAL
    report = PowerReport(architecture="PISA")
    report.components["Base"] = cal.p_base
    report.components["Parser"] = cal.p_parser
    report.components["Stages"] = cal.p_stage_active * n_stages
    return report


def ipsa_power(
    active_tsps: int,
    n_tsps: int = 8,
    cal: Optional[HwCalibration] = None,
) -> PowerReport:
    """IPSA power: base + active TSPs + idle TSPs + crossbar."""
    cal = cal or IPSA_CAL
    if not 0 <= active_tsps <= n_tsps:
        raise ValueError(
            f"active_tsps {active_tsps} out of range for {n_tsps} TSPs"
        )
    report = PowerReport(architecture="IPSA")
    report.components["Base"] = cal.p_base
    report.components["Active TSPs"] = cal.p_tsp_active * active_tsps
    report.components["Idle TSPs"] = cal.p_tsp_idle * (n_tsps - active_tsps)
    report.components["Crossbar"] = cal.p_xbar
    return report


def power_vs_stages(
    n_tsps: int = 8,
    pisa_cal: Optional[HwCalibration] = None,
    ipsa_cal: Optional[HwCalibration] = None,
) -> List[Tuple[int, float, float]]:
    """Fig. 6's series: (effective stages, PISA W, IPSA W).

    PISA's curve is flat (all physical stages powered regardless of
    how many the application uses); IPSA's grows with active TSPs.
    """
    rows = []
    for effective in range(1, n_tsps + 1):
        rows.append(
            (
                effective,
                pisa_power(n_tsps, pisa_cal).total,
                ipsa_power(effective, n_tsps, ipsa_cal).total,
            )
        )
    return rows


def crossover_stage(n_tsps: int = 8) -> Optional[int]:
    """First effective-stage count where IPSA consumes more than PISA."""
    for effective, pisa_w, ipsa_w in power_vs_stages(n_tsps):
        if ipsa_w > pisa_w:
            return effective
    return None

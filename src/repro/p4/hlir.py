"""HLIR: the target-independent IR produced from mini-P4.

This is the substitute for p4c's HLIR that the paper's rp4fc consumes
("rp4fc takes the HLIR, the target-independent output of p4c, as
input").  It flattens the P4 program into:

* header *instances* with field layouts,
* a parse graph keyed by (instance, selector field, tag),
* a merged action dictionary,
* tables annotated with the control they belong to, and
* the ingress/egress apply flows as statement trees.

The same HLIR also configures the PISA behavioral switch directly,
mirroring how one P4 design maps onto both architectures (Sec. 3.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.lang.expr import SApply, SIf, Stmt
from repro.p4.ast import P4Program
from repro.rp4.ast import Rp4Action


@dataclass
class HlirTable:
    """A table with resolved key widths and its owning control."""

    name: str
    keys: List[Tuple[str, str, int]] = field(default_factory=list)  # ref, kind, width
    size: int = 1024
    actions: List[str] = field(default_factory=list)
    default_action: str = "NoAction"
    control: str = "ingress"

    @property
    def key_width(self) -> int:
        return sum(width for _, _, width in self.keys)

    @property
    def match_kind(self) -> str:
        kinds = [k for _, k, _ in self.keys]
        if "ternary" in kinds:
            return "ternary"
        if "lpm" in kinds:
            return "lpm"
        if "hash" in kinds:
            return "hash"
        return "exact"


@dataclass
class ParseEdge:
    """(instance, selector value) -> next instance."""

    instance: str
    selector: str  # field name within the instance
    tag: int
    next_instance: str


@dataclass
class Hlir:
    """The flattened program."""

    headers: Dict[str, List[Tuple[str, int]]] = field(default_factory=dict)
    metadata: List[Tuple[str, int]] = field(default_factory=list)
    first_header: Optional[str] = None
    parse_edges: List[ParseEdge] = field(default_factory=list)
    actions: Dict[str, Rp4Action] = field(default_factory=dict)
    tables: Dict[str, HlirTable] = field(default_factory=dict)
    ingress_flow: List[Stmt] = field(default_factory=list)
    egress_flow: List[Stmt] = field(default_factory=list)

    def ref_width(self, ref: str) -> int:
        scope, _, fname = ref.partition(".")
        if scope == "meta":
            for mname, width in self.metadata:
                if mname == fname:
                    return width
            # Intrinsic metadata defaults to 16 bits in the IR.
            return 16
        fields = self.headers.get(scope)
        if fields is None:
            raise KeyError(f"unknown header instance {scope!r} in {ref!r}")
        for hname, width in fields:
            if hname == fname:
                return width
        raise KeyError(f"header {scope!r} has no field {fname!r}")

    def applied_tables(self, control: str) -> List[str]:
        """Table names applied by a control, in program order."""
        flow = self.ingress_flow if control == "ingress" else self.egress_flow
        order: List[str] = []

        def walk(stmts: List[Stmt]) -> None:
            for stmt in stmts:
                if isinstance(stmt, SApply):
                    order.append(stmt.table)
                elif isinstance(stmt, SIf):
                    walk(stmt.then_body)
                    walk(stmt.else_body)

        walk(flow)
        return order


class HlirError(Exception):
    """Raised when the P4 program cannot be lowered."""


def build_hlir(program: P4Program) -> Hlir:
    """Lower a parsed P4 program to HLIR."""
    hlir = Hlir()

    for instance, type_name in program.header_instances.items():
        hlir.headers[instance] = list(program.header_types[type_name].fields)
    hlir.metadata = list(program.metadata)

    _lower_parser(program, hlir)

    for control, name in ((program.ingress, "ingress"), (program.egress, "egress")):
        if control is None:
            continue
        for action in control.actions.values():
            if action.name in hlir.actions:
                raise HlirError(f"duplicate action {action.name!r} across controls")
            hlir.actions[action.name] = action
        for table in control.tables.values():
            if table.name in hlir.tables:
                raise HlirError(f"duplicate table {table.name!r} across controls")
            keys = []
            for ref, kind in table.keys:
                keys.append((ref, kind, hlir.ref_width(ref)))
            hlir.tables[table.name] = HlirTable(
                name=table.name,
                keys=keys,
                size=table.size,
                actions=list(table.actions),
                default_action=table.default_action,
                control=name,
            )
        if name == "ingress":
            hlir.ingress_flow = list(control.apply_body)
        else:
            hlir.egress_flow = list(control.apply_body)

    return hlir


def _lower_parser(program: P4Program, hlir: Hlir) -> None:
    """Turn the parser state machine into per-instance parse edges."""
    if program.parser_start is None:
        return
    states = program.parser_states

    def state_instance(state_name: str) -> Optional[str]:
        """First header instance a state (transitively) extracts."""
        seen = set()
        current = state_name
        while current not in ("accept", "reject") and current not in seen:
            seen.add(current)
            state = states.get(current)
            if state is None:
                raise HlirError(f"parser transitions to unknown state {current!r}")
            if state.extracts:
                return state.extracts[0]
            if not state.transitions:
                return None
            current = state.transitions[0].target
        return None

    hlir.first_header = state_instance(program.parser_start)

    for state in states.values():
        if not state.extracts:
            continue
        # Chained extracts within one state: consecutive instances.
        # (Not needed by the use cases but supported for completeness:
        # each extract after the first is linked unconditionally via a
        # sentinel edge tag -1 handled by the PISA parser.)
        source = state.extracts[-1]
        if state.select_field is not None:
            scope, _, fname = state.select_field.partition(".")
            if scope != source:
                raise HlirError(
                    f"state {state.name!r}: select field {state.select_field!r} "
                    f"does not belong to extracted instance {source!r}"
                )
            for transition in state.transitions:
                if transition.tag is None:
                    continue  # default: accept / fallthrough
                target = state_instance(transition.target)
                if target is not None:
                    hlir.parse_edges.append(
                        ParseEdge(source, fname, transition.tag, target)
                    )
        else:
            for transition in state.transitions:
                target = state_instance(transition.target)
                if target is not None and transition.target not in (
                    "accept",
                    "reject",
                ):
                    # Unconditional transition: tag -1 sentinel.
                    hlir.parse_edges.append(ParseEdge(source, "", -1, target))

"""Abstract syntax for the mini-P4 subset."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.lang.expr import Stmt
from repro.rp4.ast import Rp4Action, Rp4Table


@dataclass
class P4HeaderType:
    """``header ipv4_t { bit<4> version; ... }``"""

    name: str
    fields: List[Tuple[str, int]] = field(default_factory=list)


@dataclass
class Transition:
    """One row of a ``select`` transition (or the unconditional one).

    ``tag is None`` means unconditional or the ``default`` row.
    """

    tag: Optional[int]
    target: str  # next state name, or "accept"/"reject"


@dataclass
class ParserState:
    """``state parse_x { pkt.extract(hdr.x); transition select(...) {...} }``"""

    name: str
    extracts: List[str] = field(default_factory=list)  # header instance names
    select_field: Optional[str] = None  # normalized ref, e.g. "ethernet.ethertype"
    transitions: List[Transition] = field(default_factory=list)


@dataclass
class ControlDecl:
    """An ingress or egress control: local actions/tables + apply block."""

    name: str
    actions: Dict[str, Rp4Action] = field(default_factory=dict)
    tables: Dict[str, Rp4Table] = field(default_factory=dict)
    apply_body: List[Stmt] = field(default_factory=list)


@dataclass
class P4Program:
    """A mini-P4 compilation unit."""

    header_types: Dict[str, P4HeaderType] = field(default_factory=dict)
    # struct headers { ethernet_t ethernet; ... }: instance -> type name
    header_instances: Dict[str, str] = field(default_factory=dict)
    metadata: List[Tuple[str, int]] = field(default_factory=list)
    parser_states: Dict[str, ParserState] = field(default_factory=dict)
    parser_start: Optional[str] = None
    ingress: Optional[ControlDecl] = None
    egress: Optional[ControlDecl] = None

    def instance_fields(self, instance: str) -> List[Tuple[str, int]]:
        type_name = self.header_instances.get(instance)
        if type_name is None:
            raise KeyError(f"unknown header instance {instance!r}")
        return self.header_types[type_name].fields

"""Recursive-descent parser for the mini-P4 subset.

References are normalized while parsing: ``hdr.ipv4.dst_addr`` becomes
``ipv4.dst_addr`` and ``standard_metadata.x`` becomes ``meta.x``, so
the HLIR and everything downstream share one naming scheme with rP4.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.lang.expr import (
    EBin,
    ECall,
    ERef,
    EUnary,
    EValid,
    Expr,
    SApply,
    SAssign,
    SCall,
    SIf,
    Stmt,
    parse_expr,
)
from repro.lang.lexer import Lexer, TokenKind
from repro.p4.ast import (
    ControlDecl,
    P4HeaderType,
    P4Program,
    ParserState,
    Transition,
)
from repro.rp4.ast import Rp4Action, Rp4Table
from repro.tables.engines import P4_MATCH_KINDS


def normalize_ref(ref: str) -> str:
    """Strip the ``hdr.`` prefix and fold standard metadata into ``meta``."""
    if ref.startswith("hdr."):
        return ref[len("hdr.") :]
    if ref.startswith("standard_metadata."):
        return "meta." + ref[len("standard_metadata.") :]
    return ref


def _normalize_expr(expr: Expr) -> Expr:
    if isinstance(expr, ERef):
        return ERef(normalize_ref(expr.ref))
    if isinstance(expr, EValid):
        return EValid(normalize_ref(expr.header))
    if isinstance(expr, EUnary):
        return EUnary(expr.op, _normalize_expr(expr.operand))
    if isinstance(expr, EBin):
        return EBin(expr.op, _normalize_expr(expr.left), _normalize_expr(expr.right))
    if isinstance(expr, ECall):
        return ECall(expr.name, tuple(_normalize_expr(a) for a in expr.args))
    return expr


def parse_p4(source: str) -> P4Program:
    """Parse mini-P4 source text into a :class:`P4Program`."""
    return _Parser(source).parse_program()


class _Parser:
    def __init__(self, source: str) -> None:
        self.lex = Lexer(source)
        self.program = P4Program()

    def parse_program(self) -> P4Program:
        lex = self.lex
        while not lex.at_eof():
            tok = lex.current
            if tok.is_ident("header"):
                self._header_type()
            elif tok.is_ident("struct"):
                self._struct()
            elif tok.is_ident("parser"):
                self._parser_decl()
            elif tok.is_ident("control"):
                self._control_decl()
            elif tok.is_punct("@"):
                self._pragma()
            else:
                raise lex.error(f"unexpected top-level token {tok}")
        return self.program

    # -- helpers ---------------------------------------------------------

    def _bit_type(self) -> int:
        self.lex.expect_ident("bit")
        self.lex.expect_punct("<")
        width = self.lex.expect_int().value
        self.lex.expect_punct(">")
        return width

    def _skip_parens(self) -> None:
        """Consume a balanced parenthesized parameter list."""
        self.lex.expect_punct("(")
        depth = 1
        while depth:
            tok = self.lex.advance()
            if tok.kind is TokenKind.EOF:
                raise self.lex.error("unterminated parameter list")
            if tok.is_punct("("):
                depth += 1
            elif tok.is_punct(")"):
                depth -= 1

    def _pragma(self) -> None:
        # `@pragma ...` annotations are accepted and ignored (the paper
        # notes PISA's `@pragma stage i` needs low-level chip knowledge;
        # our PISA back end does its own placement).
        self.lex.expect_punct("@")
        self.lex.expect_ident()
        line = self.lex.current.line
        while not self.lex.at_eof() and self.lex.current.line == line:
            self.lex.advance()

    def _dotted(self) -> str:
        parts = [self.lex.expect_ident().text]
        while self.lex.current.is_punct(".") and self.lex.peek().kind is TokenKind.IDENT:
            if self.lex.peek().text in ("apply", "isValid", "extract"):
                break
            self.lex.advance()
            parts.append(self.lex.expect_ident().text)
        return normalize_ref(".".join(parts))

    # -- declarations -------------------------------------------------------

    def _header_type(self) -> None:
        lex = self.lex
        lex.expect_ident("header")
        name = lex.expect_ident().text
        decl = P4HeaderType(name=name)
        lex.expect_punct("{")
        while not lex.accept_punct("}"):
            width = self._bit_type()
            fname = lex.expect_ident().text
            lex.expect_punct(";")
            decl.fields.append((fname, width))
        self.program.header_types[name] = decl

    def _struct(self) -> None:
        lex = self.lex
        lex.expect_ident("struct")
        name = lex.expect_ident().text
        lex.expect_punct("{")
        while not lex.accept_punct("}"):
            if lex.current.is_ident("bit"):
                width = self._bit_type()
                mname = lex.expect_ident().text
                lex.expect_punct(";")
                self.program.metadata.append((mname, width))
            else:
                type_name = lex.expect_ident().text
                instance = lex.expect_ident().text
                lex.expect_punct(";")
                if type_name not in self.program.header_types:
                    raise lex.error(
                        f"struct {name!r}: unknown header type {type_name!r}"
                    )
                self.program.header_instances[instance] = type_name
        lex.accept_punct(";")

    # -- parser ------------------------------------------------------------

    def _parser_decl(self) -> None:
        lex = self.lex
        lex.expect_ident("parser")
        lex.expect_ident()  # parser name
        self._skip_parens()
        lex.expect_punct("{")
        while not lex.accept_punct("}"):
            self._parser_state()
        if "start" not in self.program.parser_states:
            raise lex.error("parser has no start state")
        self.program.parser_start = "start"

    def _parser_state(self) -> None:
        lex = self.lex
        lex.expect_ident("state")
        name = lex.expect_ident().text
        state = ParserState(name=name)
        lex.expect_punct("{")
        while not lex.current.is_ident("transition"):
            # pkt.extract(hdr.x);
            lex.expect_ident()  # pkt / packet
            lex.expect_punct(".")
            lex.expect_ident("extract")
            lex.expect_punct("(")
            instance = self._dotted()
            lex.expect_punct(")")
            lex.expect_punct(";")
            state.extracts.append(instance)
        lex.expect_ident("transition")
        if lex.current.is_ident("select"):
            lex.advance()
            lex.expect_punct("(")
            state.select_field = self._dotted()
            lex.expect_punct(")")
            lex.expect_punct("{")
            while not lex.accept_punct("}"):
                if lex.current.is_ident("default"):
                    lex.advance()
                    tag: Optional[int] = None
                else:
                    tag = lex.expect_int().value
                lex.expect_punct(":")
                target = lex.expect_ident().text
                lex.expect_punct(";")
                state.transitions.append(Transition(tag, target))
        else:
            target = lex.expect_ident().text
            lex.expect_punct(";")
            state.transitions.append(Transition(None, target))
        lex.expect_punct("}")
        self.program.parser_states[name] = state

    # -- controls -----------------------------------------------------------

    def _control_decl(self) -> None:
        lex = self.lex
        lex.expect_ident("control")
        name = lex.expect_ident().text
        self._skip_parens()
        decl = ControlDecl(name=name)
        lex.expect_punct("{")
        while not lex.accept_punct("}"):
            if lex.current.is_ident("action"):
                action = self._action()
                decl.actions[action.name] = action
            elif lex.current.is_ident("table"):
                table = self._table()
                decl.tables[table.name] = table
            elif lex.current.is_ident("apply"):
                lex.advance()
                lex.expect_punct("{")
                decl.apply_body = self._apply_block()
            else:
                raise lex.error(f"unexpected token in control: {lex.current}")
        lowered = name.lower()
        if "ingress" in lowered:
            self.program.ingress = decl
        elif "egress" in lowered:
            self.program.egress = decl
        else:
            raise lex.error(
                f"control {name!r} must be an ingress or egress control"
            )

    def _action(self) -> Rp4Action:
        lex = self.lex
        lex.expect_ident("action")
        name = lex.expect_ident().text
        decl = Rp4Action(name=name)
        lex.expect_punct("(")
        if not lex.current.is_punct(")"):
            decl.params.append(self._param())
            while lex.accept_punct(","):
                decl.params.append(self._param())
        lex.expect_punct(")")
        lex.expect_punct("{")
        while not lex.accept_punct("}"):
            decl.body.append(self._action_stmt())
        return decl

    def _param(self) -> Tuple[str, int]:
        # Accept `bit<W> name` and P4 directions (`in`, `out`, `inout`).
        while self.lex.current.is_ident("in") or self.lex.current.is_ident(
            "out"
        ) or self.lex.current.is_ident("inout"):
            self.lex.advance()
        width = self._bit_type()
        return self.lex.expect_ident().text, width

    def _action_stmt(self) -> Stmt:
        lex = self.lex
        ref = self._dotted()
        if lex.current.is_punct("(") and "." not in ref:
            lex.advance()
            args: List[Expr] = []
            if not lex.current.is_punct(")"):
                args.append(_normalize_expr(parse_expr(lex)))
                while lex.accept_punct(","):
                    args.append(_normalize_expr(parse_expr(lex)))
            lex.expect_punct(")")
            lex.expect_punct(";")
            return SCall(ref, tuple(args))
        lex.expect_punct("=")
        expr = _normalize_expr(parse_expr(lex))
        lex.expect_punct(";")
        return SAssign(ref, expr)

    def _table(self) -> Rp4Table:
        lex = self.lex
        lex.expect_ident("table")
        name = lex.expect_ident().text
        decl = Rp4Table(name=name)
        lex.expect_punct("{")
        while not lex.accept_punct("}"):
            prop = lex.expect_ident().text
            lex.expect_punct("=")
            if prop == "key":
                lex.expect_punct("{")
                while not lex.accept_punct("}"):
                    ref = self._dotted()
                    lex.expect_punct(":")
                    kind = lex.expect_ident().text
                    if kind not in P4_MATCH_KINDS:
                        raise lex.error(f"unknown match kind {kind!r}")
                    if kind == "selector":
                        kind = "hash"  # P4 selector ~ rP4 hash match
                    lex.expect_punct(";")
                    decl.keys.append((ref, kind))
                lex.accept_punct(";")
            elif prop == "size":
                decl.size = lex.expect_int().value
                lex.expect_punct(";")
            elif prop == "actions":
                lex.expect_punct("{")
                while not lex.accept_punct("}"):
                    decl.actions.append(lex.expect_ident().text)
                    lex.accept_punct(";")
                lex.accept_punct(";")
            elif prop == "default_action":
                decl.default_action = lex.expect_ident().text
                if lex.current.is_punct("("):
                    self._skip_parens()
                lex.expect_punct(";")
            else:
                raise lex.error(f"unknown table property {prop!r}")
        return decl

    def _apply_block(self) -> List[Stmt]:
        """Parse statements until the matching close brace (consumed)."""
        lex = self.lex
        body: List[Stmt] = []
        while not lex.accept_punct("}"):
            body.append(self._apply_stmt())
        return body

    def _apply_stmt(self) -> Stmt:
        lex = self.lex
        if lex.current.is_ident("if"):
            lex.advance()
            lex.expect_punct("(")
            cond = _normalize_expr(parse_expr(lex))
            lex.expect_punct(")")
            stmt = SIf(cond=cond)
            lex.expect_punct("{")
            stmt.then_body = self._apply_block()
            if lex.current.is_ident("else"):
                lex.advance()
                if lex.current.is_ident("if"):
                    stmt.else_body = [self._apply_stmt()]
                else:
                    lex.expect_punct("{")
                    stmt.else_body = self._apply_block()
            return stmt
        ref = self._dotted()
        if lex.current.is_punct(".") and lex.peek().is_ident("apply"):
            lex.advance()
            lex.expect_ident("apply")
            lex.expect_punct("(")
            lex.expect_punct(")")
            lex.expect_punct(";")
            return SApply(ref)
        if lex.current.is_punct("(") and "." not in ref:
            lex.advance()
            args: List[Expr] = []
            if not lex.current.is_punct(")"):
                args.append(_normalize_expr(parse_expr(lex)))
                while lex.accept_punct(","):
                    args.append(_normalize_expr(parse_expr(lex)))
            lex.expect_punct(")")
            lex.expect_punct(";")
            return SCall(ref, tuple(args))
        lex.expect_punct("=")
        expr = _normalize_expr(parse_expr(lex))
        lex.expect_punct(";")
        return SAssign(ref, expr)

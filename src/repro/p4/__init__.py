"""Mini-P4 front end (the ``p4c`` substitute).

Parses the P4_16 subset the paper's base design and use cases need --
header types, instance structs, a parser state machine with
``select`` transitions, actions, tables, and ingress/egress controls
with apply blocks -- and lowers it to an HLIR, the target-independent
IR that rp4fc (P4 -> rP4) and the PISA back end both consume.
"""

from repro.p4.ast import (
    ControlDecl,
    P4HeaderType,
    P4Program,
    ParserState,
    Transition,
)
from repro.p4.hlir import Hlir, HlirTable, build_hlir
from repro.p4.parser import parse_p4

__all__ = [
    "ControlDecl",
    "Hlir",
    "HlirTable",
    "P4HeaderType",
    "P4Program",
    "ParserState",
    "Transition",
    "build_hlir",
    "parse_p4",
]

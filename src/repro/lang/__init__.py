"""Shared language infrastructure for the rP4 and mini-P4 front ends."""

from repro.lang.errors import LangError, ParseDiagnostic
from repro.lang.lexer import Lexer, Token, TokenKind, tokenize

__all__ = [
    "LangError",
    "Lexer",
    "ParseDiagnostic",
    "Token",
    "TokenKind",
    "tokenize",
]

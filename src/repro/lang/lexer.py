"""A small hand-written lexer shared by the rP4 and mini-P4 parsers.

Handles identifiers, decimal/hex integers, P4-style width literals
(``8w0x1F`` is split by the parsers, not here), ``//`` and ``/* */``
comments, and the punctuation both grammars need.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List

from repro.lang.errors import LangError


class TokenKind(enum.Enum):
    IDENT = "ident"
    INT = "int"
    PUNCT = "punct"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    line: int
    column: int
    value: int = 0  # decoded value for INT tokens

    def is_punct(self, text: str) -> bool:
        return self.kind is TokenKind.PUNCT and self.text == text

    def is_ident(self, text: "str | None" = None) -> bool:
        if self.kind is not TokenKind.IDENT:
            return False
        return text is None or self.text == text

    def __str__(self) -> str:
        return self.text if self.kind is not TokenKind.EOF else "<eof>"


# Longest first so `==` wins over `=`.
_PUNCTUATION = [
    "==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "--",
    "{", "}", "(", ")", "[", "]", ";", ":", ",", ".", "=",
    "<", ">", "!", "&", "|", "^", "+", "-", "*", "/", "@",
]


def tokenize(source: str) -> List[Token]:
    """Tokenize ``source``; raises :class:`LangError` on bad input."""
    tokens: List[Token] = []
    line, col = 1, 1
    i, n = 0, len(source)

    def advance(count: int) -> None:
        nonlocal i, line, col
        for _ in range(count):
            if source[i] == "\n":
                line += 1
                col = 1
            else:
                col += 1
            i += 1

    while i < n:
        ch = source[i]
        if ch in " \t\r\n":
            advance(1)
            continue
        if source.startswith("//", i):
            end = source.find("\n", i)
            advance((end if end != -1 else n) - i)
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end == -1:
                raise LangError("unterminated block comment", line, col)
            advance(end + 2 - i)
            continue
        if ch.isdigit():
            start, start_line, start_col = i, line, col
            if source.startswith("0x", i) or source.startswith("0X", i):
                advance(2)
                while i < n and (source[i].isdigit() or source[i] in "abcdefABCDEF_"):
                    advance(1)
                text = source[start:i]
                value = int(text.replace("_", ""), 16)
            elif source.startswith("0b", i) or source.startswith("0B", i):
                advance(2)
                while i < n and source[i] in "01_":
                    advance(1)
                text = source[start:i]
                value = int(text.replace("_", ""), 2)
            else:
                while i < n and (source[i].isdigit() or source[i] == "_"):
                    advance(1)
                text = source[start:i]
                value = int(text.replace("_", ""))
            tokens.append(Token(TokenKind.INT, text, start_line, start_col, value))
            continue
        if ch.isalpha() or ch == "_":
            start, start_line, start_col = i, line, col
            while i < n and (source[i].isalnum() or source[i] == "_"):
                advance(1)
            tokens.append(
                Token(TokenKind.IDENT, source[start:i], start_line, start_col)
            )
            continue
        matched = False
        for punct in _PUNCTUATION:
            if source.startswith(punct, i):
                tokens.append(Token(TokenKind.PUNCT, punct, line, col))
                advance(len(punct))
                matched = True
                break
        if not matched:
            raise LangError(f"unexpected character {ch!r}", line, col)
    tokens.append(Token(TokenKind.EOF, "", line, col))
    return tokens


class Lexer:
    """Cursor over a token list with the helpers parsers want."""

    def __init__(self, source: str) -> None:
        self.tokens = tokenize(source)
        self.pos = 0

    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def peek(self, offset: int = 1) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.current
        if token.kind is not TokenKind.EOF:
            self.pos += 1
        return token

    def accept_punct(self, text: str) -> bool:
        if self.current.is_punct(text):
            self.advance()
            return True
        return False

    def accept_ident(self, text: str) -> bool:
        if self.current.is_ident(text):
            self.advance()
            return True
        return False

    def expect_punct(self, text: str) -> Token:
        if not self.current.is_punct(text):
            raise LangError(
                f"expected {text!r}, found {self.current}",
                self.current.line,
                self.current.column,
            )
        return self.advance()

    def expect_ident(self, text: "str | None" = None) -> Token:
        if not self.current.is_ident(text):
            expected = repr(text) if text else "an identifier"
            raise LangError(
                f"expected {expected}, found {self.current}",
                self.current.line,
                self.current.column,
            )
        return self.advance()

    def expect_int(self) -> Token:
        if self.current.kind is not TokenKind.INT:
            raise LangError(
                f"expected an integer, found {self.current}",
                self.current.line,
                self.current.column,
            )
        return self.advance()

    def at_eof(self) -> bool:
        return self.current.kind is TokenKind.EOF

    def error(self, message: str) -> LangError:
        return LangError(message, self.current.line, self.current.column)

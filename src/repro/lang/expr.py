"""Expression and statement AST shared by the rP4 and mini-P4 parsers,
plus a precedence-climbing expression parser over :class:`Lexer`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from repro.lang.lexer import Lexer, TokenKind


# -- expressions -------------------------------------------------------------


@dataclass(frozen=True)
class EConst:
    value: int
    width: Optional[int] = None  # from P4 `8w255` literals, when given


@dataclass(frozen=True)
class ERef:
    """A dotted reference (``ipv4.ttl``, ``meta.bd``) or a bare name
    (an action parameter)."""

    ref: str

    @property
    def is_dotted(self) -> bool:
        return "." in self.ref


@dataclass(frozen=True)
class EValid:
    """``hdr.isValid()``"""

    header: str


@dataclass(frozen=True)
class EUnary:
    op: str  # "!" or "-"
    operand: "Expr"


@dataclass(frozen=True)
class EBin:
    op: str  # arithmetic/bitwise/comparison/logical
    left: "Expr"
    right: "Expr"


@dataclass(frozen=True)
class ECall:
    """A call expression such as ``hash(meta.nexthop, ipv4.dst_addr)``."""

    name: str
    args: Tuple["Expr", ...] = ()


Expr = Union[EConst, ERef, EValid, EUnary, EBin, ECall]


# -- statements ---------------------------------------------------------------


@dataclass(frozen=True)
class SAssign:
    dest: str  # dotted reference
    expr: Expr


@dataclass(frozen=True)
class SCall:
    """A primitive/extern call statement: ``drop();``"""

    name: str
    args: Tuple[Expr, ...] = ()


@dataclass
class SIf:
    """P4 control-flow (the rP4 matcher uses its own arm structure)."""

    cond: Expr
    then_body: List["Stmt"] = field(default_factory=list)
    else_body: List["Stmt"] = field(default_factory=list)


@dataclass(frozen=True)
class SApply:
    """``table.apply();`` inside a P4 apply block."""

    table: str


Stmt = Union[SAssign, SCall, SIf, SApply]


# -- expression parsing --------------------------------------------------------

_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "==": 3,
    "!=": 3,
    "<": 4,
    ">": 4,
    "<=": 4,
    ">=": 4,
    "|": 5,
    "^": 6,
    "&": 7,
    "<<": 8,
    ">>": 8,
    "+": 9,
    "-": 9,
    "*": 10,
}


def parse_dotted(lex: Lexer) -> str:
    """Parse ``a`` or ``a.b`` or ``a.b.c`` into a dotted string."""
    parts = [lex.expect_ident().text]
    while lex.current.is_punct(".") and lex.peek().kind is TokenKind.IDENT:
        # Do not swallow `.isValid()` -- the caller handles method calls.
        if lex.peek().text == "isValid":
            break
        lex.advance()
        parts.append(lex.expect_ident().text)
    return ".".join(parts)


def parse_primary(lex: Lexer) -> Expr:
    if lex.accept_punct("("):
        inner = parse_expr(lex)
        lex.expect_punct(")")
        return inner
    if lex.accept_punct("!"):
        return EUnary("!", parse_primary(lex))
    if lex.accept_punct("-"):
        return EUnary("-", parse_primary(lex))
    if lex.current.kind is TokenKind.INT:
        first = lex.advance()
        # P4 width literal: `8w255` lexes as INT(8), IDENT(w255)? No --
        # `8w255` lexes as INT(8) then IDENT("w255"); stitch it back.
        if lex.current.kind is TokenKind.IDENT and lex.current.text.startswith("w"):
            suffix = lex.current.text[1:]
            if suffix.isdigit() or suffix.lower().startswith("0x"):
                lex.advance()
                return EConst(int(suffix, 0), width=first.value)
        return EConst(first.value)
    if lex.current.kind is TokenKind.IDENT:
        ref = parse_dotted(lex)
        if lex.current.is_punct(".") and lex.peek().is_ident("isValid"):
            lex.advance()  # .
            lex.advance()  # isValid
            lex.expect_punct("(")
            lex.expect_punct(")")
            return EValid(ref)
        if lex.current.is_punct("(") and "." not in ref:
            lex.advance()
            args: List[Expr] = []
            if not lex.current.is_punct(")"):
                args.append(parse_expr(lex))
                while lex.accept_punct(","):
                    args.append(parse_expr(lex))
            lex.expect_punct(")")
            return ECall(ref, tuple(args))
        return ERef(ref)
    raise lex.error(f"expected an expression, found {lex.current}")


def parse_expr(lex: Lexer, min_precedence: int = 1) -> Expr:
    """Precedence-climbing binary expression parser."""
    left = parse_primary(lex)
    while True:
        token = lex.current
        if token.kind is not TokenKind.PUNCT:
            return left
        prec = _PRECEDENCE.get(token.text)
        if prec is None or prec < min_precedence:
            return left
        op = token.text
        lex.advance()
        right = parse_expr(lex, prec + 1)
        left = EBin(op, left, right)

"""Diagnostics shared by the rP4 and mini-P4 front ends."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ParseDiagnostic:
    """A located message (for error listings in compiler output)."""

    message: str
    line: int
    column: int

    def __str__(self) -> str:
        return f"{self.line}:{self.column}: {self.message}"


class LangError(Exception):
    """Raised for lexing, parsing, and semantic errors."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        super().__init__(f"{line}:{column}: {message}" if line else message)
        self.diagnostic = ParseDiagnostic(message, line, column)

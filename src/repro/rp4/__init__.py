"""The rP4 language (paper Sec. 3.1, EBNF in Fig. 2).

rP4 is a stage-oriented P4 extension: each *function* contains one or
more *stages*, each stage a parser-matcher-executor triad.  Headers
carry an ``implicit parser`` clause (the header linkage), and a
``user_funcs`` block names the functions plus the pipeline entry
stages.
"""

from repro.rp4.ast import (
    HeaderDecl,
    MatcherArm,
    Rp4Action,
    Rp4Program,
    Rp4Table,
    StageDecl,
    StructDecl,
    UserFunc,
)
from repro.rp4.parser import parse_rp4
from repro.rp4.printer import print_rp4
from repro.rp4.semantic import SemanticError, analyze

__all__ = [
    "HeaderDecl",
    "MatcherArm",
    "Rp4Action",
    "Rp4Program",
    "Rp4Table",
    "SemanticError",
    "StageDecl",
    "StructDecl",
    "UserFunc",
    "analyze",
    "parse_rp4",
    "print_rp4",
]

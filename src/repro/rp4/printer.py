"""Pretty-printer: rP4 AST back to source text.

rp4fc emits its output through this module, and ``parse(print(ast))``
round-trips (property-tested in the suite).
"""

from __future__ import annotations

from typing import List

from repro.lang.expr import (
    EBin,
    ECall,
    EConst,
    ERef,
    EUnary,
    EValid,
    Expr,
    SAssign,
    SCall,
    Stmt,
)
from repro.rp4.ast import Rp4Program, StageDecl


def print_expr(expr: Expr) -> str:
    if isinstance(expr, EConst):
        if expr.width is not None:
            return f"{expr.width}w{expr.value}"
        return str(expr.value)
    if isinstance(expr, ERef):
        return expr.ref
    if isinstance(expr, EValid):
        return f"{expr.header}.isValid()"
    if isinstance(expr, EUnary):
        return f"{expr.op}({print_expr(expr.operand)})"
    if isinstance(expr, EBin):
        return f"({print_expr(expr.left)} {expr.op} {print_expr(expr.right)})"
    if isinstance(expr, ECall):
        args = ", ".join(print_expr(a) for a in expr.args)
        return f"{expr.name}({args})"
    raise TypeError(f"not an expression: {expr!r}")


def print_stmt(stmt: Stmt, indent: str = "        ") -> str:
    if isinstance(stmt, SAssign):
        return f"{indent}{stmt.dest} = {print_expr(stmt.expr)};"
    if isinstance(stmt, SCall):
        args = ", ".join(print_expr(a) for a in stmt.args)
        return f"{indent}{stmt.name}({args});"
    raise TypeError(f"cannot print statement {stmt!r} in rP4")


def _print_stage(stage: StageDecl, out: List[str]) -> None:
    out.append(f"    stage {stage.name} {{")
    out.append("        parser { " + ", ".join(stage.parser) + " };")
    out.append("        matcher {")
    for i, arm in enumerate(stage.matcher):
        if arm.cond is not None:
            kw = "if" if i == 0 else "else if"
            body = f"{arm.table}.apply();" if arm.table else ";"
            out.append(f"            {kw} ({print_expr(arm.cond)}) {body}")
        elif arm.table is not None:
            prefix = "else " if i > 0 else ""
            out.append(f"            {prefix}{arm.table}.apply();")
        else:
            out.append("            else;")
    out.append("        };")
    out.append("        executor {")
    for tag, action in stage.executor.items():
        out.append(f"            {tag}: {action};")
    out.append("        }")
    out.append("    }")


def print_rp4(program: Rp4Program) -> str:
    """Serialize a program (or snippet) to rP4 source."""
    out: List[str] = []

    if program.headers:
        out.append("headers {")
        for header in program.headers.values():
            out.append(f"    header {header.name} {{")
            for fname, width in header.fields:
                out.append(f"        bit<{width}> {fname};")
            if header.varlen is not None:
                vname, count_field, unit = header.varlen
                out.append(
                    f"        varbit<{count_field}, {unit}> {vname};"
                )
            if header.selector is not None:
                out.append(f"        implicit parser({header.selector}) {{")
                for tag, nxt in header.links:
                    out.append(f"            {tag}: {nxt};")
                out.append("        }")
            out.append("    }")
        out.append("}")

    if program.structs:
        out.append("structs {")
        for struct in program.structs.values():
            out.append(f"    struct {struct.name} {{")
            for mname, width in struct.members:
                out.append(f"        bit<{width}> {mname};")
            alias = f" {struct.alias}" if struct.alias else ""
            out.append(f"    }}{alias};")
        out.append("}")

    for action in program.actions.values():
        params = ", ".join(f"bit<{w}> {n}" for n, w in action.params)
        out.append(f"action {action.name}({params}) {{")
        for stmt in action.body:
            out.append(print_stmt(stmt, indent="    "))
        out.append("}")

    for table in program.tables.values():
        out.append(f"table {table.name} {{")
        out.append("    key = {")
        for ref, kind in table.keys:
            out.append(f"        {ref}: {kind};")
        out.append("    }")
        out.append(f"    size = {table.size};")
        if table.actions:
            out.append(
                "    actions = { " + "; ".join(table.actions) + "; }"
            )
        if table.default_action != "NoAction":
            out.append(f"    default_action = {table.default_action};")
        out.append("}")

    if program.ingress_stages:
        out.append("control rP4_Ingress {")
        for stage in program.ingress_stages.values():
            _print_stage(stage, out)
        out.append("}")

    if program.egress_stages:
        out.append("control rP4_Egress {")
        for stage in program.egress_stages.values():
            _print_stage(stage, out)
        out.append("}")

    if program.user_funcs or program.ingress_entry or program.egress_entry:
        out.append("user_funcs {")
        for func in program.user_funcs.values():
            out.append(
                f"    func {func.name} {{ " + " ".join(func.stages) + " }"
            )
        if program.ingress_entry:
            out.append(f"    ingress_entry: {program.ingress_entry};")
        if program.egress_entry:
            out.append(f"    egress_entry: {program.egress_entry};")
        out.append("}")

    return "\n".join(out) + "\n"

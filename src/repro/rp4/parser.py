"""Recursive-descent parser for rP4 (Fig. 2 EBNF).

The grammar is accepted liberally: wrapper blocks (``headers { ... }``,
``structs { ... }``) are optional so incremental snippets can declare
bare ``table`` / ``action`` / ``stage`` items, exactly like the ECMP
snippet in Fig. 5(a).  Bare stages outside a ``control`` block default
to the ingress pipe.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.lang.expr import SAssign, SCall, Stmt, parse_dotted, parse_expr
from repro.lang.lexer import Lexer, TokenKind
from repro.rp4.ast import (
    HeaderDecl,
    MatcherArm,
    Rp4Action,
    Rp4Program,
    Rp4Table,
    StageDecl,
    StructDecl,
    UserFunc,
)
from repro.tables.engines import MATCH_KINDS


def parse_rp4(source: str) -> Rp4Program:
    """Parse rP4 source text into an :class:`Rp4Program`."""
    return _Parser(source).parse_program()


class _Parser:
    def __init__(self, source: str) -> None:
        self.lex = Lexer(source)
        self.program = Rp4Program()

    # -- entry point ---------------------------------------------------

    def parse_program(self) -> Rp4Program:
        lex = self.lex
        while not lex.at_eof():
            tok = lex.current
            if tok.is_ident("headers"):
                lex.advance()
                lex.expect_punct("{")
                while not lex.accept_punct("}"):
                    self._header_def()
            elif tok.is_ident("header"):
                self._header_def()
            elif tok.is_ident("structs"):
                lex.advance()
                lex.expect_punct("{")
                while not lex.accept_punct("}"):
                    self._struct_dec()
            elif tok.is_ident("struct"):
                self._struct_dec()
            elif tok.is_ident("action"):
                self._action_def()
            elif tok.is_ident("table"):
                self._table_def()
            elif tok.is_ident("control"):
                self._control()
            elif tok.is_ident("stage"):
                stage = self._stage_def()
                self.program.ingress_stages[stage.name] = stage
            elif tok.is_ident("user_funcs"):
                self._user_funcs()
            else:
                raise lex.error(f"unexpected top-level token {tok}")
        return self.program

    # -- declarations ----------------------------------------------------

    def _bit_type(self) -> int:
        self.lex.expect_ident("bit")
        self.lex.expect_punct("<")
        width = self.lex.expect_int().value
        self.lex.expect_punct(">")
        if width <= 0:
            raise self.lex.error("bit width must be positive")
        return width

    def _header_def(self) -> None:
        lex = self.lex
        at = lex.current
        lex.expect_ident("header")
        name = lex.expect_ident().text
        if name in self.program.headers:
            raise lex.error(f"duplicate header {name!r}")
        decl = HeaderDecl(name=name, line=at.line, column=at.column)
        lex.expect_punct("{")
        while not lex.accept_punct("}"):
            if lex.current.is_ident("implicit"):
                lex.advance()
                lex.expect_ident("parser")
                lex.expect_punct("(")
                decl.selector = lex.expect_ident().text
                lex.expect_punct(")")
                lex.expect_punct("{")
                while not lex.accept_punct("}"):
                    tag = lex.expect_int().value
                    lex.expect_punct(":")
                    nxt = lex.expect_ident().text
                    lex.accept_punct(";")
                    decl.links.append((tag, nxt))
                lex.accept_punct(";")
            elif lex.current.is_ident("varbit"):
                # varbit<count_field, unit_bytes> name; -- a trailing
                # variable-length region of count*unit octets.
                if decl.varlen is not None:
                    raise lex.error(
                        f"header {name!r} already has a varbit region"
                    )
                lex.advance()
                lex.expect_punct("<")
                count_field = lex.expect_ident().text
                if count_field not in dict(decl.fields):
                    raise lex.error(
                        f"varbit count field {count_field!r} must be a "
                        "previously declared field"
                    )
                lex.expect_punct(",")
                unit = lex.expect_int().value
                if unit <= 0:
                    raise lex.error("varbit unit must be positive")
                lex.expect_punct(">")
                fname = lex.expect_ident().text
                lex.expect_punct(";")
                decl.varlen = (fname, count_field, unit)
            else:
                if decl.varlen is not None:
                    raise lex.error(
                        "varbit region must be the last field of "
                        f"header {name!r}"
                    )
                width = self._bit_type()
                fname = lex.expect_ident().text
                lex.expect_punct(";")
                decl.fields.append((fname, width))
        if decl.selector is not None and decl.selector not in dict(decl.fields):
            raise lex.error(
                f"header {name!r}: selector {decl.selector!r} is not a field"
            )
        self.program.headers[name] = decl

    def _struct_dec(self) -> None:
        lex = self.lex
        at = lex.current
        lex.expect_ident("struct")
        name = lex.expect_ident().text
        decl = StructDecl(name=name, line=at.line, column=at.column)
        lex.expect_punct("{")
        while not lex.accept_punct("}"):
            width = self._bit_type()
            mname = lex.expect_ident().text
            lex.expect_punct(";")
            decl.members.append((mname, width))
        if lex.current.kind is TokenKind.IDENT:
            decl.alias = lex.advance().text
        lex.accept_punct(";")
        self.program.structs[name] = decl

    def _action_def(self) -> None:
        lex = self.lex
        at = lex.current
        lex.expect_ident("action")
        name = lex.expect_ident().text
        decl = Rp4Action(name=name, line=at.line, column=at.column)
        lex.expect_punct("(")
        if not lex.current.is_punct(")"):
            decl.params.append(self._param())
            while lex.accept_punct(","):
                decl.params.append(self._param())
        lex.expect_punct(")")
        lex.expect_punct("{")
        while not lex.accept_punct("}"):
            decl.body.append(self._statement())
        self.program.actions[name] = decl

    def _param(self) -> Tuple[str, int]:
        width = self._bit_type()
        return self.lex.expect_ident().text, width

    def _statement(self) -> Stmt:
        lex = self.lex
        ref = parse_dotted(lex)
        if lex.current.is_punct("(") and "." not in ref:
            lex.advance()
            args = []
            if not lex.current.is_punct(")"):
                args.append(parse_expr(lex))
                while lex.accept_punct(","):
                    args.append(parse_expr(lex))
            lex.expect_punct(")")
            lex.expect_punct(";")
            return SCall(ref, tuple(args))
        lex.expect_punct("=")
        expr = parse_expr(lex)
        lex.expect_punct(";")
        return SAssign(ref, expr)

    def _table_def(self) -> None:
        lex = self.lex
        at = lex.current
        lex.expect_ident("table")
        name = lex.expect_ident().text
        decl = Rp4Table(name=name, line=at.line, column=at.column)
        lex.expect_punct("{")
        while not lex.accept_punct("}"):
            prop = lex.expect_ident().text
            lex.expect_punct("=")
            if prop == "key":
                lex.expect_punct("{")
                while not lex.accept_punct("}"):
                    ref = parse_dotted(lex)
                    lex.expect_punct(":")
                    kind = lex.expect_ident().text
                    if kind not in MATCH_KINDS:
                        raise lex.error(f"unknown match kind {kind!r}")
                    lex.accept_punct(";")
                    decl.keys.append((ref, kind))
                lex.accept_punct(";")
            elif prop == "size":
                decl.size = lex.expect_int().value
                lex.expect_punct(";")
            elif prop == "actions":
                lex.expect_punct("{")
                while not lex.accept_punct("}"):
                    decl.actions.append(lex.expect_ident().text)
                    lex.accept_punct(";")
                lex.accept_punct(";")
            elif prop == "default_action":
                decl.default_action = lex.expect_ident().text
                lex.expect_punct(";")
            else:
                raise lex.error(f"unknown table property {prop!r}")
        if not decl.keys:
            raise lex.error(f"table {name!r} has no key")
        self.program.tables[name] = decl

    # -- pipes and stages ---------------------------------------------------

    def _control(self) -> None:
        lex = self.lex
        lex.expect_ident("control")
        which = lex.expect_ident().text
        if which not in ("rP4_Ingress", "rP4_Egress"):
            raise lex.error(
                f"expected rP4_Ingress or rP4_Egress, found {which!r}"
            )
        target = (
            self.program.ingress_stages
            if which == "rP4_Ingress"
            else self.program.egress_stages
        )
        lex.expect_punct("{")
        while not lex.accept_punct("}"):
            stage = self._stage_def()
            if stage.name in target:
                raise lex.error(f"duplicate stage {stage.name!r}")
            target[stage.name] = stage

    def _stage_def(self) -> StageDecl:
        lex = self.lex
        at = lex.current
        lex.expect_ident("stage")
        name = lex.expect_ident().text
        stage = StageDecl(name=name, line=at.line, column=at.column)
        lex.expect_punct("{")

        lex.expect_ident("parser")
        lex.expect_punct("{")
        while not lex.accept_punct("}"):
            stage.parser.append(lex.expect_ident().text)
            if not lex.accept_punct(",") and not lex.accept_punct(";"):
                if not lex.current.is_punct("}"):
                    raise lex.error("expected ',' or ';' in parser list")
        lex.accept_punct(";")

        lex.expect_ident("matcher")
        lex.expect_punct("{")
        stage.matcher = self._matcher_body()
        lex.expect_punct("}")
        lex.accept_punct(";")

        lex.expect_ident("executor")
        lex.expect_punct("{")
        while not lex.accept_punct("}"):
            tag: object
            if lex.current.is_ident("default"):
                lex.advance()
                tag = "default"
            else:
                tag = lex.expect_int().value
            lex.expect_punct(":")
            action = lex.expect_ident().text
            lex.accept_punct(";")
            if tag in stage.executor:
                raise lex.error(f"duplicate executor tag {tag!r}")
            stage.executor[tag] = action
        lex.accept_punct(";")

        lex.expect_punct("}")
        return stage

    def _apply_stmt(self) -> str:
        lex = self.lex
        table = lex.expect_ident().text
        lex.expect_punct(".")
        lex.expect_ident("apply")
        lex.expect_punct("(")
        lex.expect_punct(")")
        lex.expect_punct(";")
        return table

    def _matcher_body(self) -> List[MatcherArm]:
        lex = self.lex
        arms: List[MatcherArm] = []
        while not lex.current.is_punct("}"):
            at = lex.current
            if lex.current.is_ident("if"):
                lex.advance()
                lex.expect_punct("(")
                cond = parse_expr(lex)
                lex.expect_punct(")")
                arm = MatcherArm(cond, self._apply_stmt())
            elif lex.current.is_ident("else"):
                lex.advance()
                if lex.current.is_ident("if"):
                    lex.advance()
                    lex.expect_punct("(")
                    cond = parse_expr(lex)
                    lex.expect_punct(")")
                    arm = MatcherArm(cond, self._apply_stmt())
                elif lex.accept_punct(";"):
                    arm = MatcherArm(None, None)
                else:
                    arm = MatcherArm(None, self._apply_stmt())
            else:
                # Unconditional apply (single-table stage).
                arm = MatcherArm(None, self._apply_stmt())
            arm.line, arm.column = at.line, at.column
            arms.append(arm)
        return arms

    def _user_funcs(self) -> None:
        lex = self.lex
        lex.expect_ident("user_funcs")
        lex.expect_punct("{")
        while not lex.accept_punct("}"):
            if lex.current.is_ident("func"):
                lex.advance()
                name = lex.expect_ident().text
                func = UserFunc(name=name)
                lex.expect_punct("{")
                while not lex.accept_punct("}"):
                    func.stages.append(lex.expect_ident().text)
                    lex.accept_punct(",")
                self.program.user_funcs[name] = func
                lex.accept_punct(";")
            elif lex.current.is_ident("ingress_entry"):
                lex.advance()
                lex.expect_punct(":")
                self.program.ingress_entry = lex.expect_ident().text
                lex.accept_punct(";")
            elif lex.current.is_ident("egress_entry"):
                lex.advance()
                lex.expect_punct(":")
                self.program.egress_entry = lex.expect_ident().text
                lex.accept_punct(";")
            else:
                raise lex.error(f"unexpected token in user_funcs: {lex.current}")

"""rP4 abstract syntax, mirroring the Fig. 2 EBNF.

Top level:  ``<rp4_def> ::= <header_defs> <struct_def> <action_def>
<table_def> <ingress_pipe> <egress_pipe> <user_funcs>``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.lang.expr import Expr, Stmt


@dataclass
class HeaderDecl:
    """``header X { fields...  implicit parser(sel) { tag: next; } }``"""

    name: str
    fields: List[Tuple[str, int]] = field(default_factory=list)  # (name, width)
    selector: Optional[str] = None  # field named in `implicit parser(...)`
    links: List[Tuple[int, str]] = field(default_factory=list)  # (tag, next header)
    #: ``varbit<count_field, unit_bytes> name;`` -- a trailing variable
    #: length region of ``count_field * unit_bytes`` octets (INT hop
    #: stacks, TLV blobs).  Stored as (field name, count field, unit).
    varlen: Optional[Tuple[str, str, int]] = None
    line: int = 0  # source position (1-based; 0 = synthesized)
    column: int = 0

    def field_width(self, name: str) -> int:
        for fname, width in self.fields:
            if fname == name:
                return width
        raise KeyError(f"header {self.name!r} has no field {name!r}")


@dataclass
class StructDecl:
    """``struct metadata { bit<16> bd; ... } meta;``"""

    name: str
    members: List[Tuple[str, int]] = field(default_factory=list)  # (name, width)
    alias: Optional[str] = None  # instance alias after the closing brace
    line: int = 0
    column: int = 0

    def member_width(self, name: str) -> int:
        for mname, width in self.members:
            if mname == name:
                return width
        raise KeyError(f"struct {self.name!r} has no member {name!r}")


@dataclass
class Rp4Action:
    """``action set_bd_dmac(bit<16> bd, bit<48> dmac) { ... }``"""

    name: str
    params: List[Tuple[str, int]] = field(default_factory=list)
    body: List[Stmt] = field(default_factory=list)
    line: int = 0
    column: int = 0


@dataclass
class Rp4Table:
    """``table t { key = { ref: kind; ... } size = N; }``"""

    name: str
    keys: List[Tuple[str, str]] = field(default_factory=list)  # (ref, match kind)
    size: int = 1024
    actions: List[str] = field(default_factory=list)
    default_action: str = "NoAction"
    line: int = 0
    column: int = 0


@dataclass
class MatcherArm:
    """One arm of the matcher if/else chain.

    ``cond is None`` for the final ``else``; ``table is None`` for an
    empty arm (the paper's bare ``else;``).
    """

    cond: Optional[Expr]
    table: Optional[str]
    line: int = 0
    column: int = 0


@dataclass
class StageDecl:
    """``stage name { parser {...}; matcher {...}; executor {...} }``"""

    name: str
    parser: List[str] = field(default_factory=list)  # header instance names
    matcher: List[MatcherArm] = field(default_factory=list)
    executor: Dict[object, str] = field(default_factory=dict)  # tag|'default' -> action
    line: int = 0
    column: int = 0


@dataclass
class UserFunc:
    """``func l2l3 { stage_a stage_b ... }``"""

    name: str
    stages: List[str] = field(default_factory=list)


@dataclass
class Rp4Program:
    """A complete rP4 compilation unit (or an incremental snippet --
    snippets simply leave pipes/user_funcs sparse)."""

    headers: Dict[str, HeaderDecl] = field(default_factory=dict)
    structs: Dict[str, StructDecl] = field(default_factory=dict)
    actions: Dict[str, Rp4Action] = field(default_factory=dict)
    tables: Dict[str, Rp4Table] = field(default_factory=dict)
    ingress_stages: Dict[str, StageDecl] = field(default_factory=dict)
    egress_stages: Dict[str, StageDecl] = field(default_factory=dict)
    user_funcs: Dict[str, UserFunc] = field(default_factory=dict)
    ingress_entry: Optional[str] = None
    egress_entry: Optional[str] = None

    # -- lookups shared by the semantic pass and the compilers ------------

    def stage(self, name: str) -> StageDecl:
        if name in self.ingress_stages:
            return self.ingress_stages[name]
        if name in self.egress_stages:
            return self.egress_stages[name]
        raise KeyError(f"no stage named {name!r}")

    def all_stages(self) -> Dict[str, StageDecl]:
        merged = dict(self.ingress_stages)
        merged.update(self.egress_stages)
        return merged

    def struct_alias(self, alias: str) -> Optional[StructDecl]:
        for struct in self.structs.values():
            if struct.alias == alias:
                return struct
        return None

    def ref_width(self, ref: str) -> int:
        """Width in bits of a dotted reference (header field or struct
        member via its alias)."""
        scope, _, fname = ref.partition(".")
        if not fname:
            raise ValueError(f"malformed reference {ref!r}")
        if scope in self.headers:
            return self.headers[scope].field_width(fname)
        struct = self.struct_alias(scope)
        if struct is not None:
            try:
                return struct.member_width(fname)
            except KeyError:
                if scope == "meta":
                    return 16  # intrinsic metadata default width
                raise
        if scope == "meta":
            return 16  # intrinsic metadata without a declared struct
        raise KeyError(f"unknown scope {scope!r} in reference {ref!r}")

    def shallow_clone(self) -> "Rp4Program":
        """O(size) structural copy sharing immutable declaration bodies.

        Header declarations are copied one level deep because runtime
        ``link_header`` commands mutate their ``links`` lists; stages,
        actions, and tables are immutable after parsing and are shared.
        This is what lets incremental compiles avoid re-copying (and
        re-analyzing) the whole base design.
        """
        twin = Rp4Program()
        twin.headers = {
            name: HeaderDecl(
                name=h.name,
                fields=h.fields,
                selector=h.selector,
                links=list(h.links),
                varlen=h.varlen,
                line=h.line,
                column=h.column,
            )
            for name, h in self.headers.items()
        }
        twin.structs = {
            name: StructDecl(
                name=s.name,
                members=list(s.members),
                alias=s.alias,
                line=s.line,
                column=s.column,
            )
            for name, s in self.structs.items()
        }
        twin.actions = dict(self.actions)
        twin.tables = dict(self.tables)
        twin.ingress_stages = dict(self.ingress_stages)
        twin.egress_stages = dict(self.egress_stages)
        twin.user_funcs = {
            name: UserFunc(f.name, list(f.stages))
            for name, f in self.user_funcs.items()
        }
        twin.ingress_entry = self.ingress_entry
        twin.egress_entry = self.egress_entry
        return twin

    def merge(self, snippet: "Rp4Program") -> None:
        """Fold an incremental snippet into this base design.

        This is the first rp4bc output for an update: "the updated
        base design" (paper Sec. 3.2).
        """
        for name, header in snippet.headers.items():
            if name in self.headers:
                existing = self.headers[name]
                existing.links = sorted(set(existing.links) | set(header.links))
            else:
                self.headers[name] = header
        for name, struct in snippet.structs.items():
            if name in self.structs:
                merged = dict(self.structs[name].members)
                merged.update(dict(struct.members))
                self.structs[name].members = list(merged.items())
            else:
                self.structs[name] = struct
        self.actions.update(snippet.actions)
        self.tables.update(snippet.tables)
        self.ingress_stages.update(snippet.ingress_stages)
        self.egress_stages.update(snippet.egress_stages)
        self.user_funcs.update(snippet.user_funcs)

"""Semantic analysis for rP4 programs.

Validates that every cross-reference in the program resolves (tables,
actions, headers, fields, user funcs, entry stages) and computes the
resolved key layouts rp4bc needs for table allocation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.lang.expr import (
    EBin,
    ECall,
    EConst,
    ERef,
    EUnary,
    EValid,
    Expr,
    SAssign,
    SCall,
)
from repro.net.packet import INTRINSIC_METADATA
from repro.rp4.ast import Rp4Program

#: Actions available without declaration.
BUILTIN_ACTIONS = {"NoAction", "drop", "mark_to_cpu"}

#: Primitive (extern) call statements the behavioral model implements.
KNOWN_PRIMITIVES = {
    "drop",
    "mark_to_cpu",
    "count_and_mark",
    "sketch_update",
    "mark_above",
    "police",
    "srv6_end",
    "srv6_transit",
    "push_srh",
    "pop_srh",
    "push_int",
    "pop_int",
    "decrement_ttl",
    "no_op",
}

#: Metadata fields that exist on every packet without declaration.
INTRINSIC_FIELDS = set(INTRINSIC_METADATA) | {"flow_marked", "l2_fwd", "l3_fwd"}


class SemanticError(Exception):
    """Raised with every collected diagnostic when analysis fails."""

    def __init__(self, errors: List[str]) -> None:
        super().__init__("; ".join(errors))
        self.errors = list(errors)


@dataclass
class TableInfo:
    """Resolved layout of one table (feeds memory allocation)."""

    name: str
    key_fields: List[Tuple[str, str, int]] = field(default_factory=list)
    key_width: int = 0
    size: int = 0
    match_kind: str = "exact"


@dataclass
class SemanticInfo:
    """Outputs of a successful analysis."""

    tables: Dict[str, TableInfo] = field(default_factory=dict)
    stage_order: List[str] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)


def analyze(program: Rp4Program, require_entries: bool = True) -> SemanticInfo:
    """Analyze ``program``; raises :class:`SemanticError` on any error.

    ``require_entries=False`` relaxes the entry-stage requirement for
    incremental snippets, which carry stages but no ``user_funcs``
    entry declarations of their own.
    """
    return _Analyzer(program, require_entries).run()


def analyze_incremental(
    program: Rp4Program,
    old_info: SemanticInfo,
    added_stages: List[str],
    new_tables: List[str],
) -> SemanticInfo:
    """Incremental analysis for runtime updates (rp4bc's fast path).

    Only the *added* stages and *new* tables are re-checked and
    resolved; surviving tables inherit their :class:`TableInfo` from
    ``old_info``.  This is what keeps snippet compiles independent of
    base-design size -- the asymmetry behind Table 1's compile times.
    """
    analyzer = _Analyzer(
        program,
        require_entries=False,
        stage_filter=set(added_stages),
        table_filter=set(new_tables),
    )
    fresh = analyzer.run()
    merged = SemanticInfo()
    merged.tables = {
        name: info
        for name, info in old_info.tables.items()
        if name in program.tables
    }
    merged.tables.update(fresh.tables)
    merged.stage_order = list(program.all_stages())
    merged.warnings = fresh.warnings
    return merged


class _Analyzer:
    def __init__(
        self,
        program: Rp4Program,
        require_entries: bool,
        stage_filter: Optional[Set[str]] = None,
        table_filter: Optional[Set[str]] = None,
    ) -> None:
        self.program = program
        self.require_entries = require_entries
        self.stage_filter = stage_filter
        self.table_filter = table_filter
        self.errors: List[str] = []
        self.info = SemanticInfo()

    def run(self) -> SemanticInfo:
        self._check_headers()
        self._check_tables()
        self._check_actions()
        self._check_stages()
        self._check_user_funcs()
        if self.errors:
            raise SemanticError(self.errors)
        return self.info

    def _error(self, message: str) -> None:
        self.errors.append(message)

    # -- reference resolution --------------------------------------------

    def _ref_ok(self, ref: str, params: Optional[Set[str]] = None) -> bool:
        if "." not in ref:
            return params is not None and ref in params
        scope, _, fname = ref.partition(".")
        if scope == "meta":
            struct = self.program.struct_alias("meta")
            if struct is not None and fname in dict(struct.members):
                return True
            return fname in INTRINSIC_FIELDS
        if scope in self.program.headers:
            return fname in dict(self.program.headers[scope].fields)
        struct = self.program.struct_alias(scope)
        if struct is not None:
            return fname in dict(struct.members)
        return False

    def _check_expr(
        self, expr: Expr, where: str, params: Optional[Set[str]] = None
    ) -> None:
        if isinstance(expr, EConst):
            return
        if isinstance(expr, ERef):
            if not self._ref_ok(expr.ref, params):
                self._error(f"{where}: unresolved reference {expr.ref!r}")
        elif isinstance(expr, EValid):
            if expr.header not in self.program.headers:
                self._error(f"{where}: isValid on unknown header {expr.header!r}")
        elif isinstance(expr, EUnary):
            self._check_expr(expr.operand, where, params)
        elif isinstance(expr, EBin):
            self._check_expr(expr.left, where, params)
            self._check_expr(expr.right, where, params)
        elif isinstance(expr, ECall):
            if expr.name != "hash":
                self._error(f"{where}: unknown function {expr.name!r}")
            for arg in expr.args:
                self._check_expr(arg, where, params)

    # -- per-construct checks -----------------------------------------------

    def _check_headers(self) -> None:
        for header in self.program.headers.values():
            for tag, nxt in header.links:
                if nxt not in self.program.headers:
                    self.info.warnings.append(
                        f"header {header.name!r}: link tag {tag} targets "
                        f"undeclared header {nxt!r} (resolved at load time)"
                    )

    def _check_tables(self) -> None:
        for table in self.program.tables.values():
            if self.table_filter is not None and table.name not in self.table_filter:
                continue
            kinds = [k for _, k in table.keys]
            info = TableInfo(name=table.name, size=table.size)
            if "ternary" in kinds:
                info.match_kind = "ternary"
            elif "lpm" in kinds:
                info.match_kind = "lpm"
            elif "hash" in kinds:
                info.match_kind = "hash"
            for ref, kind in table.keys:
                if not self._ref_ok(ref):
                    self._error(
                        f"table {table.name!r}: unresolved key field {ref!r}"
                    )
                    continue
                width = self.program.ref_width(ref)
                info.key_fields.append((ref, kind, width))
                info.key_width += width
            if kinds.count("lpm") > 1:
                self._error(f"table {table.name!r}: more than one lpm key")
            for action in table.actions:
                if action not in self.program.actions and action not in BUILTIN_ACTIONS:
                    self._error(
                        f"table {table.name!r}: unknown action {action!r}"
                    )
            self.info.tables[table.name] = info

    def _relevant_actions(self) -> Optional[Set[str]]:
        """In incremental mode, only actions the new stages use."""
        if self.stage_filter is None:
            return None
        names: Set[str] = set()
        for sname in self.stage_filter:
            try:
                stage = self.program.stage(sname)
            except KeyError:
                continue
            names |= set(stage.executor.values())
        return names

    def _check_actions(self) -> None:
        relevant = self._relevant_actions()
        for action in self.program.actions.values():
            if relevant is not None and action.name not in relevant:
                continue
            params = {name for name, _ in action.params}
            where = f"action {action.name!r}"
            for stmt in action.body:
                if isinstance(stmt, SAssign):
                    if not self._ref_ok(stmt.dest):
                        self._error(f"{where}: unresolved destination {stmt.dest!r}")
                    self._check_expr(stmt.expr, where, params)
                elif isinstance(stmt, SCall):
                    if stmt.name not in KNOWN_PRIMITIVES:
                        self._error(f"{where}: unknown primitive {stmt.name!r}")
                    for arg in stmt.args:
                        if isinstance(arg, ERef) and not arg.is_dotted:
                            if arg.ref not in params:
                                self._error(
                                    f"{where}: unresolved argument {arg.ref!r}"
                                )
                        else:
                            self._check_expr(arg, where, params)

    def _check_stages(self) -> None:
        for name, stage in self.program.all_stages().items():
            if self.stage_filter is not None and name not in self.stage_filter:
                continue
            self.info.stage_order.append(name)
            where = f"stage {name!r}"
            for instance in stage.parser:
                if instance not in self.program.headers:
                    self._error(f"{where}: parses undeclared header {instance!r}")
            for arm in stage.matcher:
                if arm.cond is not None:
                    self._check_expr(arm.cond, where)
                if arm.table is not None and arm.table not in self.program.tables:
                    self._error(f"{where}: applies unknown table {arm.table!r}")
            for tag, action in stage.executor.items():
                if action not in self.program.actions and action not in BUILTIN_ACTIONS:
                    self._error(
                        f"{where}: executor tag {tag!r} maps to unknown "
                        f"action {action!r}"
                    )

    def _check_user_funcs(self) -> None:
        stages = self.program.all_stages()
        for func in self.program.user_funcs.values():
            if self.stage_filter is not None and not (
                set(func.stages) & self.stage_filter
            ):
                continue
            for sname in func.stages:
                if sname not in stages:
                    self._error(
                        f"func {func.name!r}: unknown stage {sname!r}"
                    )
        if self.require_entries:
            if self.program.ingress_entry is None:
                self._error("missing ingress_entry in user_funcs")
            elif self.program.ingress_entry not in stages:
                self._error(
                    f"ingress_entry {self.program.ingress_entry!r} is not a stage"
                )
            if self.program.egress_entry is None:
                self._error("missing egress_entry in user_funcs")
            elif self.program.egress_entry not in stages:
                self._error(
                    f"egress_entry {self.program.egress_entry!r} is not a stage"
                )

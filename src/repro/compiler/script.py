"""The rp4bc load-script language (paper Fig. 5(b)/(c)).

Commands::

    load <snippet.rp4> --func_name <name>
    unload --func_name <name>
    add_link <pre_stage> <next_stage>
    del_link <pre_stage> <next_stage>
    link_header --pre <header> --next <header> --tag <int>
    unlink_header --pre <header> --tag <int>

``//`` and ``#`` start comments; blank lines are ignored.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Union


class ScriptError(Exception):
    """Raised on malformed script lines."""


@dataclass(frozen=True)
class LoadCmd:
    source: str
    func_name: str


@dataclass(frozen=True)
class UnloadCmd:
    func_name: str


@dataclass(frozen=True)
class AddLinkCmd:
    pre: str
    next: str


@dataclass(frozen=True)
class DelLinkCmd:
    pre: str
    next: str


@dataclass(frozen=True)
class LinkHeaderCmd:
    pre: str
    next: str
    tag: int


@dataclass(frozen=True)
class UnlinkHeaderCmd:
    pre: str
    tag: int


Command = Union[
    LoadCmd, UnloadCmd, AddLinkCmd, DelLinkCmd, LinkHeaderCmd, UnlinkHeaderCmd
]


def _options(tokens: List[str], line_no: int) -> dict:
    """Parse ``--key value`` pairs."""
    options = {}
    i = 0
    while i < len(tokens):
        token = tokens[i]
        if not token.startswith("--"):
            raise ScriptError(f"line {line_no}: expected an option, got {token!r}")
        if i + 1 >= len(tokens):
            raise ScriptError(f"line {line_no}: option {token!r} missing a value")
        options[token[2:]] = tokens[i + 1]
        i += 2
    return options


def _require(options: dict, keys: List[str], line_no: int, command: str) -> None:
    missing = [k for k in keys if k not in options]
    if missing:
        raise ScriptError(
            f"line {line_no}: {command} requires options {missing}"
        )


def parse_script(text: str) -> List[Command]:
    """Parse a load script into a command list."""
    commands: List[Command] = []
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("//")[0].split("#")[0].strip()
        if not line:
            continue
        tokens = line.split()
        verb, rest = tokens[0], tokens[1:]
        if verb == "load":
            if not rest or rest[0].startswith("--"):
                raise ScriptError(f"line {line_no}: load needs a source name")
            options = _options(rest[1:], line_no)
            _require(options, ["func_name"], line_no, "load")
            commands.append(LoadCmd(rest[0], options["func_name"]))
        elif verb == "unload":
            options = _options(rest, line_no)
            _require(options, ["func_name"], line_no, "unload")
            commands.append(UnloadCmd(options["func_name"]))
        elif verb in ("add_link", "del_link"):
            if len(rest) != 2:
                raise ScriptError(
                    f"line {line_no}: {verb} takes exactly two stage names"
                )
            cls = AddLinkCmd if verb == "add_link" else DelLinkCmd
            commands.append(cls(rest[0], rest[1]))
        elif verb == "link_header":
            options = _options(rest, line_no)
            _require(options, ["pre", "next", "tag"], line_no, "link_header")
            commands.append(
                LinkHeaderCmd(
                    options["pre"], options["next"], int(options["tag"], 0)
                )
            )
        elif verb == "unlink_header":
            options = _options(rest, line_no)
            _require(options, ["pre", "tag"], line_no, "unlink_header")
            commands.append(
                UnlinkHeaderCmd(options["pre"], int(options["tag"], 0))
            )
        else:
            raise ScriptError(f"line {line_no}: unknown command {verb!r}")
    return commands

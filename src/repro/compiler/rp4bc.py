"""rp4bc: the rP4 back-end compiler (paper Sec. 3.2).

Base flow::

    rP4 source --parse/analyze--> stage graph --dependency analysis-->
    merge plan --layout--> table allocation --> TSP templates (JSON)

Incremental flow: "we feed the commands (stipulating the operation and
location) plus the rP4 code to rp4bc, which generates two outputs.
The first output is the updated base design, and the second output is
the new TSP templates and switch configuration."
:func:`compile_update` returns exactly those two artifacts (the merged
:class:`CompiledDesign` and an :class:`UpdatePlan` with the delta).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.compiler.allocation import (
    TableLayout,
    allocate_new_tables,
    compute_table_layouts,
    migrate_if_needed,
    release_tables,
)
from repro.compiler.dependency import (
    DependencyInfo,
    _exclusive_header_pairs,
    analyze_dependencies,
    stage_effects,
)
from repro.compiler.json_ir import device_config, tsp_template
from repro.compiler.layout import LayoutResult, layout_dp, layout_greedy
from repro.compiler.merge import MergeMode, MergePlan, group_key, plan_merge
from repro.compiler.script import (
    AddLinkCmd,
    Command,
    DelLinkCmd,
    LinkHeaderCmd,
    LoadCmd,
    UnlinkHeaderCmd,
    UnloadCmd,
    parse_script,
)
from repro.compiler.stage_graph import StageGraph
from repro.memory.crossbar import Crossbar
from repro.memory.pool import AllocationError, MemoryPool
from repro.net.linkage import HeaderLink
from repro.rp4.ast import Rp4Program, UserFunc
from repro.rp4.parser import parse_rp4
from repro.rp4.semantic import SemanticInfo, analyze, analyze_incremental


class CompileError(Exception):
    """Raised when a design or update cannot be compiled."""


class LintError(CompileError):
    """The pre-compile rp4lint gate found error-severity diagnostics."""

    def __init__(self, diagnostics) -> None:
        super().__init__(
            "; ".join(d.format() for d in diagnostics) or "lint failed"
        )
        self.diagnostics = list(diagnostics)


class MemoryFeasibilityError(LintError, AllocationError):
    """The program's table set cannot fit the target's memory pool.

    Subclasses both :class:`LintError` (it is a lint rejection, rule
    RP4L301/302) and :class:`~repro.memory.pool.AllocationError` (it
    is the same won't-fit condition allocation would hit mid-load)."""


@dataclass
class TargetSpec:
    """The physical device rp4bc compiles for."""

    n_tsps: int = 8
    sram_blocks: int = 96
    tcam_blocks: int = 16
    block_width: int = 128
    block_depth: int = 1024
    memory_clusters: int = 1
    crossbar: Optional[Crossbar] = None
    merge_mode: MergeMode = MergeMode.FULL
    max_stages_per_tsp: int = 4
    max_cofire_per_tsp: Optional[int] = None  # throughput-aware merging
    layout_algorithm: str = "dp"  # or "greedy"

    def make_pool(self) -> MemoryPool:
        return MemoryPool(
            sram_blocks=self.sram_blocks,
            tcam_blocks=self.tcam_blocks,
            block_width=self.block_width,
            block_depth=self.block_depth,
            clusters=self.memory_clusters,
            crossbar=self.crossbar,
        )

    def layout_fn(self):
        if self.layout_algorithm == "dp":
            return layout_dp
        if self.layout_algorithm == "greedy":
            return layout_greedy
        raise CompileError(
            f"unknown layout algorithm {self.layout_algorithm!r}"
        )


@dataclass
class CompiledDesign:
    """Everything rp4bc knows about a deployed design."""

    program: Rp4Program
    info: SemanticInfo
    graph: StageGraph
    deps: DependencyInfo
    plan: MergePlan
    layout: LayoutResult
    pool: MemoryPool
    table_layouts: Dict[str, TableLayout]
    templates: List[dict]
    config: dict
    target: TargetSpec
    #: Non-fatal rp4lint findings from the pre-compile gate.
    lint_diagnostics: List[object] = field(default_factory=list)

    def stage_letters(self, letters: Dict[str, str]) -> Dict[str, int]:
        """Fig.-4-style view: stage letter -> physical TSP index."""
        out: Dict[str, int] = {}
        for letter, stage in letters.items():
            try:
                group = self.plan.group_of(stage)
            except KeyError:
                continue
            out[letter] = self.layout.slot_of(group_key(group))
        return out


@dataclass
class UpdatePlan:
    """The delta an incremental compile produces."""

    design: CompiledDesign
    new_templates: List[dict] = field(default_factory=list)
    selector: dict = field(default_factory=dict)
    link_headers: List[HeaderLink] = field(default_factory=list)
    unlink_headers: List[Tuple[str, int]] = field(default_factory=list)
    added_stages: List[str] = field(default_factory=list)
    removed_stages: List[str] = field(default_factory=list)
    new_tables: List[str] = field(default_factory=list)
    freed_tables: List[str] = field(default_factory=list)
    migrated_tables: List[str] = field(default_factory=list)
    rewritten_tsps: List[int] = field(default_factory=list)

    def update_message(self, old_config: Optional[dict] = None) -> dict:
        """The delta that crosses the control channel: everything the
        device needs relative to ``old_config`` (the config it is
        currently running).  This is the transaction's wire shape --
        the controller sends it as an ``update.prepare`` payload.
        """
        old_config = old_config or {}
        new_config = self.design.config
        old_tables = set(old_config.get("tables", {}))
        old_metadata = {tuple(m) for m in old_config.get("metadata", [])}
        old_actions = set(old_config.get("actions", {}))
        old_headers = set(old_config.get("headers", {}))
        return {
            "templates": self.new_templates,
            "selector": self.selector,
            "link_headers": [
                [l.pre, l.tag, l.next] for l in self.link_headers
            ],
            "unlink_headers": [list(u) for u in self.unlink_headers],
            "new_metadata": [
                list(m)
                for m in new_config.get("metadata", [])
                if tuple(m) not in old_metadata
            ],
            "new_headers": {
                name: spec
                for name, spec in new_config.get("headers", {}).items()
                if name not in old_headers
            },
            "new_actions": {
                name: spec
                for name, spec in new_config.get("actions", {}).items()
                if name not in old_actions
            },
            "new_tables": {
                name: spec
                for name, spec in new_config.get("tables", {}).items()
                if name not in old_tables
            },
            "freed_tables": self.freed_tables,
        }


def _selector_json(layout: LayoutResult) -> dict:
    return {
        "tm_input": layout.tm_input,
        "tm_output": layout.tm_output,
        "active": layout.active_tsps,
        "bypassed": layout.bypassed_tsps,
    }


def _templates_for(
    program: Rp4Program, plan: MergePlan, layout: LayoutResult
) -> List[dict]:
    stages = program.all_stages()
    templates = []
    for side, group in plan.all_groups():
        slot = layout.slot_of(group_key(group))
        templates.append(
            tsp_template(slot, side, [stages[name] for name in group])
        )
    templates.sort(key=lambda t: t["tsp"])
    return templates


def _build(
    program: Rp4Program,
    graph: StageGraph,
    target: TargetSpec,
    pool: MemoryPool,
    old_slots: Optional[Dict[int, str]] = None,
) -> CompiledDesign:
    info = analyze(program)
    ingress_order = graph.linearize("ingress")
    egress_order = graph.linearize("egress")
    deps = analyze_dependencies(program, ingress_order + egress_order)
    plan = plan_merge(
        ingress_order,
        egress_order,
        deps,
        mode=target.merge_mode,
        max_stages_per_tsp=target.max_stages_per_tsp,
        max_cofire_per_tsp=target.max_cofire_per_tsp,
    )
    layout = target.layout_fn()(plan, target.n_tsps, old_slots)
    table_layouts = compute_table_layouts(program, info, plan, layout, pool)
    templates = _templates_for(program, plan, layout)
    table_specs = {}
    for name, tlayout in table_layouts.items():
        tinfo = info.tables[name]
        table_specs[name] = {
            "keys": [list(k) for k in tinfo.key_fields],
            "size": tinfo.size,
            "default_action": program.tables[name].default_action,
            **tlayout.to_json(),
        }
    config = device_config(
        program,
        templates,
        _selector_json(layout),
        {
            name: {
                "kind": mapping.kind.value,
                "table_width": mapping.table_width,
                "table_depth": mapping.table_depth,
                "block_ids": list(mapping.block_ids),
            }
            for name, mapping in pool.mappings().items()
        },
        table_specs,
    )
    return CompiledDesign(
        program=program,
        info=info,
        graph=graph,
        deps=deps,
        plan=plan,
        layout=layout,
        pool=pool,
        table_layouts=table_layouts,
        templates=templates,
        config=config,
        target=target,
    )


def compile_base(
    source: Union[str, Rp4Program],
    target: Optional[TargetSpec] = None,
    lint: str = "warn",
) -> CompiledDesign:
    """Compile a complete rP4 design for an empty device.

    ``lint`` controls the pre-compile rp4lint gate: ``"warn"`` (the
    default) rejects error-severity diagnostics and records warnings
    on the design; ``"strict"`` promotes warnings to errors; ``"off"``
    skips the gate entirely.  A won't-fit table set raises
    :class:`MemoryFeasibilityError` here -- before anything is
    allocated -- instead of failing mid-load.
    """
    if lint not in ("warn", "strict", "off"):
        raise CompileError(f"unknown lint mode {lint!r}")
    target = target or TargetSpec()
    program = parse_rp4(source) if isinstance(source, str) else source
    graph = StageGraph.from_program(program)
    pool = target.make_pool()
    # Two-phase: layout first (allocation needs slot->cluster), then
    # allocate, then rebuild the config with the final allocations.
    design = _build(program, graph, target, pool)
    diagnostics: List[object] = []
    if lint != "off":
        from repro.analysis import diag as _diag
        from repro.analysis.linter import lint_design

        diagnostics = lint_design(
            design, source=source if isinstance(source, str) else None
        )
        if lint == "strict":
            diagnostics = _diag.promote_warnings(diagnostics)
        fatal = _diag.errors(diagnostics)
        if fatal:
            if all(d.rule in ("RP4L301", "RP4L302") for d in fatal):
                raise MemoryFeasibilityError(fatal)
            raise LintError(fatal)
    allocate_new_tables(pool, design.table_layouts)
    final = _build(program, graph, target, pool, old_slots=None)
    final.lint_diagnostics = diagnostics
    return final


def compile_update(
    design: CompiledDesign,
    script_text: str,
    sources: Optional[Dict[str, str]] = None,
) -> UpdatePlan:
    """Apply a load script to a compiled design (incremental flow).

    ``sources`` maps the snippet names referenced by ``load`` commands
    to their rP4 text.  The running ``design`` is never mutated; a
    failed update leaves it intact.

    Unlike :func:`compile_base`, this path is genuinely incremental:
    only the snippet is parsed and analyzed, dependency effects of
    surviving stages are reused, templates are regenerated only for
    rewritten TSPs, and the device config is patched rather than
    rebuilt -- which is why snippet compiles stay fast no matter how
    large the base design grows (the Table 1 asymmetry).
    """
    sources = sources or {}
    commands = parse_script(script_text)
    target = design.target

    program = design.program.shallow_clone()
    graph = _rebind_graph(design.graph, program)
    pool = design.pool.clone()

    plan = UpdatePlan(design=design)  # design is replaced at the end
    used_before = graph.tables_in_use()

    for command in commands:
        _apply_command(command, program, graph, plan, sources)

    removed = graph.prune_orphans()
    plan.removed_stages.extend(removed)
    for name in removed:
        program.ingress_stages.pop(name, None)
        program.egress_stages.pop(name, None)
    if plan.removed_stages:
        gone = set(plan.removed_stages)
        for name, func in list(program.user_funcs.items()):
            kept = [s for s in func.stages if s not in gone]
            if not kept:
                del program.user_funcs[name]
            elif len(kept) != len(func.stages):
                program.user_funcs[name] = UserFunc(func.name, kept)

    used_after = graph.tables_in_use()
    freed = sorted(used_before - used_after)
    plan.freed_tables = freed
    for name in freed:
        program.tables.pop(name, None)
    release_tables(pool, freed)

    # -- incremental analysis: new stages and tables only ------------------
    live_added = [s for s in plan.added_stages if s not in set(plan.removed_stages)]
    candidate_tables = [
        name
        for name in used_after - set(design.info.tables)
        if name in program.tables
    ]
    info = analyze_incremental(program, design.info, live_added, candidate_tables)

    # -- dependencies: reuse surviving effects ------------------------------
    ingress_order = graph.linearize("ingress")
    egress_order = graph.linearize("egress")
    deps = DependencyInfo()
    deps.exclusive_headers = _exclusive_header_pairs(program)
    stages = program.all_stages()
    for name in ingress_order + egress_order:
        cached = design.deps.effects.get(name)
        if cached is not None and name not in live_added:
            deps.effects[name] = cached
        else:
            deps.effects[name] = stage_effects(stages[name], program)

    merge_plan = plan_merge(
        ingress_order,
        egress_order,
        deps,
        mode=target.merge_mode,
        max_stages_per_tsp=target.max_stages_per_tsp,
        max_cofire_per_tsp=target.max_cofire_per_tsp,
    )
    old_slots = dict(design.layout.slots)
    layout = target.layout_fn()(merge_plan, target.n_tsps, old_slots)

    table_layouts = compute_table_layouts(program, info, merge_plan, layout, pool)
    plan.migrated_tables = migrate_if_needed(pool, table_layouts)
    plan.new_tables = allocate_new_tables(pool, table_layouts)

    # -- templates: regenerate rewritten slots, reuse the rest ---------------
    old_templates = {t["tsp"]: t for t in design.templates}
    rewritten = set(layout.rewrites)
    templates: List[dict] = []
    for side, group in merge_plan.all_groups():
        slot = layout.slot_of(group_key(group))
        if slot in rewritten or slot not in old_templates:
            templates.append(
                tsp_template(slot, side, [stages[name] for name in group])
            )
        else:
            templates.append(old_templates[slot])
    templates.sort(key=lambda t: t["tsp"])

    config = _patch_config(
        design.config, program, plan, info, table_layouts, templates, layout, pool
    )

    new_design = CompiledDesign(
        program=program,
        info=info,
        graph=graph,
        deps=deps,
        plan=merge_plan,
        layout=layout,
        pool=pool,
        table_layouts=table_layouts,
        templates=templates,
        config=config,
        target=target,
    )
    plan.design = new_design
    plan.rewritten_tsps = sorted(rewritten)
    plan.new_templates = [t for t in templates if t["tsp"] in rewritten]
    plan.selector = _selector_json(layout)
    return plan


def _patch_config(
    old_config: dict,
    program: Rp4Program,
    plan: UpdatePlan,
    info: SemanticInfo,
    table_layouts: Dict[str, TableLayout],
    templates: List[dict],
    layout: LayoutResult,
    pool: MemoryPool,
) -> dict:
    """O(delta) device-config update (no full re-serialization)."""
    from repro.compiler.json_ir import header_to_json
    from repro.compiler.lowering import action_to_json, lower_action

    config = dict(old_config)

    headers = dict(old_config.get("headers", {}))
    touched = {l.pre for l in plan.link_headers}
    touched |= {pre for pre, _tag in plan.unlink_headers}
    touched |= {
        name for name in program.headers if name not in headers
    }
    for name in touched:
        if name in program.headers:
            headers[name] = header_to_json(program.headers[name])
    config["headers"] = headers

    actions = dict(old_config.get("actions", {}))
    for name, decl in program.actions.items():
        if name not in actions:
            actions[name] = action_to_json(lower_action(decl))
    config["actions"] = actions

    # Snippets may extend the metadata struct (same struct name, union
    # of members) -- rebuild the member list so new fields reach the
    # device's per-packet defaults.
    config["metadata"] = [
        list(member)
        for struct in program.structs.values()
        if struct.alias == "meta"
        for member in struct.members
    ]

    tables = {
        name: spec
        for name, spec in old_config.get("tables", {}).items()
        if name not in set(plan.freed_tables)
    }
    for name in table_layouts:
        if name not in tables:
            tinfo = info.tables[name]
            tables[name] = {
                "keys": [list(k) for k in tinfo.key_fields],
                "size": tinfo.size,
                "default_action": program.tables[name].default_action,
                **table_layouts[name].to_json(),
            }
    config["tables"] = tables

    config["templates"] = templates
    config["selector"] = _selector_json(layout)
    config["allocations"] = {
        name: {
            "kind": mapping.kind.value,
            "table_width": mapping.table_width,
            "table_depth": mapping.table_depth,
            "block_ids": list(mapping.block_ids),
        }
        for name, mapping in pool.mappings().items()
    }
    return config


def _rebind_graph(graph: StageGraph, program: Rp4Program) -> StageGraph:
    """Clone the graph and point its nodes at the copied program's decls."""
    twin = graph.clone()
    stages = program.all_stages()
    rebound = {}
    for name, node in twin.nodes.items():
        new_node = copy.copy(node)
        new_node.decl = stages[name]
        rebound[name] = new_node
    twin.nodes = rebound
    return twin


def _apply_command(
    command: Command,
    program: Rp4Program,
    graph: StageGraph,
    plan: UpdatePlan,
    sources: Dict[str, str],
) -> None:
    if isinstance(command, LoadCmd):
        if command.source not in sources:
            raise CompileError(
                f"load: no source provided for {command.source!r}"
            )
        snippet = parse_rp4(sources[command.source])
        func = snippet.user_funcs.get(command.func_name)
        snippet_stage_names = (
            func.stages if func is not None else list(snippet.all_stages())
        )
        program.merge(snippet)
        for name in snippet_stage_names:
            side = "egress" if name in snippet.egress_stages else "ingress"
            graph.add_stage(
                program.all_stages()[name], side=side, func=command.func_name
            )
            plan.added_stages.append(name)
    elif isinstance(command, UnloadCmd):
        doomed = graph.remove_func(command.func_name)
        plan.removed_stages.extend(doomed)
        for name in doomed:
            program.ingress_stages.pop(name, None)
            program.egress_stages.pop(name, None)
        program.user_funcs.pop(command.func_name, None)
    elif isinstance(command, AddLinkCmd):
        graph.add_link(command.pre, command.next)
    elif isinstance(command, DelLinkCmd):
        graph.del_link(command.pre, command.next)
    elif isinstance(command, LinkHeaderCmd):
        plan.link_headers.append(
            HeaderLink(command.pre, command.tag, command.next)
        )
        header = program.headers.get(command.pre)
        if header is not None and (command.tag, command.next) not in header.links:
            header.links.append((command.tag, command.next))
    elif isinstance(command, UnlinkHeaderCmd):
        plan.unlink_headers.append((command.pre, command.tag))
        header = program.headers.get(command.pre)
        if header is not None:
            header.links = [
                (tag, nxt) for tag, nxt in header.links if tag != command.tag
            ]
    else:
        raise CompileError(f"unhandled command {command!r}")

"""rp4fc: the rP4 front-end compiler (paper Sec. 3.2).

"rp4fc takes the HLIR, the target-independent output of p4c, as
input, and outputs the semantically equivalent rP4 code.  rp4fc also
outputs the APIs for controller to access the tables at runtime."

The transformation is structural:

* each P4 ``table.apply()`` site becomes one rP4 *stage* whose matcher
  predicate is the conjunction of the enclosing ``if`` conditions;
* the P4 parser state machine becomes per-header ``implicit parser``
  clauses (the header linkage);
* actions and tables carry over unchanged (mini-P4 reuses the rP4
  declaration AST).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.compiler.api_gen import generate_api_source
from repro.lang.expr import EBin, EUnary, Expr, SApply, SAssign, SCall, SIf, Stmt
from repro.p4.hlir import Hlir, HlirTable
from repro.rp4.ast import (
    HeaderDecl,
    MatcherArm,
    Rp4Program,
    Rp4Table,
    StageDecl,
    StructDecl,
    UserFunc,
)
from repro.rp4.printer import print_rp4


class Rp4fcError(Exception):
    """Raised when HLIR has no rP4 equivalent."""


@dataclass
class Rp4fcResult:
    """Front-end outputs: the rP4 program, its text, and the table APIs."""

    program: Rp4Program
    rp4_source: str
    api_source: str


def _conjoin(conds: List[Expr]) -> Optional[Expr]:
    if not conds:
        return None
    combined = conds[0]
    for cond in conds[1:]:
        combined = EBin("&&", combined, cond)
    return combined


def _referenced_headers(hlir: Hlir, table: HlirTable, cond: Optional[Expr]) -> List[str]:
    """Header instances the stage's parser sub-module must provide."""
    from repro.compiler.dependency import expr_reads, guard_headers

    names: List[str] = []

    def note(scope: str) -> None:
        if scope in hlir.headers and scope not in names:
            names.append(scope)

    for header in guard_headers(cond):
        note(header)
    for ref in sorted(expr_reads(cond)):
        note(ref.partition(".")[0])
    for ref, _, _ in table.keys:
        note(ref.partition(".")[0])
    if not names and hlir.first_header:
        names.append(hlir.first_header)
    return names


def _executor_for(table: HlirTable) -> Dict[object, str]:
    executor: Dict[object, str] = {}
    tag = 1
    for action in table.actions:
        if action == table.default_action and action == "NoAction":
            continue
        executor[tag] = action
        tag += 1
    if not executor:
        executor[1] = "NoAction"
    executor["default"] = table.default_action
    return executor


def rp4fc(hlir: Hlir) -> Rp4fcResult:
    """Transform HLIR into semantically equivalent rP4 plus table APIs."""
    program = Rp4Program()

    # Headers: fields plus the implicit-parser linkage from parse edges.
    for instance, fields in hlir.headers.items():
        decl = HeaderDecl(name=instance, fields=list(fields))
        edges = [e for e in hlir.parse_edges if e.instance == instance]
        real = [e for e in edges if e.tag >= 0]
        if real:
            selectors = {e.selector for e in real}
            if len(selectors) > 1:
                raise Rp4fcError(
                    f"header {instance!r} selects on multiple fields "
                    f"{sorted(selectors)}; rP4 allows one selector"
                )
            decl.selector = real[0].selector
            decl.links = sorted((e.tag, e.next_instance) for e in real)
        program.headers[instance] = decl

    if hlir.metadata:
        program.structs["metadata"] = StructDecl(
            name="metadata", members=list(hlir.metadata), alias="meta"
        )

    program.actions = dict(hlir.actions)
    for table in hlir.tables.values():
        program.tables[table.name] = Rp4Table(
            name=table.name,
            keys=[(ref, kind) for ref, kind, _ in table.keys],
            size=table.size,
            actions=list(table.actions),
            default_action=table.default_action,
        )

    ingress = _stages_from_flow(hlir, hlir.ingress_flow, "ingress")
    egress = _stages_from_flow(hlir, hlir.egress_flow, "egress")
    for stage in ingress:
        program.ingress_stages[stage.name] = stage
    for stage in egress:
        program.egress_stages[stage.name] = stage

    if ingress:
        program.user_funcs["ingress"] = UserFunc(
            "ingress", [s.name for s in ingress]
        )
        program.ingress_entry = ingress[0].name
    if egress:
        program.user_funcs["egress"] = UserFunc(
            "egress", [s.name for s in egress]
        )
        program.egress_entry = egress[0].name

    return Rp4fcResult(
        program=program,
        rp4_source=print_rp4(program),
        api_source=generate_api_source(program),
    )


def _stages_from_flow(
    hlir: Hlir, flow: List[Stmt], side: str
) -> List[StageDecl]:
    stages: List[StageDecl] = []

    def walk(stmts: List[Stmt], conds: List[Expr]) -> None:
        for stmt in stmts:
            if isinstance(stmt, SApply):
                table = hlir.tables.get(stmt.table)
                if table is None:
                    raise Rp4fcError(f"{side}: applies unknown table {stmt.table!r}")
                cond = _conjoin(conds)
                arms = [MatcherArm(cond, stmt.table)]
                if cond is not None:
                    arms.append(MatcherArm(None, None))
                stages.append(
                    StageDecl(
                        name=stmt.table,
                        parser=_referenced_headers(hlir, table, cond),
                        matcher=arms,
                        executor=_executor_for(table),
                    )
                )
            elif isinstance(stmt, SIf):
                walk(stmt.then_body, conds + [stmt.cond])
                walk(stmt.else_body, conds + [EUnary("!", stmt.cond)])
            elif isinstance(stmt, (SAssign, SCall)):
                raise Rp4fcError(
                    f"{side}: bare statement {stmt!r} outside an action has "
                    "no rP4 stage equivalent; move it into an action"
                )
            else:
                raise Rp4fcError(f"{side}: unsupported statement {stmt!r}")

    walk(flow, [])
    return stages

"""Command-line entry points for the two compilers.

``rp4fc file.p4 -o out.rp4 --api out_api.py`` transforms P4 to rP4.
``rp4bc file.rp4 -o config.json [--script s.txt --snippet name=path]``
compiles a base design and optionally applies an incremental script;
``--verify`` additionally runs the rp4verify symbolic differential
verifier over the staged update and rejects unintended divergence.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional

from repro.compiler import json_ir
from repro.compiler.validate import check_config
from repro.compiler.rp4bc import LintError, TargetSpec, compile_base, compile_update
from repro.compiler.rp4fc import rp4fc
from repro.p4.hlir import build_hlir
from repro.p4.parser import parse_p4


def rp4fc_main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="rp4fc", description="P4 -> rP4 front-end compiler"
    )
    parser.add_argument("p4_file", help="mini-P4 source file")
    parser.add_argument("-o", "--output", help="rP4 output path (default stdout)")
    parser.add_argument("--api", help="write the generated table APIs here")
    args = parser.parse_args(argv)

    with open(args.p4_file) as fh:
        source = fh.read()
    result = rp4fc(build_hlir(parse_p4(source)))
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(result.rp4_source)
    else:
        sys.stdout.write(result.rp4_source)
    if args.api:
        with open(args.api, "w") as fh:
            fh.write(result.api_source)
    return 0


def _parse_snippets(pairs: List[str]) -> Dict[str, str]:
    sources: Dict[str, str] = {}
    for pair in pairs:
        name, _, path = pair.partition("=")
        if not path:
            raise SystemExit(f"--snippet expects name=path, got {pair!r}")
        with open(path) as fh:
            sources[name] = fh.read()
    return sources


def rp4bc_main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="rp4bc", description="rP4 -> TSP template back-end compiler"
    )
    parser.add_argument("rp4_file", help="rP4 base design")
    parser.add_argument("-o", "--output", help="config JSON path (default stdout)")
    parser.add_argument("--tsps", type=int, default=8, help="physical TSP count")
    parser.add_argument(
        "--layout", choices=("dp", "greedy"), default="dp",
        help="incremental layout algorithm",
    )
    parser.add_argument("--script", help="incremental update script to apply")
    parser.add_argument(
        "--snippet", action="append", default=[],
        help="name=path for snippets referenced by the script",
    )
    lint_group = parser.add_mutually_exclusive_group()
    lint_group.add_argument(
        "--strict", action="store_true",
        help="promote rp4lint warnings to errors (gate rejects them)",
    )
    lint_group.add_argument(
        "--no-lint", action="store_true",
        help="skip the rp4lint pre-compile gate entirely",
    )
    parser.add_argument(
        "--verify", action="store_true",
        help=(
            "run the rp4verify symbolic differential verifier over the "
            "staged update (requires --script); rejects the compile on "
            "any unintended divergence"
        ),
    )
    args = parser.parse_args(argv)
    if args.verify and not args.script:
        parser.error("--verify requires --script (it verifies the update)")

    with open(args.rp4_file) as fh:
        source = fh.read()
    target = TargetSpec(n_tsps=args.tsps, layout_algorithm=args.layout)
    lint_mode = "off" if args.no_lint else "strict" if args.strict else "warn"
    try:
        design = compile_base(source, target, lint=lint_mode)
    except LintError as exc:
        for diagnostic in exc.diagnostics:
            print(diagnostic.format(), file=sys.stderr)
        print(
            f"rp4bc: {args.rp4_file}: rejected by rp4lint "
            f"({len(exc.diagnostics)} finding(s))",
            file=sys.stderr,
        )
        return 1
    for diagnostic in design.lint_diagnostics:
        print(diagnostic.format(), file=sys.stderr)

    if args.script:
        with open(args.script) as fh:
            script_text = fh.read()
        snippets = _parse_snippets(args.snippet)
        if args.verify:
            from repro.analysis.diag import errors as diag_errors
            from repro.analysis.verify import VerifyConfig
            from repro.analysis.verify_cli import verify_staged

            report = verify_staged(
                source, script_text, snippets,
                VerifyConfig(exhaustive=True),
                f"{args.rp4_file}+{args.script}",
            )
            for diagnostic in report.diagnostics:
                print(diagnostic.format(), file=sys.stderr)
            if diag_errors(report.diagnostics):
                print(
                    f"rp4bc: {args.script}: rejected by rp4verify "
                    f"({len(report.unintended)} unintended divergence(s))",
                    file=sys.stderr,
                )
                return 1
        plan = compile_update(design, script_text, snippets)
        config = plan.design.config
        config["update"] = {
            "rewritten_tsps": plan.rewritten_tsps,
            "new_tables": plan.new_tables,
            "freed_tables": plan.freed_tables,
            "added_stages": plan.added_stages,
            "removed_stages": plan.removed_stages,
        }
    else:
        config = design.config

    check_config(config, n_tsps=args.tsps)
    text = json_ir.dumps(config)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text)
    else:
        sys.stdout.write(text + "\n")
    return 0

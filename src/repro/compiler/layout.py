"""Physical TSP layout (rp4bc pass 3) and incremental re-layout.

The elastic pipeline maps ingress groups to the leftmost TSPs and
egress groups to the rightmost ones (paper Sec. 2.3).  For runtime
updates the paper describes "an incremental layout optimization
algorithm ... a trade-off between dynamic programming and greedy
algorithm in terms of the function placement time and the degree of
optimization" -- both are implemented here and compared by the
ablation bench:

* :func:`layout_dp` -- order-preserving assignment minimizing the
  number of TSP template rewrites (optimal, O(groups x slots^2));
* :func:`layout_greedy` -- first-fit with match lookahead (fast,
  possibly more rewrites).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.compiler.merge import MergePlan, group_key


class LayoutError(Exception):
    """Raised when the design does not fit in the physical pipeline."""


@dataclass
class LayoutResult:
    """Physical placement of TSP groups."""

    slots: Dict[int, str] = field(default_factory=dict)  # tsp index -> group key
    sides: Dict[int, str] = field(default_factory=dict)  # tsp index -> side
    rewrites: List[int] = field(default_factory=list)  # TSPs needing new templates
    algorithm: str = "dp"
    n_tsps: int = 0

    @property
    def active_tsps(self) -> List[int]:
        return sorted(self.slots)

    @property
    def bypassed_tsps(self) -> List[int]:
        return [i for i in range(self.n_tsps) if i not in self.slots]

    @property
    def tm_input(self) -> Optional[int]:
        """The last ingress TSP (feeds the traffic manager)."""
        ingress = [i for i, side in self.sides.items() if side == "ingress"]
        return max(ingress) if ingress else None

    @property
    def tm_output(self) -> Optional[int]:
        """The first egress TSP (receives from the traffic manager)."""
        egress = [i for i, side in self.sides.items() if side == "egress"]
        return min(egress) if egress else None

    def slot_of(self, key: str) -> int:
        for slot, k in self.slots.items():
            if k == key:
                return slot
        raise KeyError(f"group {key!r} has no slot")


def _check_fit(plan: MergePlan, n_tsps: int) -> None:
    if plan.tsp_count > n_tsps:
        raise LayoutError(
            f"design needs {plan.tsp_count} TSPs but the pipeline has {n_tsps}"
        )


def _finalize(
    result: LayoutResult, old: Dict[int, str]
) -> LayoutResult:
    result.rewrites = sorted(
        slot for slot, key in result.slots.items() if old.get(slot) != key
    )
    return result


def layout_dp(
    plan: MergePlan,
    n_tsps: int,
    old: Optional[Dict[int, str]] = None,
) -> LayoutResult:
    """Optimal order-preserving layout minimizing template rewrites.

    Ingress groups occupy increasing slots from the left region;
    egress groups occupy increasing slots of the right region.  A slot
    whose previous template already equals the group's key costs 0.
    """
    _check_fit(plan, n_tsps)
    old = old or {}
    result = LayoutResult(algorithm="dp", n_tsps=n_tsps)

    egress_len = len(plan.egress_groups)
    ingress_keys = [group_key(g) for g in plan.ingress_groups]
    egress_keys = [group_key(g) for g in plan.egress_groups]

    ingress_slots = list(range(n_tsps - egress_len))
    egress_slots = list(range(n_tsps - egress_len, n_tsps))

    for keys, slots, side in (
        (ingress_keys, ingress_slots, "ingress"),
        (egress_keys, egress_slots, "egress"),
    ):
        placement = _dp_assign(keys, slots, old)
        for key, slot in placement:
            result.slots[slot] = key
            result.sides[slot] = side
    return _finalize(result, old)


def _dp_assign(
    keys: List[str], slots: List[int], old: Dict[int, str]
) -> List[Tuple[str, int]]:
    """Assign ``keys`` to increasing ``slots`` minimizing rewrites."""
    n, m = len(keys), len(slots)
    if n == 0:
        return []
    if n > m:
        raise LayoutError(f"{n} groups do not fit in {m} slots")
    INF = 10**9

    def cost(i: int, s: int) -> int:
        return 0 if old.get(slots[s]) == keys[i] else 1

    dp = [[INF] * m for _ in range(n)]
    parent: List[List[int]] = [[-1] * m for _ in range(n)]
    for s in range(m):
        dp[0][s] = cost(0, s)
    for i in range(1, n):
        best, best_s = INF, -1
        for s in range(i, m):
            if dp[i - 1][s - 1] < best:
                best, best_s = dp[i - 1][s - 1], s - 1
            if best < INF:
                dp[i][s] = best + cost(i, s)
                parent[i][s] = best_s
    end = min(range(n - 1, m), key=lambda s: dp[n - 1][s])
    placement: List[Tuple[str, int]] = []
    s = end
    for i in range(n - 1, -1, -1):
        placement.append((keys[i], slots[s]))
        s = parent[i][s]
    placement.reverse()
    return placement


def layout_greedy(
    plan: MergePlan,
    n_tsps: int,
    old: Optional[Dict[int, str]] = None,
) -> LayoutResult:
    """First-fit layout with bounded lookahead for matching slots.

    Faster than the DP (no table), but may rewrite more templates when
    an insertion shifts the tail of the pipeline.
    """
    _check_fit(plan, n_tsps)
    old = old or {}
    result = LayoutResult(algorithm="greedy", n_tsps=n_tsps)

    egress_len = len(plan.egress_groups)
    ingress_keys = [group_key(g) for g in plan.ingress_groups]
    egress_keys = [group_key(g) for g in plan.egress_groups]
    ingress_slots = list(range(n_tsps - egress_len))
    egress_slots = list(range(n_tsps - egress_len, n_tsps))

    for keys, slots, side in (
        (ingress_keys, ingress_slots, "ingress"),
        (egress_keys, egress_slots, "egress"),
    ):
        cursor = 0
        for idx, key in enumerate(keys):
            remaining_groups = len(keys) - idx
            last_usable = len(slots) - remaining_groups
            chosen = None
            for s in range(cursor, last_usable + 1):
                if old.get(slots[s]) == key:
                    chosen = s
                    break
            if chosen is None:
                chosen = cursor
            result.slots[slots[chosen]] = key
            result.sides[slots[chosen]] = side
            cursor = chosen + 1
    return _finalize(result, old)

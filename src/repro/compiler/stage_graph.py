"""The stage graph: logical pipeline topology the load scripts mutate.

Stages are nodes; ``add_link``/``del_link`` controller commands edit
edges.  The TM boundary is implicit: ingress stages are the ones
reachable from the ingress entry, egress stages from the egress entry.
Stages that become unreachable after a script (e.g. the nexthop stage
H once ECMP "covers and therefore replaces" it) are pruned and their
tables recycled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.rp4.ast import Rp4Program, StageDecl


class StageGraphError(Exception):
    """Raised on malformed topology edits."""


@dataclass
class StageNode:
    """One logical stage plus its bookkeeping."""

    decl: StageDecl
    side: str  # "ingress" or "egress"
    func: Optional[str] = None  # owning user_func, if any


class StageGraph:
    """A DAG of logical stages with one entry per side."""

    def __init__(self) -> None:
        self.nodes: Dict[str, StageNode] = {}
        self.edges: Dict[str, List[str]] = {}
        self.ingress_entry: Optional[str] = None
        self.egress_entry: Optional[str] = None

    # -- construction ----------------------------------------------------

    @classmethod
    def from_program(cls, program: Rp4Program) -> "StageGraph":
        """Initial topology: declaration order chains per side."""
        graph = cls()
        func_of: Dict[str, str] = {}
        for func in program.user_funcs.values():
            for sname in func.stages:
                func_of[sname] = func.name
        for side, stages in (
            ("ingress", program.ingress_stages),
            ("egress", program.egress_stages),
        ):
            names = list(stages)
            for name in names:
                graph.nodes[name] = StageNode(
                    decl=stages[name], side=side, func=func_of.get(name)
                )
                graph.edges.setdefault(name, [])
            for pre, nxt in zip(names, names[1:]):
                graph.edges[pre].append(nxt)
        graph.ingress_entry = program.ingress_entry or (
            next(iter(program.ingress_stages), None)
        )
        graph.egress_entry = program.egress_entry or (
            next(iter(program.egress_stages), None)
        )
        # The TM-crossing edge: the last ingress stage feeds the egress
        # entry.  Load scripts edit this edge explicitly (Fig. 5(b):
        # "add_link ecmp l2_l3_rewrite; del_link nexthop l2_l3_rewrite").
        ingress_names = list(program.ingress_stages)
        if ingress_names and graph.egress_entry is not None:
            graph.edges[ingress_names[-1]].append(graph.egress_entry)
        return graph

    def add_stage(
        self, decl: StageDecl, side: str = "ingress", func: Optional[str] = None
    ) -> None:
        if decl.name in self.nodes:
            raise StageGraphError(f"stage {decl.name!r} already exists")
        self.nodes[decl.name] = StageNode(decl=decl, side=side, func=func)
        self.edges.setdefault(decl.name, [])

    # -- topology edits (the add_link/del_link commands) -------------------

    def add_link(self, pre: str, nxt: str) -> None:
        if pre not in self.nodes:
            raise StageGraphError(f"add_link: unknown stage {pre!r}")
        if nxt not in self.nodes:
            raise StageGraphError(f"add_link: unknown stage {nxt!r}")
        if nxt in self.edges[pre]:
            return  # idempotent
        self.edges[pre].append(nxt)

    def del_link(self, pre: str, nxt: str) -> None:
        if pre not in self.nodes:
            raise StageGraphError(f"del_link: unknown stage {pre!r}")
        try:
            self.edges[pre].remove(nxt)
        except ValueError:
            raise StageGraphError(f"del_link: no link {pre!r} -> {nxt!r}") from None

    # -- queries ------------------------------------------------------------

    def successors(self, name: str) -> List[str]:
        return list(self.edges.get(name, []))

    def predecessors(self, name: str) -> List[str]:
        return [pre for pre, nxts in self.edges.items() if name in nxts]

    def reachable_from(self, entry: Optional[str]) -> Set[str]:
        if entry is None or entry not in self.nodes:
            return set()
        seen: Set[str] = set()
        frontier = [entry]
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            frontier.extend(self.edges.get(current, []))
        return seen

    def linearize(self, side: str) -> List[str]:
        """Topological order of the reachable stages on one side.

        Cross-side edges (e.g. ``add_link ecmp l2_l3_rewrite`` feeding
        the TM) are ignored for ordering -- the TM is the boundary.
        Deterministic: ties broken by insertion order.
        """
        entry = self.ingress_entry if side == "ingress" else self.egress_entry
        members = {
            n for n in self.reachable_from(entry) if self.nodes[n].side == side
        }
        indegree = {n: 0 for n in members}
        for pre in members:
            for nxt in self.edges.get(pre, []):
                if nxt in members:
                    indegree[nxt] += 1
        order: List[str] = []
        insertion = {name: i for i, name in enumerate(self.nodes)}
        ready = sorted(
            (n for n, d in indegree.items() if d == 0), key=insertion.__getitem__
        )
        while ready:
            current = ready.pop(0)
            order.append(current)
            for nxt in self.edges.get(current, []):
                if nxt in members:
                    indegree[nxt] -= 1
                    if indegree[nxt] == 0:
                        ready.append(nxt)
            ready.sort(key=insertion.__getitem__)
        if len(order) != len(members):
            raise StageGraphError(
                f"{side} stage graph has a cycle among "
                f"{sorted(members - set(order))}"
            )
        return order

    def prune_orphans(self) -> List[str]:
        """Drop stages unreachable from both entries; return their names."""
        live = self.reachable_from(self.ingress_entry) | self.reachable_from(
            self.egress_entry
        )
        removed = [n for n in self.nodes if n not in live]
        for name in removed:
            del self.nodes[name]
            self.edges.pop(name, None)
        for pre in self.edges:
            self.edges[pre] = [n for n in self.edges[pre] if n in live]
        return removed

    def remove_func(self, func_name: str) -> List[str]:
        """Unload a user function: unlink and drop its stages
        (the paper's function-deletion command).

        Predecessor links are re-pointed at each removed stage's
        successors so the pipeline stays connected.
        """
        doomed = [n for n, node in self.nodes.items() if node.func == func_name]
        if not doomed:
            raise StageGraphError(f"no stages belong to func {func_name!r}")
        for name in doomed:
            succs = [n for n in self.edges.get(name, []) if n not in doomed]
            for pre in self.predecessors(name):
                if pre in doomed:
                    continue
                self.edges[pre].remove(name)
                for succ in succs:
                    if succ not in self.edges[pre]:
                        self.edges[pre].append(succ)
        for name in doomed:
            del self.nodes[name]
            self.edges.pop(name, None)
        for pre in self.edges:
            self.edges[pre] = [n for n in self.edges[pre] if n in self.nodes]
        return doomed

    def clone(self) -> "StageGraph":
        twin = StageGraph()
        twin.nodes = dict(self.nodes)
        twin.edges = {k: list(v) for k, v in self.edges.items()}
        twin.ingress_entry = self.ingress_entry
        twin.egress_entry = self.egress_entry
        return twin

    def tables_in_use(self) -> Set[str]:
        """Tables applied by any live stage."""
        used: Set[str] = set()
        for node in self.nodes.values():
            for arm in node.decl.matcher:
                if arm.table is not None:
                    used.add(arm.table)
        return used

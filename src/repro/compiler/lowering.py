"""Lowering: rP4/HLIR declarations to executable runtime objects.

* actions  -> :class:`repro.tables.actions.ActionDef` op lists
* tables   -> :class:`repro.tables.table.Table` instances
* matcher predicates -> packet -> bool callables
* everything <-> JSON (the TSP template wire format), so templates
  really are data that can be downloaded into a running device.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.lang.expr import (
    EBin,
    ECall,
    EConst,
    ERef,
    EUnary,
    EValid,
    Expr,
    SAssign,
    SCall,
)
from repro.net.packet import Packet
from repro.tables.actions import (
    ActionDef,
    BinOp,
    Const,
    CountAndMark,
    FieldRef,
    HashExpr,
    MarkAbove,
    Param,
    Police,
    PyPrimitive,
    RemoveHeaderOp,
    SetField,
    SketchUpdate,
)
from repro.tables.primitives import primitive
from repro.tables.table import KeyField, MatchKind, Table
from repro.rp4.ast import Rp4Action


class LoweringError(Exception):
    """Raised when a declaration cannot be lowered."""


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------


def lower_expr(expr: Expr, params: "set[str]"):
    """rP4 expression -> action-VM expression."""
    if isinstance(expr, EConst):
        return Const(expr.value)
    if isinstance(expr, ERef):
        if expr.is_dotted:
            return FieldRef(expr.ref)
        if expr.ref in params:
            return Param(expr.ref)
        raise LoweringError(f"unresolved bare reference {expr.ref!r}")
    if isinstance(expr, EUnary):
        if expr.op == "-":
            return BinOp("-", Const(0), lower_expr(expr.operand, params))
        raise LoweringError(f"operator {expr.op!r} not valid in actions")
    if isinstance(expr, EBin):
        return BinOp(
            expr.op, lower_expr(expr.left, params), lower_expr(expr.right, params)
        )
    if isinstance(expr, ECall):
        if expr.name == "hash":
            fields = []
            for arg in expr.args:
                if not (isinstance(arg, ERef) and arg.is_dotted):
                    raise LoweringError("hash() arguments must be field references")
                fields.append(arg.ref)
            return HashExpr(tuple(fields))
        raise LoweringError(f"unknown function {expr.name!r} in action")
    raise LoweringError(f"expression {expr!r} not valid in actions")


# --------------------------------------------------------------------------
# Actions
# --------------------------------------------------------------------------


def lower_action(decl: Rp4Action) -> ActionDef:
    """rP4 action declaration -> executable :class:`ActionDef`."""
    params = {name for name, _ in decl.params}
    ops: List[object] = []
    for stmt in decl.body:
        if isinstance(stmt, SAssign):
            ops.append(SetField(stmt.dest, lower_expr(stmt.expr, params)))
        elif isinstance(stmt, SCall):
            ops.append(_lower_call(stmt, params, decl.name))
        else:
            raise LoweringError(
                f"action {decl.name!r}: unsupported statement {stmt!r}"
            )
    return ActionDef(decl.name, list(decl.params), ops)  # type: ignore[arg-type]


def _lower_call(stmt: SCall, params: "set[str]", action_name: str):
    if stmt.name == "count_and_mark":
        if len(stmt.args) != 2:
            raise LoweringError(
                f"action {action_name!r}: count_and_mark(threshold, dest) "
                f"takes 2 arguments, got {len(stmt.args)}"
            )
        threshold, dest = stmt.args
        if not (isinstance(threshold, ERef) and threshold.ref in params):
            raise LoweringError(
                f"action {action_name!r}: count_and_mark threshold must be "
                "an action parameter"
            )
        if not (isinstance(dest, ERef) and dest.is_dotted):
            raise LoweringError(
                f"action {action_name!r}: count_and_mark destination must be "
                "a field reference"
            )
        return CountAndMark(threshold.ref, dest.ref)
    if stmt.name == "sketch_update":
        if len(stmt.args) < 2:
            raise LoweringError(
                f"action {action_name!r}: sketch_update(key_fields..., dest) "
                "needs at least one key field and a destination"
            )
        *field_args, dest = stmt.args
        fields = []
        for arg in field_args:
            if not (isinstance(arg, ERef) and arg.is_dotted):
                raise LoweringError(
                    f"action {action_name!r}: sketch_update keys must be "
                    "field references"
                )
            fields.append(arg.ref)
        if not (isinstance(dest, ERef) and dest.is_dotted):
            raise LoweringError(
                f"action {action_name!r}: sketch_update destination must be "
                "a field reference"
            )
        # The sketch is named after the owning action, giving each
        # loaded function its own device-resident state.
        return SketchUpdate(action_name, tuple(fields), dest.ref)
    if stmt.name == "mark_above":
        if len(stmt.args) != 3:
            raise LoweringError(
                f"action {action_name!r}: mark_above(src, threshold, dest) "
                f"takes 3 arguments, got {len(stmt.args)}"
            )
        src, threshold, dest = stmt.args
        if not (isinstance(src, ERef) and src.is_dotted):
            raise LoweringError(
                f"action {action_name!r}: mark_above source must be a field"
            )
        if not (isinstance(threshold, ERef) and threshold.ref in params):
            raise LoweringError(
                f"action {action_name!r}: mark_above threshold must be an "
                "action parameter"
            )
        if not (isinstance(dest, ERef) and dest.is_dotted):
            raise LoweringError(
                f"action {action_name!r}: mark_above destination must be a field"
            )
        return MarkAbove(src.ref, threshold.ref, dest.ref)
    if stmt.name == "police":
        if len(stmt.args) != 1:
            raise LoweringError(
                f"action {action_name!r}: police(dest) takes 1 argument"
            )
        dest = stmt.args[0]
        if not (isinstance(dest, ERef) and dest.is_dotted):
            raise LoweringError(
                f"action {action_name!r}: police destination must be a field"
            )
        # The meter is named after the owning action (configured by
        # the controller through the device's meter bank).
        return Police(action_name, dest.ref)
    if stmt.name == "remove_header":
        if len(stmt.args) != 1 or not isinstance(stmt.args[0], ERef):
            raise LoweringError(
                f"action {action_name!r}: remove_header takes a header name"
            )
        return RemoveHeaderOp(stmt.args[0].ref)
    if stmt.args:
        raise LoweringError(
            f"action {action_name!r}: primitive {stmt.name!r} takes no arguments"
        )
    try:
        return primitive(stmt.name)
    except KeyError as exc:
        raise LoweringError(f"action {action_name!r}: {exc}") from exc


#: Built-in actions every device provides.
def builtin_actions() -> Dict[str, ActionDef]:
    return {
        "NoAction": ActionDef("NoAction", [], []),
        "drop": ActionDef("drop", [], [primitive("drop")]),
        "mark_to_cpu": ActionDef("mark_to_cpu", [], [primitive("mark_to_cpu")]),
    }


# --------------------------------------------------------------------------
# Tables
# --------------------------------------------------------------------------


def lower_table(
    name: str,
    key_fields: List[Tuple[str, str, int]],
    size: int,
    default_action: str = "NoAction",
    default_data: Optional[Dict[str, int]] = None,
) -> Table:
    """Resolved table layout -> runtime :class:`Table`."""
    keys = [
        KeyField(ref, MatchKind.from_str(kind), width)
        for ref, kind, width in key_fields
    ]
    return Table(
        name, keys, size=size, default_action=default_action,
        default_data=default_data,
    )


# --------------------------------------------------------------------------
# Predicates
# --------------------------------------------------------------------------


def eval_predicate(expr: Expr, packet: Packet) -> int:
    """Interpret a matcher predicate against a packet."""
    if isinstance(expr, EConst):
        return expr.value
    if isinstance(expr, ERef):
        value = packet.read(expr.ref)
        if not isinstance(value, int):
            raise LoweringError(f"predicate reads non-integer field {expr.ref!r}")
        return value
    if isinstance(expr, EValid):
        return 1 if packet.is_valid(expr.header) else 0
    if isinstance(expr, EUnary):
        inner = eval_predicate(expr.operand, packet)
        return (0 if inner else 1) if expr.op == "!" else -inner
    if isinstance(expr, EBin):
        op = expr.op
        if op == "&&":
            return 1 if (
                eval_predicate(expr.left, packet)
                and eval_predicate(expr.right, packet)
            ) else 0
        if op == "||":
            return 1 if (
                eval_predicate(expr.left, packet)
                or eval_predicate(expr.right, packet)
            ) else 0
        left = eval_predicate(expr.left, packet)
        right = eval_predicate(expr.right, packet)
        if op == "==":
            return 1 if left == right else 0
        if op == "!=":
            return 1 if left != right else 0
        if op == "<":
            return 1 if left < right else 0
        if op == ">":
            return 1 if left > right else 0
        if op == "<=":
            return 1 if left <= right else 0
        if op == ">=":
            return 1 if left >= right else 0
        if op == "&":
            return left & right
        if op == "|":
            return left | right
        if op == "^":
            return left ^ right
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "<<":
            return left << right
        if op == ">>":
            return left >> right
        raise LoweringError(f"operator {op!r} not valid in predicates")
    raise LoweringError(f"expression {expr!r} not valid in predicates")


class _Uncompilable(Exception):
    """Internal: the predicate shape has no closure form."""


#: Non-short-circuit binary operators in their closure-compiled form.
#: Comparisons return P4-style 0/1 (matching :func:`eval_predicate`).
_BIN_CLOSURE_OPS: Dict[str, Callable[[int, int], int]] = {
    "==": lambda a, b: 1 if a == b else 0,
    "!=": lambda a, b: 1 if a != b else 0,
    "<": lambda a, b: 1 if a < b else 0,
    ">": lambda a, b: 1 if a > b else 0,
    "<=": lambda a, b: 1 if a <= b else 0,
    ">=": lambda a, b: 1 if a >= b else 0,
    "&": lambda a, b: a & b,
    "|": lambda a, b: a | b,
    "^": lambda a, b: a ^ b,
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "<<": lambda a, b: a << b,
    ">>": lambda a, b: a >> b,
}


def _compile_expr(expr: Expr) -> Callable[[Packet], int]:
    """Predicate AST -> int-valued closure, or :class:`_Uncompilable`.

    Anything without a closure form (``ECall``, unknown operators)
    raises so the caller can fall back to the tree-walking
    interpreter, which owns the error semantics for those shapes.
    """
    if isinstance(expr, EConst):
        value = expr.value
        return lambda packet: value
    if isinstance(expr, ERef):
        ref = expr.ref
        def read_ref(packet: Packet) -> int:
            value = packet.read(ref)
            if not isinstance(value, int):
                raise LoweringError(
                    f"predicate reads non-integer field {ref!r}"
                )
            return value
        return read_ref
    if isinstance(expr, EValid):
        header = expr.header
        return lambda packet: 1 if packet.is_valid(header) else 0
    if isinstance(expr, EUnary):
        inner = _compile_expr(expr.operand)
        if expr.op == "!":
            return lambda packet: 0 if inner(packet) else 1
        return lambda packet: -inner(packet)
    if isinstance(expr, EBin):
        op = expr.op
        left = _compile_expr(expr.left)
        right = _compile_expr(expr.right)
        if op == "&&":
            return lambda packet: 1 if left(packet) and right(packet) else 0
        if op == "||":
            return lambda packet: 1 if left(packet) or right(packet) else 0
        fn = _BIN_CLOSURE_OPS.get(op)
        if fn is None:
            raise _Uncompilable(op)
        return lambda packet: fn(left(packet), right(packet))
    raise _Uncompilable(type(expr).__name__)


def compile_predicate(expr: Optional[Expr]) -> Callable[[Packet], bool]:
    """Matcher predicate -> callable; ``None`` (bare else) is always true.

    Compiles the AST into nested closures at template-commit time so
    per-packet evaluation pays no isinstance dispatch; shapes without
    a closure form fall back to :func:`eval_predicate` unchanged.
    """
    if expr is None:
        return lambda packet: True
    try:
        fn = _compile_expr(expr)
    except _Uncompilable:
        return lambda packet: bool(eval_predicate(expr, packet))
    return lambda packet: bool(fn(packet))


# --------------------------------------------------------------------------
# JSON wire format
# --------------------------------------------------------------------------


def expr_to_json(expr: Optional[Expr]) -> Optional[dict]:
    if expr is None:
        return None
    if isinstance(expr, EConst):
        return {"k": "const", "v": expr.value, "w": expr.width}
    if isinstance(expr, ERef):
        return {"k": "ref", "ref": expr.ref}
    if isinstance(expr, EValid):
        return {"k": "valid", "h": expr.header}
    if isinstance(expr, EUnary):
        return {"k": "un", "op": expr.op, "e": expr_to_json(expr.operand)}
    if isinstance(expr, EBin):
        return {
            "k": "bin",
            "op": expr.op,
            "l": expr_to_json(expr.left),
            "r": expr_to_json(expr.right),
        }
    if isinstance(expr, ECall):
        return {"k": "call", "name": expr.name,
                "args": [expr_to_json(a) for a in expr.args]}
    raise LoweringError(f"cannot serialize expression {expr!r}")


def expr_from_json(data: Optional[dict]) -> Optional[Expr]:
    if data is None:
        return None
    kind = data["k"]
    if kind == "const":
        return EConst(data["v"], data.get("w"))
    if kind == "ref":
        return ERef(data["ref"])
    if kind == "valid":
        return EValid(data["h"])
    if kind == "un":
        inner = expr_from_json(data["e"])
        assert inner is not None
        return EUnary(data["op"], inner)
    if kind == "bin":
        left, right = expr_from_json(data["l"]), expr_from_json(data["r"])
        assert left is not None and right is not None
        return EBin(data["op"], left, right)
    if kind == "call":
        return ECall(
            data["name"],
            tuple(expr_from_json(a) for a in data["args"]),  # type: ignore[misc]
        )
    raise LoweringError(f"cannot deserialize expression {data!r}")


def _vm_expr_to_json(expr) -> dict:
    if isinstance(expr, Const):
        return {"k": "const", "v": expr.value}
    if isinstance(expr, Param):
        return {"k": "param", "name": expr.name}
    if isinstance(expr, FieldRef):
        return {"k": "ref", "ref": expr.ref}
    if isinstance(expr, BinOp):
        return {
            "k": "bin",
            "op": expr.op,
            "l": _vm_expr_to_json(expr.left),
            "r": _vm_expr_to_json(expr.right),
        }
    if isinstance(expr, HashExpr):
        return {"k": "hash", "fields": list(expr.fields), "width": expr.width}
    raise LoweringError(f"cannot serialize VM expression {expr!r}")


def _vm_expr_from_json(data: dict):
    kind = data["k"]
    if kind == "const":
        return Const(data["v"])
    if kind == "param":
        return Param(data["name"])
    if kind == "ref":
        return FieldRef(data["ref"])
    if kind == "bin":
        return BinOp(data["op"], _vm_expr_from_json(data["l"]),
                     _vm_expr_from_json(data["r"]))
    if kind == "hash":
        return HashExpr(tuple(data["fields"]), data["width"])
    raise LoweringError(f"cannot deserialize VM expression {data!r}")


def action_to_json(action: ActionDef) -> dict:
    """Serialize a lowered action (primitives go by name)."""
    ops = []
    for op in action.ops:
        if isinstance(op, SetField):
            ops.append({"op": "set_field", "dest": op.dest,
                        "expr": _vm_expr_to_json(op.expr)})
        elif isinstance(op, RemoveHeaderOp):
            ops.append({"op": "remove_header", "header": op.header})
        elif isinstance(op, CountAndMark):
            ops.append({"op": "count_and_mark",
                        "threshold_param": op.threshold_param, "dest": op.dest})
        elif isinstance(op, SketchUpdate):
            ops.append({"op": "sketch_update", "sketch": op.sketch,
                        "fields": list(op.fields), "dest": op.dest})
        elif isinstance(op, MarkAbove):
            ops.append({"op": "mark_above", "src": op.src,
                        "threshold_param": op.threshold_param, "dest": op.dest})
        elif isinstance(op, Police):
            ops.append({"op": "police", "meter": op.meter, "dest": op.dest})
        elif isinstance(op, PyPrimitive):
            ops.append({"op": "primitive", "name": op.name})
        else:
            raise LoweringError(f"cannot serialize op {op!r}")
    return {"name": action.name, "params": [list(p) for p in action.params],
            "ops": ops}


def action_from_json(data: dict) -> ActionDef:
    """Rebuild an executable action from its JSON descriptor."""
    ops: List[object] = []
    for op in data["ops"]:
        kind = op["op"]
        if kind == "set_field":
            ops.append(SetField(op["dest"], _vm_expr_from_json(op["expr"])))
        elif kind == "remove_header":
            ops.append(RemoveHeaderOp(op["header"]))
        elif kind == "count_and_mark":
            ops.append(CountAndMark(op["threshold_param"], op["dest"]))
        elif kind == "sketch_update":
            ops.append(SketchUpdate(op["sketch"], tuple(op["fields"]), op["dest"]))
        elif kind == "mark_above":
            ops.append(MarkAbove(op["src"], op["threshold_param"], op["dest"]))
        elif kind == "police":
            ops.append(Police(op["meter"], op["dest"]))
        elif kind == "primitive":
            ops.append(primitive(op["name"]))
        else:
            raise LoweringError(f"cannot deserialize op {op!r}")
    params = [(name, width) for name, width in data["params"]]
    return ActionDef(data["name"], params, ops)  # type: ignore[arg-type]

"""Stage merging: pack logical stages into TSP-sized groups (rp4bc pass 2).

Adjacent stages in the linearized pipeline share a TSP when the
dependency analysis allows it -- mutually exclusive stages cost one
lookup per packet (the ECMP K/L pair), independent stages cost one
lookup each ("one TSP can host multiple independent stages").  This
pass is why the ten-stage base design fits in seven TSPs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.compiler.dependency import DependencyInfo


class MergeMode(enum.Enum):
    """Merging aggressiveness (the ablation knob)."""

    NONE = "none"  # one stage per TSP
    EXCLUSIVE = "exclusive"  # only mutually exclusive stages share
    FULL = "full"  # exclusive + independent stages share


@dataclass
class MergePlan:
    """Groups of stage names per pipeline side."""

    ingress_groups: List[List[str]] = field(default_factory=list)
    egress_groups: List[List[str]] = field(default_factory=list)

    @property
    def tsp_count(self) -> int:
        return len(self.ingress_groups) + len(self.egress_groups)

    def all_groups(self) -> List[Tuple[str, List[str]]]:
        """(side, stages) rows, ingress first."""
        rows = [("ingress", g) for g in self.ingress_groups]
        rows += [("egress", g) for g in self.egress_groups]
        return rows

    def group_of(self, stage: str) -> List[str]:
        for _, group in self.all_groups():
            if stage in group:
                return group
        raise KeyError(f"stage {stage!r} is not in any group")


def group_key(stages: List[str]) -> str:
    """Stable printable key for a group ("ipv4_lpm+ipv6_lpm")."""
    return "+".join(stages)


def _pack_side(
    order: List[str],
    info: DependencyInfo,
    mode: MergeMode,
    max_stages_per_tsp: int,
    max_cofire_per_tsp: Optional[int] = None,
) -> List[List[str]]:
    """List-scheduling packer.

    Two stages must keep their relative order only when a real hazard
    exists between them and they are not mutually exclusive; all other
    pairs commute.  Scheduling greedily pulls commuting stages forward
    into the current group, so e.g. the P4 apply order
    ``v4_lpm, v4_host, v6_lpm, v6_host`` still packs into the two TSPs
    ``{v4_lpm+v6_lpm}, {v4_host+v6_host}``.
    """
    if mode is MergeMode.NONE:
        return [[stage] for stage in order]

    index = {name: i for i, name in enumerate(order)}
    preds: Dict[str, set] = {name: set() for name in order}
    for i, first in enumerate(order):
        for second in order[i + 1 :]:
            ordered = info.depends(first, second) or info.depends(second, first)
            if ordered and not info.mutually_exclusive(first, second):
                preds[second].add(first)

    scheduled: set = set()
    groups: List[List[str]] = []
    current: List[str] = []

    def ready() -> List[str]:
        out = [
            name
            for name in order
            if name not in scheduled and preds[name] <= scheduled
        ]
        return sorted(out, key=index.__getitem__)

    while len(scheduled) < len(order):
        candidates = ready()
        chosen = None
        if current and len(current) < max_stages_per_tsp:
            for name in candidates:
                if not all(_can_share(m, name, info, mode) for m in current):
                    continue
                if (
                    max_cofire_per_tsp is not None
                    and cofire_count(current, name, info) > max_cofire_per_tsp
                ):
                    continue
                chosen = name
                break
        if chosen is None:
            if current:
                groups.append(current)
            chosen = candidates[0]
            current = [chosen]
        else:
            current.append(chosen)
        scheduled.add(chosen)
    if current:
        groups.append(current)
    return groups


def _can_share(
    first: str, second: str, info: DependencyInfo, mode: MergeMode
) -> bool:
    if mode is MergeMode.NONE:
        return False
    if info.mutually_exclusive(first, second):
        return True
    if mode is MergeMode.FULL:
        return not info.depends(first, second) and not info.depends(
            second, first
        )
    return False


def cofire_count(group: List[str], candidate: str, info: DependencyInfo) -> int:
    """Worst-case lookups per packet if ``candidate`` joins ``group``.

    Mutually exclusive stages share one lookup; every non-exclusive
    co-resident stage adds one -- the throughput cost of merging.
    """
    return 1 + sum(
        1
        for member in group
        if not info.mutually_exclusive(member, candidate)
    )


def plan_merge(
    ingress_order: List[str],
    egress_order: List[str],
    info: DependencyInfo,
    mode: MergeMode = MergeMode.FULL,
    max_stages_per_tsp: int = 4,
    max_cofire_per_tsp: Optional[int] = None,
) -> MergePlan:
    """Pack both pipeline sides into TSP groups.

    ``max_cofire_per_tsp`` bounds the worst-case lookups a merged TSP
    performs per packet -- the throughput-aware knob: ``1`` restricts
    merging to mutually exclusive stages on the hot path, ``None``
    (default) merges for minimum TSP count regardless of cycle cost.
    """
    if max_stages_per_tsp <= 0:
        raise ValueError("max_stages_per_tsp must be positive")
    if max_cofire_per_tsp is not None and max_cofire_per_tsp <= 0:
        raise ValueError("max_cofire_per_tsp must be positive")
    return MergePlan(
        ingress_groups=_pack_side(
            ingress_order, info, mode, max_stages_per_tsp, max_cofire_per_tsp
        ),
        egress_groups=_pack_side(
            egress_order, info, mode, max_stages_per_tsp, max_cofire_per_tsp
        ),
    )

"""Stage dependency and predicate-exclusivity analysis (rp4bc pass 1).

rp4bc "analyzes the dependency of different logical stages [and]
optimizes the predicates to merge some independent stages into a
single TSP" (paper Sec. 3.2).  Two relations drive merging:

* **dependency** -- read-after-write / write-after-read /
  write-after-write on header fields and metadata between two stages
  (idempotent intrinsic flags like ``meta.drop`` are exempt from WAW);
* **mutual exclusivity** -- the stages' matcher arms are guarded by
  header-validity predicates over headers that can never co-exist on
  a parse path (e.g. ``ipv4`` vs. ``ipv6``), so at most one of the
  stages ever fires for a given packet.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.lang.expr import (
    EBin,
    ECall,
    ERef,
    EUnary,
    EValid,
    Expr,
    SAssign,
    SCall,
)
from repro.rp4.ast import Rp4Program, StageDecl
from repro.rp4.semantic import KNOWN_PRIMITIVES

#: Write-write conflicts on these are harmless (idempotent set-to-1 flags).
IDEMPOTENT_FIELDS = {"meta.drop", "meta.to_cpu", "meta.flow_marked"}

#: Wildcard effect: "may touch any field".  Used for primitives with
#: no effect summary so the merge planner stays conservative instead
#: of silently treating them as side-effect-free.
STAR = "*"

#: Conservative effect summaries for primitives (reads, writes).
PRIMITIVE_EFFECTS: Dict[str, Tuple[Set[str], Set[str]]] = {
    "drop": (set(), {"meta.drop"}),
    "mark_to_cpu": (set(), {"meta.to_cpu"}),
    "no_op": (set(), set()),
    "decrement_ttl": (
        {"ipv4.ttl", "ipv6.hop_limit"},
        {"ipv4.ttl", "ipv6.hop_limit", "meta.drop"},
    ),
    "srv6_end": (
        {"srh.segments_left", "srh.seg0", "srh.seg1", "srh.segment_list"},
        {"srh.segments_left", "ipv6.dst_addr", "meta.drop"},
    ),
    "srv6_transit": (set(), set()),
    "pop_srh": ({"srh.next_hdr"}, {"ipv6.next_hdr", "ipv6.payload_len"}),
    "push_srh": ({"ipv6.next_hdr"}, {"ipv6.next_hdr", "ipv6.payload_len"}),
    # push_int appends one hop record: reads the displaced EtherType
    # plus the existing stack (append = read-modify-write), writes the
    # shim fields and the wire EtherType.
    "push_int": (
        {"ethernet.ethertype", "int_shim.hop_count", "int_shim.hop_stack"},
        {
            "ethernet.ethertype",
            "int_shim.orig_ethertype",
            "int_shim.hop_count",
            "int_shim.hop_stack",
            "meta.drop",
        },
    ),
    # pop_int consumes the whole shim (EtherType restore + hop-stack
    # handoff to the collector).
    "pop_int": (
        {"int_shim.orig_ethertype", "int_shim.hop_count", "int_shim.hop_stack"},
        {"ethernet.ethertype"},
    ),
    "count_and_mark": (set(), set()),  # dest handled from the call args
    "sketch_update": (set(), set()),  # fields/dest handled from the call args
    "mark_above": (set(), set()),  # src/dest handled from the call args
    "police": (set(), set()),  # dest handled from the call args
}

# A primitive the behavioral model knows but the effects table does
# not (or vice versa) is exactly the silent-unsoundness bug this check
# guards against: the dependency pass would treat it as side-effect-
# free and could legalize an invalid stage merge.  Fail at import.
if set(PRIMITIVE_EFFECTS) != KNOWN_PRIMITIVES:
    raise RuntimeError(
        "PRIMITIVE_EFFECTS is out of sync with KNOWN_PRIMITIVES: "
        f"missing={sorted(KNOWN_PRIMITIVES - set(PRIMITIVE_EFFECTS))} "
        f"extra={sorted(set(PRIMITIVE_EFFECTS) - KNOWN_PRIMITIVES)}"
    )


def expr_reads(expr: Optional[Expr]) -> Set[str]:
    """Dotted references an expression reads (validity bits excluded)."""
    if expr is None:
        return set()
    if isinstance(expr, ERef):
        return {expr.ref} if expr.is_dotted else set()
    if isinstance(expr, EUnary):
        return expr_reads(expr.operand)
    if isinstance(expr, EBin):
        return expr_reads(expr.left) | expr_reads(expr.right)
    if isinstance(expr, ECall):
        reads: Set[str] = set()
        for arg in expr.args:
            reads |= expr_reads(arg)
        return reads
    return set()


def guard_headers(expr: Optional[Expr]) -> Set[str]:
    """Headers whose validity the predicate requires (conjunctively)."""
    if expr is None:
        return set()
    if isinstance(expr, EValid):
        return {expr.header}
    if isinstance(expr, EBin) and expr.op == "&&":
        return guard_headers(expr.left) | guard_headers(expr.right)
    return set()


def _overlap(xs: Set[str], ys: Set[str]) -> bool:
    """Set intersection under the :data:`STAR` wildcard."""
    if STAR in xs:
        return bool(ys)
    if STAR in ys:
        return bool(xs)
    return bool(xs & ys)


@dataclass
class StageEffects:
    """Read/write summary of one stage."""

    name: str
    reads: Set[str] = field(default_factory=set)
    writes: Set[str] = field(default_factory=set)
    #: One guard-header set per matcher arm that applies a table.
    arm_guards: List[FrozenSet[str]] = field(default_factory=list)


def stage_effects(stage: StageDecl, program: Rp4Program) -> StageEffects:
    """Compute the read/write sets and arm guards of a stage."""
    effects = StageEffects(name=stage.name)
    actions = set(stage.executor.values())
    for arm in stage.matcher:
        effects.reads |= expr_reads(arm.cond)
        if arm.table is not None:
            table = program.tables.get(arm.table)
            if table is not None:
                effects.reads |= {ref for ref, _ in table.keys}
            effects.arm_guards.append(frozenset(guard_headers(arm.cond)))
    for action_name in actions:
        action = program.actions.get(action_name)
        if action is None:
            if action_name == "drop":
                effects.writes.add("meta.drop")
            elif action_name == "mark_to_cpu":
                effects.writes.add("meta.to_cpu")
            continue
        params = {name for name, _ in action.params}
        for stmt in action.body:
            if isinstance(stmt, SAssign):
                effects.writes.add(stmt.dest)
                effects.reads |= expr_reads(stmt.expr)
            elif isinstance(stmt, SCall):
                effect = PRIMITIVE_EFFECTS.get(stmt.name)
                if effect is None:
                    # Unknown primitive: read-all/write-all so no merge
                    # can be legalized on a missing summary.
                    effect = ({STAR}, {STAR})
                reads, writes = effect
                effects.reads |= set(reads)
                effects.writes |= set(writes)
                if stmt.name == "count_and_mark" and len(stmt.args) == 2:
                    dest = stmt.args[1]
                    if isinstance(dest, ERef) and dest.is_dotted:
                        effects.writes.add(dest.ref)
                elif stmt.name == "sketch_update" and stmt.args:
                    *keys, dest = stmt.args
                    for arg in keys:
                        if isinstance(arg, ERef) and arg.is_dotted:
                            effects.reads.add(arg.ref)
                    if isinstance(dest, ERef) and dest.is_dotted:
                        effects.writes.add(dest.ref)
                elif stmt.name == "police" and len(stmt.args) == 1:
                    dest = stmt.args[0]
                    if isinstance(dest, ERef) and dest.is_dotted:
                        effects.writes.add(dest.ref)
                elif stmt.name == "mark_above" and len(stmt.args) == 3:
                    src, _threshold, dest = stmt.args
                    if isinstance(src, ERef) and src.is_dotted:
                        effects.reads.add(src.ref)
                    if isinstance(dest, ERef) and dest.is_dotted:
                        effects.writes.add(dest.ref)
    return effects


@dataclass
class DependencyInfo:
    """Pairwise relations over an ordered list of stages."""

    effects: Dict[str, StageEffects] = field(default_factory=dict)
    exclusive_headers: Set[FrozenSet[str]] = field(default_factory=set)

    # -- relations -------------------------------------------------------

    def depends(self, first: str, second: str) -> bool:
        """True if ``second`` must execute after ``first`` completes
        (any RAW/WAR/WAW hazard, idempotent flags exempted)."""
        a, b = self.effects[first], self.effects[second]
        if _overlap(a.writes, b.reads):
            return True  # read-after-write
        if _overlap(a.reads, b.writes):
            return True  # write-after-read
        if STAR in a.writes or STAR in b.writes:
            return bool(a.writes and b.writes)  # wildcard WAW
        waw = (a.writes & b.writes) - IDEMPOTENT_FIELDS
        return bool(waw)

    def headers_exclusive(self, x: str, y: str) -> bool:
        return frozenset((x, y)) in self.exclusive_headers

    def guards_exclusive(self, g1: FrozenSet[str], g2: FrozenSet[str]) -> bool:
        """Two arm guards are exclusive if some required header of one
        can never co-exist with some required header of the other."""
        return any(
            self.headers_exclusive(h1, h2) for h1 in g1 for h2 in g2
        )

    def mutually_exclusive(self, first: str, second: str) -> bool:
        """At most one of the two stages fires for any packet: every
        table-applying arm pair across the two stages is exclusive."""
        a, b = self.effects[first], self.effects[second]
        if not a.arm_guards or not b.arm_guards:
            return False
        return all(
            self.guards_exclusive(g1, g2)
            for g1 in a.arm_guards
            for g2 in b.arm_guards
        )

    def mergeable(self, first: str, second: str) -> bool:
        """Stages can share a TSP if mutually exclusive (one lookup per
        packet) or fully independent ("one TSP can host multiple
        independent stages")."""
        if self.mutually_exclusive(first, second):
            return True
        return not self.depends(first, second) and not self.depends(
            second, first
        )


def _exclusive_header_pairs(program: Rp4Program) -> Set[FrozenSet[str]]:
    """Header pairs that never co-occur on a design-time parse path.

    Paths are enumerated over the ``implicit parser`` links declared in
    the program (runtime ``link_header`` additions are applied when the
    update is compiled, via the merged program).
    """
    links: Dict[str, List[str]] = {}
    targets: Set[str] = set()
    for header in program.headers.values():
        links[header.name] = [nxt for _, nxt in header.links]
        targets |= set(links[header.name])
    roots = [name for name in program.headers if name not in targets]
    if not roots:
        roots = list(program.headers)[:1]

    cooccur: Set[FrozenSet[str]] = set()

    def walk(current: str, on_path: List[str]) -> None:
        for prior in on_path:
            cooccur.add(frozenset((prior, current)))
        on_path.append(current)
        for nxt in links.get(current, []):
            if nxt in program.headers and nxt not in on_path:
                walk(nxt, on_path)
        on_path.pop()

    for root in roots:
        walk(root, [])

    exclusive: Set[FrozenSet[str]] = set()
    names = list(program.headers)
    for i, x in enumerate(names):
        for y in names[i + 1 :]:
            pair = frozenset((x, y))
            if pair not in cooccur:
                exclusive.add(pair)
    return exclusive


def analyze_dependencies(
    program: Rp4Program, stage_names: Optional[List[str]] = None
) -> DependencyInfo:
    """Build the pairwise dependency/exclusivity relations."""
    info = DependencyInfo()
    info.exclusive_headers = _exclusive_header_pairs(program)
    stages = program.all_stages()
    for name in stage_names if stage_names is not None else list(stages):
        info.effects[name] = stage_effects(stages[name], program)
    return info

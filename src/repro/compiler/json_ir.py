"""TSP template and device-config JSON (the rp4bc wire format).

"The output of rp4bc is the TSP template parameters in JSON format,
used for data-plane device configuration" (paper Sec. 3.2).  The IPSA
behavioral switch consumes exactly these dictionaries -- nothing else
crosses the compiler/device boundary, which is what makes template
download a genuine runtime reconfiguration rather than a code reload.
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.compiler.lowering import (
    action_to_json,
    expr_from_json,
    expr_to_json,
    lower_action,
)
from repro.rp4.ast import HeaderDecl, MatcherArm, Rp4Program, StageDecl


def stage_to_json(stage: StageDecl) -> dict:
    return {
        "name": stage.name,
        "parser": list(stage.parser),
        "matcher": [
            {"cond": expr_to_json(arm.cond), "table": arm.table}
            for arm in stage.matcher
        ],
        "executor": {str(tag): action for tag, action in stage.executor.items()},
    }


def stage_from_json(data: dict) -> StageDecl:
    executor: Dict[object, str] = {}
    for tag, action in data["executor"].items():
        executor["default" if tag == "default" else int(tag)] = action
    return StageDecl(
        name=data["name"],
        parser=list(data["parser"]),
        matcher=[
            MatcherArm(expr_from_json(arm["cond"]), arm["table"])
            for arm in data["matcher"]
        ],
        executor=executor,
    )


def tsp_template(
    tsp_index: int, side: str, stages: List[StageDecl]
) -> dict:
    """The template parameters downloaded into one TSP."""
    return {
        "tsp": tsp_index,
        "side": side,
        "stages": [stage_to_json(s) for s in stages],
    }


def header_to_json(header: HeaderDecl) -> dict:
    data = {
        "fields": [list(f) for f in header.fields],
        "selector": header.selector,
        "links": [list(l) for l in header.links],
    }
    if header.varlen is not None:
        data["varlen"] = list(header.varlen)
    return data


def device_config(
    program: Rp4Program,
    templates: List[dict],
    selector: dict,
    allocations: Dict[str, dict],
    table_layouts: Dict[str, dict],
) -> dict:
    """The full initial-load configuration for an IPSA device."""
    return {
        "headers": {
            name: header_to_json(h) for name, h in program.headers.items()
        },
        "metadata": [
            list(member)
            for struct in program.structs.values()
            if struct.alias == "meta"
            for member in struct.members
        ],
        "actions": {
            name: action_to_json(lower_action(decl))
            for name, decl in program.actions.items()
        },
        "tables": table_layouts,
        "templates": templates,
        "selector": selector,
        "allocations": allocations,
    }


def dumps(config: dict) -> str:
    """Stable JSON text (what rp4bc writes to disk)."""
    return json.dumps(config, indent=2, sort_keys=True)


def loads(text: str) -> dict:
    return json.loads(text)

"""Table allocation in the disaggregated memory pool (rp4bc pass 4).

Each table's physical demand is its entry width (key bits + action-id
byte + the widest bound action data) times its declared depth,
virtualized onto blocks per the ceil(W/w)*ceil(D/d) rule.  The
crossbar constrains which memory clusters the hosting TSP can reach.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.compiler.layout import LayoutResult
from repro.compiler.merge import MergePlan, group_key
from repro.memory.blocks import MemoryKind
from repro.memory.pool import MemoryPool
from repro.rp4.ast import Rp4Program
from repro.rp4.semantic import SemanticInfo

#: Bits reserved per entry for the action identifier (executor tag).
ACTION_ID_BITS = 8


class AllocationPlanError(Exception):
    """Raised when demands cannot be computed."""


@dataclass
class TableLayout:
    """Physical shape of one logical table."""

    name: str
    kind: MemoryKind
    entry_width: int
    depth: int
    clusters: Tuple[int, ...] = ()

    def to_json(self) -> dict:
        return {
            "kind": self.kind.value,
            "entry_width": self.entry_width,
            "depth": self.depth,
            "clusters": list(self.clusters),
        }


def action_data_width(program: Rp4Program, action_names: Sequence[str]) -> int:
    """Widest action-parameter payload among candidate actions."""
    widest = 0
    for name in action_names:
        action = program.actions.get(name)
        if action is None:
            continue
        widest = max(widest, sum(width for _, width in action.params))
    return widest


def table_stage_map(program: Rp4Program) -> Dict[str, str]:
    """table name -> the stage that applies it (first wins)."""
    mapping: Dict[str, str] = {}
    for name, stage in program.all_stages().items():
        for arm in stage.matcher:
            if arm.table is not None and arm.table not in mapping:
                mapping[arm.table] = name
    return mapping


def compute_table_layouts(
    program: Rp4Program,
    info: SemanticInfo,
    plan: MergePlan,
    layout: LayoutResult,
    pool: MemoryPool,
) -> Dict[str, TableLayout]:
    """Entry widths, depths, and reachable clusters for every applied table."""
    stage_of = table_stage_map(program)
    layouts: Dict[str, TableLayout] = {}
    for table_name, stage_name in stage_of.items():
        tinfo = info.tables.get(table_name)
        if tinfo is None:
            raise AllocationPlanError(
                f"table {table_name!r} missing from semantic info"
            )
        stage = program.all_stages()[stage_name]
        executor_actions = list(stage.executor.values())
        entry_width = (
            tinfo.key_width
            + ACTION_ID_BITS
            + action_data_width(program, executor_actions)
        )
        kind = (
            MemoryKind.TCAM if tinfo.match_kind == "ternary" else MemoryKind.SRAM
        )
        slot = layout.slot_of(group_key(plan.group_of(stage_name)))
        clusters = tuple(sorted(pool.crossbar.reachable_clusters(slot)))
        layouts[table_name] = TableLayout(
            name=table_name,
            kind=kind,
            entry_width=entry_width,
            depth=tinfo.size,
            clusters=clusters,
        )
    return layouts


def allocate_new_tables(
    pool: MemoryPool,
    layouts: Dict[str, TableLayout],
    exact: bool = True,
) -> List[str]:
    """Place every not-yet-allocated table; returns the new names."""
    pending = [
        name for name in sorted(layouts) if name not in pool.mappings()
    ]
    if not pending:
        return []
    specs = [
        (
            name,
            layouts[name].kind,
            layouts[name].entry_width,
            layouts[name].depth,
            list(layouts[name].clusters),
        )
        for name in pending
    ]
    pool.allocate_tables(specs, exact=exact)
    return pending


def release_tables(pool: MemoryPool, names: Sequence[str]) -> int:
    """Recycle the blocks of deleted tables; returns blocks freed."""
    freed = 0
    for name in names:
        if name in pool.mappings():
            freed += pool.release_table(name)
    return freed


def migrate_if_needed(
    pool: MemoryPool, layouts: Dict[str, TableLayout]
) -> List[str]:
    """Migrate tables whose blocks are no longer crossbar-reachable.

    Happens when incremental layout moves a logical stage into a TSP
    cluster that cannot reach the table's current memory cluster
    (paper Sec. 2.4).  Returns the migrated table names.
    """
    migrated: List[str] = []
    for name, mapping in pool.mappings().items():
        layout = layouts.get(name)
        if layout is None:
            continue
        blocks_by_id = {b.block_id: b for b in pool.blocks}
        current = {blocks_by_id[i].cluster for i in mapping.block_ids}
        if not current <= set(layout.clusters):
            pool.migrate_table(name, list(layout.clusters))
            migrated.append(name)
    return migrated

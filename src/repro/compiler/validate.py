"""Device-config validation (schema checks before a load).

rp4bc output is trusted, but configs also arrive from disk (the
``rp4bc -o config.json`` / ``ipbm-ctl`` path) where hand edits happen.
``validate_config`` checks the structural invariants the device relies
on and returns every violation, so operators see all problems at once
instead of a mid-load stack trace.
"""

from __future__ import annotations

from typing import List

from repro.tables.engines import MATCH_KINDS


class ConfigError(Exception):
    """Raised with all collected violations."""

    def __init__(self, errors: List[str]) -> None:
        super().__init__("; ".join(errors))
        self.errors = list(errors)


def validate_config(config: dict, n_tsps: int = 8) -> List[str]:
    """Return a list of violations (empty = valid)."""
    errors: List[str] = []

    def err(msg: str) -> None:
        errors.append(msg)

    if not isinstance(config, dict):
        return ["config must be a JSON object"]

    headers = config.get("headers", {})
    for name, spec in headers.items():
        fields = spec.get("fields")
        if not fields:
            err(f"header {name!r}: no fields")
            continue
        field_names = set()
        for row in fields:
            if len(row) != 2 or not isinstance(row[1], int) or row[1] <= 0:
                err(f"header {name!r}: malformed field row {row!r}")
            else:
                field_names.add(row[0])
        selector = spec.get("selector")
        if selector is not None and selector not in field_names:
            err(f"header {name!r}: selector {selector!r} is not a field")
        varlen = spec.get("varlen")
        if varlen is not None:
            if len(varlen) != 3 or not isinstance(varlen[2], int) or varlen[2] <= 0:
                err(f"header {name!r}: malformed varlen spec {varlen!r}")
            elif varlen[1] not in field_names:
                err(
                    f"header {name!r}: varlen count field {varlen[1]!r} "
                    "is not a field"
                )
        for link in spec.get("links", []):
            if len(link) != 2 or not isinstance(link[0], int):
                err(f"header {name!r}: malformed link {link!r}")

    tables = config.get("tables", {})
    for name, spec in tables.items():
        keys = spec.get("keys")
        if not keys:
            err(f"table {name!r}: no keys")
            continue
        for row in keys:
            if len(row) != 3:
                err(f"table {name!r}: malformed key row {row!r}")
                continue
            _ref, kind, width = row
            if kind not in MATCH_KINDS:
                err(f"table {name!r}: unknown match kind {kind!r}")
            if not isinstance(width, int) or width <= 0:
                err(f"table {name!r}: bad key width {width!r}")
        size = spec.get("size", spec.get("depth"))
        if not isinstance(size, int) or size <= 0:
            err(f"table {name!r}: bad size {size!r}")

    actions = config.get("actions", {})
    for name, spec in actions.items():
        for op in spec.get("ops", []):
            if "op" not in op:
                err(f"action {name!r}: op without a kind: {op!r}")

    seen_slots = set()
    for template in config.get("templates", []):
        slot = template.get("tsp")
        if not isinstance(slot, int) or not 0 <= slot < n_tsps:
            err(f"template targets invalid TSP {slot!r}")
            continue
        if slot in seen_slots:
            err(f"two templates target TSP {slot}")
        seen_slots.add(slot)
        if template.get("side") not in ("ingress", "egress"):
            err(f"template {slot}: bad side {template.get('side')!r}")
        for stage in template.get("stages", []):
            for arm in stage.get("matcher", []):
                table = arm.get("table")
                if table is not None and table not in tables:
                    err(
                        f"template {slot}: stage {stage.get('name')!r} "
                        f"applies undeclared table {table!r}"
                    )
            for tag, action in stage.get("executor", {}).items():
                if tag != "default" and not str(tag).lstrip("-").isdigit():
                    err(
                        f"template {slot}: stage {stage.get('name')!r} "
                        f"has non-integer executor tag {tag!r}"
                    )
                if action not in actions and action not in (
                    "NoAction", "drop", "mark_to_cpu"
                ):
                    err(
                        f"template {slot}: stage {stage.get('name')!r} "
                        f"maps to undeclared action {action!r}"
                    )

    selector = config.get("selector", {})
    if selector:
        tm_in, tm_out = selector.get("tm_input"), selector.get("tm_output")
        if tm_in is not None and tm_out is not None and tm_in >= tm_out:
            err(f"selector: tm_input {tm_in} must precede tm_output {tm_out}")
        for slot in selector.get("active", []):
            if not 0 <= slot < n_tsps:
                err(f"selector: active TSP {slot} out of range")
        overlap = set(selector.get("active", [])) & set(
            selector.get("bypassed", [])
        )
        if overlap:
            err(f"selector: TSPs both active and bypassed: {sorted(overlap)}")

    return errors


def check_config(config: dict, n_tsps: int = 8) -> None:
    """Raise :class:`ConfigError` if the config is invalid."""
    errors = validate_config(config, n_tsps)
    if errors:
        raise ConfigError(errors)

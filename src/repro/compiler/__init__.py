"""The rP4 compilers (paper Sec. 3.2).

* :mod:`repro.compiler.rp4fc` -- front end: P4 HLIR -> semantically
  equivalent rP4 + runtime table APIs.
* :mod:`repro.compiler.rp4bc` -- back end: rP4 -> TSP template
  parameters (JSON) via stage dependency analysis, predicate-based
  stage merging, incremental layout optimization (DP vs. greedy), and
  table allocation in the disaggregated memory pool.
"""

from repro.compiler.dependency import DependencyInfo, analyze_dependencies
from repro.compiler.lowering import (
    compile_predicate,
    lower_action,
    lower_table,
)
from repro.compiler.merge import MergePlan, plan_merge
from repro.compiler.layout import LayoutResult, layout_dp, layout_greedy
from repro.compiler.rp4bc import (
    CompiledDesign,
    TargetSpec,
    UpdatePlan,
    compile_base,
    compile_update,
)
from repro.compiler.rp4fc import Rp4fcResult, rp4fc
from repro.compiler.stage_graph import StageGraph

__all__ = [
    "CompiledDesign",
    "DependencyInfo",
    "LayoutResult",
    "MergePlan",
    "Rp4fcResult",
    "StageGraph",
    "TargetSpec",
    "UpdatePlan",
    "analyze_dependencies",
    "compile_base",
    "compile_predicate",
    "compile_update",
    "layout_dp",
    "layout_greedy",
    "lower_action",
    "lower_table",
    "plan_merge",
    "rp4fc",
]

"""Evaluation harnesses shared by the pytest benchmarks and examples.

One module per paper artifact:

* :mod:`repro.bench.table1`  -- compile/load time comparison
* :mod:`repro.bench.mapping` -- Fig. 4 TSP mappings
* :mod:`repro.bench.report`  -- plain-text table rendering
"""

from repro.bench.mapping import fig4_mapping, format_mapping
from repro.bench.report import format_table
from repro.bench.table1 import (
    USE_CASES,
    Table1Row,
    hardware_flow_model,
    measure_ipbm_flow,
    measure_bmv2_flow,
    table1,
)

__all__ = [
    "Table1Row",
    "USE_CASES",
    "fig4_mapping",
    "format_mapping",
    "format_table",
    "hardware_flow_model",
    "measure_bmv2_flow",
    "measure_ipbm_flow",
    "table1",
]

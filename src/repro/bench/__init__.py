"""Evaluation harnesses shared by the pytest benchmarks and examples.

One module per paper artifact:

* :mod:`repro.bench.table1`  -- compile/load time comparison
* :mod:`repro.bench.mapping` -- Fig. 4 TSP mappings
* :mod:`repro.bench.report`  -- plain-text table rendering

plus the continuous performance layer:

* :mod:`repro.bench.scenarios` -- the workload matrix (cases x switches)
* :mod:`repro.bench.harness`   -- ``python -m repro.bench.harness``,
  emits schema-versioned ``BENCH_<stamp>.json`` trajectory documents
* :mod:`repro.bench.schema`    -- document validation + regression compare
"""

from repro.bench.mapping import fig4_mapping, format_mapping
from repro.bench.scenarios import (
    CASES,
    SWITCHES,
    case_trace,
    make_ipsa,
    make_ipsa_controller,
    make_pisa,
    make_switch,
)
from repro.bench.schema import compare_documents, validate_bench
from repro.bench.report import format_table
from repro.bench.table1 import (
    USE_CASES,
    Table1Row,
    hardware_flow_model,
    measure_ipbm_flow,
    measure_bmv2_flow,
    table1,
)

__all__ = [
    "CASES",
    "SWITCHES",
    "Table1Row",
    "USE_CASES",
    "case_trace",
    "compare_documents",
    "fig4_mapping",
    "format_mapping",
    "format_table",
    "hardware_flow_model",
    "make_ipsa",
    "make_ipsa_controller",
    "make_pisa",
    "make_switch",
    "measure_bmv2_flow",
    "measure_ipbm_flow",
    "table1",
    "validate_bench",
]

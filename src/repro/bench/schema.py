"""The ``BENCH_*.json`` document: schema, validation, comparison.

Every harness run emits one schema-versioned JSON document; the
sequence of committed ``BENCH_*.json`` files at the repo root is the
project's performance trajectory.  Validation is dependency-free (a
structural checker, not jsonschema) so CI can gate on it with nothing
installed beyond the test stack; :func:`compare_documents` is the
regression reporter behind ``--compare``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

SCHEMA_VERSION = 1
DOCUMENT_KIND = "repro-bench"

#: Default relative tolerance on throughput metrics (pps, ns/pkt).
#: Generous on purpose: shared CI boxes jitter far more than a quiet
#: workstation, and the gate should start report-only anyway.
DEFAULT_RELATIVE_TOLERANCE = 0.35
#: Default absolute tolerance (percentage points) on profile overhead.
DEFAULT_OVERHEAD_TOLERANCE_PCT = 25.0

_TOP_KEYS = {
    "schema_version": int,
    "kind": str,
    "created_unix": (int, float),
    "stamp": str,
    "mode": str,
    "environment": dict,
    "matrix": dict,
    "results": list,
}

_RESULT_KEYS = {
    "switch": str,
    "case": str,
    "packets": int,
    "forwarded": int,
    "dropped": int,
    "seconds": (int, float),
    "pps": (int, float),
    "ns_per_pkt": (int, float),
    "profile": dict,
}

_PROFILE_KEYS = {
    "profiled_seconds": (int, float),
    "profiled_ns_per_pkt": (int, float),
    "overhead_pct": (int, float),
    "phase_shares": dict,
    "phase_ns_per_pkt": dict,
    "work_per_pkt": dict,
    "engine_lookups": dict,
}

#: The optional per-result ``columnar`` sub-object: the same cell timed
#: with the columnar batch path disabled (the scalar interpreter), and
#: the resulting speedup.  Pre-columnar documents lack the key --
#: absence is valid.
_COLUMNAR_KEYS = {
    "ns_per_pkt_off": (int, float),
    "speedup_x": (int, float),
}
#: Default relative tolerance on the columnar speedup for --compare.
#: The speedup halving (e.g. an eligibility regression silently peeling
#: a hot signature back to scalar) fails the gate; plain wall-clock
#: jitter on a shared box moves it far less than that.
DEFAULT_COLUMNAR_TOLERANCE = 0.5

#: Profiler overhead beyond this many percent means the phase shares
#: embed more instrumentation cost than dataplane cost -- --validate
#: surfaces it as a (non-fatal) data-quality warning.
OVERHEAD_WARN_PCT = 100.0

#: The optional ``update_stall`` section: one cell per (case, path).
#: Documents from before the transactional update engine simply lack
#: the key -- absence is valid.
_STALL_KEYS = {
    "case": str,
    "path": str,
    "packets": int,
    "inflight": int,
    "stall_ns": (int, float),
    "drained_packets": int,
    "completed_inflight": int,
    "served_during_update": int,
    "served_after": int,
}
#: Default relative tolerance on the stall window for --compare.  The
#: window is tens of microseconds; scheduler jitter dominates, so the
#: gate is loose and the strict txn-vs-inplace ordering is checked by
#: validation instead.
DEFAULT_STALL_TOLERANCE = 1.0

#: The optional ``int_overhead`` section: one cell (ns/pkt with the
#: INT telemetry stack on vs off).  Pre-INT documents lack the key --
#: absence is valid.
_INT_OVERHEAD_KEYS = {
    "packets": int,
    "ns_per_pkt_off": (int, float),
    "ns_per_pkt_on": (int, float),
    "overhead_ns_per_pkt": (int, float),
    "overhead_pct": (int, float),
    "hop_records": int,
}
#: Default relative tolerance on the INT-on ns/pkt for --compare.
#: Same loose gate as the stall cells: a three-hop software fabric on
#: a shared box jitters hard, and the invariant that matters (the
#: stack actually recorded hops) is checked by validation.
DEFAULT_INT_TOLERANCE = 1.0

#: The optional ``health_overhead`` section: one cell (ns/pkt with the
#: health engine ticking vs no engine).  Pre-health documents lack the
#: key -- absence is valid.
_HEALTH_OVERHEAD_KEYS = {
    "packets": int,
    "ns_per_pkt_off": (int, float),
    "ns_per_pkt_on": (int, float),
    "overhead_ns_per_pkt": (int, float),
    "overhead_pct": (int, float),
    "ticks": int,
    "rules": int,
}
#: Default relative tolerance on the engine-on ns/pkt for --compare
#: (same loose wall-clock gate as the other optional cells).
DEFAULT_HEALTH_TOLERANCE = 1.0

#: The optional ``verify_latency`` section: exhaustive rp4verify wall
#: time per staged base+snippet update (program size on the x-axis).
#: Pre-verifier documents lack the key -- absence is valid.
_VERIFY_LATENCY_CELL_KEYS = {
    "update": str,
    "stages": int,
    "classes": int,
    "unintended": int,
    "truncated": bool,
    "ms": (int, float),
}
#: Default relative tolerance on per-update verification wall time for
#: --compare (same loose wall-clock gate as the other optional cells).
DEFAULT_VERIFY_TOLERANCE = 1.0

#: The optional ``fabric_scale`` section: staged-rollout wall clock on
#: the serial fabric vs the sharded worker runtime, one cell per fleet
#: size.  Pre-sharding documents lack the key -- absence is valid.
_FABRIC_SCALE_KEYS = {
    "nodes": int,
    "workers": int,
    "wave_size": int,
    "serial_seconds": (int, float),
    "sharded_seconds": (int, float),
    "speedup_x": (int, float),
    "plan_cache_hits": int,
    "plan_cache_misses": int,
}
#: Default relative tolerance on the sharded rollout wall clock for
#: --compare.  Loose like the other wall-clock gates; the structural
#: invariant (sharded strictly beats serial) is checked by validation.
DEFAULT_FABRIC_SCALE_TOLERANCE = 1.0


def validate_bench(doc: object) -> List[str]:
    """Structural validation; returns problems (empty list = valid)."""
    problems: List[str] = []
    if not isinstance(doc, dict):
        return [f"document must be an object, got {type(doc).__name__}"]
    for key, types in _TOP_KEYS.items():
        if key not in doc:
            problems.append(f"missing top-level key {key!r}")
        elif not isinstance(doc[key], types):
            problems.append(
                f"{key!r} must be {types}, got {type(doc[key]).__name__}"
            )
    if problems:
        return problems
    if doc["schema_version"] != SCHEMA_VERSION:
        problems.append(
            f"schema_version {doc['schema_version']} != {SCHEMA_VERSION}"
        )
    if doc["kind"] != DOCUMENT_KIND:
        problems.append(f"kind {doc['kind']!r} != {DOCUMENT_KIND!r}")
    if doc["mode"] not in ("smoke", "full"):
        problems.append(f"mode {doc['mode']!r} not smoke/full")
    if not doc["results"]:
        problems.append("results must not be empty")
    switches = set()
    for i, result in enumerate(doc["results"]):
        where = f"results[{i}]"
        if not isinstance(result, dict):
            problems.append(f"{where} must be an object")
            continue
        for key, types in _RESULT_KEYS.items():
            if key not in result:
                problems.append(f"{where} missing {key!r}")
            elif not isinstance(result[key], types):
                problems.append(
                    f"{where}.{key} must be {types}, "
                    f"got {type(result[key]).__name__}"
                )
        if problems:
            continue
        switches.add(result["switch"])
        if result["switch"] not in ("ipsa", "pisa"):
            problems.append(f"{where}.switch {result['switch']!r} unknown")
        if result["packets"] <= 0:
            problems.append(f"{where}.packets must be positive")
        if result["forwarded"] + result["dropped"] != result["packets"]:
            problems.append(
                f"{where}: forwarded+dropped != packets "
                f"({result['forwarded']}+{result['dropped']} != "
                f"{result['packets']})"
            )
        if result["pps"] <= 0 or result["ns_per_pkt"] <= 0:
            problems.append(f"{where}: pps and ns_per_pkt must be positive")
        profile = result["profile"]
        for key, types in _PROFILE_KEYS.items():
            if key not in profile:
                problems.append(f"{where}.profile missing {key!r}")
            elif not isinstance(profile[key], types):
                problems.append(f"{where}.profile.{key} must be {types}")
        columnar = result.get("columnar")
        if columnar is not None:
            if not isinstance(columnar, dict):
                problems.append(f"{where}.columnar must be an object")
            else:
                bad = False
                for key, types in _COLUMNAR_KEYS.items():
                    if key not in columnar:
                        problems.append(f"{where}.columnar missing {key!r}")
                        bad = True
                    elif not isinstance(columnar[key], types):
                        problems.append(
                            f"{where}.columnar.{key} must be {types}"
                        )
                        bad = True
                if not bad:
                    if columnar["ns_per_pkt_off"] <= 0:
                        problems.append(
                            f"{where}.columnar.ns_per_pkt_off must be "
                            f"positive"
                        )
                    elif result["ns_per_pkt"] > 0:
                        implied = (
                            columnar["ns_per_pkt_off"] / result["ns_per_pkt"]
                        )
                        if abs(columnar["speedup_x"] - implied) > (
                            1e-6 * max(implied, 1.0)
                        ):
                            problems.append(
                                f"{where}.columnar.speedup_x "
                                f"{columnar['speedup_x']:.6f} inconsistent "
                                f"with ns_per_pkt_off/ns_per_pkt = "
                                f"{implied:.6f}"
                            )
        shares = profile.get("phase_shares")
        if isinstance(shares, dict) and shares:
            total = 0.0
            for phase, share in shares.items():
                if not isinstance(share, (int, float)) or not (
                    -1e-9 <= share <= 1 + 1e-9
                ):
                    problems.append(
                        f"{where}.profile.phase_shares[{phase!r}] "
                        f"out of [0, 1]"
                    )
                else:
                    total += share
            if abs(total - 1.0) > 1e-6:
                problems.append(
                    f"{where}.profile.phase_shares sum to {total:.6f}, not 1"
                )
    declared = doc["matrix"].get("switches")
    if not isinstance(declared, list) or not declared:
        problems.append("matrix.switches must be a non-empty list")
    elif not problems and switches != set(declared):
        problems.append(
            f"results cover {sorted(switches)} but matrix.switches "
            f"declares {sorted(declared)}"
        )
    problems.extend(_validate_update_stall(doc))
    problems.extend(_validate_int_overhead(doc))
    problems.extend(_validate_health_overhead(doc))
    problems.extend(_validate_verify_latency(doc))
    problems.extend(_validate_fabric_scale(doc))
    return problems


def _validate_update_stall(doc: dict) -> List[str]:
    """Check the optional ``update_stall`` section.

    Beyond structure, this enforces the transactional engine's
    headline property: wherever a case has both paths measured, the
    ``txn`` path must discard *fewer* in-flight packets and stall
    *strictly shorter* than the stop-the-world ``inplace`` baseline.
    """
    if "update_stall" not in doc:
        return []  # pre-txn-engine documents: absence is valid
    problems: List[str] = []
    section = doc["update_stall"]
    if not isinstance(section, list):
        return ["'update_stall' must be a list"]
    by_case: Dict[str, Dict[str, dict]] = {}
    for i, cell in enumerate(section):
        where = f"update_stall[{i}]"
        if not isinstance(cell, dict):
            problems.append(f"{where} must be an object")
            continue
        bad = False
        for key, types in _STALL_KEYS.items():
            if key not in cell:
                problems.append(f"{where} missing {key!r}")
                bad = True
            elif not isinstance(cell[key], types):
                problems.append(f"{where}.{key} must be {types}")
                bad = True
        if bad:
            continue
        if cell["path"] not in ("txn", "inplace"):
            problems.append(f"{where}.path {cell['path']!r} unknown")
            continue
        if cell["stall_ns"] <= 0:
            problems.append(f"{where}.stall_ns must be positive")
        if cell["drained_packets"] < 0:
            problems.append(f"{where}.drained_packets must be >= 0")
        by_case.setdefault(cell["case"], {})[cell["path"]] = cell
    for case, paths in sorted(by_case.items()):
        if "txn" not in paths or "inplace" not in paths:
            continue
        txn, inplace = paths["txn"], paths["inplace"]
        if txn["drained_packets"] >= inplace["drained_packets"]:
            problems.append(
                f"update_stall[{case}]: txn drained "
                f"{txn['drained_packets']} packets, not strictly fewer "
                f"than inplace's {inplace['drained_packets']}"
            )
        if txn["stall_ns"] >= inplace["stall_ns"]:
            problems.append(
                f"update_stall[{case}]: txn stall {txn['stall_ns']:.0f} ns "
                f"not strictly below inplace's "
                f"{inplace['stall_ns']:.0f} ns"
            )
    return problems


def _validate_int_overhead(doc: dict) -> List[str]:
    """Check the optional ``int_overhead`` section.

    Beyond structure, this enforces the cell's point: the INT run must
    actually have pushed hop records (a zero means the telemetry stage
    never fired and the "overhead" measured nothing).
    """
    if "int_overhead" not in doc:
        return []  # pre-INT documents: absence is valid
    cell = doc["int_overhead"]
    if not isinstance(cell, dict):
        return ["'int_overhead' must be an object"]
    problems: List[str] = []
    bad = False
    for key, types in _INT_OVERHEAD_KEYS.items():
        if key not in cell:
            problems.append(f"int_overhead missing {key!r}")
            bad = True
        elif not isinstance(cell[key], types):
            problems.append(f"int_overhead.{key} must be {types}")
            bad = True
    if bad:
        return problems
    if cell["packets"] <= 0:
        problems.append("int_overhead.packets must be positive")
    if cell["ns_per_pkt_off"] <= 0 or cell["ns_per_pkt_on"] <= 0:
        problems.append("int_overhead ns/pkt figures must be positive")
    if cell["hop_records"] <= 0:
        problems.append(
            "int_overhead.hop_records must be positive (the INT stage "
            "never fired, so the cell measured nothing)"
        )
    return problems


def _validate_health_overhead(doc: dict) -> List[str]:
    """Check the optional ``health_overhead`` section.

    Beyond structure, this enforces the cell's point: the engine must
    actually have ticked with rules installed (zero ticks or zero
    rules means the "overhead" run evaluated nothing).
    """
    if "health_overhead" not in doc:
        return []  # pre-health-engine documents: absence is valid
    cell = doc["health_overhead"]
    if not isinstance(cell, dict):
        return ["'health_overhead' must be an object"]
    problems: List[str] = []
    bad = False
    for key, types in _HEALTH_OVERHEAD_KEYS.items():
        if key not in cell:
            problems.append(f"health_overhead missing {key!r}")
            bad = True
        elif not isinstance(cell[key], types):
            problems.append(f"health_overhead.{key} must be {types}")
            bad = True
    if bad:
        return problems
    if cell["packets"] <= 0:
        problems.append("health_overhead.packets must be positive")
    if cell["ns_per_pkt_off"] <= 0 or cell["ns_per_pkt_on"] <= 0:
        problems.append("health_overhead ns/pkt figures must be positive")
    if cell["ticks"] <= 0:
        problems.append(
            "health_overhead.ticks must be positive (the engine never "
            "evaluated, so the cell measured nothing)"
        )
    if cell["rules"] <= 0:
        problems.append(
            "health_overhead.rules must be positive (an empty rule set "
            "evaluates nothing)"
        )
    return problems


def _validate_verify_latency(doc: dict) -> List[str]:
    """Check the optional ``verify_latency`` section.

    Beyond structure, this enforces what each cell is for: the
    enumeration must actually have produced flow classes without
    hitting the budget (a truncated run's wall time measures the
    budget, not the program), and the shipped compositions are the
    known-safe suite -- any unintended divergence means the verifier
    itself regressed, not the update.
    """
    if "verify_latency" not in doc:
        return []  # pre-verifier documents: absence is valid
    section = doc["verify_latency"]
    if not isinstance(section, dict):
        return ["'verify_latency' must be an object"]
    problems: List[str] = []
    for key, types in (("best_of", int), ("max_classes", int),
                       ("cells", list)):
        if key not in section:
            problems.append(f"verify_latency missing {key!r}")
        elif not isinstance(section[key], types):
            problems.append(f"verify_latency.{key} must be {types}")
    if problems:
        return problems
    if not section["cells"]:
        problems.append("verify_latency.cells must not be empty")
    for i, cell in enumerate(section["cells"]):
        where = f"verify_latency.cells[{i}]"
        if not isinstance(cell, dict):
            problems.append(f"{where} must be an object")
            continue
        bad = False
        for key, types in _VERIFY_LATENCY_CELL_KEYS.items():
            if key not in cell:
                problems.append(f"{where} missing {key!r}")
                bad = True
            elif not isinstance(cell[key], types):
                problems.append(f"{where}.{key} must be {types}")
                bad = True
        if bad:
            continue
        if cell["classes"] <= 0:
            problems.append(
                f"{where}.classes must be positive (the enumeration "
                f"never ran, so the cell measured nothing)"
            )
        if cell["ms"] <= 0:
            problems.append(f"{where}.ms must be positive")
        if cell["truncated"]:
            problems.append(
                f"{where}: truncated enumeration (wall time measures "
                f"the class budget, not the program)"
            )
        if cell["unintended"] != 0:
            problems.append(
                f"{where}: {cell['unintended']} unintended divergence(s) "
                f"on a known-safe shipped update (verifier regression)"
            )
    return problems


def _validate_fabric_scale(doc: dict) -> List[str]:
    """Check the optional ``fabric_scale`` section.

    Beyond structure, this enforces the sharded runtime's headline
    property: at every measured fleet size the sharded rollout must be
    *strictly faster* than the serial fabric, the recorded speedup
    must be consistent with the two wall clocks, and the fleet-wide
    plan cache must actually have produced hits (zero hits means the
    amortization the cell exists to measure never happened).
    """
    if "fabric_scale" not in doc:
        return []  # pre-sharding documents: absence is valid
    section = doc["fabric_scale"]
    if not isinstance(section, list):
        return ["'fabric_scale' must be a list"]
    if not section:
        return ["'fabric_scale' must not be empty"]
    problems: List[str] = []
    for i, cell in enumerate(section):
        where = f"fabric_scale[{i}]"
        if not isinstance(cell, dict):
            problems.append(f"{where} must be an object")
            continue
        bad = False
        for key, types in _FABRIC_SCALE_KEYS.items():
            if key not in cell:
                problems.append(f"{where} missing {key!r}")
                bad = True
            elif not isinstance(cell[key], types):
                problems.append(f"{where}.{key} must be {types}")
                bad = True
        if bad:
            continue
        for key in ("nodes", "workers", "wave_size"):
            if cell[key] <= 0:
                problems.append(f"{where}.{key} must be positive")
        if cell["serial_seconds"] <= 0 or cell["sharded_seconds"] <= 0:
            problems.append(f"{where} wall clocks must be positive")
            continue
        if cell["sharded_seconds"] >= cell["serial_seconds"]:
            problems.append(
                f"{where}: sharded rollout took "
                f"{cell['sharded_seconds']:.3f} s, not strictly below "
                f"the serial fabric's {cell['serial_seconds']:.3f} s"
            )
        implied = cell["serial_seconds"] / cell["sharded_seconds"]
        if abs(cell["speedup_x"] - implied) > 1e-6 * max(implied, 1.0):
            problems.append(
                f"{where}.speedup_x {cell['speedup_x']:.6f} inconsistent "
                f"with serial/sharded = {implied:.6f}"
            )
        if cell["plan_cache_hits"] <= 0:
            problems.append(
                f"{where}.plan_cache_hits must be positive (no hits "
                f"means the fleet-wide amortization never happened)"
            )
        if cell["plan_cache_misses"] <= 0:
            problems.append(
                f"{where}.plan_cache_misses must be positive (someone "
                f"must have compiled the plan the hits reused)"
            )
    return problems


def data_quality_warnings(doc: dict) -> List[str]:
    """Non-fatal data-quality notes for ``--validate``.

    Structural validity says the document is well-formed, not that its
    numbers are trustworthy.  The one systematic hazard the matrix has
    hit in practice is profiler overhead: when the profiled run costs
    more than :data:`OVERHEAD_WARN_PCT` percent over the plain scalar
    run, the phase shares describe the instrumentation as much as the
    dataplane and should be read as indicative only.  Returns warning
    strings; an empty list means nothing to flag.
    """
    warnings: List[str] = []
    results = doc.get("results") if isinstance(doc, dict) else None
    for result in results or []:
        if not isinstance(result, dict):
            continue
        profile = result.get("profile")
        if not isinstance(profile, dict):
            continue
        overhead = profile.get("overhead_pct")
        if not isinstance(overhead, (int, float)):
            continue
        if overhead > OVERHEAD_WARN_PCT:
            cell = (
                f"{result.get('switch')}/{result.get('case')} "
                f"n={result.get('packets')}"
            )
            warnings.append(
                f"{cell}: profiler overhead {overhead:+.1f}% exceeds "
                f"{OVERHEAD_WARN_PCT:.0f}% -- phase shares are dominated "
                f"by instrumentation cost; treat them as indicative only"
            )
    return warnings


# -- regression comparison -------------------------------------------------


@dataclass
class MetricDelta:
    """One metric's old-vs-new movement for one matrix cell."""

    cell: str  # "ipsa/C1"
    metric: str
    old: float
    new: float
    tolerance: float
    regressed: bool

    @property
    def change_pct(self) -> float:
        if self.old == 0:
            return 0.0
        return (self.new - self.old) / self.old * 100.0


@dataclass
class Comparison:
    """The full old-vs-new report."""

    deltas: List[MetricDelta] = field(default_factory=list)
    missing_cells: List[str] = field(default_factory=list)
    new_cells: List[str] = field(default_factory=list)

    @property
    def regressions(self) -> List[MetricDelta]:
        return [d for d in self.deltas if d.regressed]

    @property
    def ok(self) -> bool:
        return not self.regressions


def _index_results(doc: dict) -> Dict[Tuple[str, str], dict]:
    """Best (largest-trace) result per (switch, case) cell."""
    index: Dict[Tuple[str, str], dict] = {}
    for result in doc.get("results", []):
        key = (result["switch"], result["case"])
        best = index.get(key)
        if best is None or result["packets"] > best["packets"]:
            index[key] = result
    return index


def _index_stall(doc: dict) -> Dict[Tuple[str, str], dict]:
    """Stall cells keyed by (case, path); empty for old documents."""
    return {
        (cell["case"], cell["path"]): cell
        for cell in doc.get("update_stall", [])
        if isinstance(cell, dict) and "case" in cell and "path" in cell
    }


def compare_documents(
    old: dict,
    new: dict,
    relative_tolerance: float = DEFAULT_RELATIVE_TOLERANCE,
    overhead_tolerance_pct: float = DEFAULT_OVERHEAD_TOLERANCE_PCT,
    stall_tolerance: float = DEFAULT_STALL_TOLERANCE,
    int_tolerance: float = DEFAULT_INT_TOLERANCE,
    health_tolerance: float = DEFAULT_HEALTH_TOLERANCE,
    verify_tolerance: float = DEFAULT_VERIFY_TOLERANCE,
    fabric_tolerance: float = DEFAULT_FABRIC_SCALE_TOLERANCE,
    columnar_tolerance: float = DEFAULT_COLUMNAR_TOLERANCE,
) -> Comparison:
    """Per-metric regression check of ``new`` against baseline ``old``.

    A cell regresses when its throughput falls more than
    ``relative_tolerance`` below the baseline (pps down / ns-per-pkt
    up), or when profile overhead grows by more than
    ``overhead_tolerance_pct`` percentage points.  Cells are matched
    on (switch, case) using each document's largest trace.

    ``update_stall`` cells (matched on case/path) regress when the
    stall window grows beyond ``stall_tolerance`` or when an update
    starts discarding more in-flight packets than the baseline did;
    baselines without the section contribute ``new cell`` notes only.

    The ``int_overhead`` cell regresses when the INT-on ns/pkt grows
    beyond ``int_tolerance`` relative to the baseline; as with stall
    cells, a baseline lacking the section yields a ``new cell`` note.
    The ``health_overhead`` cell is gated the same way on its
    engine-on ns/pkt via ``health_tolerance``.  ``verify_latency``
    cells (matched on update name) regress when a staged update's
    exhaustive verification wall time grows beyond
    ``verify_tolerance`` or when its flow-class count changes at all
    (enumeration is deterministic, so class drift is a verifier
    behavior change, not noise).  ``fabric_scale`` cells (matched on
    fleet size) regress when the sharded rollout wall clock grows
    beyond ``fabric_tolerance`` or the measured speedup falls below
    the baseline by more than the same factor.

    Per-result ``columnar`` objects (matched like the throughput cells)
    regress when the columnar speedup falls more than
    ``columnar_tolerance`` below the baseline or the scalar
    (columnar-off) ns/pkt grows beyond ``relative_tolerance``; a
    baseline without the object yields a ``new cell`` note.
    """
    comparison = Comparison()
    old_index = _index_results(old)
    new_index = _index_results(new)
    comparison.missing_cells = [
        "/".join(key) for key in sorted(old_index.keys() - new_index.keys())
    ]
    comparison.new_cells = [
        "/".join(key) for key in sorted(new_index.keys() - old_index.keys())
    ]
    for key in sorted(old_index.keys() & new_index.keys()):
        cell = "/".join(key)
        old_result, new_result = old_index[key], new_index[key]
        # Columnar-accelerated headline figures are trace-size
        # dependent (the per-batch column build amortizes, so n=1000
        # runs several times faster per packet than n=60), which makes
        # cross-size headline gating meaningless for those cells: the
        # full-baseline-vs-smoke compare would flag the amortization
        # gap itself.  When both documents carry a columnar record but
        # measured different sizes, the headline deltas go advisory
        # and the size-independent scalar basis (``ns_pkt_off`` below)
        # carries the gate instead.
        gate_headline = old_result["packets"] == new_result["packets"] or not (
            isinstance(old_result.get("columnar"), dict)
            and isinstance(new_result.get("columnar"), dict)
        )
        old_pps, new_pps = old_result["pps"], new_result["pps"]
        comparison.deltas.append(
            MetricDelta(
                cell=cell,
                metric="pps",
                old=old_pps,
                new=new_pps,
                tolerance=relative_tolerance,
                regressed=gate_headline
                and new_pps < old_pps * (1.0 - relative_tolerance),
            )
        )
        old_ns = old_result["ns_per_pkt"]
        new_ns = new_result["ns_per_pkt"]
        comparison.deltas.append(
            MetricDelta(
                cell=cell,
                metric="ns_per_pkt",
                old=old_ns,
                new=new_ns,
                tolerance=relative_tolerance,
                regressed=gate_headline
                and new_ns > old_ns * (1.0 + relative_tolerance),
            )
        )
        old_ovh = old_result["profile"]["overhead_pct"]
        new_ovh = new_result["profile"]["overhead_pct"]
        comparison.deltas.append(
            MetricDelta(
                cell=cell,
                metric="overhead_pct",
                old=old_ovh,
                new=new_ovh,
                tolerance=overhead_tolerance_pct,
                regressed=new_ovh > old_ovh + overhead_tolerance_pct,
            )
        )
        old_col = old_result.get("columnar")
        new_col = new_result.get("columnar")
        if isinstance(old_col, dict) and not isinstance(new_col, dict):
            comparison.missing_cells.append(f"columnar:{cell}")
        elif isinstance(new_col, dict) and not isinstance(old_col, dict):
            comparison.new_cells.append(f"columnar:{cell}")
        elif isinstance(old_col, dict) and isinstance(new_col, dict):
            old_off = old_col["ns_per_pkt_off"]
            new_off = new_col["ns_per_pkt_off"]
            comparison.deltas.append(
                MetricDelta(
                    cell=cell,
                    metric="ns_pkt_off",
                    old=old_off,
                    new=new_off,
                    tolerance=relative_tolerance,
                    regressed=new_off > old_off * (1.0 + relative_tolerance),
                )
            )
            # The speedup ratio is trace-size dependent (per-batch
            # compile/column-build cost amortizes over more packets),
            # so it is only gated when the two documents measured the
            # same size -- e.g. full-vs-full developer runs.  CI's
            # full-baseline-vs-smoke compare skips it and gates the
            # smoke document on an absolute floor instead.
            if old_result["packets"] == new_result["packets"]:
                old_x, new_x = old_col["speedup_x"], new_col["speedup_x"]
                comparison.deltas.append(
                    MetricDelta(
                        cell=cell,
                        metric="col_speedup",
                        old=old_x,
                        new=new_x,
                        tolerance=columnar_tolerance,
                        regressed=new_x < old_x * (1.0 - columnar_tolerance),
                    )
                )
    old_stall = _index_stall(old)
    new_stall = _index_stall(new)
    comparison.missing_cells += [
        f"stall:{case}/{path}"
        for case, path in sorted(old_stall.keys() - new_stall.keys())
    ]
    comparison.new_cells += [
        f"stall:{case}/{path}"
        for case, path in sorted(new_stall.keys() - old_stall.keys())
    ]
    for key in sorted(old_stall.keys() & new_stall.keys()):
        cell = f"stall:{key[0]}/{key[1]}"
        old_cell, new_cell = old_stall[key], new_stall[key]
        old_ns, new_ns = old_cell["stall_ns"], new_cell["stall_ns"]
        comparison.deltas.append(
            MetricDelta(
                cell=cell,
                metric="stall_ns",
                old=old_ns,
                new=new_ns,
                tolerance=stall_tolerance,
                regressed=new_ns > old_ns * (1.0 + stall_tolerance),
            )
        )
        old_drained = old_cell["drained_packets"]
        new_drained = new_cell["drained_packets"]
        comparison.deltas.append(
            MetricDelta(
                cell=cell,
                metric="drained_packets",
                old=old_drained,
                new=new_drained,
                tolerance=0.0,
                regressed=new_drained > old_drained,
            )
        )
    old_int = old.get("int_overhead")
    new_int = new.get("int_overhead")
    if isinstance(old_int, dict) and not isinstance(new_int, dict):
        comparison.missing_cells.append("int_overhead")
    elif isinstance(new_int, dict) and not isinstance(old_int, dict):
        comparison.new_cells.append("int_overhead")
    elif isinstance(old_int, dict) and isinstance(new_int, dict):
        old_ns = old_int["ns_per_pkt_on"]
        new_ns = new_int["ns_per_pkt_on"]
        comparison.deltas.append(
            MetricDelta(
                cell="int_overhead",
                metric="ns_per_pkt_on",
                old=old_ns,
                new=new_ns,
                tolerance=int_tolerance,
                regressed=new_ns > old_ns * (1.0 + int_tolerance),
            )
        )
    old_health = old.get("health_overhead")
    new_health = new.get("health_overhead")
    if isinstance(old_health, dict) and not isinstance(new_health, dict):
        comparison.missing_cells.append("health_overhead")
    elif isinstance(new_health, dict) and not isinstance(old_health, dict):
        comparison.new_cells.append("health_overhead")
    elif isinstance(old_health, dict) and isinstance(new_health, dict):
        old_ns = old_health["ns_per_pkt_on"]
        new_ns = new_health["ns_per_pkt_on"]
        comparison.deltas.append(
            MetricDelta(
                cell="health_overhead",
                metric="ns_per_pkt_on",
                old=old_ns,
                new=new_ns,
                tolerance=health_tolerance,
                regressed=new_ns > old_ns * (1.0 + health_tolerance),
            )
        )

    def _index_verify(doc: dict) -> Dict[str, dict]:
        section = doc.get("verify_latency")
        if not isinstance(section, dict):
            return {}
        return {
            cell["update"]: cell
            for cell in section.get("cells", [])
            if isinstance(cell, dict) and "update" in cell
        }

    old_verify = _index_verify(old)
    new_verify = _index_verify(new)
    comparison.missing_cells += [
        f"verify:{name}" for name in sorted(old_verify.keys() - new_verify.keys())
    ]
    comparison.new_cells += [
        f"verify:{name}" for name in sorted(new_verify.keys() - old_verify.keys())
    ]
    for name in sorted(old_verify.keys() & new_verify.keys()):
        cell = f"verify:{name}"
        old_cell, new_cell = old_verify[name], new_verify[name]
        old_ms, new_ms = old_cell["ms"], new_cell["ms"]
        comparison.deltas.append(
            MetricDelta(
                cell=cell,
                metric="ms",
                old=old_ms,
                new=new_ms,
                tolerance=verify_tolerance,
                regressed=new_ms > old_ms * (1.0 + verify_tolerance),
            )
        )
        old_classes = old_cell["classes"]
        new_classes = new_cell["classes"]
        comparison.deltas.append(
            MetricDelta(
                cell=cell,
                metric="classes",
                old=old_classes,
                new=new_classes,
                tolerance=0.0,
                regressed=new_classes != old_classes,
            )
        )

    def _index_fabric(doc: dict) -> Dict[int, dict]:
        section = doc.get("fabric_scale")
        if not isinstance(section, list):
            return {}
        return {
            cell["nodes"]: cell
            for cell in section
            if isinstance(cell, dict) and isinstance(cell.get("nodes"), int)
        }

    old_fabric = _index_fabric(old)
    new_fabric = _index_fabric(new)
    comparison.missing_cells += [
        f"fabric:{nodes}" for nodes in sorted(old_fabric.keys() - new_fabric.keys())
    ]
    comparison.new_cells += [
        f"fabric:{nodes}" for nodes in sorted(new_fabric.keys() - old_fabric.keys())
    ]
    for nodes in sorted(old_fabric.keys() & new_fabric.keys()):
        cell = f"fabric:{nodes}"
        old_cell, new_cell = old_fabric[nodes], new_fabric[nodes]
        old_s, new_s = old_cell["sharded_seconds"], new_cell["sharded_seconds"]
        comparison.deltas.append(
            MetricDelta(
                cell=cell,
                metric="sharded_s",
                old=old_s,
                new=new_s,
                tolerance=fabric_tolerance,
                regressed=new_s > old_s * (1.0 + fabric_tolerance),
            )
        )
        old_x, new_x = old_cell["speedup_x"], new_cell["speedup_x"]
        comparison.deltas.append(
            MetricDelta(
                cell=cell,
                metric="speedup_x",
                old=old_x,
                new=new_x,
                tolerance=fabric_tolerance,
                regressed=new_x < old_x * (1.0 - fabric_tolerance),
            )
        )
    return comparison


def format_comparison(comparison: Comparison) -> str:
    """Human-readable regression report."""
    lines = [
        f"{'cell':12s} {'metric':12s} {'old':>12s} {'new':>12s} "
        f"{'change':>8s}  verdict"
    ]
    for delta in comparison.deltas:
        verdict = "REGRESSED" if delta.regressed else "ok"
        lines.append(
            f"{delta.cell:12s} {delta.metric:12s} {delta.old:12.1f} "
            f"{delta.new:12.1f} {delta.change_pct:+7.1f}%  {verdict}"
        )
    for cell in comparison.missing_cells:
        lines.append(f"{cell}: present in baseline, MISSING in new run")
    for cell in comparison.new_cells:
        lines.append(f"{cell}: new cell (no baseline)")
    count = len(comparison.regressions)
    lines.append(
        "no regressions"
        if count == 0
        else f"{count} metric(s) regressed beyond tolerance"
    )
    return "\n".join(lines)

"""Plain-text table rendering for bench output (paper-style rows)."""

from __future__ import annotations

from typing import List, Sequence


def format_table(
    headers: Sequence[str], rows: List[Sequence[object]], title: str = ""
) -> str:
    """Render an aligned ASCII table."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)

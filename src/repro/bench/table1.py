"""Table 1: compiling and loading time comparison.

Two comparisons, as in the paper:

* **bmv2 vs ipbm (software flow)** -- genuinely *measured* on the
  behavioral switches.  The bmv2/PISA flow recompiles the full updated
  P4 program, swaps the whole configuration, and repopulates every
  table; the ipbm/rP4 flow compiles only the snippet + commands,
  downloads the delta templates, and populates only the new tables.
* **PISA vs IPSA (FPGA flow)** -- modeled by scaling the measured
  software times with per-flow hardware factors calibrated once from
  the paper's C1 column (FPGA synthesis and bitstream/config load are
  not reproducible in Python).  The *ratios* still come from the
  measured full-vs-incremental structure.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.p4.hlir import build_hlir
from repro.p4.parser import parse_p4
from repro.pisa.pipeline import FixedPipeline
from repro.pisa.switch import PisaSwitch
from repro.programs import (
    base_p4_source,
    base_rp4_source,
    ecmp_load_script,
    ecmp_rp4_source,
    flowprobe_load_script,
    flowprobe_rp4_source,
    populate_base_tables,
    populate_ecmp_tables,
    populate_flowprobe_tables,
    populate_srv6_tables,
    srv6_load_script,
    srv6_rp4_source,
)
from repro.programs.p4_variants import (
    ecmp_p4_source,
    flowprobe_p4_source,
    srv6_p4_source,
)
from repro.runtime.controller import Controller
from repro.tables.table import Table

#: Per-use-case artifacts: (full P4 source, rP4 snippet, script,
#: snippet file name, new-table populate function).
USE_CASES: Dict[str, tuple] = {
    "C1": (
        ecmp_p4_source,
        ecmp_rp4_source,
        ecmp_load_script,
        "ecmp.rp4",
        populate_ecmp_tables,
    ),
    "C2": (
        srv6_p4_source,
        srv6_rp4_source,
        srv6_load_script,
        "srv6.rp4",
        populate_srv6_tables,
    ),
    "C3": (
        flowprobe_p4_source,
        flowprobe_rp4_source,
        flowprobe_load_script,
        "flowprobe.rp4",
        populate_flowprobe_tables,
    ),
}

#: Hardware scale factors, calibrated once from the paper's C1 column
#: (PISA: 3126 ms synthesis vs. our sub-second software compile; IPSA:
#: template generation is the same work in both flows).
HW_COMPILE_FACTOR = {"PISA": 400.0, "IPSA": 2.5}
HW_LOAD_FACTOR = {"PISA": 60.0, "IPSA": 1.7}


@dataclass
class Table1Row:
    """One (flow, use case) measurement in milliseconds.

    Following the paper, ``t_load_ms`` excludes table population;
    ``t_populate_ms`` reports it separately (the P4 flow repopulates
    *everything*, the rP4 flow only the new tables -- "making the
    latter more advantageous").
    """

    flow: str  # "bmv2" / "ipbm" / "PISA" / "IPSA"
    case: str
    t_compile_ms: float
    t_load_ms: float
    t_populate_ms: float = 0.0
    entries_populated: int = 0

    @property
    def total_ms(self) -> float:
        return self.t_compile_ms + self.t_load_ms


def _snapshot_entries(tables: Dict[str, Table]) -> Dict[str, list]:
    """The controller's shadow copy of desired table state."""
    return {name: table.entries() for name, table in tables.items()}


def measure_bmv2_flow(case: str) -> Table1Row:
    """The P4 flow: full recompile + full reload + full repopulation."""
    p4_variant, _, _, _, populate_case = USE_CASES[case]
    variant_source = p4_variant()

    # Desired state after the update: base + use case entries.
    scratch = PisaSwitch()
    scratch.load(variant_source)
    populate_base_tables(scratch.tables)
    populate_case(scratch.tables)
    entries = _snapshot_entries(scratch.tables)

    # The running switch, about to be updated.
    switch = PisaSwitch()
    switch.load(base_p4_source())
    populate_base_tables(switch.tables)

    started = time.perf_counter()
    hlir = build_hlir(parse_p4(variant_source))
    FixedPipeline(hlir, {}, {}, n_stages=None)  # back-end placement pass
    t_compile = time.perf_counter() - started

    # Loading = the configuration swap; repopulation timed separately
    # (the paper's t_L excludes population for both flows).
    started = time.perf_counter()
    switch.load(hlir)
    t_load = time.perf_counter() - started

    started = time.perf_counter()
    n_entries = 0
    for table_name, rows in entries.items():
        table = switch.tables.get(table_name)
        if table is None:
            continue
        for entry in rows:
            table.add_entry(entry)
            n_entries += 1
    t_populate = time.perf_counter() - started
    return Table1Row(
        flow="bmv2",
        case=case,
        t_compile_ms=t_compile * 1e3,
        t_load_ms=t_load * 1e3,
        t_populate_ms=t_populate * 1e3,
        entries_populated=n_entries,
    )


def measure_ipbm_flow(case: str) -> Table1Row:
    """The rP4 flow: snippet compile + delta download + new tables only."""
    _, rp4_snippet, script, snippet_name, populate_case = USE_CASES[case]

    controller = Controller()
    controller.load_base(base_rp4_source())
    populate_base_tables(controller.switch.tables)

    before = {
        name: len(table) for name, table in controller.switch.tables.items()
    }
    plan, stats, timing = controller.run_script(
        script(), {snippet_name: rp4_snippet()}
    )
    started = time.perf_counter()
    populate_case(controller.switch.tables)
    t_populate = time.perf_counter() - started
    n_entries = sum(
        len(table) - before.get(name, 0)
        for name, table in controller.switch.tables.items()
    )
    return Table1Row(
        flow="ipbm",
        case=case,
        t_compile_ms=timing.compile_seconds * 1e3,
        t_load_ms=timing.load_seconds * 1e3,
        t_populate_ms=t_populate * 1e3,
        entries_populated=n_entries,
    )


def hardware_flow_model(software: Table1Row) -> Table1Row:
    """Scale a measured software row into its FPGA-flow analogue."""
    arch = "PISA" if software.flow == "bmv2" else "IPSA"
    return Table1Row(
        flow=arch,
        case=software.case,
        t_compile_ms=software.t_compile_ms * HW_COMPILE_FACTOR[arch],
        t_load_ms=software.t_load_ms * HW_LOAD_FACTOR[arch],
        t_populate_ms=software.t_populate_ms,
        entries_populated=software.entries_populated,
    )


def table1(cases: Tuple[str, ...] = ("C1", "C2", "C3")) -> List[Table1Row]:
    """All rows of Table 1 (hardware model + software measurement)."""
    rows: List[Table1Row] = []
    for case in cases:
        bmv2 = measure_bmv2_flow(case)
        ipbm = measure_ipbm_flow(case)
        rows += [
            hardware_flow_model(bmv2),
            hardware_flow_model(ipbm),
            bmv2,
            ipbm,
        ]
    return rows

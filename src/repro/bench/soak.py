"""The fleet soak harness: ``python -m repro.bench.soak``.

Builds an ``n_nodes`` fleet, shards it across device workers, and
replays a known-forwarding trace round-robin through every node while
staged rollouts cycle the fleet between the base design and the SRv6
overlay the whole time.  The run is one long consistency experiment:

* **Traffic correctness** -- every injected packet must be delivered
  (the replay trace forwards on the base design *and* under the SRv6
  overlay, so any drop or loop is a runtime bug, not a workload
  artifact).
* **Metric consistency** -- after the final shard merge the central
  registry's ``fabric.*`` counter sums must equal the
  :class:`~repro.runtime.fabric.FabricStats` totals exactly; the
  shard snapshot protocol is lossless or it is broken.
* **Memory stability** -- RSS is sampled throughout; growth over the
  post-build baseline must stay under a bound.  The bounded control
  channel logs are checked too: a fleet that soaks for 10M packets
  with unbounded per-device logs would not be stable.
* **Rollout liveness** -- at least one full staged-rollout /
  rollback cycle must complete, and none may error.

Traffic batches and rollout cycles are interleaved on one thread: the
device workers serialize framed commands per worker, and on the GIL
there is no wall-clock parallelism to be had between a rollout thread
and a traffic thread anyway -- interleaving keeps the run
deterministic while the fleet still takes every wave of every rollout
with live traffic in between.

Modes::

    python -m repro.bench.soak                       # full: 1000 nodes, 10M pkts
    python -m repro.bench.soak --nodes 50 --packets 100000 --validate
    python -m repro.bench.soak --json --out SOAK.json
"""

from __future__ import annotations

import argparse
import gc
import json
import resource
import sys
import time
from typing import List, Optional, Tuple

from repro.bench.scenarios import make_fleet
from repro.programs import srv6_load_script, srv6_rp4_source
from repro.workloads.builders import ipv4_packet

#: Full-mode defaults: the ISSUE's headline soak.  Two workers, not
#: more -- on a single-core box extra worker threads only thrash the
#: scheduler (see measure_fabric_scale).
FULL_NODES = 1000
FULL_PACKETS = 10_000_000
DEFAULT_WORKERS = 2
DEFAULT_WAVE_SIZE = 25
DEFAULT_BATCH = 2000
#: Traffic batches between rollout cycles; with the default batch size
#: a full run takes a rollout wave roughly every 100k packets.
DEFAULT_ROLLOUT_EVERY = 50
#: Allowed RSS growth over the *warm* baseline.  The baseline is
#: re-taken after the first rollout cycle completes: that cycle
#: establishes the steady-state working set -- every node's undo
#: design snapshot, the merged per-node metric instruments, and the
#: allocator's high-water arenas (a 1000-node cycle holds 1000 fresh
#: designs at peak, and CPython arenas do not shrink back).  Stability
#: means growth *after* that plateau stays bounded.
DEFAULT_MAX_RSS_GROWTH_MB = 256.0

_PAGE_SIZE = resource.getpagesize()


def rss_bytes() -> int:
    """Current resident set size.

    Reads ``/proc/self/statm`` (Linux); falls back to the peak RSS
    from ``getrusage`` elsewhere -- a peak is still usable for a
    growth bound, just coarser.
    """
    try:
        with open("/proc/self/statm") as fh:
            return int(fh.read().split()[1]) * _PAGE_SIZE
    except (OSError, IndexError, ValueError):
        return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024


def _metric_sum(registry, name: str) -> float:
    return sum(s.value for s in registry.collect() if s.name == name)


def run_soak(
    n_nodes: int = FULL_NODES,
    n_packets: int = FULL_PACKETS,
    n_workers: int = DEFAULT_WORKERS,
    wave_size: int = DEFAULT_WAVE_SIZE,
    batch: int = DEFAULT_BATCH,
    rollout_every: int = DEFAULT_ROLLOUT_EVERY,
    max_rss_growth_mb: float = DEFAULT_MAX_RSS_GROWTH_MB,
    log=None,
) -> dict:
    """Run the soak; returns the report document (see module doc).

    The report's ``checks`` list holds every pass/fail with detail;
    ``ok`` is their conjunction.
    """
    if n_packets <= 0 or batch <= 0 or rollout_every <= 0:
        raise ValueError("packets, batch, and rollout_every must be positive")

    script = srv6_load_script()
    sources = {"srv6.rp4": srv6_rp4_source()}
    packet = ipv4_packet("10.1.0.1", "10.2.0.5")
    probe_trace = [(packet, 0)]

    build_start = time.perf_counter()
    fabric = make_fleet(n_nodes)
    fabric.shard(n_workers)
    names = list(fabric.nodes)
    build_seconds = time.perf_counter() - build_start
    if log is not None:
        log(
            f"fleet: {n_nodes} nodes across {n_workers} workers "
            f"in {build_seconds:.1f} s"
        )

    sent = 0
    delivered = 0
    rollout_cycles = 0
    rollout_errors: List[str] = []
    rollout_seconds = 0.0
    cursor = 0  # round-robin ingress position

    try:
        # Settle: warm every live plan, then freeze the fleet out of
        # the young GC generations -- it is long-lived state and
        # rescanning a 1000-node object graph every collection is the
        # dominant cost at scale.
        for name in names:
            fabric.node(name).switch.dp.plan()
        gc.collect()
        gc.freeze()
        rss_build = rss_bytes()
        rss_baseline = rss_build  # rebased after the first cycle
        rss_peak = rss_baseline
        warmed = False

        loop_start = time.perf_counter()
        batch_index = 0
        while sent < n_packets:
            count = min(batch, n_packets - sent)
            items: List[Tuple[str, bytes, int]] = [
                (names[(cursor + i) % n_nodes], packet, 0)
                for i in range(count)
            ]
            cursor = (cursor + count) % n_nodes
            results = fabric.send_batch(items)
            sent += count
            delivered += sum(1 for r in results if r is not None)
            batch_index += 1

            if batch_index % rollout_every == 0 or sent >= n_packets:
                cycle_start = time.perf_counter()
                try:
                    fabric.staged_rollout(
                        script,
                        sources,
                        wave_size=wave_size,
                        probe_trace=probe_trace,
                    )
                    fabric.rollback_all()
                    rollout_cycles += 1
                except Exception as exc:  # recorded, run continues
                    rollout_errors.append(f"{type(exc).__name__}: {exc}")
                rollout_seconds += time.perf_counter() - cycle_start
                if not warmed:
                    # First cycle done: the working set is at steady
                    # state; stability is measured from here.
                    warmed = True
                    rss_baseline = rss_bytes()
                    rss_peak = rss_baseline

            if batch_index % 10 == 0 or sent >= n_packets:
                fabric.sync_metrics()
                rss_peak = max(rss_peak, rss_bytes())
                if log is not None and (
                    batch_index % (rollout_every * 2) == 0
                    or sent >= n_packets
                ):
                    elapsed = time.perf_counter() - loop_start
                    log(
                        f"{sent}/{n_packets} pkts "
                        f"({sent / max(elapsed, 1e-9):.0f} pps), "
                        f"{rollout_cycles} rollout cycles, rss "
                        f"+{(rss_peak - rss_baseline) / 2**20:.1f} MB"
                    )
        soak_seconds = time.perf_counter() - loop_start

        fabric.sync_metrics()
        rss_peak = max(rss_peak, rss_bytes())
        stats = fabric.stats
        metric_injected = _metric_sum(fabric.metrics, "fabric.injected")
        metric_delivered = _metric_sum(fabric.metrics, "fabric.delivered")
        metric_dropped = _metric_sum(fabric.metrics, "fabric.hop_dropped")
        log_capacities_ok = all(
            fabric.node(name).channel.log.maxlen is not None
            and len(fabric.node(name).channel.log)
            <= fabric.node(name).channel.log.maxlen
            for name in names
        )
    finally:
        fabric.unshard()
        gc.unfreeze()

    # Probe traffic is injected device-side (worker.probe_batch), so
    # replay accounting is not perturbed by the rollout gates: every
    # FabricStats packet is one of ours.
    rss_growth_mb = (rss_peak - rss_baseline) / 2**20
    checks = [
        {
            "name": "zero_drops",
            "ok": stats.dropped == 0 and stats.loops_cut == 0,
            "detail": f"dropped={stats.dropped} loops_cut={stats.loops_cut}",
        },
        {
            "name": "all_delivered",
            "ok": sent == delivered == stats.injected == stats.delivered,
            "detail": (
                f"sent={sent} delivered={delivered} "
                f"stats.injected={stats.injected} "
                f"stats.delivered={stats.delivered}"
            ),
        },
        {
            "name": "metrics_consistent",
            "ok": (
                metric_injected == stats.injected
                and metric_delivered == stats.delivered
                and metric_dropped == stats.dropped
            ),
            "detail": (
                f"fabric.injected={metric_injected:.0f}/{stats.injected} "
                f"fabric.delivered={metric_delivered:.0f}/{stats.delivered} "
                f"fabric.hop_dropped={metric_dropped:.0f}/{stats.dropped}"
            ),
        },
        {
            "name": "channel_logs_bounded",
            "ok": log_capacities_ok,
            "detail": "every node's control-channel log ring is capped",
        },
        {
            "name": "rss_bounded",
            "ok": rss_growth_mb <= max_rss_growth_mb,
            "detail": (
                f"growth {rss_growth_mb:.1f} MB over the "
                f"{rss_baseline / 2**20:.1f} MB warm baseline "
                f"(build {rss_build / 2**20:.1f} MB, "
                f"bound {max_rss_growth_mb:.0f} MB)"
            ),
        },
        {
            "name": "rollouts_clean",
            "ok": rollout_cycles >= 1 and not rollout_errors,
            "detail": (
                f"{rollout_cycles} cycles, errors: "
                + ("; ".join(rollout_errors) if rollout_errors else "none")
            ),
        },
    ]
    return {
        "nodes": n_nodes,
        "workers": n_workers,
        "wave_size": wave_size,
        "batch": batch,
        "packets": sent,
        "delivered": delivered,
        "build_seconds": build_seconds,
        "soak_seconds": soak_seconds,
        "rollout_cycles": rollout_cycles,
        "rollout_seconds": rollout_seconds,
        "pps": sent / max(soak_seconds, 1e-9),
        "rss_build_mb": rss_build / 2**20,
        "rss_baseline_mb": rss_baseline / 2**20,
        "rss_growth_mb": rss_growth_mb,
        "checks": checks,
        "ok": all(check["ok"] for check in checks),
    }


def build_parser(prog: str = "repro.bench.soak") -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=prog,
        description="fleet soak: replay under continuous staged rollout",
    )
    parser.add_argument("--nodes", type=int, default=FULL_NODES)
    parser.add_argument("--packets", type=int, default=FULL_PACKETS)
    parser.add_argument("--workers", type=int, default=DEFAULT_WORKERS)
    parser.add_argument("--wave-size", type=int, default=DEFAULT_WAVE_SIZE)
    parser.add_argument("--batch", type=int, default=DEFAULT_BATCH)
    parser.add_argument(
        "--rollout-every", type=int, default=DEFAULT_ROLLOUT_EVERY,
        help="traffic batches between staged-rollout cycles",
    )
    parser.add_argument(
        "--max-rss-growth-mb", type=float, default=DEFAULT_MAX_RSS_GROWTH_MB,
    )
    parser.add_argument(
        "--validate", action="store_true",
        help="exit nonzero unless every soak check passes",
    )
    parser.add_argument("--json", action="store_true", dest="as_json")
    parser.add_argument("--out", help="also write the report as JSON")
    parser.add_argument("--quiet", action="store_true")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    out = sys.stdout
    log = None if args.quiet else (lambda line: out.write(line + "\n"))
    report = run_soak(
        n_nodes=args.nodes,
        n_packets=args.packets,
        n_workers=args.workers,
        wave_size=args.wave_size,
        batch=args.batch,
        rollout_every=args.rollout_every,
        max_rss_growth_mb=args.max_rss_growth_mb,
        log=log,
    )
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
    if args.as_json:
        out.write(json.dumps(report, indent=2, sort_keys=True) + "\n")
    else:
        for check in report["checks"]:
            verdict = "ok" if check["ok"] else "FAIL"
            out.write(f"{check['name']:22s} {verdict:4s} {check['detail']}\n")
        out.write(
            f"soak: {report['packets']} packets over {report['nodes']} nodes "
            f"in {report['soak_seconds']:.1f} s ({report['pps']:.0f} pps), "
            f"{report['rollout_cycles']} rollout cycles\n"
        )
    if args.validate and not report["ok"]:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

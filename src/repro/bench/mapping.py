"""Fig. 4: the packet processing pipeline and its TSP mapping.

Prints the base design's A..J letters on their physical TSPs, plus the
per-use-case mapping after each in-situ update.
"""

from __future__ import annotations

from typing import Dict

from repro.compiler.merge import group_key
from repro.compiler.rp4bc import CompiledDesign, compile_base, compile_update
from repro.programs import (
    BASE_STAGE_LETTERS,
    base_rp4_source,
    ecmp_load_script,
    ecmp_rp4_source,
    flowprobe_load_script,
    flowprobe_rp4_source,
    srv6_load_script,
    srv6_rp4_source,
)


def fig4_mapping() -> Dict[str, CompiledDesign]:
    """Compile the base design and the three use-case updates."""
    base = compile_base(base_rp4_source())
    out = {"base": base}
    scripts = {
        "C1-ecmp": (ecmp_load_script(), {"ecmp.rp4": ecmp_rp4_source()}),
        "C2-srv6": (srv6_load_script(), {"srv6.rp4": srv6_rp4_source()}),
        "C3-flowprobe": (
            flowprobe_load_script(),
            {"flowprobe.rp4": flowprobe_rp4_source()},
        ),
    }
    for name, (script, sources) in scripts.items():
        out[name] = compile_update(base, script, sources).design
    return out


def format_mapping(design: CompiledDesign, title: str) -> str:
    """One design's TSP mapping as text."""
    lines = [f"{title}: {design.plan.tsp_count} TSPs"]
    letters = {v: k for k, v in BASE_STAGE_LETTERS.items()}
    for side, group in design.plan.all_groups():
        slot = design.layout.slot_of(group_key(group))
        tagged = [
            f"{name}({letters[name]})" if name in letters else name
            for name in group
        ]
        lines.append(f"  TSP {slot} [{side:7s}] {' + '.join(tagged)}")
    return "\n".join(lines)

"""The continuous benchmark harness: ``python -m repro.bench.harness``.

Runs the workload matrix (programs x trace sizes x both switches),
measuring each cell three ways -- once plain for the headline pps /
ns-per-packet (the front door's default columnar batch path), once
with the columnar path disabled (the scalar interpreter, reported as
the per-cell ``columnar`` on/off comparison), and once under the
:class:`repro.obs.prof.Profiler` for per-stage shares and the
profiler's own overhead -- and emits one schema-versioned
``BENCH_<stamp>.json`` (see :mod:`repro.bench.schema`).  Profiled runs
replay a longer trace (:data:`repro.bench.scenarios.PROFILE_MIN_PACKETS`)
than the plain cells: at 300--1000 packets the overhead measurement
was noise-dominated.  The profiler only hooks the scalar loop, so
``overhead_pct`` is computed against the columnar-off run.  The
committed sequence of ``BENCH_*.json`` files is the repo's performance
trajectory; CI runs ``--smoke`` and ``--compare``s against the latest
committed baseline.

Modes::

    python -m repro.bench.harness                 # full matrix -> BENCH_<stamp>.json
    python -m repro.bench.harness --smoke         # tiny traces, same coverage
    python -m repro.bench.harness --validate F    # schema-check an emitted file
    python -m repro.bench.harness --compare A B   # regression report, old vs new
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from typing import List, Optional, Sequence

from repro.bench.scenarios import (
    CASE_ARTIFACTS,
    CASES,
    STALL_PATHS,
    SWITCHES,
    case_trace,
    make_switch,
    measure_fabric_scale,
    measure_health_overhead,
    measure_int_overhead,
    measure_update_stall,
    measure_verify_latency,
    profile_packet_floor,
    PROFILE_MIN_PACKETS,
    VERIFY_PROGRAMS,
    VERIFY_SMOKE_PROGRAMS,
)
from repro.bench.schema import (
    DEFAULT_COLUMNAR_TOLERANCE,
    DEFAULT_OVERHEAD_TOLERANCE_PCT,
    DEFAULT_RELATIVE_TOLERANCE,
    DOCUMENT_KIND,
    SCHEMA_VERSION,
    compare_documents,
    data_quality_warnings,
    format_comparison,
    validate_bench,
)
from repro.obs.clock import Clock, MONOTONIC

#: Trace sizes per mode.  Full is sized for a quiet workstation run
#: (seconds, not minutes); smoke for a CI gate (sub-second per cell).
FULL_SIZES = (300, 1000)
SMOKE_SIZES = (60,)
#: Packets injected before the timed window (JIT-parse caches, branch
#: warm-up) -- charged to nobody.
WARMUP_PACKETS = 16


def measure_cell(
    arch: str,
    case: str,
    n_packets: int,
    seed: int = 23,
    clock: Optional[Clock] = None,
    profile_packets: Optional[int] = None,
) -> dict:
    """One matrix cell: columnar-on, columnar-off, and profiled runs.

    The headline throughput figures come from the columnar-on run (the
    front door's default path); the columnar-off run times the scalar
    interpreter the batch path must stay byte-identical with, and is
    also the basis for ``overhead_pct`` (the profiled run executes the
    scalar loop by construction -- the hooks live there).  The profiled
    run replays at least ``profile_packets`` packets so the overhead
    measurement isn't noise-dominated at small cell sizes; the floor is
    matrix policy (:func:`run_matrix` passes
    :func:`~repro.bench.scenarios.profile_packet_floor`), so a direct
    call without it profiles exactly ``n_packets``.
    """
    clock = clock or MONOTONIC
    switch = make_switch(arch, case)
    trace = case_trace(case, n_packets, seed=seed)
    if profile_packets is None:
        profile_packets = n_packets
    profile_packets = max(n_packets, profile_packets)
    profile_trace = case_trace(case, profile_packets, seed=seed)

    switch.inject_batch(trace[:WARMUP_PACKETS])

    started = clock.now()
    batch = switch.inject_batch(trace)
    plain_seconds = clock.now() - started
    forwarded = batch.forwarded
    dropped = batch.dropped

    switch.dp.columnar_enabled = False
    try:
        switch.inject_batch(trace[:WARMUP_PACKETS])
        started = clock.now()
        switch.inject_batch(trace)
        scalar_seconds = clock.now() - started

        profiler = switch.enable_profiling()
        started = clock.now()
        switch.inject_batch(profile_trace)
        profiled_seconds = clock.now() - started
        switch.disable_profiling()
    finally:
        switch.dp.columnar_enabled = True

    packets = len(trace)
    plain_seconds = max(plain_seconds, 1e-12)
    scalar_seconds = max(scalar_seconds, 1e-12)
    ns_per_pkt = plain_seconds / packets * 1e9
    scalar_ns_per_pkt = scalar_seconds / packets * 1e9
    profiled_ns_per_pkt = profiled_seconds / profile_packets * 1e9
    overhead_pct = (
        (profiled_ns_per_pkt - scalar_ns_per_pkt) / scalar_ns_per_pkt * 100.0
    )
    prof_packets = max(1, profiler.packets)
    phase_ns_per_pkt = {
        phase: seconds / prof_packets * 1e9
        for phase, seconds in sorted(profiler.phase_seconds().items())
    }
    work_per_pkt = {
        key: round(total / prof_packets, 4)
        for key, total in sorted(profiler.work_totals().items())
    }
    return {
        "switch": arch,
        "case": case,
        "packets": packets,
        "forwarded": forwarded,
        "dropped": dropped,
        "seconds": plain_seconds,
        "pps": packets / plain_seconds,
        "ns_per_pkt": ns_per_pkt,
        "columnar": {
            "ns_per_pkt_off": scalar_ns_per_pkt,
            "speedup_x": scalar_ns_per_pkt / ns_per_pkt,
        },
        "profile": {
            "profiled_packets": profile_packets,
            "profiled_seconds": profiled_seconds,
            "profiled_ns_per_pkt": profiled_ns_per_pkt,
            "overhead_pct": overhead_pct,
            "phase_shares": dict(sorted(profiler.phase_shares().items())),
            "phase_ns_per_pkt": phase_ns_per_pkt,
            "work_per_pkt": work_per_pkt,
            "engine_lookups": dict(sorted(profiler.engine_lookups.items())),
        },
    }


def run_matrix(
    mode: str = "full",
    sizes: Optional[Sequence[int]] = None,
    cases: Optional[Sequence[str]] = None,
    switches: Optional[Sequence[str]] = None,
    seed: int = 23,
    clock: Optional[Clock] = None,
    log=None,
) -> dict:
    """Run the whole matrix; returns the BENCH document (validated)."""
    if mode not in ("smoke", "full"):
        raise ValueError(f"mode must be smoke or full, got {mode!r}")
    sizes = tuple(sizes) if sizes else (SMOKE_SIZES if mode == "smoke" else FULL_SIZES)
    cases = tuple(cases) if cases else CASES
    switches = tuple(switches) if switches else SWITCHES
    results: List[dict] = []
    profile_floor = profile_packet_floor(mode)
    for case in cases:
        for arch in switches:
            for n_packets in sizes:
                result = measure_cell(
                    arch, case, n_packets, seed=seed, clock=clock,
                    profile_packets=profile_floor,
                )
                results.append(result)
                if log is not None:
                    profile = result["profile"]
                    log(
                        f"{arch}/{case} n={n_packets}: "
                        f"{result['pps']:.0f} pps "
                        f"({result['ns_per_pkt']:.0f} ns/pkt, "
                        f"columnar {result['columnar']['speedup_x']:.1f}x "
                        f"vs scalar), "
                        f"profile overhead {profile['overhead_pct']:+.1f}%"
                    )
    # Update-stall cells: the transactional commit vs the stop-the-
    # world in-place baseline, per runtime-loaded case (IPSA only --
    # PISA has no in-place patch path to compare against).
    update_stall: List[dict] = []
    if "ipsa" in switches:
        for case in cases:
            if case not in CASE_ARTIFACTS:
                continue
            for path in STALL_PATHS:
                cell = measure_update_stall(case, path, seed=seed)
                update_stall.append(cell)
                if log is not None:
                    log(
                        f"stall {case}/{path}: "
                        f"{cell['stall_ns']:.0f} ns stall, "
                        f"{cell['drained_packets']} drained, "
                        f"{cell['served_during_update']} served during"
                    )
    # INT-overhead cell: ns/pkt with the telemetry stack on vs off
    # (IPSA only -- the INT function is a runtime-loaded rP4 snippet).
    int_overhead: Optional[dict] = None
    if "ipsa" in switches:
        int_overhead = measure_int_overhead(
            n_packets=(60 if mode == "smoke" else 400), seed=seed
        )
        if log is not None:
            log(
                f"int {int_overhead['packets']} pkts: "
                f"{int_overhead['ns_per_pkt_off']:.0f} -> "
                f"{int_overhead['ns_per_pkt_on']:.0f} ns/pkt "
                f"({int_overhead['overhead_pct']:+.1f}%), "
                f"{int_overhead['hop_records']} hop records"
            )
    # Health-overhead cell: ns/pkt with the streaming health engine
    # polling the switch's registry between batches vs without it
    # (IPSA only -- the engine watches runtime metrics).
    health_overhead: Optional[dict] = None
    if "ipsa" in switches:
        health_overhead = measure_health_overhead(
            n_packets=(400 if mode == "smoke" else 1600), seed=seed
        )
        if log is not None:
            log(
                f"health {health_overhead['packets']} pkts: "
                f"{health_overhead['ns_per_pkt_off']:.0f} -> "
                f"{health_overhead['ns_per_pkt_on']:.0f} ns/pkt "
                f"({health_overhead['overhead_pct']:+.1f}%), "
                f"{health_overhead['ticks']} ticks, "
                f"{health_overhead['rules']} rules"
            )
    # Verify-latency cells: exhaustive rp4verify wall time over each
    # staged base+snippet update, program size on the x-axis (IPSA
    # only -- verification runs against the staged controller txn).
    verify_latency: Optional[dict] = None
    if "ipsa" in switches:
        verify_latency = measure_verify_latency(
            programs=(
                VERIFY_SMOKE_PROGRAMS if mode == "smoke" else VERIFY_PROGRAMS
            ),
            best_of=(1 if mode == "smoke" else 3),
        )
        if log is not None:
            for cell in verify_latency["cells"]:
                log(
                    f"verify {cell['update']}: {cell['classes']} classes "
                    f"over {cell['stages']} stages in {cell['ms']:.1f} ms"
                )
    # Fabric-scale cells: one staged-rollout wave over the whole fleet,
    # serial fabric vs the sharded device-worker runtime (IPSA only --
    # the fabric drives runtime-loaded controllers).  Full mode runs
    # the headline 1000-node fleet with 2 workers: on a single-core
    # box worker threads are GIL-serialized, so the speedup comes from
    # plan-cache amortization and batched framed commands, and more
    # threads just thrash the scheduler.
    fabric_scale: List[dict] = []
    if "ipsa" in switches:
        fabric_cells = (
            [(48, 4, 8)] if mode == "smoke" else [(1000, 2, 25)]
        )
        for n_nodes, n_workers, wave_size in fabric_cells:
            cell = measure_fabric_scale(
                n_nodes=n_nodes, n_workers=n_workers, wave_size=wave_size
            )
            fabric_scale.append(cell)
            if log is not None:
                log(
                    f"fabric {cell['nodes']} nodes x{cell['workers']} workers: "
                    f"serial {cell['serial_seconds']:.2f} s -> sharded "
                    f"{cell['sharded_seconds']:.2f} s "
                    f"({cell['speedup_x']:.2f}x, plan cache "
                    f"{cell['plan_cache_hits']}/{cell['plan_cache_misses']} "
                    f"hit/miss)"
                )
    doc = {
        "schema_version": SCHEMA_VERSION,
        "kind": DOCUMENT_KIND,
        "created_unix": time.time(),
        "stamp": time.strftime("%Y%m%d-%H%M%S"),
        "mode": mode,
        "environment": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "platform": platform.platform(),
            "machine": platform.machine(),
        },
        "matrix": {
            "cases": list(cases),
            "switches": list(switches),
            "sizes": list(sizes),
        },
        "results": results,
        "update_stall": update_stall,
    }
    if int_overhead is not None:
        doc["int_overhead"] = int_overhead
    if health_overhead is not None:
        doc["health_overhead"] = health_overhead
    if verify_latency is not None:
        doc["verify_latency"] = verify_latency
    if fabric_scale:
        doc["fabric_scale"] = fabric_scale
    problems = validate_bench(doc)
    if problems:  # a harness bug, not a user error -- fail loudly
        raise AssertionError(
            "harness emitted a schema-invalid document: "
            + "; ".join(problems)
        )
    return doc


def default_output_path(stamp: str) -> str:
    return f"BENCH_{stamp}.json"


def _parse_csv(text: Optional[str], cast=str) -> Optional[list]:
    if not text:
        return None
    return [cast(part.strip()) for part in text.split(",") if part.strip()]


def build_parser(prog: str = "repro.bench.harness") -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=prog,
        description="workload-matrix benchmark harness (BENCH_*.json)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny traces, full matrix coverage (the CI gate)",
    )
    parser.add_argument(
        "--out",
        help="output path (default: BENCH_<stamp>.json in the cwd)",
    )
    parser.add_argument(
        "--sizes", help="comma-separated trace sizes (overrides the mode)"
    )
    parser.add_argument(
        "--cases", help=f"comma-separated subset of {','.join(CASES)}"
    )
    parser.add_argument(
        "--switches", help="comma-separated subset of ipsa,pisa"
    )
    parser.add_argument("--seed", type=int, default=23)
    parser.add_argument("--quiet", action="store_true")
    parser.add_argument(
        "--validate", metavar="FILE",
        help="schema-check an emitted BENCH file and exit",
    )
    parser.add_argument(
        "--compare", nargs=2, metavar=("OLD", "NEW"),
        help="regression report: new run vs baseline",
    )
    parser.add_argument(
        "--tolerance", type=float, default=DEFAULT_RELATIVE_TOLERANCE,
        help="relative tolerance on pps / ns-per-pkt for --compare",
    )
    parser.add_argument(
        "--overhead-tolerance", type=float,
        default=DEFAULT_OVERHEAD_TOLERANCE_PCT,
        help="absolute tolerance (pct points) on profile overhead",
    )
    parser.add_argument(
        "--columnar-tolerance", type=float,
        default=DEFAULT_COLUMNAR_TOLERANCE,
        help="relative tolerance on the columnar speedup for --compare",
    )
    parser.add_argument(
        "--report-only", action="store_true",
        help="--compare prints the report but always exits 0",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    out = sys.stdout

    if args.validate:
        with open(args.validate) as fh:
            doc = json.load(fh)
        problems = validate_bench(doc)
        if problems:
            for problem in problems:
                out.write(f"INVALID: {problem}\n")
            return 1
        out.write(
            f"{args.validate}: valid {DOCUMENT_KIND} v{doc['schema_version']} "
            f"({len(doc['results'])} results)\n"
        )
        for warning in data_quality_warnings(doc):
            out.write(f"WARNING: {warning}\n")
        return 0

    if args.compare:
        old_path, new_path = args.compare
        with open(old_path) as fh:
            old = json.load(fh)
        with open(new_path) as fh:
            new = json.load(fh)
        for label, doc in (("old", old), ("new", new)):
            problems = validate_bench(doc)
            if problems:
                out.write(f"INVALID {label} document: {problems[0]}\n")
                return 2
        comparison = compare_documents(
            old,
            new,
            relative_tolerance=args.tolerance,
            overhead_tolerance_pct=args.overhead_tolerance,
            columnar_tolerance=args.columnar_tolerance,
        )
        out.write(format_comparison(comparison) + "\n")
        if not comparison.ok and not args.report_only:
            return 1
        return 0

    mode = "smoke" if args.smoke else "full"
    log = None if args.quiet else (lambda line: out.write(line + "\n"))
    doc = run_matrix(
        mode=mode,
        sizes=_parse_csv(args.sizes, int),
        cases=_parse_csv(args.cases),
        switches=_parse_csv(args.switches),
        seed=args.seed,
        log=log,
    )
    path = args.out or default_output_path(doc["stamp"])
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    out.write(f"wrote {len(doc['results'])} results to {path}\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""The workload matrix shared by the bench harness, the CLI's
``profile`` subcommand, and the evaluation benchmarks.

A *scenario* is (switch architecture, use case): the IPSA device with
the base L2/L3 design plus (optionally) one in-situ-loaded use case,
or the PISA baseline running the equivalent monolithic P4 variant --
the same pairing the paper's Sec. 5 evaluation measures.  Each case
also names its natural traffic shape (``case_trace``).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.ipsa.switch import IpsaSwitch
from repro.pisa.switch import PisaSwitch
from repro.programs import (
    base_p4_source,
    base_rp4_source,
    ecmp_load_script,
    ecmp_rp4_source,
    flowprobe_load_script,
    flowprobe_rp4_source,
    populate_base_tables,
    populate_ecmp_tables,
    populate_flowprobe_tables,
    populate_srv6_tables,
    srv6_load_script,
    srv6_rp4_source,
)
from repro.programs.p4_variants import (
    ecmp_p4_source,
    flowprobe_p4_source,
    srv6_p4_source,
)
from repro.runtime.controller import Controller
from repro.workloads.traces import mixed_l3_trace, use_case_trace

Trace = List[Tuple[bytes, int]]

#: Everything the matrix runs: the base design plus the paper's three
#: runtime-loaded use cases.
CASES = ("base", "C1", "C2", "C3")
SWITCHES = ("ipsa", "pisa")

#: case -> (load script, rp4 snippet, snippet name, populate, p4 variant)
CASE_ARTIFACTS = {
    "C1": (
        ecmp_load_script,
        ecmp_rp4_source,
        "ecmp.rp4",
        populate_ecmp_tables,
        ecmp_p4_source,
    ),
    "C2": (
        srv6_load_script,
        srv6_rp4_source,
        "srv6.rp4",
        populate_srv6_tables,
        srv6_p4_source,
    ),
    "C3": (
        flowprobe_load_script,
        flowprobe_rp4_source,
        "flowprobe.rp4",
        populate_flowprobe_tables,
        flowprobe_p4_source,
    ),
}


#: Minimum trace length for a *profiled* matrix run.  At the plain
#: cells' 300--1000 packets the profiler's measured overhead read
#: 74--96% and wandered tens of points between runs -- per-hook timer
#: cost plus scheduler jitter swamped the signal and made phase shares
#: unreliable.  Profiled runs therefore replay at least this many
#: packets regardless of the plain cell's trace size (the plain run
#: keeps its own size: its wall-clock budget belongs to the matrix).
PROFILE_MIN_PACKETS = 4000
#: Smoke-mode floor: enough packets to stabilize phase shares without
#: blowing the sub-second-per-cell CI budget.
PROFILE_SMOKE_MIN_PACKETS = 600


def profile_packet_floor(mode: str = "full") -> int:
    """The profiled-run packet floor for a harness mode."""
    return PROFILE_SMOKE_MIN_PACKETS if mode == "smoke" else PROFILE_MIN_PACKETS


def check_case(case: str) -> str:
    if case not in CASES:
        raise ValueError(f"unknown case {case!r} (expected one of {CASES})")
    return case


def make_ipsa_controller(case: str = "base") -> Controller:
    """A controller driving an IPSA device with the base design
    (plus ``case`` loaded in-situ)."""
    check_case(case)
    controller = Controller()
    controller.load_base(base_rp4_source())
    populate_base_tables(controller.switch.tables)
    if case != "base":
        script, snippet, name, populate, _ = CASE_ARTIFACTS[case]
        controller.run_script(script(), {name: snippet()})
        populate(controller.switch.tables)
    return controller


def make_ipsa(case: str = "base") -> IpsaSwitch:
    """An IPSA device with the base design (plus ``case`` live)."""
    return make_ipsa_controller(case).switch


def make_pisa(case: str = "base") -> PisaSwitch:
    """A PISA device running the equivalent full P4 program."""
    check_case(case)
    switch = PisaSwitch(n_stages=8)
    if case == "base":
        switch.load(base_p4_source())
        populate_base_tables(switch.tables)
    else:
        _, _, _, populate, p4_variant = CASE_ARTIFACTS[case]
        switch.load(p4_variant())
        populate_base_tables(switch.tables)
        populate(switch.tables)
    return switch


def make_switch(arch: str, case: str = "base"):
    if arch == "ipsa":
        return make_ipsa(case)
    if arch == "pisa":
        return make_pisa(case)
    raise ValueError(f"unknown switch {arch!r} (expected ipsa or pisa)")


def case_trace(case: str, n_packets: int, seed: int = 23) -> Trace:
    """The traffic shape that exercises a case's hot path."""
    check_case(case)
    if case == "base":
        return mixed_l3_trace(n_packets, seed=seed)
    return use_case_trace(case, n_packets, seed=seed)


def run_case(arch: str, case: str, n_packets: int, seed: int = 23):
    """Build the scenario and replay its trace through the batch
    front door; returns ``(switch, BatchResult)``."""
    switch = make_switch(arch, case)
    return switch, switch.inject_batch(case_trace(case, n_packets, seed=seed))


# -- update-stall scenario -------------------------------------------------

#: Update paths the stall scenario compares: the transactional
#: prepare/commit engine vs the pre-refactor stop-the-world baseline.
STALL_PATHS = ("txn", "inplace")
#: In-flight TM packets seeded before the update fires.
STALL_INFLIGHT = 16


def _measure_stall_once(
    case: str, path: str, n_packets: int, seed: int
) -> dict:
    script, snippet, name, populate, _ = CASE_ARTIFACTS[case]
    controller = make_ipsa_controller("base")
    switch = controller.switch

    # Mid-flight traffic: packets already past ingress, parked in the
    # TM when the update arrives.  The in-place path discards them;
    # the transactional commit completes them through the old plans.
    from repro.dp.exec import run_tsp_plan
    from repro.dp.hooks import resolve_hooks

    plan = switch.dp.plan()
    hooks = resolve_hooks(switch)
    for data, port in mixed_l3_trace(STALL_INFLIGHT, seed=seed + 1):
        packet = switch.dp.new_packet(data, port)
        for tsp_plan in plan.ingress:
            run_tsp_plan(tsp_plan, packet, switch, hooks)
        if not packet.metadata.get("drop"):
            switch.pipeline.tm.enqueue(packet)
    # Upstream traffic: parked at the intake behind back pressure.
    for data, port in mixed_l3_trace(n_packets, seed=seed):
        switch.enqueue(data, port)

    if path == "txn":
        staged = controller.stage_update(script(), {name: snippet()})
        # Old plans keep serving while the shadow state is prepared.
        served_during = len(switch.pump())
        _plan, stats, _timing = staged.commit()
    else:
        from repro.compiler.rp4bc import compile_update

        plan = compile_update(
            controller.design, script(), {name: snippet()}
        )
        update = plan.update_message(controller.design.config)
        served_during = 0  # stop-the-world: everything waits
        stats = switch.apply_update_inplace(update)

    populate(switch.tables)
    served_after = len(switch.pump())
    return {
        "case": case,
        "path": path,
        "packets": n_packets,
        "inflight": STALL_INFLIGHT,
        "stall_ns": stats.stall_seconds * 1e9,
        "drained_packets": stats.drained_packets,
        "completed_inflight": stats.completed_packets,
        "served_during_update": served_during,
        "served_after": served_after,
    }


def measure_update_stall(
    case: str,
    path: str,
    n_packets: int = 60,
    seed: int = 23,
    best_of: int = 3,
) -> dict:
    """The traffic-visible cost of one in-situ update (paper Sec. 5.3).

    Seeds :data:`STALL_INFLIGHT` packets mid-flight in the TM, parks
    ``n_packets`` more at the intake, then applies ``case``'s update
    over ``path`` (``txn`` or ``inplace``).  Reports the stall window,
    how many in-flight packets were discarded vs completed, and how
    much intake traffic was served *during* the update.  ``best_of``
    fresh runs are taken and the minimum-stall one reported (the stall
    is microseconds; scheduler jitter dominates a single sample).
    """
    check_case(case)
    if case not in CASE_ARTIFACTS:
        raise ValueError(
            f"update-stall needs an update to apply; case {case!r} has none"
        )
    if path not in STALL_PATHS:
        raise ValueError(
            f"unknown path {path!r} (expected one of {STALL_PATHS})"
        )
    if best_of <= 0:
        raise ValueError("best_of must be positive")
    runs = [
        _measure_stall_once(case, path, n_packets, seed)
        for _ in range(best_of)
    ]
    return min(runs, key=lambda run: run["stall_ns"])


# -- INT scenarios ---------------------------------------------------------

#: Where the INT stack is stripped: at the fabric edge (the delivery
#: hook, all nodes on equal epochs) or by a dataplane ``int_strip``
#: function on the last node.
INT_STRIP_MODES = ("edge", "sink")


def make_int_fabric(n_nodes: int = 3, clock=None, strip: str = "edge"):
    """A line fabric ``sw0 - sw1 - ... - sw{n-1}`` with multi-hop INT.

    Every node runs the base design plus ``int_insert`` (switch id
    ``i + 1``), sharing one INT ``clock`` so hop timestamps are
    comparable across the path.  Transit nodes repoint next hop 2 at
    the router MAC so the watched flow keeps routing hop over hop (the
    ``two_node_fabric`` idiom).  Returns ``(fabric, collector)`` with
    the collector attached per ``strip``:

    * ``"edge"`` -- the fabric delivery hook ingests and strips;
    * ``"sink"`` -- the last node loads ``int_strip``/``int_sink`` and
      its ``pop_int`` feeds the collector device-side.
    """
    from repro.net.addresses import parse_mac
    from repro.obs.intcol import IntCollector
    from repro.programs import (
        int_load_script,
        int_rp4_source,
        int_strip_load_script,
        int_strip_rp4_source,
        populate_int_sink_tables,
        populate_int_tables,
    )
    from repro.programs.base_l2l3 import ROUTER_MAC
    from repro.runtime.fabric import Fabric
    from repro.tables.table import TableEntry

    if n_nodes < 2:
        raise ValueError("an INT fabric needs at least 2 nodes")
    if strip not in INT_STRIP_MODES:
        raise ValueError(
            f"unknown strip mode {strip!r} (expected one of {INT_STRIP_MODES})"
        )
    fabric = Fabric()
    names = [f"sw{i}" for i in range(n_nodes)]
    for name in names:
        fabric.add_node(name, make_ipsa_controller("base"))
    for left, right in zip(names, names[1:]):
        fabric.wire(left, 3, right, 0)

    for index, name in enumerate(names):
        controller = fabric.node(name)
        if index < n_nodes - 1:
            # Route the watched flow onto the wire: next hop 2 resolves
            # to the peer's router MAC out port 3.
            nexthop = controller.switch.table("nexthop")
            old = next(e for e in nexthop.entries() if e.key == (2,))
            nexthop.remove_entry(old)
            nexthop.add_entry(
                TableEntry(
                    key=(2,),
                    action="set_bd_dmac",
                    action_data={"bd": 2, "dmac": parse_mac(ROUTER_MAC)},
                    tag=1,
                )
            )
            controller.switch.table("dmac").add_entry(
                TableEntry(
                    key=(2, parse_mac(ROUTER_MAC)),
                    action="set_egress_port",
                    action_data={"port": 3},
                    tag=1,
                )
            )
        controller.run_script(int_load_script(), {"int.rp4": int_rp4_source()})
        populate_int_tables(controller.switch.tables, switch_id=index + 1)
        controller.switch.enable_int(clock)

    if strip == "sink":
        sink = fabric.node(names[-1])
        sink.run_script(
            int_strip_load_script(), {"int_strip.rp4": int_strip_rp4_source()}
        )
        populate_int_sink_tables(sink.switch.tables)
        collector = IntCollector()
        sink.switch.attach_int_collector(collector, node=names[-1])
    else:
        collector = fabric.attach_int_collector()
    return fabric, collector


def _time_batch(switch, trace: Trace) -> float:
    """Wall seconds for one batch replay."""
    import time

    start = time.perf_counter()
    switch.inject_batch(trace)
    return time.perf_counter() - start


def measure_int_overhead(
    n_packets: int = 400, seed: int = 23, best_of: int = 3
) -> dict:
    """Per-packet cost of INT instrumentation on one IPSA device.

    Replays an all-watched trace through the base design (stack off)
    and through base + ``int_insert`` with timestamping enabled (stack
    on); every packet pays a shim insert plus one hop-record push.
    ``best_of`` fresh runs per mode, minimum wall time reported.

    Both legs run the scalar interpreter: the INT clock pins the
    front door to the scalar loop, so the off leg disables the
    columnar batch path too -- otherwise the cell would report the
    columnar speedup as INT overhead.
    """
    from repro.obs.intcol import IntCollector
    from repro.programs import (
        int_load_script,
        int_rp4_source,
        populate_int_tables,
    )
    from repro.workloads import ipv4_packet

    if best_of <= 0:
        raise ValueError("best_of must be positive")
    trace: Trace = [
        (ipv4_packet("10.1.0.1", "10.2.0.1", sport=1024 + (i % 4096)), 0)
        for i in range(n_packets)
    ]

    def scalar_base():
        switch = make_ipsa("base")
        switch.dp.columnar_enabled = False
        return switch

    off_seconds = min(
        _time_batch(scalar_base(), trace) for _ in range(best_of)
    )

    on_seconds = None
    last_result = None
    for _ in range(best_of):
        controller = make_ipsa_controller("base")
        controller.run_script(
            int_load_script(), {"int.rp4": int_rp4_source()}
        )
        populate_int_tables(controller.switch.tables, switch_id=1)
        controller.switch.enable_int()
        import time

        start = time.perf_counter()
        result = controller.switch.inject_batch(trace)
        elapsed = time.perf_counter() - start
        if on_seconds is None or elapsed < on_seconds:
            on_seconds = elapsed
            last_result = result

    collector = IntCollector()
    for out in last_result:
        if out is not None:
            collector.ingest(out.data)
    hop_records = collector.summary()["hop_records"]

    ns_off = off_seconds * 1e9 / n_packets
    ns_on = on_seconds * 1e9 / n_packets
    return {
        "packets": n_packets,
        "ns_per_pkt_off": ns_off,
        "ns_per_pkt_on": ns_on,
        "overhead_ns_per_pkt": ns_on - ns_off,
        "overhead_pct": (ns_on - ns_off) / ns_off * 100.0 if ns_off else 0.0,
        "hop_records": hop_records,
    }


# -- health-engine overhead scenario ----------------------------------------


def measure_health_overhead(
    n_packets: int = 1600,
    seed: int = 23,
    best_of: int = 9,
    tick_every: int = 400,
) -> dict:
    """Per-packet cost of the streaming health engine on one device.

    The engine is strictly off the forwarding path -- devices never
    call into it -- so the only cost is the amortized evaluation tick
    (one registry ``collect()`` per source per tick, a few hundred
    microseconds).  This cell keeps that claim honest: the same trace
    is replayed with no engine and with a :class:`~repro.obs.health.
    HealthEngine` running the stock rule set, ticked every
    ``tick_every`` packets -- a conservative duty cycle (a periodic
    production tick spans far more traffic than 400 packets).  Off/on
    runs are interleaved so slow machine drift cancels instead of
    charging one mode; ``best_of`` runs per mode, minimum wall time
    reported.  The collector is paused inside both timed regions:
    gc-pass cost scales with process-wide live objects (i.e. with
    whatever ran before this cell), and the tick's small allocations
    would otherwise bill that unrelated heap to the "on" mode.
    """
    import gc
    import time

    from repro.obs.clock import ManualClock
    from repro.obs.health import HealthEngine, default_rules

    if best_of <= 0:
        raise ValueError("best_of must be positive")
    if tick_every <= 0:
        raise ValueError("tick_every must be positive")
    trace = case_trace("base", n_packets, seed=seed)
    chunks = [
        trace[i:i + tick_every] for i in range(0, len(trace), tick_every)
    ]
    rules = default_rules()

    off_seconds = None
    on_seconds = None
    ticks = 0
    gc_was_enabled = gc.isenabled()
    try:
        for _ in range(best_of):
            switch = make_ipsa("base")
            gc.collect()  # inherited garbage must not bill either mode
            gc.disable()
            start = time.perf_counter()
            for chunk in chunks:
                switch.inject_batch(chunk)
            elapsed = time.perf_counter() - start
            if gc_was_enabled:
                gc.enable()
            if off_seconds is None or elapsed < off_seconds:
                off_seconds = elapsed

            switch = make_ipsa("base")
            engine = HealthEngine(clock=ManualClock(tick=0.5))
            engine.install(rules)
            engine.add_source("bench", switch.metrics, switch=switch)
            ticks = 0
            gc.collect()
            gc.disable()
            start = time.perf_counter()
            for chunk in chunks:
                switch.inject_batch(chunk)
                engine.tick()
                ticks += 1
            elapsed = time.perf_counter() - start
            if gc_was_enabled:
                gc.enable()
            if on_seconds is None or elapsed < on_seconds:
                on_seconds = elapsed
    finally:
        if gc_was_enabled:
            gc.enable()

    ns_off = off_seconds * 1e9 / n_packets
    ns_on = on_seconds * 1e9 / n_packets
    return {
        "packets": n_packets,
        "ns_per_pkt_off": ns_off,
        "ns_per_pkt_on": ns_on,
        "overhead_ns_per_pkt": ns_on - ns_off,
        "overhead_pct": (ns_on - ns_off) / ns_off * 100.0 if ns_off else 0.0,
        "ticks": ticks,
        "rules": len(rules),
    }


# -- rp4verify latency scenario ---------------------------------------------

#: Snippets whose staged update the verify-latency cell measures, in
#: rough flow-class-count order (program size is the x-axis).
VERIFY_PROGRAMS = ("acl.rp4", "qos.rp4", "srv6.rp4", "ecmp.rp4", "int.rp4")
VERIFY_SMOKE_PROGRAMS = ("acl.rp4", "ecmp.rp4")


def measure_verify_latency(
    programs: Tuple[str, ...] = VERIFY_PROGRAMS,
    best_of: int = 3,
    max_classes: int = 4096,
) -> dict:
    """Exhaustive rp4verify latency vs staged-program size.

    Each base+snippet composition is staged once (prepare + validate,
    never committed); the symbolic differential verifier then runs
    ``best_of`` times over the same prepared shadow with exhaustive
    flow-class enumeration, minimum wall time reported.  Witness
    synthesis and replay confirmation are left on (the gate's real
    configuration) -- on these known-safe updates they cost nothing
    because no divergences exist to confirm, which is itself part of
    the claim the cell tracks.  Same gc discipline as the overhead
    cells: a pre-run ``collect()`` so inherited garbage bills nobody,
    collector paused inside the timed region.
    """
    import gc

    from repro.analysis.verify import DeviceView, VerifyConfig, verify_txn
    from repro.analysis.verify_cli import (
        _script_source_names,
        shipped_snippets,
    )

    if best_of <= 0:
        raise ValueError("best_of must be positive")
    snippets = shipped_snippets()
    config = VerifyConfig(exhaustive=True, max_classes=max_classes)
    cells: List[dict] = []
    gc_was_enabled = gc.isenabled()
    for name in programs:
        source, script = snippets[name]
        controller = Controller(lint_updates=False, verify_updates="off")
        controller.load_base(base_rp4_source())
        populate_base_tables(controller.switch.tables)
        sources = {key: source for key in _script_source_names(script)}
        staged = controller.stage_update(script, sources)
        try:
            stages = len(DeviceView.from_txn(staged.txn).schedule)
            best: dict = {}
            for _ in range(best_of):
                gc.collect()
                gc.disable()
                try:
                    report = verify_txn(
                        controller.switch, staged.txn, plan=staged.plan,
                        config=config, path=f"base_l2l3+{name}",
                    )
                finally:
                    if gc_was_enabled:
                        gc.enable()
                if not best or report.seconds < best["seconds"]:
                    best = {
                        "seconds": report.seconds,
                        "classes": len(report.classes),
                        "unintended": len(report.unintended),
                        "truncated": report.truncated,
                    }
            cells.append({
                "update": f"base_l2l3+{name}",
                "stages": stages,
                "classes": best["classes"],
                "unintended": best["unintended"],
                "truncated": best["truncated"],
                "ms": best["seconds"] * 1e3,
            })
        finally:
            staged.abort()
    return {
        "best_of": best_of,
        "max_classes": max_classes,
        "cells": cells,
    }


# -- fabric scale: serial vs sharded fleet rollout ---------------------------


def make_fleet(n_nodes: int, populate: bool = True):
    """``n_nodes`` isolated base-design devices in one fabric.

    The base source is compiled once and the same design loaded
    everywhere (:meth:`Controller.load_design`), so fleet build time
    is dominated by the per-node download -- the only part that
    genuinely repeats per device.
    """
    from repro.compiler.rp4bc import compile_base
    from repro.runtime.fabric import Fabric

    if n_nodes <= 0:
        raise ValueError("n_nodes must be positive")
    fabric = Fabric()
    controller = Controller()
    design = compile_base(base_rp4_source(), controller.target)
    controller.load_design(design)
    if populate:
        populate_base_tables(controller.switch.tables)
    fabric.add_node("n0", controller)
    for index in range(1, n_nodes):
        controller = Controller()
        controller.load_design(design)
        if populate:
            populate_base_tables(controller.switch.tables)
        fabric.add_node(f"n{index}", controller)
    return fabric


def measure_fabric_scale(
    n_nodes: int = 1000,
    n_workers: int = 8,
    wave_size: int = 25,
) -> dict:
    """Staged-rollout wall clock: serial fabric vs sharded runtime.

    One fleet, two identical rollouts of the SRv6 load script (with a
    one-packet probe gate per node): first on the plain serial fabric,
    then -- after :meth:`Fabric.rollback_all` restores every node to
    the base design -- on the same fleet sharded across ``n_workers``
    device workers with the fleet-wide update-plan cache installed.
    The sharded runtime wins on both axes the refactor targets: wave
    staging fans out across the workers, and the canary's compile /
    lint / verify artifacts are reused by every content-identical
    node.
    """
    import gc
    import time

    from repro.workloads.builders import ipv4_packet

    script = srv6_load_script()
    sources = {"srv6.rp4": srv6_rp4_source()}
    probe_trace = [(ipv4_packet("10.1.0.1", "10.2.0.5"), 0)]
    fabric = make_fleet(n_nodes)

    def settle() -> None:
        # A deployed switch serves traffic, so its live plan cache is
        # warm; and the fleet itself is long-lived state, so it is
        # frozen out of the young GC generations.  Both legs start
        # from the same settled state.
        for name in fabric.nodes:
            fabric.node(name).switch.dp.plan()
        gc.collect()
        gc.freeze()

    settle()
    start = time.perf_counter()
    fabric.staged_rollout(
        script, sources, wave_size=wave_size, probe_trace=probe_trace
    )
    serial_seconds = time.perf_counter() - start
    fabric.rollback_all()

    fabric.shard(n_workers)
    try:
        settle()
        start = time.perf_counter()
        fabric.staged_rollout(
            script, sources, wave_size=wave_size, probe_trace=probe_trace
        )
        sharded_seconds = time.perf_counter() - start
        cache = fabric.plan_cache
        hits, misses = cache.hits, cache.misses
    finally:
        fabric.unshard()
        gc.unfreeze()
    sharded_seconds = max(sharded_seconds, 1e-9)
    return {
        "nodes": n_nodes,
        "workers": n_workers,
        "wave_size": wave_size,
        "serial_seconds": serial_seconds,
        "sharded_seconds": sharded_seconds,
        "speedup_x": serial_seconds / sharded_seconds,
        "plan_cache_hits": hits,
        "plan_cache_misses": misses,
    }

"""The workload matrix shared by the bench harness, the CLI's
``profile`` subcommand, and the evaluation benchmarks.

A *scenario* is (switch architecture, use case): the IPSA device with
the base L2/L3 design plus (optionally) one in-situ-loaded use case,
or the PISA baseline running the equivalent monolithic P4 variant --
the same pairing the paper's Sec. 5 evaluation measures.  Each case
also names its natural traffic shape (``case_trace``).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.ipsa.switch import IpsaSwitch
from repro.pisa.switch import PisaSwitch
from repro.programs import (
    base_p4_source,
    base_rp4_source,
    ecmp_load_script,
    ecmp_rp4_source,
    flowprobe_load_script,
    flowprobe_rp4_source,
    populate_base_tables,
    populate_ecmp_tables,
    populate_flowprobe_tables,
    populate_srv6_tables,
    srv6_load_script,
    srv6_rp4_source,
)
from repro.programs.p4_variants import (
    ecmp_p4_source,
    flowprobe_p4_source,
    srv6_p4_source,
)
from repro.runtime.controller import Controller
from repro.workloads.traces import mixed_l3_trace, use_case_trace

Trace = List[Tuple[bytes, int]]

#: Everything the matrix runs: the base design plus the paper's three
#: runtime-loaded use cases.
CASES = ("base", "C1", "C2", "C3")
SWITCHES = ("ipsa", "pisa")

#: case -> (load script, rp4 snippet, snippet name, populate, p4 variant)
CASE_ARTIFACTS = {
    "C1": (
        ecmp_load_script,
        ecmp_rp4_source,
        "ecmp.rp4",
        populate_ecmp_tables,
        ecmp_p4_source,
    ),
    "C2": (
        srv6_load_script,
        srv6_rp4_source,
        "srv6.rp4",
        populate_srv6_tables,
        srv6_p4_source,
    ),
    "C3": (
        flowprobe_load_script,
        flowprobe_rp4_source,
        "flowprobe.rp4",
        populate_flowprobe_tables,
        flowprobe_p4_source,
    ),
}


def check_case(case: str) -> str:
    if case not in CASES:
        raise ValueError(f"unknown case {case!r} (expected one of {CASES})")
    return case


def make_ipsa_controller(case: str = "base") -> Controller:
    """A controller driving an IPSA device with the base design
    (plus ``case`` loaded in-situ)."""
    check_case(case)
    controller = Controller()
    controller.load_base(base_rp4_source())
    populate_base_tables(controller.switch.tables)
    if case != "base":
        script, snippet, name, populate, _ = CASE_ARTIFACTS[case]
        controller.run_script(script(), {name: snippet()})
        populate(controller.switch.tables)
    return controller


def make_ipsa(case: str = "base") -> IpsaSwitch:
    """An IPSA device with the base design (plus ``case`` live)."""
    return make_ipsa_controller(case).switch


def make_pisa(case: str = "base") -> PisaSwitch:
    """A PISA device running the equivalent full P4 program."""
    check_case(case)
    switch = PisaSwitch(n_stages=8)
    if case == "base":
        switch.load(base_p4_source())
        populate_base_tables(switch.tables)
    else:
        _, _, _, populate, p4_variant = CASE_ARTIFACTS[case]
        switch.load(p4_variant())
        populate_base_tables(switch.tables)
        populate(switch.tables)
    return switch


def make_switch(arch: str, case: str = "base"):
    if arch == "ipsa":
        return make_ipsa(case)
    if arch == "pisa":
        return make_pisa(case)
    raise ValueError(f"unknown switch {arch!r} (expected ipsa or pisa)")


def case_trace(case: str, n_packets: int, seed: int = 23) -> Trace:
    """The traffic shape that exercises a case's hot path."""
    check_case(case)
    if case == "base":
        return mixed_l3_trace(n_packets, seed=seed)
    return use_case_trace(case, n_packets, seed=seed)


def run_case(arch: str, case: str, n_packets: int, seed: int = 23):
    """Build the scenario and replay its trace through the batch
    front door; returns ``(switch, BatchResult)``."""
    switch = make_switch(arch, case)
    return switch, switch.inject_batch(case_trace(case, n_packets, seed=seed))


# -- update-stall scenario -------------------------------------------------

#: Update paths the stall scenario compares: the transactional
#: prepare/commit engine vs the pre-refactor stop-the-world baseline.
STALL_PATHS = ("txn", "inplace")
#: In-flight TM packets seeded before the update fires.
STALL_INFLIGHT = 16


def _measure_stall_once(
    case: str, path: str, n_packets: int, seed: int
) -> dict:
    script, snippet, name, populate, _ = CASE_ARTIFACTS[case]
    controller = make_ipsa_controller("base")
    switch = controller.switch

    # Mid-flight traffic: packets already past ingress, parked in the
    # TM when the update arrives.  The in-place path discards them;
    # the transactional commit completes them through the old plans.
    from repro.dp.exec import run_tsp_plan
    from repro.dp.hooks import resolve_hooks

    plan = switch.dp.plan()
    hooks = resolve_hooks(switch)
    for data, port in mixed_l3_trace(STALL_INFLIGHT, seed=seed + 1):
        packet = switch.dp.new_packet(data, port)
        for tsp_plan in plan.ingress:
            run_tsp_plan(tsp_plan, packet, switch, hooks)
        if not packet.metadata.get("drop"):
            switch.pipeline.tm.enqueue(packet)
    # Upstream traffic: parked at the intake behind back pressure.
    for data, port in mixed_l3_trace(n_packets, seed=seed):
        switch.enqueue(data, port)

    if path == "txn":
        staged = controller.stage_update(script(), {name: snippet()})
        # Old plans keep serving while the shadow state is prepared.
        served_during = len(switch.pump())
        _plan, stats, _timing = staged.commit()
    else:
        from repro.compiler.rp4bc import compile_update

        plan = compile_update(
            controller.design, script(), {name: snippet()}
        )
        update = plan.update_message(controller.design.config)
        served_during = 0  # stop-the-world: everything waits
        stats = switch.apply_update_inplace(update)

    populate(switch.tables)
    served_after = len(switch.pump())
    return {
        "case": case,
        "path": path,
        "packets": n_packets,
        "inflight": STALL_INFLIGHT,
        "stall_ns": stats.stall_seconds * 1e9,
        "drained_packets": stats.drained_packets,
        "completed_inflight": stats.completed_packets,
        "served_during_update": served_during,
        "served_after": served_after,
    }


def measure_update_stall(
    case: str,
    path: str,
    n_packets: int = 60,
    seed: int = 23,
    best_of: int = 3,
) -> dict:
    """The traffic-visible cost of one in-situ update (paper Sec. 5.3).

    Seeds :data:`STALL_INFLIGHT` packets mid-flight in the TM, parks
    ``n_packets`` more at the intake, then applies ``case``'s update
    over ``path`` (``txn`` or ``inplace``).  Reports the stall window,
    how many in-flight packets were discarded vs completed, and how
    much intake traffic was served *during* the update.  ``best_of``
    fresh runs are taken and the minimum-stall one reported (the stall
    is microseconds; scheduler jitter dominates a single sample).
    """
    check_case(case)
    if case not in CASE_ARTIFACTS:
        raise ValueError(
            f"update-stall needs an update to apply; case {case!r} has none"
        )
    if path not in STALL_PATHS:
        raise ValueError(
            f"unknown path {path!r} (expected one of {STALL_PATHS})"
        )
    if best_of <= 0:
        raise ValueError("best_of must be positive")
    runs = [
        _measure_stall_once(case, path, n_packets, seed)
        for _ in range(best_of)
    ]
    return min(runs, key=lambda run: run["stall_ns"])

"""Packet substrate: bit-accurate headers, addresses, and parsing.

This package provides the low-level machinery both behavioral switches
(:mod:`repro.pisa` and :mod:`repro.ipsa`) are built on:

* :mod:`repro.net.fields` -- bit-accurate field arithmetic.
* :mod:`repro.net.addresses` -- MAC/IPv4/IPv6 address codecs.
* :mod:`repro.net.checksum` -- Internet checksum helpers.
* :mod:`repro.net.headers` -- header type definitions and instances,
  including the standard header library (Ethernet, VLAN, IPv4, IPv6,
  SRH, TCP, UDP).
* :mod:`repro.net.linkage` -- the *header linkage table*, the
  runtime-modifiable parse graph behind the paper's ``link_header``
  controller command.
* :mod:`repro.net.packet` -- the packet object carrying raw bytes,
  parsed header instances, and per-packet metadata, with the
  just-in-time incremental parser used by IPSA's distributed parsing.
"""

from repro.net.addresses import (
    format_ipv4,
    format_ipv6,
    format_mac,
    parse_ipv4,
    parse_ipv6,
    parse_mac,
)
from repro.net.checksum import internet_checksum, ipv4_header_checksum
from repro.net.fields import field_max, mask_to_width, to_signed
from repro.net.headers import (
    ETHERNET,
    IPV4,
    IPV6,
    SRH,
    TCP,
    UDP,
    VLAN,
    FieldDef,
    HeaderInstance,
    HeaderType,
    standard_header_types,
)
from repro.net.linkage import HeaderLink, HeaderLinkageTable, standard_linkage
from repro.net.packet import Packet, ParseError

__all__ = [
    "ETHERNET",
    "IPV4",
    "IPV6",
    "SRH",
    "TCP",
    "UDP",
    "VLAN",
    "FieldDef",
    "HeaderInstance",
    "HeaderLink",
    "HeaderLinkageTable",
    "HeaderType",
    "Packet",
    "ParseError",
    "field_max",
    "format_ipv4",
    "format_ipv6",
    "format_mac",
    "internet_checksum",
    "ipv4_header_checksum",
    "mask_to_width",
    "parse_ipv4",
    "parse_ipv6",
    "parse_mac",
    "standard_header_types",
    "standard_linkage",
    "to_signed",
]

"""Minimal pcap file I/O (the CM module's trace interface).

The real ipbm bypasses the OS stack for packet I/O; the behavioral
reproduction reads and writes classic libpcap files (magic
``0xa1b2c3d4``, LINKTYPE_ETHERNET) so traces interoperate with
tcpdump/wireshark.  Timestamps carry a synthetic microsecond clock.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import BinaryIO, Iterator, List, Tuple

_MAGIC = 0xA1B2C3D4
_VERSION = (2, 4)
_LINKTYPE_ETHERNET = 1
_GLOBAL_HDR = struct.Struct("<IHHiIII")
_RECORD_HDR = struct.Struct("<IIII")


class PcapError(Exception):
    """Raised on malformed pcap input."""


@dataclass(frozen=True)
class PcapRecord:
    """One captured packet."""

    ts_sec: int
    ts_usec: int
    data: bytes


class PcapWriter:
    """Write packets to a classic pcap stream."""

    def __init__(self, stream: BinaryIO, snaplen: int = 65535) -> None:
        self._stream = stream
        self._clock_usec = 0
        stream.write(
            _GLOBAL_HDR.pack(
                _MAGIC, _VERSION[0], _VERSION[1], 0, 0, snaplen,
                _LINKTYPE_ETHERNET,
            )
        )

    def write(self, data: bytes, ts_usec: "int | None" = None) -> None:
        """Append one packet; timestamps auto-advance by 1 us."""
        if ts_usec is None:
            ts_usec = self._clock_usec
            self._clock_usec += 1
        sec, usec = divmod(ts_usec, 1_000_000)
        self._stream.write(
            _RECORD_HDR.pack(sec, usec, len(data), len(data))
        )
        self._stream.write(data)

    def write_trace(self, trace: List[Tuple[bytes, int]]) -> int:
        """Write a (data, port) workload trace; ports are not encoded
        (pcap has no port column) -- use one file per port if needed."""
        for data, _port in trace:
            self.write(data)
        return len(trace)


class PcapReader:
    """Iterate packets of a classic pcap stream."""

    def __init__(self, stream: BinaryIO) -> None:
        self._stream = stream
        header = stream.read(_GLOBAL_HDR.size)
        if len(header) != _GLOBAL_HDR.size:
            raise PcapError("truncated pcap global header")
        magic = struct.unpack("<I", header[:4])[0]
        if magic != _MAGIC:
            raise PcapError(f"unsupported pcap magic {magic:#x}")
        fields = _GLOBAL_HDR.unpack(header)
        if fields[6] != _LINKTYPE_ETHERNET:
            raise PcapError(f"unsupported link type {fields[6]}")

    def __iter__(self) -> Iterator[PcapRecord]:
        while True:
            header = self._stream.read(_RECORD_HDR.size)
            if not header:
                return
            if len(header) != _RECORD_HDR.size:
                raise PcapError("truncated pcap record header")
            ts_sec, ts_usec, caplen, origlen = _RECORD_HDR.unpack(header)
            data = self._stream.read(caplen)
            if len(data) != caplen:
                raise PcapError("truncated pcap record body")
            yield PcapRecord(ts_sec, ts_usec, data)

    def read_all(self) -> List[PcapRecord]:
        return list(self)


def save_trace(path: str, trace: List[Tuple[bytes, int]]) -> int:
    """Write a workload trace to a pcap file; returns packet count."""
    with open(path, "wb") as fh:
        return PcapWriter(fh).write_trace(trace)


def load_trace(path: str, port: int = 0) -> List[Tuple[bytes, int]]:
    """Read a pcap file back as a (data, port) workload trace."""
    with open(path, "rb") as fh:
        return [(record.data, port) for record in PcapReader(fh)]

"""MAC, IPv4, and IPv6 address codecs.

Addresses are stored as plain integers inside packets and table keys
(matching how the behavioral switch treats every field as a bit
string); these helpers convert between integers and the usual textual
notations for configuration files, controller scripts, and debugging
output.
"""

from __future__ import annotations

import ipaddress


def parse_mac(text: str) -> int:
    """Parse ``aa:bb:cc:dd:ee:ff`` into a 48-bit integer."""
    parts = text.split(":")
    if len(parts) != 6:
        raise ValueError(f"malformed MAC address: {text!r}")
    value = 0
    for part in parts:
        if not 1 <= len(part) <= 2:
            raise ValueError(f"malformed MAC address: {text!r}")
        value = (value << 8) | int(part, 16)
    return value


def format_mac(value: int) -> str:
    """Format a 48-bit integer as ``aa:bb:cc:dd:ee:ff``."""
    if not 0 <= value < 1 << 48:
        raise ValueError(f"MAC address out of range: {value:#x}")
    octets = value.to_bytes(6, "big")
    return ":".join(f"{octet:02x}" for octet in octets)


def parse_ipv4(text: str) -> int:
    """Parse dotted-quad IPv4 notation into a 32-bit integer."""
    return int(ipaddress.IPv4Address(text))


def format_ipv4(value: int) -> str:
    """Format a 32-bit integer as dotted-quad IPv4 notation."""
    return str(ipaddress.IPv4Address(value))


def parse_ipv6(text: str) -> int:
    """Parse IPv6 notation into a 128-bit integer."""
    return int(ipaddress.IPv6Address(text))


def format_ipv6(value: int) -> str:
    """Format a 128-bit integer as canonical IPv6 notation."""
    return str(ipaddress.IPv6Address(value))


def parse_prefix(text: str, *, v6: bool = False) -> "tuple[int, int]":
    """Parse ``addr/len`` into ``(address_int, prefix_len)``.

    A bare address is treated as a host prefix (/32 or /128).
    """
    if "/" in text:
        addr, _, plen = text.partition("/")
        length = int(plen)
    else:
        addr, length = text, 128 if v6 else 32
    max_len = 128 if v6 else 32
    if not 0 <= length <= max_len:
        raise ValueError(f"prefix length out of range: {text!r}")
    value = parse_ipv6(addr) if v6 else parse_ipv4(addr)
    return value, length

"""Internet checksum (RFC 1071) helpers used by the IPv4 header."""

from __future__ import annotations


def internet_checksum(data: bytes) -> int:
    """Compute the 16-bit one's-complement Internet checksum of ``data``."""
    if len(data) % 2:
        data = data + b"\x00"
    total = 0
    for i in range(0, len(data), 2):
        total += (data[i] << 8) | data[i + 1]
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return ~total & 0xFFFF


def ipv4_header_checksum(header: bytes) -> int:
    """Checksum an IPv4 header with its checksum field zeroed.

    ``header`` must be the full on-wire header; bytes 10-11 (the
    checksum field) are ignored regardless of their current value.
    """
    if len(header) < 20:
        raise ValueError(f"IPv4 header too short: {len(header)} bytes")
    zeroed = header[:10] + b"\x00\x00" + header[12:]
    return internet_checksum(zeroed)

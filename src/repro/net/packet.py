"""The packet object and the just-in-time incremental parser.

IPSA has no front-end parser: each Templated Stage Processor parses
only the headers it needs, and parse results travel with the packet so
later stages never re-parse (paper Sec. 2.1).  :class:`Packet` holds:

* the raw bytes,
* an ordered list of parsed :class:`~repro.net.headers.HeaderInstance`
  objects,
* the *parse cursor* (bit offset of the first unparsed byte and the
  name of the header type expected there), and
* a per-packet metadata dict (the analogue of P4 standard/user
  metadata).

:meth:`Packet.ensure_parsed` is the JIT entry point used by TSP parser
sub-modules; the PISA front-end parser simply calls it once for every
header in its parse graph.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.net.headers import HeaderInstance, HeaderType
from repro.net.linkage import HeaderLinkageTable


class ParseError(Exception):
    """Raised when a packet cannot be decoded as the expected header."""


#: Metadata keys every packet starts with (the "intrinsic metadata").
INTRINSIC_METADATA = {
    "ingress_port": 0,
    "egress_spec": 0,
    "egress_port": 0,
    "drop": 0,
    "to_cpu": 0,
    "mcast_grp": 0,
    "packet_length": 0,
}


class Packet:
    """A packet in flight through a behavioral switch."""

    def __init__(
        self,
        data: bytes,
        first_header: str = "ethernet",
        ingress_port: int = 0,
        metadata: Optional[Dict[str, object]] = None,
    ) -> None:
        self.data = bytes(data)
        self.headers: List[HeaderInstance] = []
        self._by_name: Dict[str, HeaderInstance] = {}
        self.cursor_bits = 0
        self.next_header_name: Optional[str] = first_header
        if metadata is None:
            metadata = dict(INTRINSIC_METADATA)
            metadata["ingress_port"] = ingress_port
            metadata["packet_length"] = len(data)
        # A caller-provided dict is adopted as-is (the batch front door
        # prebuilds one merged defaults dict per device and copies it
        # per packet, skipping the intrinsic+setdefault dance).
        self.metadata: Dict[str, object] = metadata

    # -- header bookkeeping --------------------------------------------

    def is_valid(self, name: str) -> bool:
        """Has a header instance called ``name`` been parsed or added?"""
        return name in self._by_name

    def header(self, name: str) -> HeaderInstance:
        """Return the header instance called ``name``."""
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"packet has no parsed header {name!r}") from None

    def header_names(self) -> List[str]:
        """Names of parsed headers in wire order."""
        return [h.name for h in self.headers]

    def _register(self, instance: HeaderInstance, index: Optional[int] = None) -> str:
        base = instance.name
        name = base
        suffix = 2
        while name in self._by_name:
            name = f"{base}.{suffix}"
            suffix += 1
        instance.name = name
        if index is None:
            self.headers.append(instance)
        else:
            self.headers.insert(index, instance)
        self._by_name[name] = instance
        return name

    # -- parsing ---------------------------------------------------------

    def parse_one(
        self,
        header_types: Dict[str, HeaderType],
        linkage: HeaderLinkageTable,
    ) -> Optional[str]:
        """Parse the next header at the cursor; return its instance name.

        Returns ``None`` when the parse frontier is exhausted (no
        expected next header, or the expected header type is unknown
        to this device).  Raises :class:`ParseError` when the bytes on
        the wire are too short for the expected header.
        """
        expected = self.next_header_name
        if expected is None:
            return None
        htype = header_types.get(expected)
        if htype is None:
            # The device does not know this protocol (yet): stop here.
            self.next_header_name = None
            return None
        try:
            values, consumed = htype.unpack(self.data, self.cursor_bits)
        except ValueError as exc:
            raise ParseError(
                f"cannot parse {expected!r} at bit {self.cursor_bits}: {exc}"
            ) from exc
        instance = HeaderInstance(htype, values, expected)
        name = self._register(instance)
        self.cursor_bits += consumed

        selector = linkage.selector(expected)
        if selector is None:
            self.next_header_name = None
        else:
            tag = instance.get(selector)
            assert isinstance(tag, int)
            self.next_header_name = linkage.next_header(expected, tag)
        return name

    def ensure_parsed(
        self,
        names: List[str],
        header_types: Dict[str, HeaderType],
        linkage: HeaderLinkageTable,
    ) -> int:
        """JIT-parse until every name in ``names`` is available, or no
        remaining name is reachable from the parse frontier.  Returns
        the number of headers newly parsed (the IPSA throughput model
        charges for these).

        Stopping on reachability is what makes "parser { ipv4, ipv6 }"
        mean *parse ipv4 or ipv6* (Fig. 5(a)): once the frontier can no
        longer lead to a requested header, parsing stops instead of
        running to the end of the packet.
        """
        parsed = 0
        by_name = self._by_name
        remaining = {n for n in names if n not in by_name}
        while remaining and self.next_header_name is not None:
            frontier = self.next_header_name
            if frontier not in remaining and remaining.isdisjoint(
                linkage.reachable_set(frontier)
            ):
                break
            got = self.parse_one(header_types, linkage)
            if got is None:
                break
            parsed += 1
            remaining.discard(got)
        return parsed

    def parse_all(
        self,
        header_types: Dict[str, HeaderType],
        linkage: HeaderLinkageTable,
    ) -> int:
        """Parse every reachable header (PISA front-end parser behaviour)."""
        parsed = 0
        while self.next_header_name is not None:
            if self.parse_one(header_types, linkage) is None:
                break
            parsed += 1
        return parsed

    # -- header mutation (push/pop for encap protocols) -------------------

    def insert_header(
        self,
        instance: HeaderInstance,
        after: Optional[str] = None,
        before: Optional[str] = None,
    ) -> str:
        """Insert a synthesized header instance into the parsed stack."""
        if after is not None and before is not None:
            raise ValueError("give at most one of after/before")
        index: Optional[int] = None
        if after is not None:
            index = self.headers.index(self.header(after)) + 1
        elif before is not None:
            index = self.headers.index(self.header(before))
        return self._register(instance, index)

    def remove_header(self, name: str) -> HeaderInstance:
        """Remove (invalidate) a parsed header instance."""
        instance = self.header(name)
        self.headers.remove(instance)
        del self._by_name[name]
        return instance

    # -- serialization ----------------------------------------------------

    def payload(self) -> bytes:
        """Bytes beyond the parse cursor (never reparsed or rewritten)."""
        if self.cursor_bits % 8:
            raise ValueError("parse cursor is not byte aligned")
        return self.data[self.cursor_bits // 8 :]

    def emit(self) -> bytes:
        """Serialize: packed parsed headers followed by the payload.

        IPSA needs no egress deparser because the full header stack is
        maintained in flight; this method is that "already deparsed"
        view (the PISA model calls it from its explicit deparser).
        """
        return b"".join(h.pack() for h in self.headers) + self.payload()

    def clone(self) -> "Packet":
        """Deep copy used by multicast and by the drain protocol tests."""
        twin = Packet(self.data, first_header="ethernet")
        twin.headers = [h.clone() for h in self.headers]
        twin._by_name = {h.name: h for h in twin.headers}
        twin.cursor_bits = self.cursor_bits
        twin.next_header_name = self.next_header_name
        twin.metadata = dict(self.metadata)
        return twin

    # -- convenience accessors used by the action VM ----------------------

    def read(self, ref: str) -> object:
        """Read ``"meta.x"`` or ``"header.field"`` by dotted reference."""
        scope, _, field_name = ref.partition(".")
        if not field_name:
            raise ValueError(f"malformed field reference {ref!r}")
        if scope == "meta":
            if field_name not in self.metadata:
                raise KeyError(f"unknown metadata field {field_name!r}")
            return self.metadata[field_name]
        return self.header(scope).get(field_name)

    def write(self, ref: str, value: object) -> None:
        """Write ``"meta.x"`` or ``"header.field"`` by dotted reference."""
        scope, _, field_name = ref.partition(".")
        if not field_name:
            raise ValueError(f"malformed field reference {ref!r}")
        if scope == "meta":
            self.metadata[field_name] = value
        else:
            self.header(scope).set(field_name, value)

    def __repr__(self) -> str:
        return (
            f"Packet(headers={self.header_names()}, "
            f"len={len(self.data)}, port={self.metadata['ingress_port']})"
        )

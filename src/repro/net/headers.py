"""Header type definitions and the standard header library.

A :class:`HeaderType` is an ordered list of bit-accurate fields, with
optional support for one variable-length trailing byte field whose
length is computed from already-decoded fields (used by the SRv6 SRH
segment list).  A :class:`HeaderInstance` is a concrete parsed header:
a type plus field values.

Both the PISA front-end parser and IPSA's distributed per-stage
parsers decode packets into these instances; the instances (not the
raw bytes) are what match-action stages read and write, mirroring the
paper's "parsed headers are passed to later pipeline stages" design.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.net.fields import extract_bits, mask_to_width


@dataclass(frozen=True)
class FieldDef:
    """One fixed-width field inside a header type."""

    name: str
    width: int  # bits

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ValueError(f"field {self.name!r} must have positive width")


class HeaderType:
    """An ordered, bit-accurate header layout.

    Parameters
    ----------
    name:
        Type name (e.g. ``"ipv4"``); also the default instance name.
    fields:
        Fixed-width fields in wire order.  Their total width must be a
        multiple of 8 bits when a variable-length field is present.
    varlen_field:
        Optional name of a trailing byte-string field.
    varlen_bytes:
        Callable mapping the decoded fixed-field values to the length
        in bytes of the variable part.
    """

    def __init__(
        self,
        name: str,
        fields: List[FieldDef],
        varlen_field: Optional[str] = None,
        varlen_bytes: Optional[Callable[[Dict[str, int]], int]] = None,
    ) -> None:
        if not fields:
            raise ValueError(f"header type {name!r} needs at least one field")
        if (varlen_field is None) != (varlen_bytes is None):
            raise ValueError("varlen_field and varlen_bytes must be given together")
        self.name = name
        self.fields = list(fields)
        self.varlen_field = varlen_field
        self.varlen_bytes = varlen_bytes
        self._widths = {f.name: f.width for f in fields}
        if len(self._widths) != len(fields):
            raise ValueError(f"duplicate field name in header type {name!r}")
        if varlen_field is not None and varlen_field in self._widths:
            raise ValueError(
                f"varlen field {varlen_field!r} collides with a fixed field"
            )
        self.fixed_bits = sum(f.width for f in fields)
        if varlen_field is not None and self.fixed_bits % 8:
            raise ValueError(
                f"header type {name!r}: fixed part must be byte aligned "
                "when a varlen field is present"
            )
        # Precomputed (name, shift, mask, width) per field so unpack
        # and pack shift one whole-header integer instead of running
        # the generic bit helpers once per field (the hot path).
        self._fixed_bytes = (self.fixed_bits + 7) // 8
        self._pad_bits = self._fixed_bytes * 8 - self.fixed_bits
        layout = []
        cursor = self.fixed_bits
        for fdef in fields:
            cursor -= fdef.width
            layout.append(
                (fdef.name, cursor, (1 << fdef.width) - 1, fdef.width)
            )
        self._layout = tuple(layout)

    def field_width(self, field_name: str) -> int:
        """Return the bit width of ``field_name``."""
        try:
            return self._widths[field_name]
        except KeyError:
            raise KeyError(
                f"header type {self.name!r} has no field {field_name!r}"
            ) from None

    def field_names(self) -> List[str]:
        """All field names, fixed fields first, in wire order."""
        names = [f.name for f in self.fields]
        if self.varlen_field is not None:
            names.append(self.varlen_field)
        return names

    def unpack(self, data: bytes, bit_offset: int = 0) -> Tuple[Dict[str, object], int]:
        """Decode one header at ``bit_offset``; return ``(values, bits_consumed)``."""
        chunk = extract_bits(data, bit_offset, self.fixed_bits)
        values: Dict[str, object] = {
            name: (chunk >> shift) & mask
            for name, shift, mask, _width in self._layout
        }
        cursor = bit_offset + self.fixed_bits
        if self.varlen_field is not None:
            assert self.varlen_bytes is not None
            nbytes = self.varlen_bytes({k: v for k, v in values.items() if isinstance(v, int)})
            if nbytes < 0:
                raise ValueError(
                    f"header type {self.name!r}: negative varlen length {nbytes}"
                )
            if cursor % 8:
                raise ValueError(
                    f"header type {self.name!r}: varlen part not byte aligned"
                )
            start = cursor // 8
            if start + nbytes > len(data):
                raise ValueError(
                    f"header type {self.name!r}: varlen part overruns packet"
                )
            values[self.varlen_field] = bytes(data[start : start + nbytes])
            cursor += nbytes * 8
        return values, cursor - bit_offset

    def pack(self, values: Dict[str, object]) -> bytes:
        """Encode field values back to wire bytes."""
        varlen = b""
        if self.varlen_field is not None:
            raw = values.get(self.varlen_field, b"")
            if not isinstance(raw, (bytes, bytearray)):
                raise TypeError(
                    f"field {self.varlen_field!r} of {self.name!r} must be bytes"
                )
            varlen = bytes(raw)
        chunk = 0
        for name, _shift, mask, width in self._layout:
            value = values.get(name, 0)
            if not isinstance(value, int):
                raise TypeError(
                    f"field {name!r} of {self.name!r} must be an int"
                )
            chunk = (chunk << width) | (value & mask)
        chunk <<= self._pad_bits
        return chunk.to_bytes(self._fixed_bytes, "big") + varlen

    def bit_length(self, values: Dict[str, object]) -> int:
        """Total encoded length in bits for the given field values."""
        extra = 0
        if self.varlen_field is not None:
            raw = values.get(self.varlen_field, b"")
            extra = len(raw) * 8  # type: ignore[arg-type]
        return self.fixed_bits + extra

    def __repr__(self) -> str:
        return f"HeaderType({self.name!r}, {len(self.fields)} fields)"


@dataclass
class HeaderInstance:
    """A parsed (or synthesized) header: a type plus field values."""

    htype: HeaderType
    values: Dict[str, object] = field(default_factory=dict)
    name: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            self.name = self.htype.name

    def get(self, field_name: str) -> object:
        """Read a field value (fixed fields default to 0 if unset)."""
        if field_name == self.htype.varlen_field:
            return self.values.get(field_name, b"")
        width = self.htype.field_width(field_name)  # validates the name
        value = self.values.get(field_name, 0)
        if isinstance(value, int):
            return mask_to_width(value, width)
        return value

    def set(self, field_name: str, value: object) -> None:
        """Write a field value, truncating integers to the field width."""
        if field_name == self.htype.varlen_field:
            if not isinstance(value, (bytes, bytearray)):
                raise TypeError(f"field {field_name!r} must be bytes")
            self.values[field_name] = bytes(value)
            return
        width = self.htype.field_width(field_name)
        if not isinstance(value, int):
            raise TypeError(f"field {field_name!r} must be an int")
        self.values[field_name] = mask_to_width(value, width)

    def pack(self) -> bytes:
        """Wire encoding of this instance."""
        return self.htype.pack(self.values)

    def clone(self) -> "HeaderInstance":
        """Deep-enough copy (values dict is copied; the type is shared)."""
        return HeaderInstance(self.htype, dict(self.values), self.name)

    def __repr__(self) -> str:
        return f"HeaderInstance({self.name!r})"


def _srh_seglist_bytes(values: Dict[str, int]) -> int:
    # RFC 8754: total ext header length is (hdr_ext_len + 1) * 8 bytes,
    # of which the first 8 are the fixed part.
    return values.get("hdr_ext_len", 0) * 8


#: Ethertype announcing an INT shim between Ethernet and L3.
INT_ETHERTYPE = 0x1234

#: One INT hop record: switch id, ingress/egress timestamps (ns, 48
#: bits -- wraps after ~3.2 days of monotonic clock, ample for a
#: behavioral model), TM queue depth, and the dataplane plan epoch the
#: packet was forwarded under (the PR 5 txn engine's commit counter).
INT_HOP_FIELDS: Tuple[Tuple[str, int], ...] = (
    ("switch_id", 16),
    ("ingress_ts", 48),
    ("egress_ts", 48),
    ("queue_depth", 16),
    ("dp_epoch", 16),
)
INT_HOP_BYTES = sum(width for _name, width in INT_HOP_FIELDS) // 8


def _int_stack_bytes(values: Dict[str, int]) -> int:
    return values.get("hop_count", 0) * INT_HOP_BYTES


ETHERNET = HeaderType(
    "ethernet",
    [FieldDef("dst_addr", 48), FieldDef("src_addr", 48), FieldDef("ethertype", 16)],
)

VLAN = HeaderType(
    "vlan",
    [
        FieldDef("pcp", 3),
        FieldDef("dei", 1),
        FieldDef("vid", 12),
        FieldDef("ethertype", 16),
    ],
)

IPV4 = HeaderType(
    "ipv4",
    [
        FieldDef("version", 4),
        FieldDef("ihl", 4),
        FieldDef("dscp", 6),
        FieldDef("ecn", 2),
        FieldDef("total_len", 16),
        FieldDef("identification", 16),
        FieldDef("flags", 3),
        FieldDef("frag_offset", 13),
        FieldDef("ttl", 8),
        FieldDef("protocol", 8),
        FieldDef("hdr_checksum", 16),
        FieldDef("src_addr", 32),
        FieldDef("dst_addr", 32),
    ],
)

IPV6 = HeaderType(
    "ipv6",
    [
        FieldDef("version", 4),
        FieldDef("traffic_class", 8),
        FieldDef("flow_label", 20),
        FieldDef("payload_len", 16),
        FieldDef("next_hdr", 8),
        FieldDef("hop_limit", 8),
        FieldDef("src_addr", 128),
        FieldDef("dst_addr", 128),
    ],
)

SRH = HeaderType(
    "srh",
    [
        FieldDef("next_hdr", 8),
        FieldDef("hdr_ext_len", 8),
        FieldDef("routing_type", 8),
        FieldDef("segments_left", 8),
        FieldDef("last_entry", 8),
        FieldDef("flags", 8),
        FieldDef("tag", 16),
    ],
    varlen_field="segment_list",
    varlen_bytes=_srh_seglist_bytes,
)

INT_SHIM = HeaderType(
    "int_shim",
    [FieldDef("orig_ethertype", 16), FieldDef("hop_count", 8)],
    varlen_field="hop_stack",
    varlen_bytes=_int_stack_bytes,
)

TCP = HeaderType(
    "tcp",
    [
        FieldDef("src_port", 16),
        FieldDef("dst_port", 16),
        FieldDef("seq_no", 32),
        FieldDef("ack_no", 32),
        FieldDef("data_offset", 4),
        FieldDef("reserved", 4),
        FieldDef("flags", 8),
        FieldDef("window", 16),
        FieldDef("checksum", 16),
        FieldDef("urgent_ptr", 16),
    ],
)

UDP = HeaderType(
    "udp",
    [
        FieldDef("src_port", 16),
        FieldDef("dst_port", 16),
        FieldDef("length", 16),
        FieldDef("checksum", 16),
    ],
)


def standard_header_types() -> Dict[str, HeaderType]:
    """The built-in header library keyed by type name."""
    return {
        h.name: h
        for h in (ETHERNET, VLAN, IPV4, IPV6, SRH, TCP, UDP)
    }


def int_pack_hop(record: Dict[str, int]) -> bytes:
    """Encode one hop record to its :data:`INT_HOP_BYTES` wire form."""
    chunk = 0
    for name, width in INT_HOP_FIELDS:
        chunk = (chunk << width) | mask_to_width(int(record.get(name, 0)), width)
    return chunk.to_bytes(INT_HOP_BYTES, "big")


def int_unpack_hop(data: bytes) -> Dict[str, int]:
    """Decode one :data:`INT_HOP_BYTES`-sized hop record."""
    if len(data) != INT_HOP_BYTES:
        raise ValueError(
            f"hop record must be {INT_HOP_BYTES} bytes, got {len(data)}"
        )
    chunk = int.from_bytes(data, "big")
    values: Dict[str, int] = {}
    for name, width in reversed(INT_HOP_FIELDS):
        values[name] = chunk & ((1 << width) - 1)
        chunk >>= width
    return values


def int_hop_records(instance: HeaderInstance) -> List[Dict[str, int]]:
    """Decode an ``int_shim`` instance's hop stack, oldest hop first."""
    stack = instance.get("hop_stack")
    assert isinstance(stack, bytes)
    count = instance.get("hop_count")
    assert isinstance(count, int)
    if len(stack) != count * INT_HOP_BYTES:
        raise ValueError(
            f"hop stack carries {len(stack)} bytes but hop_count={count} "
            f"declares {count * INT_HOP_BYTES}"
        )
    return [
        int_unpack_hop(stack[i * INT_HOP_BYTES : (i + 1) * INT_HOP_BYTES])
        for i in range(count)
    ]


def int_push_hop(instance: HeaderInstance, record: Dict[str, int]) -> None:
    """Append one hop record to an ``int_shim`` instance (path order:
    the oldest hop stays first) and bump ``hop_count``."""
    stack = instance.get("hop_stack")
    assert isinstance(stack, bytes)
    count = instance.get("hop_count")
    assert isinstance(count, int)
    instance.set("hop_stack", stack + int_pack_hop(record))
    instance.set("hop_count", count + 1)


def srh_segment(instance: HeaderInstance, index: int) -> int:
    """Read segment ``index`` (a 128-bit IPv6 address) from an SRH instance."""
    seglist = instance.get("segment_list")
    assert isinstance(seglist, bytes)
    start = index * 16
    if start + 16 > len(seglist):
        raise IndexError(
            f"segment {index} out of range for SRH with {len(seglist) // 16} segments"
        )
    return int.from_bytes(seglist[start : start + 16], "big")


def srh_set_segment(instance: HeaderInstance, index: int, address: int) -> None:
    """Write segment ``index`` of an SRH instance."""
    seglist = instance.get("segment_list")
    assert isinstance(seglist, bytes)
    start = index * 16
    if start + 16 > len(seglist):
        raise IndexError(
            f"segment {index} out of range for SRH with {len(seglist) // 16} segments"
        )
    buf = bytearray(seglist)
    buf[start : start + 16] = address.to_bytes(16, "big")
    instance.set("segment_list", bytes(buf))

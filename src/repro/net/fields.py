"""Bit-accurate field arithmetic helpers.

Header fields in both P4 and rP4 are fixed-width unsigned bit strings
(``bit<W>``).  All arithmetic on them wraps modulo ``2**W``.  These
helpers centralize the masking rules so every module treats widths the
same way.
"""

from __future__ import annotations


def field_max(width: int) -> int:
    """Return the maximum value representable in ``width`` bits."""
    if width <= 0:
        raise ValueError(f"field width must be positive, got {width}")
    return (1 << width) - 1


def mask_to_width(value: int, width: int) -> int:
    """Truncate ``value`` to ``width`` bits (models bit<W> wrap-around)."""
    return value & field_max(width)


def to_signed(value: int, width: int) -> int:
    """Interpret a ``width``-bit unsigned value as two's-complement."""
    value = mask_to_width(value, width)
    if value >= 1 << (width - 1):
        return value - (1 << width)
    return value


def extract_bits(data: bytes, bit_offset: int, width: int) -> int:
    """Extract ``width`` bits starting at ``bit_offset`` from ``data``.

    Bits are numbered MSB-first within the byte string, matching
    network wire order.
    """
    if width <= 0:
        raise ValueError(f"field width must be positive, got {width}")
    end_bit = bit_offset + width
    if end_bit > len(data) * 8:
        raise ValueError(
            f"extract of {width} bits at offset {bit_offset} "
            f"overruns {len(data)}-byte buffer"
        )
    first_byte = bit_offset // 8
    last_byte = (end_bit + 7) // 8
    chunk = int.from_bytes(data[first_byte:last_byte], "big")
    shift = last_byte * 8 - end_bit
    return (chunk >> shift) & field_max(width)


def deposit_bits(data: bytearray, bit_offset: int, width: int, value: int) -> None:
    """Write ``width`` bits of ``value`` into ``data`` at ``bit_offset``."""
    if width <= 0:
        raise ValueError(f"field width must be positive, got {width}")
    end_bit = bit_offset + width
    if end_bit > len(data) * 8:
        raise ValueError(
            f"deposit of {width} bits at offset {bit_offset} "
            f"overruns {len(data)}-byte buffer"
        )
    value = mask_to_width(value, width)
    first_byte = bit_offset // 8
    last_byte = (end_bit + 7) // 8
    span = last_byte - first_byte
    chunk = int.from_bytes(data[first_byte:last_byte], "big")
    shift = last_byte * 8 - end_bit
    mask = field_max(width) << shift
    chunk = (chunk & ~mask) | (value << shift)
    data[first_byte:last_byte] = chunk.to_bytes(span, "big")


def concat_fields(parts: "list[tuple[int, int]]") -> int:
    """Concatenate ``(value, width)`` pairs MSB-first into one integer."""
    out = 0
    for value, width in parts:
        out = (out << width) | mask_to_width(value, width)
    return out

"""The header linkage table: a runtime-modifiable parse graph.

rP4 headers carry an ``implicit parser`` clause naming the *selector
field* (e.g. ``ethertype`` for Ethernet) and the tag values that lead
to successor headers.  The paper's controller commands::

    link_header --pre IPv6 --next SRH --tag 43
    link_header --pre SRH  --next IPv6 --tag 41

mutate exactly this structure at runtime, which is what lets IPSA
start parsing a brand-new protocol header (SRv6's SRH) without
recompiling or reloading the switch.  We therefore model the parse
graph as data -- a table of :class:`HeaderLink` rows -- rather than as
code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple


@dataclass(frozen=True)
class HeaderLink:
    """One edge of the parse graph: ``pre --tag--> next``."""

    pre: str
    tag: int
    next: str


class HeaderLinkageTable:
    """Selector fields plus (header, tag) -> next-header edges.

    The table is shared by the PISA front-end parser and every IPSA
    TSP parser sub-module; IPSA additionally mutates it at runtime via
    :meth:`add_link` / :meth:`del_link`.
    """

    def __init__(self) -> None:
        self._selector: Dict[str, str] = {}
        self._edges: Dict[Tuple[str, int], str] = {}
        # Memoized transitive closures (root -> frozenset of reachable
        # headers).  The JIT parser consults reachability per stage per
        # packet; edges change only on link_header commands, so the
        # cache is dropped whenever the edge set mutates.
        self._reachable: Dict[str, frozenset] = {}

    # -- construction -------------------------------------------------

    def set_selector(self, header: str, field_name: str) -> None:
        """Declare which field of ``header`` selects the next header."""
        self._selector[header] = field_name

    def selector(self, header: str) -> Optional[str]:
        """Selector field of ``header``, or ``None`` for terminal headers."""
        return self._selector.get(header)

    def add_link(self, pre: str, next_header: str, tag: int) -> None:
        """Add (or replace) the edge ``pre --tag--> next_header``.

        ``pre`` must already have a selector field declared; this is
        the invariant the controller's ``link_header`` command relies
        on (the new header's *own* selector is declared when its type
        is loaded).
        """
        if pre not in self._selector:
            raise KeyError(
                f"header {pre!r} has no selector field; cannot link from it"
            )
        self._edges[(pre, tag)] = next_header
        self._reachable.clear()

    def del_link(self, pre: str, tag: int) -> None:
        """Remove the edge keyed by ``(pre, tag)``."""
        try:
            del self._edges[(pre, tag)]
        except KeyError:
            raise KeyError(f"no link from {pre!r} with tag {tag}") from None
        self._reachable.clear()

    # -- queries ------------------------------------------------------

    def next_header(self, header: str, tag: int) -> Optional[str]:
        """Successor of ``header`` for selector value ``tag`` (or None)."""
        return self._edges.get((header, tag))

    def links(self) -> List[HeaderLink]:
        """All edges as a stable, sorted list (for display and tests)."""
        return sorted(
            (HeaderLink(pre, tag, nxt) for (pre, tag), nxt in self._edges.items()),
            key=lambda l: (l.pre, l.tag),
        )

    def links_from(self, header: str) -> List[HeaderLink]:
        """All edges whose predecessor is ``header``."""
        return [l for l in self.links() if l.pre == header]

    def reachable(self, root: str) -> List[str]:
        """Headers reachable from ``root`` (root included), BFS order."""
        seen = [root]
        frontier = [root]
        while frontier:
            current = frontier.pop(0)
            for link in self.links_from(current):
                if link.next not in seen:
                    seen.append(link.next)
                    frontier.append(link.next)
        return seen

    def reachable_set(self, root: str) -> frozenset:
        """Memoized :meth:`reachable` as a frozenset (hot-path form)."""
        cached = self._reachable.get(root)
        if cached is None:
            cached = self._reachable[root] = frozenset(self.reachable(root))
        return cached

    def clone(self) -> "HeaderLinkageTable":
        """Independent copy (controller snapshots use this)."""
        copy = HeaderLinkageTable()
        copy._selector = dict(self._selector)
        copy._edges = dict(self._edges)
        return copy

    def merge(self, other: "HeaderLinkageTable") -> None:
        """Fold another linkage table's selectors and edges into this one."""
        self._selector.update(other._selector)
        self._edges.update(other._edges)
        self._reachable.clear()

    def __len__(self) -> int:
        return len(self._edges)


# Well-known tag values.
ETHERTYPE_IPV4 = 0x0800
ETHERTYPE_IPV6 = 0x86DD
ETHERTYPE_VLAN = 0x8100
IPPROTO_TCP = 6
IPPROTO_UDP = 17
IPPROTO_IPV4 = 4
IPPROTO_IPV6 = 41
IPPROTO_ROUTING = 43


def standard_linkage(links: Optional[Iterable[HeaderLink]] = None) -> HeaderLinkageTable:
    """Linkage for the base L2/L3 design (no SRH -- that is loaded at runtime).

    ``links`` optionally appends extra edges on top of the standard set.
    """
    table = HeaderLinkageTable()
    table.set_selector("ethernet", "ethertype")
    table.set_selector("vlan", "ethertype")
    table.set_selector("ipv4", "protocol")
    table.set_selector("ipv6", "next_hdr")
    table.set_selector("srh", "next_hdr")

    table.add_link("ethernet", "ipv4", ETHERTYPE_IPV4)
    table.add_link("ethernet", "ipv6", ETHERTYPE_IPV6)
    table.add_link("ethernet", "vlan", ETHERTYPE_VLAN)
    table.add_link("vlan", "ipv4", ETHERTYPE_IPV4)
    table.add_link("vlan", "ipv6", ETHERTYPE_IPV6)
    table.add_link("ipv4", "tcp", IPPROTO_TCP)
    table.add_link("ipv4", "udp", IPPROTO_UDP)
    table.add_link("ipv6", "tcp", IPPROTO_TCP)
    table.add_link("ipv6", "udp", IPPROTO_UDP)

    if links is not None:
        for link in links:
            table.add_link(link.pre, link.next, link.tag)
    return table

"""The paper's programs: the L2/L3 base design and the three use cases.

Each module exposes the program source text (P4 and/or rP4), the
controller load script (Fig. 5(b)/(c)), and helpers that populate the
tables with a small reference topology so examples, tests, and benches
share one configuration.
"""

from repro.programs.acl import acl_load_script, acl_rp4_source, populate_acl_tables
from repro.programs.base_l2l3 import (
    BASE_STAGE_LETTERS,
    base_p4_source,
    base_rp4_source,
    populate_base_tables,
)
from repro.programs.ecmp import ecmp_load_script, ecmp_rp4_source, populate_ecmp_tables
from repro.programs.flowprobe import (
    flowprobe_load_script,
    flowprobe_rp4_source,
    populate_flowprobe_tables,
)
from repro.programs.hhsketch import (
    hhsketch_load_script,
    hhsketch_rp4_source,
    populate_hhsketch_tables,
)
from repro.programs.int_telemetry import (
    int_load_script,
    int_rp4_source,
    int_strip_load_script,
    int_strip_rp4_source,
    populate_int_sink_tables,
    populate_int_tables,
)
from repro.programs.qos import (
    configure_meters,
    populate_qos_tables,
    qos_load_script,
    qos_rp4_source,
)
from repro.programs.srv6 import (
    populate_srv6_tables,
    srv6_load_script,
    srv6_rp4_source,
)

__all__ = [
    "BASE_STAGE_LETTERS",
    "acl_load_script",
    "acl_rp4_source",
    "populate_acl_tables",
    "base_p4_source",
    "base_rp4_source",
    "ecmp_load_script",
    "ecmp_rp4_source",
    "flowprobe_load_script",
    "flowprobe_rp4_source",
    "hhsketch_load_script",
    "hhsketch_rp4_source",
    "int_load_script",
    "int_rp4_source",
    "int_strip_load_script",
    "int_strip_rp4_source",
    "populate_hhsketch_tables",
    "populate_int_sink_tables",
    "populate_int_tables",
    "populate_base_tables",
    "populate_ecmp_tables",
    "populate_flowprobe_tables",
    "populate_qos_tables",
    "populate_srv6_tables",
    "qos_load_script",
    "qos_rp4_source",
    "configure_meters",
    "srv6_load_script",
    "srv6_rp4_source",
]

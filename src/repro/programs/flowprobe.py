"""Use case C3: event-triggered flow probe (paper Sec. 4.2).

A runtime-installed probe counts packets of particular IPv4 flows
({SIP, DIP} key).  Once a flow's counter exceeds its threshold the
packets are marked (``meta.flow_marked``) for further processing,
e.g. the controller applying ACL/QoS rules.  No new protocol header
is involved -- only a new flow table and one stage.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.net.addresses import parse_ipv4
from repro.tables.table import Table, TableEntry

_FLOWPROBE_RP4 = """
// rP4 code for the event-triggered flow probe.
table flow_probe {
    key = {
        ipv4.src_addr: exact;
        ipv4.dst_addr: exact;
    }
    size = 1024;
}

action probe_count(bit<32> threshold) {
    count_and_mark(threshold, meta.flow_marked);
}

stage flow_probe {
    parser { ipv4 };
    matcher {
        if (ipv4.isValid()) flow_probe.apply();
        else;
    };
    executor {
        1: probe_count;
        default: NoAction;
    }
}

user_funcs {
    func flow_probe { flow_probe }
}
"""

_FLOWPROBE_SCRIPT = """
load flowprobe.rp4 --func_name flow_probe
add_link l2_l3 flow_probe
del_link l2_l3 ipv4_lpm
add_link flow_probe ipv4_lpm
"""


def flowprobe_rp4_source() -> str:
    """The rP4 snippet for the flow probe function."""
    return _FLOWPROBE_RP4


def flowprobe_load_script() -> str:
    """The rp4bc load script inserting the probe after the L2/L3 stage."""
    return _FLOWPROBE_SCRIPT


#: (src, dst) -> threshold for the probed flows.
PROBED_FLOWS: Dict[Tuple[str, str], int] = {
    ("10.1.0.1", "10.2.0.1"): 5,
    ("10.1.0.2", "10.2.0.2"): 100,
}


def populate_flowprobe_tables(tables: Dict[str, Table]) -> None:
    """Install the probed flows with their thresholds."""
    for (src, dst), threshold in PROBED_FLOWS.items():
        tables["flow_probe"].add_entry(
            TableEntry(
                key=(parse_ipv4(src), parse_ipv4(dst)),
                action="probe_count",
                action_data={"threshold": threshold},
                tag=1,
            )
        )

"""Use case C4 (extension): transitory heavy-hitter detection.

Not one of the paper's three demos, but exactly the workload its
introduction motivates: "*Transitory in-network computing* -- the
pluggable functions are temporally enabled at runtime to boost
application performance" and "*Dynamic network visibility* --
temporary and customized telemetry ... too resource-consuming to keep
permanent".  A count-min sketch is loaded at runtime; flows whose
estimate exceeds a table-configured threshold are marked and punted
metadata-first to the controller.  Offloading the function recycles
both the filter table and the sketch state.
"""

from __future__ import annotations

from typing import Dict

from repro.tables.table import Table, TableEntry

_HHSKETCH_RP4 = """
// rP4 code for the heavy-hitter sketch function (extension use case).
// Extends the base design's metadata struct (same struct name, so
// the members union on merge).
structs {
    struct metadata {
        bit<32> hh_count;
    } meta;
}

table hh_filter {
    key = { ipv4.protocol: ternary; }
    size = 16;
}

action hh_update(bit<32> threshold) {
    sketch_update(ipv4.src_addr, ipv4.dst_addr, meta.hh_count);
    mark_above(meta.hh_count, threshold, meta.flow_marked);
}

stage hh_sketch {
    parser { ipv4 };
    matcher {
        if (ipv4.isValid()) hh_filter.apply();
        else;
    };
    executor {
        1: hh_update;
        default: NoAction;
    }
}

user_funcs {
    func hh_sketch { hh_sketch }
}
"""

_HHSKETCH_SCRIPT = """
load hhsketch.rp4 --func_name hh_sketch
add_link l2_l3 hh_sketch
del_link l2_l3 ipv4_lpm
add_link hh_sketch ipv4_lpm
"""


def hhsketch_rp4_source() -> str:
    """The rP4 snippet for the heavy-hitter sketch function."""
    return _HHSKETCH_RP4


def hhsketch_load_script() -> str:
    """Insert the sketch stage after the L2/L3 decision."""
    return _HHSKETCH_SCRIPT


#: Default threshold installed by :func:`populate_hhsketch_tables`.
DEFAULT_THRESHOLD = 50


def populate_hhsketch_tables(
    tables: Dict[str, Table], threshold: int = DEFAULT_THRESHOLD
) -> None:
    """Sketch every IPv4 protocol (wildcard filter row)."""
    tables["hh_filter"].add_entry(
        TableEntry(
            key=((0, 0),),  # value/mask wildcard on ipv4.protocol
            action="hh_update",
            action_data={"threshold": threshold},
            tag=1,
            priority=1,
        )
    )

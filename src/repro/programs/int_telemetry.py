"""Use case C5 (extension): in-band telemetry insertion (INT-style).

The paper cites the INT dataplane spec among the telemetry workloads
motivating runtime programmability.  This function, loaded in service,
inserts a telemetry shim between Ethernet and L3 for selected flows --
a brand-new header pushed onto live traffic, with its parse linkage
(`link_header`) installed at runtime exactly like SRv6's SRH.  A
downstream collector (or the paired ``int_strip`` function) restores
the original EtherType from the shim.
"""

from __future__ import annotations

from typing import Dict

from repro.net.addresses import parse_ipv4
from repro.tables.table import Table, TableEntry

_INT_RP4 = """
// rP4 code for the INT insertion function (extension use case).
headers {
    // Telemetry shim between Ethernet and L3 (INT-over-L2 flavor).
    header int_shim {
        bit<16> orig_ethertype;
        bit<16> switch_id;
        bit<32> hop_latency;
        implicit parser(orig_ethertype) {
            // restored linkage installed at runtime via link_header
        }
    }
}

table int_watch {
    key = {
        ipv4.src_addr: exact;
        ipv4.dst_addr: exact;
    }
    size = 256;
}

action int_add(bit<16> switch_id, bit<32> hop_latency) {
    push_int();
    int_shim.switch_id = switch_id;
    int_shim.hop_latency = hop_latency;
}

stage int_insert {
    parser { ipv4 };
    matcher {
        if (ipv4.isValid()) int_watch.apply();
        else;
    };
    executor {
        1: int_add;
        default: NoAction;
    }
}

user_funcs {
    func int_insert { int_insert }
}
"""

_INT_SCRIPT = """
load int.rp4 --func_name int_insert
add_link l2_l3 int_insert
del_link l2_l3 ipv4_lpm
add_link int_insert ipv4_lpm
link_header --pre int_shim --next ipv4 --tag 0x0800
link_header --pre int_shim --next ipv6 --tag 0x86DD
"""


def int_rp4_source() -> str:
    """The rP4 snippet for the INT insertion function."""
    return _INT_RP4


def int_load_script() -> str:
    """Insert the INT stage after L2/L3 and restore the shim's linkage."""
    return _INT_SCRIPT


#: Flows to instrument: (src, dst) -> switch id reported.
WATCHED_FLOWS: Dict[tuple, int] = {
    ("10.1.0.1", "10.2.0.1"): 7,
}


def populate_int_tables(
    tables: Dict[str, Table], hop_latency: int = 350
) -> None:
    """Instrument the watched flows."""
    for (src, dst), switch_id in WATCHED_FLOWS.items():
        tables["int_watch"].add_entry(
            TableEntry(
                key=(parse_ipv4(src), parse_ipv4(dst)),
                action="int_add",
                action_data={"switch_id": switch_id, "hop_latency": hop_latency},
                tag=1,
            )
        )

"""Use case C5 (extension): in-band telemetry (INT-style), multi-hop.

The paper cites the INT dataplane spec among the telemetry workloads
motivating runtime programmability.  Two functions, both loadable in
service:

* **int_insert** splices a telemetry shim between Ethernet and L3 for
  watched flows and pushes one 18-byte **hop record** per traversal --
  ``{switch_id, ingress_ts, egress_ts, queue_depth, dp_epoch}`` (see
  ``repro.net.headers.INT_HOP_FIELDS``).  The shim's ``hop_stack`` is
  the first use of the rP4 ``varbit`` header extension: its length is
  ``hop_count`` records, re-parsed at every hop so transit switches
  append to the stack a previous switch started.
* **int_strip** is the sink-side pair: it removes the shim, restores
  the original EtherType, and (when a collector is attached to the
  device) reports the decoded hop stack to
  :class:`repro.obs.intcol.IntCollector`.

Fabrics that terminate INT at the edge instead of on a sink switch can
skip ``int_strip`` and attach the collector to the
:class:`~repro.runtime.fabric.Fabric` delivery hook.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from repro.net.addresses import parse_ipv4
from repro.net.headers import INT_ETHERTYPE, INT_HOP_BYTES
from repro.tables.table import Table, TableEntry

_INT_RP4 = f"""
// rP4 code for the INT insertion function (extension use case).
headers {{
    // Telemetry shim between Ethernet and L3 (INT-over-L2 flavor).
    // The hop stack grows by one record per instrumented traversal.
    header int_shim {{
        bit<16> orig_ethertype;
        bit<8> hop_count;
        varbit<hop_count, {INT_HOP_BYTES}> hop_stack;
        implicit parser(orig_ethertype) {{
            // restored linkage installed at runtime via link_header
        }}
    }}
}}

table int_watch {{
    key = {{
        ipv4.src_addr: exact;
        ipv4.dst_addr: exact;
    }}
    size = 256;
}}

// switch_id rides in as action data; push_int reads it from the
// bound parameters and stamps the rest of the hop record from the
// device (INT clock, TM occupancy, dataplane epoch).
action int_add(bit<16> switch_id) {{
    push_int();
}}

stage int_insert {{
    parser {{ ipv4 }};
    matcher {{
        if (ipv4.isValid()) int_watch.apply();
        else;
    }};
    executor {{
        1: int_add;
        default: NoAction;
    }}
}}

user_funcs {{
    func int_insert {{ int_insert }}
}}
"""

_INT_SCRIPT = f"""
load int.rp4 --func_name int_insert
add_link l2_l3 int_insert
del_link l2_l3 ipv4_lpm
add_link int_insert ipv4_lpm
link_header --pre ethernet --next int_shim --tag {INT_ETHERTYPE:#06x}
link_header --pre int_shim --next ipv4 --tag 0x0800
link_header --pre int_shim --next ipv6 --tag 0x86DD
"""

_INT_STRIP_RP4 = f"""
// rP4 code for the paired INT sink function: strip the shim and
// restore the original EtherType (hop records go to the device's
// collector, if one is attached).
headers {{
    header int_shim {{
        bit<16> orig_ethertype;
        bit<8> hop_count;
        varbit<hop_count, {INT_HOP_BYTES}> hop_stack;
        implicit parser(orig_ethertype) {{
            // restored linkage installed at runtime via link_header
        }}
    }}
}}

table int_sink {{
    key = {{
        ethernet.ethertype: exact;
    }}
    size = 4;
}}

action int_remove() {{
    pop_int();
}}

stage int_strip {{
    parser {{ int_shim, ipv4 }};
    matcher {{
        if (int_shim.isValid()) int_sink.apply();
        else;
    }};
    executor {{
        1: int_remove;
        default: NoAction;
    }}
}}

user_funcs {{
    func int_strip {{ int_strip }}
}}
"""


def int_rp4_source() -> str:
    """The rP4 snippet for the INT insertion function."""
    return _INT_RP4


def int_load_script() -> str:
    """Insert the INT stage after L2/L3 and restore the shim's linkage."""
    return _INT_SCRIPT


def int_strip_rp4_source() -> str:
    """The rP4 snippet for the INT sink (strip) function."""
    return _INT_STRIP_RP4


def int_strip_load_script(after: str = "int_insert") -> str:
    """Splice the strip stage after ``after`` (default: right behind
    ``int_insert``, so a sink switch pushes its own hop record before
    stripping; pass ``"l2_l3"`` for a strip-only node)."""
    return f"""
load int_strip.rp4 --func_name int_strip
add_link {after} int_strip
del_link {after} ipv4_lpm
add_link int_strip ipv4_lpm
link_header --pre ethernet --next int_shim --tag {INT_ETHERTYPE:#06x}
link_header --pre int_shim --next ipv4 --tag 0x0800
link_header --pre int_shim --next ipv6 --tag 0x86DD
"""


#: Flows to instrument: (src, dst) pairs.
WATCHED_FLOWS: Tuple[Tuple[str, str], ...] = (("10.1.0.1", "10.2.0.1"),)


def populate_int_tables(
    tables: Dict[str, Table],
    switch_id: int = 7,
    flows: Optional[Iterable[Tuple[str, str]]] = None,
) -> None:
    """Watch ``flows`` (default :data:`WATCHED_FLOWS`), stamping this
    device's hop records with ``switch_id``."""
    for src, dst in flows if flows is not None else WATCHED_FLOWS:
        tables["int_watch"].add_entry(
            TableEntry(
                key=(parse_ipv4(src), parse_ipv4(dst)),
                action="int_add",
                action_data={"switch_id": switch_id},
                tag=1,
            )
        )


def populate_int_sink_tables(tables: Dict[str, Table]) -> None:
    """Strip every instrumented packet (wire EtherType = INT shim)."""
    tables["int_sink"].add_entry(
        TableEntry(
            key=(INT_ETHERTYPE,),
            action="int_remove",
            action_data={},
            tag=1,
        )
    )

"""The L2/L3 forwarding base design (paper Sec. 4.2, Fig. 4).

Ten logical stages lettered A..J:

== =================  =========================================================
A  port_map           interface index via the port mapping table
B  bridge_vrf         bind bridge domain (BD) and VRF
C  l2_l3              determine L2 or L3 forwarding (router-MAC check per BD)
D  ipv4_lpm           IPv4 FIB, longest prefix match
E  ipv6_lpm           IPv6 FIB, longest prefix match
F  ipv4_host          IPv4 FIB, host routes
G  ipv6_host          IPv6 FIB, host routes
H  nexthop            bind egress BD and set DMAC via the nexthop table
I  l2_l3_rewrite      process the IPv4/v6 header and set SMAC
J  dmac               retrieve the egress interface via the DMAC table
== =================  =========================================================

rp4bc maps these onto seven TSPs: D+E and F+G merge (mutually
exclusive ipv4/ipv6 predicates) and the independent egress pair I+J
shares a TSP.

The module provides the design in both languages -- P4 for the
PISA/bmv2 flow, rP4 for the IPSA/ipbm flow -- plus a reference table
population shared by examples, tests, and benches.
"""

from __future__ import annotations

from typing import Dict

from repro.net.addresses import parse_ipv4, parse_ipv6, parse_mac
from repro.tables.table import Table, TableEntry

#: Fig. 4 stage letters -> stage names.
BASE_STAGE_LETTERS: Dict[str, str] = {
    "A": "port_map",
    "B": "bridge_vrf",
    "C": "l2_l3",
    "D": "ipv4_lpm",
    "E": "ipv6_lpm",
    "F": "ipv4_host",
    "G": "ipv6_host",
    "H": "nexthop",
    "I": "l2_l3_rewrite",
    "J": "dmac",
}

_RP4_SOURCE = """
// rP4 base design: simple L2/L3 forwarding (paper Fig. 4, stages A-J).
headers {
    header ethernet {
        bit<48> dst_addr;
        bit<48> src_addr;
        bit<16> ethertype;
        implicit parser(ethertype) {
            0x0800: ipv4;
            0x86DD: ipv6;
        }
    }
    header ipv4 {
        bit<4> version;
        bit<4> ihl;
        bit<6> dscp;
        bit<2> ecn;
        bit<16> total_len;
        bit<16> identification;
        bit<3> flags;
        bit<13> frag_offset;
        bit<8> ttl;
        bit<8> protocol;
        bit<16> hdr_checksum;
        bit<32> src_addr;
        bit<32> dst_addr;
        implicit parser(protocol) {
            6: tcp;
            17: udp;
        }
    }
    header ipv6 {
        bit<4> version;
        bit<8> traffic_class;
        bit<20> flow_label;
        bit<16> payload_len;
        bit<8> next_hdr;
        bit<8> hop_limit;
        bit<128> src_addr;
        bit<128> dst_addr;
        implicit parser(next_hdr) {
            6: tcp;
            17: udp;
        }
    }
    header tcp {
        bit<16> src_port;
        bit<16> dst_port;
        bit<32> seq_no;
        bit<32> ack_no;
        bit<4> data_offset;
        bit<4> reserved;
        bit<8> flags;
        bit<16> window;
        bit<16> checksum;
        bit<16> urgent_ptr;
    }
    header udp {
        bit<16> src_port;
        bit<16> dst_port;
        bit<16> length;
        bit<16> checksum;
    }
}

structs {
    struct metadata {
        bit<16> intf;
        bit<16> bd;
        bit<16> vrf;
        bit<16> nexthop;
        bit<1> l3_fwd;
    } meta;
}

action set_intf(bit<16> intf) {
    meta.intf = intf;
}
action set_bd_vrf(bit<16> bd, bit<16> vrf) {
    meta.bd = bd;
    meta.vrf = vrf;
}
action set_l3() {
    meta.l3_fwd = 1;
}
action set_nexthop(bit<16> nexthop) {
    meta.nexthop = nexthop;
}
action set_bd_dmac(bit<16> bd, bit<48> dmac) {
    meta.bd = bd;
    ethernet.dst_addr = dmac;
}
action rewrite_smac(bit<48> smac) {
    ethernet.src_addr = smac;
    decrement_ttl();
}
action set_egress_port(bit<16> port) {
    meta.egress_spec = port;
}

table port_map {
    key = { meta.ingress_port: exact; }
    size = 64;
}
table bridge_vrf {
    key = { meta.intf: exact; }
    size = 256;
}
table l2_l3 {
    key = {
        meta.bd: exact;
        ethernet.dst_addr: exact;
    }
    size = 1024;
}
table ipv4_lpm {
    key = {
        meta.vrf: exact;
        ipv4.dst_addr: lpm;
    }
    size = 4096;
}
table ipv6_lpm {
    key = {
        meta.vrf: exact;
        ipv6.dst_addr: lpm;
    }
    size = 2048;
}
table ipv4_host {
    key = {
        meta.vrf: exact;
        ipv4.dst_addr: exact;
    }
    size = 8192;
}
table ipv6_host {
    key = {
        meta.vrf: exact;
        ipv6.dst_addr: exact;
    }
    size = 4096;
}
table nexthop {
    key = { meta.nexthop: exact; }
    size = 4096;
}
table smac_rewrite {
    key = { meta.bd: exact; }
    size = 256;
}
table dmac {
    key = {
        meta.bd: exact;
        ethernet.dst_addr: exact;
    }
    size = 8192;
}

control rP4_Ingress {
    stage port_map {
        parser { ethernet };
        matcher { port_map.apply(); };
        executor {
            1: set_intf;
            default: drop;
        }
    }
    stage bridge_vrf {
        parser { ethernet };
        matcher { bridge_vrf.apply(); };
        executor {
            1: set_bd_vrf;
            default: drop;
        }
    }
    stage l2_l3 {
        parser { ethernet };
        matcher { l2_l3.apply(); };
        executor {
            1: set_l3;
            default: NoAction;
        }
    }
    stage ipv4_lpm {
        parser { ipv4 };
        matcher {
            if (ipv4.isValid() && meta.l3_fwd == 1) ipv4_lpm.apply();
            else;
        };
        executor {
            1: set_nexthop;
            default: NoAction;
        }
    }
    stage ipv6_lpm {
        parser { ipv6 };
        matcher {
            if (ipv6.isValid() && meta.l3_fwd == 1) ipv6_lpm.apply();
            else;
        };
        executor {
            1: set_nexthop;
            default: NoAction;
        }
    }
    stage ipv4_host {
        parser { ipv4 };
        matcher {
            if (ipv4.isValid() && meta.l3_fwd == 1) ipv4_host.apply();
            else;
        };
        executor {
            1: set_nexthop;
            default: NoAction;
        }
    }
    stage ipv6_host {
        parser { ipv6 };
        matcher {
            if (ipv6.isValid() && meta.l3_fwd == 1) ipv6_host.apply();
            else;
        };
        executor {
            1: set_nexthop;
            default: NoAction;
        }
    }
    stage nexthop {
        parser { ethernet };
        matcher {
            if (meta.l3_fwd == 1) nexthop.apply();
            else;
        };
        executor {
            1: set_bd_dmac;
            default: drop;
        }
    }
}

control rP4_Egress {
    stage l2_l3_rewrite {
        parser { ipv4, ipv6 };
        matcher {
            if (meta.l3_fwd == 1) smac_rewrite.apply();
            else;
        };
        executor {
            1: rewrite_smac;
            default: NoAction;
        }
    }
    stage dmac {
        parser { ethernet };
        matcher { dmac.apply(); };
        executor {
            1: set_egress_port;
            default: drop;
        }
    }
}

user_funcs {
    func l2l3_fwd {
        port_map bridge_vrf l2_l3 ipv4_lpm ipv6_lpm
        ipv4_host ipv6_host nexthop
    }
    func rewrite { l2_l3_rewrite dmac }
    ingress_entry: port_map;
    egress_entry: l2_l3_rewrite;
}
"""

_P4_SOURCE = """
// Mini-P4 base design: the same L2/L3 forwarding pipeline for the
// PISA/bmv2 flow.
header ethernet_t {
    bit<48> dst_addr;
    bit<48> src_addr;
    bit<16> ethertype;
}
header ipv4_t {
    bit<4> version;
    bit<4> ihl;
    bit<6> dscp;
    bit<2> ecn;
    bit<16> total_len;
    bit<16> identification;
    bit<3> flags;
    bit<13> frag_offset;
    bit<8> ttl;
    bit<8> protocol;
    bit<16> hdr_checksum;
    bit<32> src_addr;
    bit<32> dst_addr;
}
header ipv6_t {
    bit<4> version;
    bit<8> traffic_class;
    bit<20> flow_label;
    bit<16> payload_len;
    bit<8> next_hdr;
    bit<8> hop_limit;
    bit<128> src_addr;
    bit<128> dst_addr;
}
header tcp_t {
    bit<16> src_port;
    bit<16> dst_port;
    bit<32> seq_no;
    bit<32> ack_no;
    bit<4> data_offset;
    bit<4> reserved;
    bit<8> flags;
    bit<16> window;
    bit<16> checksum;
    bit<16> urgent_ptr;
}
header udp_t {
    bit<16> src_port;
    bit<16> dst_port;
    bit<16> length;
    bit<16> checksum;
}
//@SLOT:extra_header_types

struct headers {
    ethernet_t ethernet;
    ipv4_t ipv4;
    ipv6_t ipv6;
    tcp_t tcp;
    udp_t udp;
    //@SLOT:extra_header_instances
}
struct metadata {
    bit<16> intf;
    bit<16> bd;
    bit<16> vrf;
    bit<16> nexthop;
    bit<1> l3_fwd;
    //@SLOT:extra_metadata
}

parser MyParser(packet_in pkt, out headers hdr, inout metadata meta) {
    state start {
        transition parse_ethernet;
    }
    state parse_ethernet {
        pkt.extract(hdr.ethernet);
        transition select(hdr.ethernet.ethertype) {
            0x0800: parse_ipv4;
            0x86DD: parse_ipv6;
            default: accept;
        }
    }
    state parse_ipv4 {
        pkt.extract(hdr.ipv4);
        transition select(hdr.ipv4.protocol) {
            6: parse_tcp;
            17: parse_udp;
            default: accept;
        }
    }
    state parse_ipv6 {
        pkt.extract(hdr.ipv6);
        transition select(hdr.ipv6.next_hdr) {
            6: parse_tcp;
            17: parse_udp;
            //@SLOT:ipv6_select_rows
            default: accept;
        }
    }
    //@SLOT:extra_parser_states
    state parse_tcp {
        pkt.extract(hdr.tcp);
        transition accept;
    }
    state parse_udp {
        pkt.extract(hdr.udp);
        transition accept;
    }
}

control MyIngress(inout headers hdr, inout metadata meta) {
    action set_intf(bit<16> intf) {
        meta.intf = intf;
    }
    action set_bd_vrf(bit<16> bd, bit<16> vrf) {
        meta.bd = bd;
        meta.vrf = vrf;
    }
    action set_l3() {
        meta.l3_fwd = 1;
    }
    action set_nexthop(bit<16> nexthop) {
        meta.nexthop = nexthop;
    }
    action set_bd_dmac(bit<16> bd, bit<48> dmac) {
        meta.bd = bd;
        hdr.ethernet.dst_addr = dmac;
    }
    table port_map {
        key = { standard_metadata.ingress_port: exact; }
        actions = { set_intf; drop; }
        size = 64;
        default_action = drop;
    }
    table bridge_vrf {
        key = { meta.intf: exact; }
        actions = { set_bd_vrf; drop; }
        size = 256;
        default_action = drop;
    }
    table l2_l3 {
        key = {
            meta.bd: exact;
            hdr.ethernet.dst_addr: exact;
        }
        actions = { set_l3; NoAction; }
        size = 1024;
    }
    table ipv4_lpm {
        key = {
            meta.vrf: exact;
            hdr.ipv4.dst_addr: lpm;
        }
        actions = { set_nexthop; NoAction; }
        size = 4096;
    }
    table ipv6_lpm {
        key = {
            meta.vrf: exact;
            hdr.ipv6.dst_addr: lpm;
        }
        actions = { set_nexthop; NoAction; }
        size = 2048;
    }
    table ipv4_host {
        key = {
            meta.vrf: exact;
            hdr.ipv4.dst_addr: exact;
        }
        actions = { set_nexthop; NoAction; }
        size = 8192;
    }
    table ipv6_host {
        key = {
            meta.vrf: exact;
            hdr.ipv6.dst_addr: exact;
        }
        actions = { set_nexthop; NoAction; }
        size = 4096;
    }
    table nexthop {
        key = { meta.nexthop: exact; }
        actions = { set_bd_dmac; drop; }
        size = 4096;
        default_action = drop;
    }
    //@SLOT:extra_ingress_decls
    apply {
        port_map.apply();
        bridge_vrf.apply();
        l2_l3.apply();
        //@SLOT:ingress_apply_after_l2l3
        if (hdr.ipv4.isValid() && meta.l3_fwd == 1) {
            ipv4_lpm.apply();
            ipv4_host.apply();
        } else if (hdr.ipv6.isValid() && meta.l3_fwd == 1) {
            ipv6_lpm.apply();
            ipv6_host.apply();
        }
        //@SLOT:ingress_apply_fib_post
        if (meta.l3_fwd == 1) {
            //@SLOT:ingress_nexthop
        }
    }
}

control MyEgress(inout headers hdr, inout metadata meta) {
    action rewrite_smac(bit<48> smac) {
        hdr.ethernet.src_addr = smac;
        decrement_ttl();
    }
    action set_egress_port(bit<16> port) {
        standard_metadata.egress_spec = port;
    }
    table smac_rewrite {
        key = { meta.bd: exact; }
        actions = { rewrite_smac; NoAction; }
        size = 256;
    }
    table dmac {
        key = {
            meta.bd: exact;
            hdr.ethernet.dst_addr: exact;
        }
        actions = { set_egress_port; drop; }
        size = 8192;
        default_action = drop;
    }
    apply {
        if (meta.l3_fwd == 1) {
            smac_rewrite.apply();
        }
        dmac.apply();
    }
}
"""


def base_rp4_source() -> str:
    """The hand-written rP4 base design (also the rp4fc golden reference)."""
    return _RP4_SOURCE


#: Default slot fillers for the P4 template.  Use-case variants
#: (see :mod:`repro.programs.p4_variants`) override slots to produce
#: the *full updated* P4 program the PISA flow must recompile.
_P4_DEFAULT_SLOTS: Dict[str, str] = {
    "ingress_nexthop": "nexthop.apply();",
}

#: Slot names accepted by :func:`render_p4_source`.
P4_SLOTS = (
    "extra_header_types",
    "extra_header_instances",
    "extra_metadata",
    "ipv6_select_rows",
    "extra_parser_states",
    "extra_ingress_decls",
    "ingress_apply_after_l2l3",
    "ingress_apply_fib_post",
    "ingress_nexthop",
)


def render_p4_source(slots: "Dict[str, str] | None" = None) -> str:
    """Fill the ``//@SLOT:`` markers of the P4 template.

    Unspecified slots take their defaults (empty for most; the
    ``ingress_nexthop`` slot defaults to ``nexthop.apply();``).
    """
    merged = dict(_P4_DEFAULT_SLOTS)
    if slots:
        unknown = set(slots) - set(P4_SLOTS)
        if unknown:
            raise KeyError(f"unknown P4 slots: {sorted(unknown)}")
        merged.update(slots)
    source = _P4_SOURCE
    for name in P4_SLOTS:
        source = source.replace(f"//@SLOT:{name}", merged.get(name, ""))
    return source


def base_p4_source() -> str:
    """The same design in mini-P4 for the PISA/bmv2 flow."""
    return render_p4_source()


#: Reference topology constants shared by examples, tests, and benches.
ROUTER_MAC = "02:00:00:00:00:fe"
NEXTHOP_MACS = {
    1: "02:00:00:01:00:aa",
    2: "02:00:00:02:00:bb",
    3: "02:00:00:03:00:cc",
}
BD_SMACS = {1: "02:00:00:00:01:01", 2: "02:00:00:00:02:02"}
HOST_MACS = {1: "02:00:00:0a:00:01", 2: "02:00:00:0a:00:02"}


def populate_base_tables(tables: Dict[str, Table]) -> None:
    """Install the reference topology into base-design tables.

    Four ports: 0-1 in BD 1, 2-3 in BD 2, everything in VRF 1.  IPv4
    prefixes 10.1/16 and 10.2/16 plus a default route; IPv6 prefixes
    2001:db8:1::/48 and 2001:db8:2::/48; host routes for the .1/::1
    hosts.  Next hops 1..3 resolve to distinct DMACs and egress ports.
    """
    for port in range(4):
        tables["port_map"].add_entry(
            TableEntry(key=(port,), action="set_intf", action_data={"intf": port}, tag=1)
        )
    for intf in range(4):
        bd = 1 if intf < 2 else 2
        tables["bridge_vrf"].add_entry(
            TableEntry(
                key=(intf,),
                action="set_bd_vrf",
                action_data={"bd": bd, "vrf": 1},
                tag=1,
            )
        )
    router_mac = parse_mac(ROUTER_MAC)
    for bd in (1, 2):
        tables["l2_l3"].add_entry(
            TableEntry(key=(bd, router_mac), action="set_l3", action_data={}, tag=1)
        )

    def nh(n):
        return {"nexthop": n}

    tables["ipv4_lpm"].add_entry(
        TableEntry(key=(1, (parse_ipv4("10.1.0.0"), 16)), action="set_nexthop",
                   action_data=nh(1), tag=1)
    )
    tables["ipv4_lpm"].add_entry(
        TableEntry(key=(1, (parse_ipv4("10.2.0.0"), 16)), action="set_nexthop",
                   action_data=nh(2), tag=1)
    )
    tables["ipv4_lpm"].add_entry(
        TableEntry(key=(1, (0, 0)), action="set_nexthop", action_data=nh(3), tag=1)
    )
    tables["ipv4_host"].add_entry(
        TableEntry(key=(1, parse_ipv4("10.1.0.1")), action="set_nexthop",
                   action_data=nh(1), tag=1)
    )
    tables["ipv6_lpm"].add_entry(
        TableEntry(key=(1, (parse_ipv6("2001:db8:1::"), 48)), action="set_nexthop",
                   action_data=nh(1), tag=1)
    )
    tables["ipv6_lpm"].add_entry(
        TableEntry(key=(1, (parse_ipv6("2001:db8:2::"), 48)), action="set_nexthop",
                   action_data=nh(2), tag=1)
    )
    tables["ipv6_host"].add_entry(
        TableEntry(key=(1, parse_ipv6("2001:db8:1::1")), action="set_nexthop",
                   action_data=nh(1), tag=1)
    )
    for nh_id, mac in NEXTHOP_MACS.items():
        egress_bd = 2 if nh_id != 3 else 1
        tables["nexthop"].add_entry(
            TableEntry(
                key=(nh_id,),
                action="set_bd_dmac",
                action_data={"bd": egress_bd, "dmac": parse_mac(mac)},
                tag=1,
            )
        )
    for bd, smac in BD_SMACS.items():
        tables["smac_rewrite"].add_entry(
            TableEntry(
                key=(bd,),
                action="rewrite_smac",
                action_data={"smac": parse_mac(smac)},
                tag=1,
            )
        )
    dmac_rows = [
        (2, NEXTHOP_MACS[1], 2),
        (2, NEXTHOP_MACS[2], 3),
        (1, NEXTHOP_MACS[3], 1),
        (1, HOST_MACS[1], 0),
        (1, HOST_MACS[2], 1),
    ]
    for bd, mac, port in dmac_rows:
        tables["dmac"].add_entry(
            TableEntry(
                key=(bd, parse_mac(mac)),
                action="set_egress_port",
                action_data={"port": port},
                tag=1,
            )
        )

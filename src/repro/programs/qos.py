"""Use case C7 (extension): runtime QoS policing.

The paper's C3 narrative: once the flow probe marks a heavy flow,
"the controller may apply some ACL or QoS rules to the flow".  The
ACL half is :mod:`repro.programs.acl`; this is the QoS half -- a
policer loaded at runtime that token-bucket-meters selected flows and
drops the excess.  Meter parameters are configured out of band
through the device's meter bank (rate/burst are controller state, not
table entries, matching how real ASIC meters are provisioned).
"""

from __future__ import annotations

from typing import Dict

from repro.net.addresses import parse_ipv4
from repro.tables.table import Table, TableEntry

_QOS_RP4 = """
// rP4 code for the runtime policer (extension use case).
table qos_classifier {
    key = {
        ipv4.src_addr: exact;
        ipv4.dst_addr: exact;
    }
    size = 256;
}

action qos_police() {
    police(meta.drop); // red packets are dropped (single-rate policer)
}
action qos_mark() {
    police(meta.flow_marked); // red packets only get marked
}

stage qos {
    parser { ipv4 };
    matcher {
        if (ipv4.isValid()) qos_classifier.apply();
        else;
    };
    executor {
        1: qos_police;
        2: qos_mark;
        default: NoAction;
    }
}

user_funcs {
    func qos { qos }
}
"""

_QOS_SCRIPT = """
load qos.rp4 --func_name qos
add_link l2_l3 qos
del_link l2_l3 ipv4_lpm
add_link qos ipv4_lpm
"""


def qos_rp4_source() -> str:
    """The rP4 snippet for the policer function."""
    return _QOS_RP4


def qos_load_script() -> str:
    """Insert the policer after the L2/L3 decision."""
    return _QOS_SCRIPT


#: Flows to police: (src, dst) -> "police" (drop red) or "mark".
POLICED_FLOWS: Dict[tuple, str] = {
    ("10.1.0.1", "10.2.0.1"): "police",
    ("10.1.0.2", "10.2.0.2"): "mark",
}

_TAG = {"police": 1, "mark": 2}
_ACTION = {"police": "qos_police", "mark": "qos_mark"}


def populate_qos_tables(tables: Dict[str, Table]) -> None:
    """Classify the policed flows."""
    for (src, dst), mode in POLICED_FLOWS.items():
        tables["qos_classifier"].add_entry(
            TableEntry(
                key=(parse_ipv4(src), parse_ipv4(dst)),
                action=_ACTION[mode],
                tag=_TAG[mode],
            )
        )


def configure_meters(switch, rate: float = 0.5, burst: float = 4) -> None:
    """Provision the policer's token buckets on a live device."""
    switch.meters.configure("qos_police", rate, burst)
    switch.meters.configure("qos_mark", rate, burst)

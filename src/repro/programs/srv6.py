"""Use case C2: IPv6 Segment Routing (paper Fig. 5(c)).

SRv6 defines a brand-new protocol header (the SRH), so the load
script also links the header into the original header list at runtime
with ``link_header`` commands -- the capability PISA fundamentally
lacks.  Two tables serve SR processing: ``local_sid`` (endpoint /
End behavior) and ``end_transit`` (transit nodes).  The linkage
between routable and ipvx is reserved so plain L3 forwarding keeps
working.
"""

from __future__ import annotations

from typing import Dict

from repro.net.addresses import parse_ipv6
from repro.tables.table import Table, TableEntry

_SRV6_RP4 = """
// rP4 code for the SRv6 function: SRH header + endpoint/transit tables.
headers {
    // SRH with a bounded two-entry segment list (the usual P4 idiom
    // for variable-length lists; the behavioral SRv6 workloads carry
    // exactly two segments, hdr_ext_len = 4).
    header srh {
        bit<8> next_hdr;
        bit<8> hdr_ext_len;
        bit<8> routing_type;
        bit<8> segments_left;
        bit<8> last_entry;
        bit<8> flags;
        bit<16> tag;
        bit<128> seg0;
        bit<128> seg1;
        implicit parser(next_hdr) {
            // populated at runtime by link_header commands
        }
    }
}

table local_sid {
    key = { ipv6.dst_addr: exact; }
    size = 1024;
}
table end_transit {
    key = { ipv6.dst_addr: lpm; }
    size = 1024;
}

action srv6_end_act() {
    srv6_end();
}
action srv6_transit_act() {
    srv6_transit();
}

stage srv6 {
    parser { ipv6, srh };
    matcher {
        if (srh.isValid()) local_sid.apply();
        else if (ipv6.isValid()) end_transit.apply();
        else;
    };
    executor {
        1: srv6_end_act;
        2: srv6_transit_act;
        default: NoAction;
    }
}

user_funcs {
    func srv6 { srv6 }
}
"""

_SRV6_SCRIPT = """
load srv6.rp4 --func_name srv6
add_link l2_l3 srv6
del_link l2_l3 ipv4_lpm
add_link srv6 ipv4_lpm
link_header --pre ipv6 --next srh --tag 43
link_header --pre srh --next inner_ipv6 --tag 41 // inner IPv6
link_header --pre srh --next inner_ipv4 --tag 4 // inner IPv4
"""


def srv6_rp4_source() -> str:
    """The rP4 snippet for the SRv6 function."""
    return _SRV6_RP4


def srv6_load_script() -> str:
    """The rp4bc load script (paper Fig. 5(c)): stage topology change
    plus the three runtime header links."""
    return _SRV6_SCRIPT


#: Local SIDs this node terminates (End behavior).
LOCAL_SIDS = ["2001:db8:100::1", "2001:db8:100::2"]

#: Prefixes treated as SR transit traffic.
TRANSIT_PREFIXES = [("2001:db8::", 32)]


def populate_srv6_tables(tables: Dict[str, Table]) -> None:
    """Install the node's SIDs and the transit prefixes."""
    for sid in LOCAL_SIDS:
        tables["local_sid"].add_entry(
            TableEntry(key=(parse_ipv6(sid),), action="srv6_end_act", tag=1)
        )
    for prefix, plen in TRANSIT_PREFIXES:
        tables["end_transit"].add_entry(
            TableEntry(
                key=((parse_ipv6(prefix), plen),),
                action="srv6_transit_act",
                tag=2,
            )
        )

"""Synthetic rP4 base designs of arbitrary size.

Used by the scaling ablation: the full (P4-style) flow recompiles the
whole program, so its compile time grows with base-design size; the
incremental (rP4) flow compiles only the snippet, so its time stays
flat.  ``synthetic_base(n)`` produces a valid chained design with
``n`` dependent match-action stages.
"""

from __future__ import annotations

from typing import List

_HEADER_BLOCK = """
headers {
    header ethernet {
        bit<48> dst_addr;
        bit<48> src_addr;
        bit<16> ethertype;
        implicit parser(ethertype) {
            0x0800: ipv4;
        }
    }
    header ipv4 {
        bit<4> version;
        bit<4> ihl;
        bit<8> tos;
        bit<16> total_len;
        bit<16> identification;
        bit<16> frag;
        bit<8> ttl;
        bit<8> protocol;
        bit<16> hdr_checksum;
        bit<32> src_addr;
        bit<32> dst_addr;
    }
}
"""


def synthetic_base(n_stages: int) -> str:
    """A valid rP4 design with ``n_stages`` chained ingress stages.

    Each stage's table keys on the previous stage's output metadata
    field, so the stages form a dependency chain (no merging) and the
    program's size scales linearly in ``n_stages``.
    """
    if n_stages < 1:
        raise ValueError("n_stages must be >= 1")
    parts: List[str] = [_HEADER_BLOCK]

    members = "\n".join(
        f"        bit<16> f{i};" for i in range(n_stages + 1)
    )
    parts.append(f"structs {{\n    struct metadata {{\n{members}\n    }} meta;\n}}")

    for i in range(n_stages):
        parts.append(
            f"action set_f{i + 1}(bit<16> v) {{\n    meta.f{i + 1} = v;\n}}"
        )
        parts.append(
            f"table t{i} {{\n"
            f"    key = {{ meta.f{i}: exact; }}\n"
            f"    size = 256;\n"
            f"}}"
        )

    stage_blocks = []
    for i in range(n_stages):
        stage_blocks.append(
            f"    stage s{i} {{\n"
            f"        parser {{ ethernet }};\n"
            f"        matcher {{ t{i}.apply(); }};\n"
            f"        executor {{\n"
            f"            1: set_f{i + 1};\n"
            f"            default: NoAction;\n"
            f"        }}\n"
            f"    }}"
        )
    parts.append("control rP4_Ingress {\n" + "\n".join(stage_blocks) + "\n}")

    parts.append(
        "control rP4_Egress {\n"
        "    stage out {\n"
        "        parser { ethernet };\n"
        "        matcher { t_out.apply(); };\n"
        "        executor {\n"
        "            1: set_port;\n"
        "            default: drop;\n"
        "        }\n"
        "    }\n"
        "}"
    )
    parts.append(
        "action set_port(bit<16> port) {\n    meta.egress_spec = port;\n}"
    )
    parts.append(
        f"table t_out {{\n    key = {{ meta.f{n_stages}: exact; }}\n"
        f"    size = 256;\n}}"
    )

    funcs = " ".join(f"s{i}" for i in range(n_stages))
    parts.append(
        "user_funcs {\n"
        f"    func chain {{ {funcs} }}\n"
        "    func output { out }\n"
        "    ingress_entry: s0;\n"
        "    egress_entry: out;\n"
        "}"
    )
    return "\n".join(parts)


SNIPPET = """
table probe_t {
    key = {
        ipv4.src_addr: exact;
        ipv4.dst_addr: exact;
    }
    size = 1024;
}
action probe_mark(bit<32> threshold) {
    count_and_mark(threshold, meta.flow_marked);
}
stage probe {
    parser { ipv4 };
    matcher {
        if (ipv4.isValid()) probe_t.apply();
        else;
    };
    executor {
        1: probe_mark;
        default: NoAction;
    }
}
user_funcs {
    func probe { probe }
}
"""


def synthetic_snippet() -> str:
    """A fixed-size snippet to load into synthetic bases of any size."""
    return SNIPPET


def synthetic_script(n_stages: int) -> str:
    """Insert the probe after the first stage of the chain."""
    return (
        "load probe.rp4 --func_name probe\n"
        "add_link s0 probe\n"
        "del_link s0 s1\n"
        "add_link probe s1\n"
        if n_stages > 1
        else "load probe.rp4 --func_name probe\nadd_link s0 probe\n"
    )

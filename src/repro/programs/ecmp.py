"""Use case C1: Equal-Cost Multi-Path routing (paper Fig. 5(a)/(b)).

ECMP takes effect after the FIB lookup: a member link is chosen from
the next-hop and flow-ID hash.  One new stage hosts the two hash
tables (``ecmp_ipv4`` and ``ecmp_ipv6`` are mutually exclusive, so a
single TSP suffices -- "only one stage is needed for the function").
The ECMP entries bind ``set_bd_dmac`` directly, so the function
*covers and therefore replaces* the nexthop stage H.
"""

from __future__ import annotations

from typing import Dict

from repro.net.addresses import parse_mac
from repro.tables.table import Table, TableEntry

_ECMP_RP4 = """
// rP4 code for the ECMP function (paper Fig. 5(a)).
table ecmp_ipv4 {
    key = {
        meta.nexthop: hash;
        ipv4.dst_addr: hash; // similar with P4's selector
    }
    size = 4096;
}
table ecmp_ipv6 {
    key = {
        meta.nexthop: hash;
        ipv6.dst_addr: hash;
    }
    size = 4096;
}
// parse ipv4 or ipv6, match table
stage ecmp { /* parser-matcher-executor */
    parser { ipv4, ipv6 };
    matcher {
        if (ipv4.isValid()) ecmp_ipv4.apply();
        else if (ipv6.isValid()) ecmp_ipv6.apply();
        else;
    };
    executor {
        1: set_bd_dmac;
        default: NoAction;
    }
}
// set egress bridge and dmac
action set_bd_dmac(bit<16> bd, bit<48> dmac) {
    meta.bd = bd;
    ethernet.dst_addr = dmac;
}

user_funcs {
    func ecmp { ecmp }
}
"""

_ECMP_SCRIPT = """
load ecmp.rp4 --func_name ecmp
add_link ipv6_host ecmp
del_link ipv6_host nexthop
add_link ecmp l2_l3_rewrite
del_link nexthop l2_l3_rewrite
"""


def ecmp_rp4_source() -> str:
    """The rP4 snippet for the ECMP function."""
    return _ECMP_RP4


def ecmp_load_script() -> str:
    """The rp4bc load script (paper Fig. 5(b), adapted to the base
    design's stage names: the FIB host stages feed ECMP, which
    replaces the nexthop stage)."""
    return _ECMP_SCRIPT


#: Four equal-cost members: (egress bd, dmac, egress port).
ECMP_MEMBERS = [
    (2, "02:00:00:01:00:aa", 2),
    (2, "02:00:00:02:00:bb", 3),
    (2, "02:00:00:04:00:dd", 2),
    (2, "02:00:00:05:00:ee", 3),
]


def populate_ecmp_tables(tables: Dict[str, Table]) -> None:
    """Install the ECMP members and the DMAC rows that resolve them.

    Only the *new* tables (plus rows that resolve the new next hops)
    need population -- the paper notes the rP4 flow repopulates new
    tables only, unlike the P4 flow which must repopulate everything.
    """
    for table_name in ("ecmp_ipv4", "ecmp_ipv6"):
        for bd, mac, _port in ECMP_MEMBERS:
            tables[table_name].add_entry(
                TableEntry(
                    key=(),
                    action="set_bd_dmac",
                    action_data={"bd": bd, "dmac": parse_mac(mac)},
                    tag=1,
                )
            )
    for bd, mac, port in ECMP_MEMBERS:
        entry = TableEntry(
            key=(bd, parse_mac(mac)),
            action="set_egress_port",
            action_data={"port": port},
            tag=1,
        )
        dmac = tables["dmac"]
        # The first two members are already resolvable in the base design.
        existing = {e.key for e in dmac.entries()}
        if entry.key not in existing:
            dmac.add_entry(entry)

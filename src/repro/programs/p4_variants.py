"""Full updated P4 programs for the three use cases.

The PISA/bmv2 design flow cannot patch a running pipeline: "each time
the updated source code is compiled by p4c and a PISA-based back-end
compiler, and the FPGA prototype is loaded with the updated design"
(paper Sec. 4.3).  These functions return the *complete* P4 program
with a use case folded in, which is what that flow must recompile and
reload -- the denominators of Table 1.
"""

from __future__ import annotations

from repro.programs.base_l2l3 import render_p4_source

_ECMP_DECLS = """
    table ecmp_ipv4 {
        key = {
            meta.nexthop: selector;
            hdr.ipv4.dst_addr: selector;
        }
        actions = { set_bd_dmac; NoAction; }
        size = 4096;
    }
    table ecmp_ipv6 {
        key = {
            meta.nexthop: selector;
            hdr.ipv6.dst_addr: selector;
        }
        actions = { set_bd_dmac; NoAction; }
        size = 4096;
    }
"""

_ECMP_NEXTHOP = """
            if (hdr.ipv4.isValid()) {
                ecmp_ipv4.apply();
            } else if (hdr.ipv6.isValid()) {
                ecmp_ipv6.apply();
            }
"""


def ecmp_p4_source() -> str:
    """Base design with the ECMP tables replacing the nexthop stage."""
    return render_p4_source(
        {
            "extra_ingress_decls": _ECMP_DECLS,
            "ingress_nexthop": _ECMP_NEXTHOP.strip(),
        }
    )


_SRV6_HEADER = """
header srh_t {
    bit<8> next_hdr;
    bit<8> hdr_ext_len;
    bit<8> routing_type;
    bit<8> segments_left;
    bit<8> last_entry;
    bit<8> flags;
    bit<16> tag;
    bit<128> seg0;
    bit<128> seg1;
}
"""

_SRV6_INSTANCES = """
    srh_t srh;
    ipv6_t inner_ipv6;
    ipv4_t inner_ipv4;
"""

_SRV6_SELECT_ROWS = """
            43: parse_srh;
"""

_SRV6_PARSER_STATES = """
    state parse_srh {
        pkt.extract(hdr.srh);
        transition select(hdr.srh.next_hdr) {
            41: parse_inner_ipv6;
            4: parse_inner_ipv4;
            6: parse_tcp;
            17: parse_udp;
            default: accept;
        }
    }
    state parse_inner_ipv6 {
        pkt.extract(hdr.inner_ipv6);
        transition accept;
    }
    state parse_inner_ipv4 {
        pkt.extract(hdr.inner_ipv4);
        transition accept;
    }
"""

_SRV6_DECLS = """
    action srv6_end_act() {
        srv6_end();
    }
    action srv6_transit_act() {
        srv6_transit();
    }
    table local_sid {
        key = { hdr.ipv6.dst_addr: exact; }
        actions = { srv6_end_act; NoAction; }
        size = 1024;
    }
    table end_transit {
        key = { hdr.ipv6.dst_addr: lpm; }
        actions = { srv6_transit_act; NoAction; }
        size = 1024;
    }
"""

_SRV6_APPLY = """
        if (hdr.srh.isValid()) {
            local_sid.apply();
        } else if (hdr.ipv6.isValid() && meta.l3_fwd == 1) {
            end_transit.apply();
        }
"""


def srv6_p4_source() -> str:
    """Base design with SRH parsing and SR endpoint/transit tables."""
    return render_p4_source(
        {
            "extra_header_types": _SRV6_HEADER,
            "extra_header_instances": _SRV6_INSTANCES.strip(),
            "ipv6_select_rows": _SRV6_SELECT_ROWS.strip(),
            "extra_parser_states": _SRV6_PARSER_STATES,
            "extra_ingress_decls": _SRV6_DECLS,
            "ingress_apply_after_l2l3": _SRV6_APPLY.strip(),
        }
    )


_PROBE_METADATA = """
    bit<1> flow_marked;
"""

_PROBE_DECLS = """
    action probe_count(bit<32> threshold) {
        count_and_mark(threshold, meta.flow_marked);
    }
    table flow_probe {
        key = {
            hdr.ipv4.src_addr: exact;
            hdr.ipv4.dst_addr: exact;
        }
        actions = { probe_count; NoAction; }
        size = 1024;
    }
"""

_PROBE_APPLY = """
        if (hdr.ipv4.isValid()) {
            flow_probe.apply();
        }
"""


def flowprobe_p4_source() -> str:
    """Base design with the event-triggered flow probe."""
    return render_p4_source(
        {
            "extra_metadata": _PROBE_METADATA.strip(),
            "extra_ingress_decls": _PROBE_DECLS,
            "ingress_apply_after_l2l3": _PROBE_APPLY.strip(),
        }
    )

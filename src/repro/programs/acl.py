"""Use case C6 (extension): a runtime-loadable ACL.

The paper's flow-probe story ends with "the controller may apply some
ACL or QoS rules to the flow" -- this is that ACL, loaded in service.
Its ternary table is the only consumer of **TCAM** blocks in the
repository, so this use case exercises the memory pool's second block
kind end to end: ternary allocation, priority matching, and recycling
on offload.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.net.addresses import parse_prefix
from repro.tables.table import Table, TableEntry

_ACL_RP4 = """
// rP4 code for the runtime ACL function (extension use case).
table acl {
    key = {
        ipv4.src_addr: ternary;
        ipv4.dst_addr: ternary;
        ipv4.protocol: ternary;
    }
    size = 512;
}

action acl_deny() {
    drop();
}
action acl_punt() {
    mark_to_cpu();
}

stage acl {
    parser { ipv4 };
    matcher {
        if (ipv4.isValid()) acl.apply();
        else;
    };
    executor {
        1: acl_deny;
        2: acl_punt;
        default: NoAction;
    }
}

user_funcs {
    func acl { acl }
}
"""

_ACL_SCRIPT = """
load acl.rp4 --func_name acl
add_link port_map acl
del_link port_map bridge_vrf
add_link acl bridge_vrf
"""


def acl_rp4_source() -> str:
    """The rP4 snippet for the ACL function."""
    return _ACL_RP4


def acl_load_script() -> str:
    """Insert the ACL right after port mapping (first-match security)."""
    return _ACL_SCRIPT


def _mask_of(prefix: str) -> Tuple[int, int]:
    value, plen = parse_prefix(prefix)
    mask = 0 if plen == 0 else (~0 << (32 - plen)) & 0xFFFFFFFF
    return value & mask, mask


#: (src prefix, dst prefix, proto or None, action, priority)
DEFAULT_RULES: List[tuple] = [
    ("10.1.0.66/32", "0.0.0.0/0", None, "acl_deny", 100),
    ("10.1.0.0/16", "10.2.0.99/32", 17, "acl_punt", 50),
]


def populate_acl_tables(
    tables: Dict[str, Table], rules: "List[tuple] | None" = None
) -> None:
    """Install ACL rules (highest priority wins, as in TCAM)."""
    tag_of = {"acl_deny": 1, "acl_punt": 2}
    for src, dst, proto, action, priority in rules or DEFAULT_RULES:
        proto_key = (proto, 0xFF) if proto is not None else (0, 0)
        tables["acl"].add_entry(
            TableEntry(
                key=(_mask_of(src), _mask_of(dst), proto_key),
                action=action,
                tag=tag_of[action],
                priority=priority,
            )
        )

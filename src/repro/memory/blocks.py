"""Physical memory block models (the pool's unit of allocation)."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


class MemoryKind(enum.Enum):
    """Block technology: SRAM for exact/hash/LPM tables, TCAM for ternary."""

    SRAM = "sram"
    TCAM = "tcam"


@dataclass
class MemoryBlock:
    """One physical block of ``width_bits`` x ``depth`` cells.

    ``cluster`` is the crossbar cluster the block belongs to;
    ``owner`` is the logical table currently holding it (None = free).
    """

    block_id: int
    kind: MemoryKind
    width_bits: int
    depth: int
    cluster: int = 0
    owner: Optional[str] = None

    def __post_init__(self) -> None:
        if self.width_bits <= 0 or self.depth <= 0:
            raise ValueError(
                f"block {self.block_id}: width and depth must be positive"
            )

    @property
    def free(self) -> bool:
        return self.owner is None

    @property
    def bits(self) -> int:
        """Total capacity in bits."""
        return self.width_bits * self.depth

    def allocate(self, owner: str) -> None:
        if self.owner is not None:
            raise RuntimeError(
                f"block {self.block_id} already owned by {self.owner!r}"
            )
        self.owner = owner

    def release(self) -> None:
        if self.owner is None:
            raise RuntimeError(f"block {self.block_id} is already free")
        self.owner = None

"""Disaggregated memory pool (paper Sec. 2.4, after dRMT).

IPSA pools SRAM/TCAM into shared blocks reached through a crossbar.
This package models the blocks, the pool with allocation/recycling,
the crossbar reachability constraint (full vs. clustered), the
set-packing allocation solvers (exact branch-and-bound and greedy),
and the logical-table-to-physical-blocks virtualization rule
``ceil(W/w) * ceil(D/d)``.
"""

from repro.memory.blocks import MemoryBlock, MemoryKind
from repro.memory.crossbar import ClusteredCrossbar, Crossbar, FullCrossbar
from repro.memory.packing import (
    Demand,
    PackingResult,
    pack_branch_and_bound,
    pack_greedy,
)
from repro.memory.pool import AllocationError, MemoryPool
from repro.memory.virtualization import LogicalTableMapping, blocks_required

__all__ = [
    "AllocationError",
    "ClusteredCrossbar",
    "Crossbar",
    "Demand",
    "FullCrossbar",
    "LogicalTableMapping",
    "MemoryBlock",
    "MemoryKind",
    "MemoryPool",
    "PackingResult",
    "blocks_required",
    "pack_branch_and_bound",
    "pack_greedy",
]

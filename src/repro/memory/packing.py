"""Block-packing solvers for table allocation (paper Sec. 3.2).

The paper formulates table placement in the memory pool as a set
packing problem (NP-complete) and embeds the YALMIP solver.  We
provide two solvers over the same formulation:

* :func:`pack_branch_and_bound` -- exact search minimizing the total
  *spread* (number of distinct clusters each table touches), which is
  the migration-cost proxy from Sec. 2.4 ("if a logical pipeline stage
  is moved to a TSP in another cluster, the associated tables also
  need to be migrated").
* :func:`pack_greedy` -- first-fit-decreasing heuristic, used by the
  runtime incremental flow where placement latency matters more than
  optimality.

Inputs: per-table :class:`Demand` (kind, block count, clusters its
TSP(s) can reach through the crossbar) and the free-block counts per
``(cluster, kind)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.memory.blocks import MemoryKind


@dataclass(frozen=True)
class Demand:
    """One table's block requirement."""

    table: str
    kind: MemoryKind
    count: int
    allowed_clusters: Tuple[int, ...]

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise ValueError(f"demand for {self.table!r} must be positive")
        if not self.allowed_clusters:
            raise ValueError(
                f"demand for {self.table!r} has no reachable clusters"
            )


@dataclass
class PackingResult:
    """Assignment of block counts to clusters, per table."""

    assignment: Dict[str, Dict[int, int]] = field(default_factory=dict)
    feasible: bool = True
    spread: int = 0  # sum over tables of clusters touched
    nodes_explored: int = 0  # search effort (for the ablation bench)

    def clusters_for(self, table: str) -> List[int]:
        return sorted(self.assignment.get(table, {}))


FreeMap = Dict[Tuple[int, MemoryKind], int]


def _fit_one(
    demand: Demand, free: FreeMap, prefer_single: bool = True
) -> Optional[Dict[int, int]]:
    """Place one demand into the free map (mutating it); None if impossible."""
    candidates = [
        (c, free.get((c, demand.kind), 0))
        for c in demand.allowed_clusters
    ]
    candidates = [(c, f) for c, f in candidates if f > 0]
    if prefer_single:
        # Prefer the single cluster with the tightest still-sufficient fit.
        sufficient = [(f, c) for c, f in candidates if f >= demand.count]
        if sufficient:
            _, cluster = min(sufficient)
            free[(cluster, demand.kind)] -= demand.count
            return {cluster: demand.count}
    # Spill across clusters, fullest-first, to keep spread low.
    placed: Dict[int, int] = {}
    remaining = demand.count
    for cluster, avail in sorted(candidates, key=lambda cf: -cf[1]):
        take = min(avail, remaining)
        if take:
            placed[cluster] = take
            remaining -= take
        if remaining == 0:
            break
    if remaining:
        return None
    for cluster, take in placed.items():
        free[(cluster, demand.kind)] -= take
    return placed


def pack_greedy(demands: Sequence[Demand], free_blocks: FreeMap) -> PackingResult:
    """First-fit-decreasing heuristic: big, constrained demands first."""
    free = dict(free_blocks)
    result = PackingResult()
    order = sorted(
        demands, key=lambda d: (len(d.allowed_clusters), -d.count)
    )
    for demand in order:
        placed = _fit_one(demand, free)
        if placed is None:
            result.feasible = False
            return result
        result.assignment[demand.table] = placed
        result.spread += len(placed)
    return result


def pack_branch_and_bound(
    demands: Sequence[Demand],
    free_blocks: FreeMap,
    node_limit: int = 200_000,
) -> PackingResult:
    """Exact minimum-spread packing via branch and bound.

    Falls back to the greedy answer if the node limit is hit before
    the search completes (the greedy answer is always a valid bound).
    """
    greedy = pack_greedy(demands, free_blocks)
    best_spread = greedy.spread if greedy.feasible else None
    best_assignment = dict(greedy.assignment) if greedy.feasible else None

    order = sorted(demands, key=lambda d: (len(d.allowed_clusters), -d.count))
    nodes = 0
    limit_hit = False

    def choices(demand: Demand, free: FreeMap) -> List[Dict[int, int]]:
        """Candidate placements, single-cluster first, then 2-cluster splits."""
        out: List[Dict[int, int]] = []
        avail = {
            c: free.get((c, demand.kind), 0) for c in demand.allowed_clusters
        }
        for c, f in sorted(avail.items(), key=lambda cf: cf[1]):
            if f >= demand.count:
                out.append({c: demand.count})
        clusters = [c for c, f in avail.items() if f > 0]
        for i, c1 in enumerate(clusters):
            for c2 in clusters[i + 1 :]:
                a, b = avail[c1], avail[c2]
                if a + b >= demand.count and a < demand.count and b < demand.count:
                    take1 = min(a, demand.count)
                    out.append({c1: take1, c2: demand.count - take1})
        if not out and sum(avail.values()) >= demand.count:
            # General spill (rare; >2 clusters).
            placed: Dict[int, int] = {}
            remaining = demand.count
            for c, f in sorted(avail.items(), key=lambda cf: -cf[1]):
                take = min(f, remaining)
                if take:
                    placed[c] = take
                    remaining -= take
            if remaining == 0:
                out.append(placed)
        return out

    def search(
        index: int, free: FreeMap, partial: Dict[str, Dict[int, int]], spread: int
    ) -> None:
        nonlocal nodes, best_spread, best_assignment, limit_hit
        if limit_hit:
            return
        nodes += 1
        if nodes > node_limit:
            limit_hit = True
            return
        if best_spread is not None and spread + (len(order) - index) >= best_spread:
            return  # each remaining table adds at least spread 1
        if index == len(order):
            best_spread = spread
            best_assignment = {t: dict(p) for t, p in partial.items()}
            return
        demand = order[index]
        for placement in choices(demand, free):
            for c, take in placement.items():
                free[(c, demand.kind)] -= take
            partial[demand.table] = placement
            search(index + 1, free, partial, spread + len(placement))
            del partial[demand.table]
            for c, take in placement.items():
                free[(c, demand.kind)] += take

    search(0, dict(free_blocks), {}, 0)

    if best_assignment is None:
        return PackingResult(feasible=False, nodes_explored=nodes)
    return PackingResult(
        assignment=best_assignment,
        feasible=True,
        spread=best_spread or 0,
        nodes_explored=nodes,
    )

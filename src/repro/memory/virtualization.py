"""Logical-table to physical-block virtualization (paper Sec. 2.4).

Given a memory block of size ``w x d`` (width bits x depth), a logical
table of ``W x D`` requires ``ceil(W/w) * ceil(D/d)`` blocks, arranged
as a grid: each *row group* of ``ceil(W/w)`` blocks stores one slice of
``d`` entries.  SRAM blocks can be non-adjacent; TCAM virtualization
follows the same rule (after RMT/dRMT).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List

from repro.memory.blocks import MemoryKind


def blocks_required(
    table_width: int, table_depth: int, block_width: int, block_depth: int
) -> int:
    """``ceil(W/w) * ceil(D/d)`` -- the paper's virtualization cost rule."""
    if table_width <= 0 or table_depth <= 0:
        raise ValueError("table width and depth must be positive")
    if block_width <= 0 or block_depth <= 0:
        raise ValueError("block width and depth must be positive")
    return math.ceil(table_width / block_width) * math.ceil(
        table_depth / block_depth
    )


@dataclass
class LogicalTableMapping:
    """Where one logical table physically lives.

    ``block_ids`` is ordered row-group-major: the first
    ``width_blocks`` ids hold entries ``0..d-1``, the next group holds
    ``d..2d-1``, and so on.
    """

    table: str
    kind: MemoryKind
    table_width: int
    table_depth: int
    block_width: int
    block_depth: int
    block_ids: List[int] = field(default_factory=list)

    @property
    def width_blocks(self) -> int:
        return math.ceil(self.table_width / self.block_width)

    @property
    def depth_blocks(self) -> int:
        return math.ceil(self.table_depth / self.block_depth)

    @property
    def total_blocks(self) -> int:
        return self.width_blocks * self.depth_blocks

    def validate(self) -> None:
        if len(self.block_ids) != self.total_blocks:
            raise ValueError(
                f"table {self.table!r}: mapping has {len(self.block_ids)} "
                f"blocks, needs {self.total_blocks}"
            )

    def blocks_for_entry(self, entry_index: int) -> List[int]:
        """Physical blocks an entry's bits are spread across."""
        if not 0 <= entry_index < self.table_depth:
            raise IndexError(
                f"entry {entry_index} out of range for depth {self.table_depth}"
            )
        self.validate()
        group = entry_index // self.block_depth
        start = group * self.width_blocks
        return self.block_ids[start : start + self.width_blocks]

    def memory_accesses_per_lookup(self, bus_width: int) -> int:
        """Cycles to fetch one entry over a ``bus_width``-bit data bus.

        This is the quantity behind the paper's throughput discussion:
        "the declined throughput for IPSA is mainly due to the memory
        access, especially when the table entry size exceeds the data
        bus width".
        """
        if bus_width <= 0:
            raise ValueError("bus width must be positive")
        return max(1, math.ceil(self.table_width / bus_width))

    def utilization(self) -> float:
        """Fraction of allocated block bits the logical table uses."""
        used = self.table_width * self.table_depth
        allocated = self.total_blocks * self.block_width * self.block_depth
        return used / allocated

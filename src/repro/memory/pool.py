"""The disaggregated memory pool (the ipbm Storage Module analogue).

The pool owns every physical block, allocates block sets to logical
tables under crossbar reachability constraints, and recycles blocks
when a logical stage is deleted (paper: "if a logical stage is
deleted, the associated memory blocks are also recycled").
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.memory.blocks import MemoryBlock, MemoryKind
from repro.memory.crossbar import Crossbar, FullCrossbar
from repro.memory.packing import (
    Demand,
    FreeMap,
    PackingResult,
    pack_branch_and_bound,
    pack_greedy,
)
from repro.memory.virtualization import LogicalTableMapping, blocks_required


class AllocationError(Exception):
    """Raised when a table cannot be placed in the pool."""


class MemoryPool:
    """A pool of SRAM/TCAM blocks behind a crossbar."""

    def __init__(
        self,
        sram_blocks: int = 64,
        tcam_blocks: int = 16,
        block_width: int = 128,
        block_depth: int = 1024,
        clusters: int = 1,
        crossbar: Optional[Crossbar] = None,
    ) -> None:
        if clusters <= 0:
            raise ValueError("clusters must be positive")
        self.block_width = block_width
        self.block_depth = block_depth
        self.clusters = clusters
        self.crossbar = crossbar or FullCrossbar(memory_clusters=clusters)
        self.blocks: List[MemoryBlock] = []
        self._mappings: Dict[str, LogicalTableMapping] = {}
        next_id = 0
        for kind, count in ((MemoryKind.SRAM, sram_blocks), (MemoryKind.TCAM, tcam_blocks)):
            for i in range(count):
                self.blocks.append(
                    MemoryBlock(
                        block_id=next_id,
                        kind=kind,
                        width_bits=block_width,
                        depth=block_depth,
                        cluster=i % clusters,
                    )
                )
                next_id += 1

    def clone(self) -> "MemoryPool":
        """Independent copy (incremental compiles work on a clone so a
        failed update leaves the running design's pool untouched)."""
        import copy

        twin = MemoryPool.__new__(MemoryPool)
        twin.block_width = self.block_width
        twin.block_depth = self.block_depth
        twin.clusters = self.clusters
        twin.crossbar = self.crossbar  # stateless; safe to share
        twin.blocks = [copy.copy(b) for b in self.blocks]
        twin._mappings = {
            name: copy.deepcopy(mapping)
            for name, mapping in self._mappings.items()
        }
        return twin

    # -- inventory -----------------------------------------------------

    def free_map(self) -> FreeMap:
        """Free block counts keyed by ``(cluster, kind)``."""
        free: FreeMap = {}
        for block in self.blocks:
            if block.free:
                key = (block.cluster, block.kind)
                free[key] = free.get(key, 0) + 1
        return free

    def free_count(self, kind: MemoryKind) -> int:
        return sum(1 for b in self.blocks if b.free and b.kind is kind)

    def mapping(self, table: str) -> LogicalTableMapping:
        try:
            return self._mappings[table]
        except KeyError:
            raise KeyError(f"table {table!r} has no allocation") from None

    def mappings(self) -> Dict[str, LogicalTableMapping]:
        return dict(self._mappings)

    def utilization(self) -> float:
        """Fraction of blocks currently owned by tables."""
        if not self.blocks:
            return 0.0
        return sum(1 for b in self.blocks if not b.free) / len(self.blocks)

    def verify(self) -> List[str]:
        """Cross-check mappings against block ownership.

        Returns human-readable findings (empty = consistent).  The
        transaction validate phase runs this on the cloned pool so a
        compiler bug cannot commit a corrupt allocation state.
        """
        findings: List[str] = []
        by_id = {b.block_id: b for b in self.blocks}
        owned: Dict[int, str] = {}
        for name, mapping in self._mappings.items():
            for block_id in mapping.block_ids:
                block = by_id.get(block_id)
                if block is None:
                    findings.append(
                        f"table {name!r} maps missing block {block_id}"
                    )
                    continue
                if block.free:
                    findings.append(
                        f"table {name!r} maps free block {block_id}"
                    )
                elif block.owner != name:
                    findings.append(
                        f"table {name!r} maps block {block_id} owned by "
                        f"{block.owner!r}"
                    )
                if block_id in owned:
                    findings.append(
                        f"block {block_id} mapped by both "
                        f"{owned[block_id]!r} and {name!r}"
                    )
                owned[block_id] = name
        for block in self.blocks:
            if not block.free and block.block_id not in owned:
                findings.append(
                    f"block {block.block_id} allocated to {block.owner!r} "
                    "but mapped by no table"
                )
        return findings

    def diff(self, old: "MemoryPool") -> Dict[str, List[str]]:
        """Mapping changes relative to ``old``: which tables were
        added, removed, or moved to different blocks."""
        mine = self._mappings
        theirs = old._mappings
        moved = [
            name
            for name in sorted(set(mine) & set(theirs))
            if tuple(mine[name].block_ids) != tuple(theirs[name].block_ids)
        ]
        return {
            "added": sorted(set(mine) - set(theirs)),
            "removed": sorted(set(theirs) - set(mine)),
            "moved": moved,
        }

    # -- allocation ------------------------------------------------------

    def demand_for(
        self,
        table: str,
        kind: MemoryKind,
        table_width: int,
        table_depth: int,
        allowed_clusters: Sequence[int],
    ) -> Demand:
        """Build the packing demand for one logical table."""
        count = blocks_required(
            table_width, table_depth, self.block_width, self.block_depth
        )
        return Demand(
            table=table,
            kind=kind,
            count=count,
            allowed_clusters=tuple(sorted(allowed_clusters)),
        )

    def allocate_tables(
        self,
        specs: Sequence[Tuple[str, MemoryKind, int, int, Sequence[int]]],
        exact: bool = True,
    ) -> PackingResult:
        """Allocate several tables atomically.

        ``specs`` rows are ``(table, kind, width_bits, depth, clusters)``.
        All-or-nothing: on infeasibility nothing is allocated and
        :class:`AllocationError` is raised.
        """
        demands = [
            self.demand_for(name, kind, w, d, clusters)
            for name, kind, w, d, clusters in specs
        ]
        for name, *_ in specs:
            if name in self._mappings:
                raise AllocationError(f"table {name!r} is already allocated")
        solver = pack_branch_and_bound if exact else pack_greedy
        result = solver(demands, self.free_map())
        if not result.feasible:
            raise AllocationError(
                f"cannot place tables {[d.table for d in demands]} "
                f"in the pool (free: {self.free_map()})"
            )
        for (name, kind, w, d, _clusters), demand in zip(specs, demands):
            block_ids = self._claim_blocks(name, kind, result.assignment[name])
            self._mappings[name] = LogicalTableMapping(
                table=name,
                kind=kind,
                table_width=w,
                table_depth=d,
                block_width=self.block_width,
                block_depth=self.block_depth,
                block_ids=block_ids,
            )
            # Virtualization may round the demand up; claim exactly
            # what the mapping needs (demand == mapping.total_blocks).
            assert len(block_ids) == demand.count
        return result

    def _claim_blocks(
        self, owner: str, kind: MemoryKind, per_cluster: Dict[int, int]
    ) -> List[int]:
        claimed: List[int] = []
        for cluster, count in sorted(per_cluster.items()):
            picked = [
                b
                for b in self.blocks
                if b.free and b.kind is kind and b.cluster == cluster
            ][:count]
            if len(picked) < count:
                raise AllocationError(
                    f"pool inconsistency: packing promised {count} free "
                    f"{kind.value} blocks in cluster {cluster}"
                )
            for block in picked:
                block.allocate(owner)
                claimed.append(block.block_id)
        return claimed

    def release_table(self, table: str) -> int:
        """Recycle a deleted table's blocks; returns how many were freed."""
        mapping = self.mapping(table)
        freed = 0
        by_id = {b.block_id: b for b in self.blocks}
        for block_id in mapping.block_ids:
            by_id[block_id].release()
            freed += 1
        del self._mappings[table]
        return freed

    def migrate_table(self, table: str, target_clusters: Sequence[int]) -> int:
        """Move a table to other clusters (stage moved across the crossbar).

        Returns the number of blocks copied -- the migration cost the
        clustered-crossbar ablation measures.
        """
        old = self.mapping(table)
        self.release_table(table)
        try:
            self.allocate_tables(
                [(table, old.kind, old.table_width, old.table_depth, target_clusters)]
            )
        except AllocationError:
            # Roll back: re-place where it was (full cluster choice).
            self.allocate_tables(
                [
                    (
                        table,
                        old.kind,
                        old.table_width,
                        old.table_depth,
                        list(range(self.clusters)),
                    )
                ]
            )
            raise
        return old.total_blocks

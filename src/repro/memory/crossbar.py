"""Crossbar reachability between TSP clusters and memory clusters.

The paper (Sec. 2.4) allows different crossbar types as a
flexibility/resource trade-off: a full crossbar lets any TSP reach any
block; a clustered crossbar only wires a cluster of TSPs to a cluster
of memory blocks, so moving a logical stage across clusters forces a
table migration.  The hardware model charges LUT/FF for crossbar ports
(see :mod:`repro.hw.resources`), making the trade-off measurable.
"""

from __future__ import annotations

from typing import Dict, List, Set


class Crossbar:
    """Base class: answers which memory clusters a TSP can reach."""

    def reachable_clusters(self, tsp_index: int) -> Set[int]:
        raise NotImplementedError

    def port_count(self, tsp_count: int, block_count: int) -> int:
        """Number of crosspoints (drives the resource model)."""
        raise NotImplementedError

    def tsp_cluster(self, tsp_index: int) -> int:
        """Cluster id of a TSP (full crossbar: everything is cluster 0)."""
        raise NotImplementedError


class FullCrossbar(Crossbar):
    """Any TSP reaches any memory cluster (maximal flexibility)."""

    def __init__(self, memory_clusters: int = 1) -> None:
        if memory_clusters <= 0:
            raise ValueError("memory_clusters must be positive")
        self.memory_clusters = memory_clusters

    def reachable_clusters(self, tsp_index: int) -> Set[int]:
        return set(range(self.memory_clusters))

    def port_count(self, tsp_count: int, block_count: int) -> int:
        return tsp_count * block_count

    def tsp_cluster(self, tsp_index: int) -> int:
        return 0


class ClusteredCrossbar(Crossbar):
    """TSPs grouped into clusters, each wired to a subset of memory clusters.

    ``tsp_cluster_size`` TSPs share a cluster; ``mapping`` gives the
    memory clusters each TSP cluster can reach (defaults to the
    identity mapping, i.e. TSP cluster *i* reaches memory cluster *i*).
    """

    def __init__(
        self,
        tsp_cluster_size: int,
        memory_clusters: int,
        mapping: "Dict[int, Set[int]] | None" = None,
    ) -> None:
        if tsp_cluster_size <= 0:
            raise ValueError("tsp_cluster_size must be positive")
        if memory_clusters <= 0:
            raise ValueError("memory_clusters must be positive")
        self.tsp_cluster_size = tsp_cluster_size
        self.memory_clusters = memory_clusters
        self.mapping: Dict[int, Set[int]] = mapping or {}

    def tsp_cluster(self, tsp_index: int) -> int:
        return tsp_index // self.tsp_cluster_size

    def reachable_clusters(self, tsp_index: int) -> Set[int]:
        cluster = self.tsp_cluster(tsp_index)
        if cluster in self.mapping:
            return set(self.mapping[cluster])
        return {cluster % self.memory_clusters}

    def port_count(self, tsp_count: int, block_count: int) -> int:
        # Each TSP only has crosspoints to the blocks of its reachable
        # clusters; assume blocks are spread evenly across clusters.
        blocks_per_cluster = max(1, block_count // self.memory_clusters)
        total = 0
        for tsp in range(tsp_count):
            total += len(self.reachable_clusters(tsp)) * blocks_per_cluster
        return total


def clusters_reachable_by_all(crossbar: Crossbar, tsp_indices: List[int]) -> Set[int]:
    """Memory clusters reachable by *every* TSP in ``tsp_indices``.

    A table shared by several stages must live where all of them can
    reach it.
    """
    if not tsp_indices:
        return set()
    result = crossbar.reachable_clusters(tsp_indices[0])
    for tsp in tsp_indices[1:]:
        result &= crossbar.reachable_clusters(tsp)
    return result

"""ipbm: the IPSA behavioral switch (paper Sec. 4.1).

Mirrors the paper's module structure:

* Pipeline Module (PM)      -> :mod:`repro.ipsa.tsp`, :mod:`repro.ipsa.pipeline`
* Storage Module (SM)       -> the :class:`repro.memory.pool.MemoryPool`
  attached to the switch
* Control Channel (CCM)     -> :meth:`IpsaSwitch.load_config` /
  :meth:`IpsaSwitch.apply_update` (driven by :mod:`repro.runtime`)
* Communication Module (CM) -> :meth:`IpsaSwitch.inject` (in-memory
  packet I/O; the kernel-bypass substrate cancels out of the paper's
  relative measurements)
"""

from repro.ipsa.pipeline import ElasticPipeline, SelectorConfig
from repro.ipsa.switch import IpsaSwitch, UpdateStats
from repro.ipsa.tm import TrafficManager
from repro.ipsa.tsp import StageRuntime, Tsp, TspState

__all__ = [
    "ElasticPipeline",
    "IpsaSwitch",
    "SelectorConfig",
    "StageRuntime",
    "TrafficManager",
    "Tsp",
    "TspState",
    "UpdateStats",
]

"""Templated Stage Processors (paper Sec. 2.2).

A TSP is a container programmed by downloading template parameters.
Each hosted stage is a parser-matcher-executor triad:

* the **parser** sub-module JIT-parses the header instances the stage
  needs (results travel with the packet -- no re-parsing);
* the **matcher** evaluates predicate arms in order and applies the
  first matching arm's table;
* the **executor** maps the lookup's tag to an action and runs it.

Writing a new template into a TSP takes "a few clock cycles"; the
behavioral model counts template words written so the loading-time
model has a physical quantity to charge.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.compiler.json_ir import stage_from_json
from repro.compiler.lowering import compile_predicate
from repro.lang.expr import Expr
from repro.net.packet import Packet
from repro.rp4.ast import StageDecl


@dataclass
class StageRuntime:
    """One hosted stage, ready to execute."""

    name: str
    parser_headers: List[str]
    #: (compiled predicate, source expr, table name or None)
    arms: List[Tuple[Callable[[Packet], bool], Optional[Expr], Optional[str]]]
    executor: Dict[object, str]

    @classmethod
    def from_decl(cls, decl: StageDecl) -> "StageRuntime":
        return cls(
            name=decl.name,
            parser_headers=list(decl.parser),
            arms=[
                (compile_predicate(arm.cond), arm.cond, arm.table)
                for arm in decl.matcher
            ],
            executor=dict(decl.executor),
        )

    @classmethod
    def from_json(cls, data: dict) -> "StageRuntime":
        return cls.from_decl(stage_from_json(data))

    def template_words(self) -> int:
        """Rough size of this stage's template (for load-cost stats)."""
        return (
            1
            + len(self.parser_headers)
            + 2 * len(self.arms)
            + len(self.executor)
        )


class TspState(enum.Enum):
    """Power/activity state (bypassed TSPs idle in low power)."""

    ACTIVE = "active"
    BYPASSED = "bypassed"


@dataclass
class TspStats:
    """Per-TSP counters the throughput/power models read."""

    packets: int = 0
    lookups: int = 0
    headers_parsed: int = 0
    actions_run: int = 0
    templates_written: int = 0
    template_words_written: int = 0


class Tsp:
    """One physical templated stage processor."""

    def __init__(self, index: int) -> None:
        self.index = index
        self.side = "ingress"
        self.stages: List[StageRuntime] = []
        self.state = TspState.BYPASSED
        self.stats = TspStats()

    @property
    def active(self) -> bool:
        return self.state is TspState.ACTIVE and bool(self.stages)

    def write_template(self, template: dict) -> int:
        """Download template parameters; returns words written.

        This is the whole runtime-programming story: no recompile, no
        bitstream -- just new parameters in the TSP's template store.
        """
        self.side = template.get("side", "ingress")
        self.stages = [StageRuntime.from_json(s) for s in template["stages"]]
        words = sum(s.template_words() for s in self.stages)
        self.stats.templates_written += 1
        self.stats.template_words_written += words
        self.state = TspState.ACTIVE
        return words

    def clear(self) -> None:
        """Erase the template and drop to the low-power state."""
        self.stages = []
        self.state = TspState.BYPASSED

    def signature(self) -> str:
        """Group key of the hosted stages (layout bookkeeping)."""
        return "+".join(s.name for s in self.stages)

    def metrics_samples(self):
        """This TSP's registry samples (labels carry the TSP index)."""
        from repro.obs.metrics import Sample

        labels = {"tsp": str(self.index)}
        stats = self.stats
        yield Sample("tsp.packets", stats.packets, dict(labels))
        yield Sample("tsp.lookups", stats.lookups, dict(labels))
        yield Sample("tsp.headers_parsed", stats.headers_parsed, dict(labels))
        yield Sample("tsp.actions_run", stats.actions_run, dict(labels))
        yield Sample(
            "tsp.templates_written", stats.templates_written, dict(labels)
        )
        yield Sample(
            "tsp.template_words_written",
            stats.template_words_written,
            dict(labels),
        )
        info = dict(labels)
        info["side"] = self.side
        info["state"] = self.state.value
        info["stages"] = self.signature() or "-"
        yield Sample("tsp.info", 1, info, "gauge")

    def process(
        self, packet: Packet, device: "DeviceFacade", meter=None
    ) -> None:
        """Run every hosted stage against the packet, in order.

        ``meter`` (if given) receives per-TSP parse/lookup events; the
        hardware throughput model uses it to price cycles without
        duplicating the execution semantics.  When the device carries
        an active packet tracer (or profiler) the traced/profiled twin
        of this loop runs instead; the plain path pays only these
        ``is None`` checks.
        """
        tracer = getattr(device, "tracer", None)
        if tracer is not None and tracer.current is not None:
            self._process_traced(packet, device, tracer, meter)
            return
        profiler = getattr(device, "profiler", None)
        if profiler is not None:
            self._process_profiled(packet, device, profiler, meter)
            return
        self.stats.packets += 1
        for stage in self.stages:
            if packet.metadata.get("drop"):
                return
            parsed = packet.ensure_parsed(
                stage.parser_headers, device.header_types, device.linkage
            )
            self.stats.headers_parsed += parsed
            if meter is not None and parsed:
                meter.parsed(self.index, parsed)
            for predicate, _expr, table_name in stage.arms:
                if not predicate(packet):
                    continue
                if table_name is None:
                    break  # empty arm: explicit no-op
                table = device.tables[table_name]
                result = table.lookup(packet)
                self.stats.lookups += 1
                if meter is not None:
                    meter.lookup(self.index, table_name)
                action_name = stage.executor.get(result.tag)
                if action_name is None:
                    action_name = stage.executor.get("default", "NoAction")
                action = device.actions[action_name]
                action.execute(
                    packet, result.action_data, entry=result.entry,
                    device=device,
                )
                self.stats.actions_run += 1
                break  # first matching arm wins

    def _process_traced(
        self, packet: Packet, device: "DeviceFacade", tracer, meter=None
    ) -> None:
        """Traced twin of :meth:`process`: identical semantics, plus a
        ``tsp`` span with parse/match/execute children per stage."""
        self.stats.packets += 1
        tsp_span = tracer.start_span(
            f"tsp{self.index}", kind="tsp", tsp=self.index, side=self.side
        )
        try:
            for stage in self.stages:
                if packet.metadata.get("drop"):
                    return
                parse_span = tracer.start_span(
                    "parse",
                    kind="parse",
                    stage=stage.name,
                    headers=list(stage.parser_headers),
                )
                parsed = packet.ensure_parsed(
                    stage.parser_headers, device.header_types, device.linkage
                )
                parse_span.attrs["parsed"] = parsed
                tracer.end_span(parse_span)
                self.stats.headers_parsed += parsed
                if meter is not None and parsed:
                    meter.parsed(self.index, parsed)
                for arm_index, (predicate, _expr, table_name) in enumerate(
                    stage.arms
                ):
                    if not predicate(packet):
                        continue
                    if table_name is None:
                        tracer.event(
                            "match",
                            kind="match",
                            stage=stage.name,
                            arm=arm_index,
                            matched=False,
                        )
                        break  # empty arm: explicit no-op
                    table = device.tables[table_name]
                    match_span = tracer.start_span(
                        "match",
                        kind="match",
                        stage=stage.name,
                        arm=arm_index,
                        table=table_name,
                    )
                    result = table.lookup(packet)
                    match_span.attrs["hit"] = result.hit
                    match_span.attrs["tag"] = result.tag
                    tracer.end_span(match_span)
                    self.stats.lookups += 1
                    if meter is not None:
                        meter.lookup(self.index, table_name)
                    action_name = stage.executor.get(result.tag)
                    if action_name is None:
                        action_name = stage.executor.get("default", "NoAction")
                    action = device.actions[action_name]
                    execute_span = tracer.start_span(
                        "execute",
                        kind="execute",
                        stage=stage.name,
                        action=action_name,
                        ops=len(action.ops),
                    )
                    action.execute(
                        packet, result.action_data, entry=result.entry,
                        device=device,
                    )
                    tracer.end_span(execute_span)
                    self.stats.actions_run += 1
                    break  # first matching arm wins
        finally:
            tracer.end_span(tsp_span)

    def _process_profiled(
        self, packet: Packet, device: "DeviceFacade", prof, meter=None
    ) -> None:
        """Profiled twin of :meth:`process`: identical semantics, with
        parse/match/execute wall-time and work counters attributed to
        this TSP (predicate evaluation rides untimed -- compiled
        lambdas, far below the clock's resolution)."""
        self.stats.packets += 1
        label = f"tsp{self.index}"
        for stage in self.stages:
            if packet.metadata.get("drop"):
                return
            started = prof.now()
            parsed = packet.ensure_parsed(
                stage.parser_headers, device.header_types, device.linkage
            )
            prof.add((label, "parse"), started, headers=parsed)
            self.stats.headers_parsed += parsed
            if meter is not None and parsed:
                meter.parsed(self.index, parsed)
            for predicate, _expr, table_name in stage.arms:
                if not predicate(packet):
                    continue
                if table_name is None:
                    break  # empty arm: explicit no-op
                table = device.tables[table_name]
                started = prof.now()
                result = table.lookup(packet)
                prof.add((label, "match", table_name), started, lookups=1)
                prof.note_engine(table.engine_kind)
                self.stats.lookups += 1
                if meter is not None:
                    meter.lookup(self.index, table_name)
                action_name = stage.executor.get(result.tag)
                if action_name is None:
                    action_name = stage.executor.get("default", "NoAction")
                action = device.actions[action_name]
                started = prof.now()
                action.execute(
                    packet, result.action_data, entry=result.entry,
                    device=device,
                )
                prof.add(
                    (label, "execute", action_name), started,
                    ops=len(action.ops),
                )
                self.stats.actions_run += 1
                break  # first matching arm wins


class DeviceFacade:
    """What a TSP needs from the device (ducks as IpsaSwitch)."""

    header_types: dict
    linkage: object
    tables: dict
    actions: dict

"""Templated Stage Processors (paper Sec. 2.2).

A TSP is a container programmed by downloading template parameters.
Each hosted stage is a parser-matcher-executor triad:

* the **parser** sub-module JIT-parses the header instances the stage
  needs (results travel with the packet -- no re-parsing);
* the **matcher** evaluates predicate arms in order and applies the
  first matching arm's table;
* the **executor** maps the lookup's tag to an action and runs it.

Writing a new template into a TSP takes "a few clock cycles"; the
behavioral model counts template words written so the loading-time
model has a physical quantity to charge.

Execution itself lives in :mod:`repro.dp`: at template-commit time
the device compiles each hosted stage into a plan with pre-resolved
table/action references, and one hook-parameterized loop
(:func:`repro.dp.exec.run_tsp_plan`) runs it plain, traced, or
profiled.  The ``Tsp`` object is the template store and stats sink.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.compiler.json_ir import stage_from_json
from repro.compiler.lowering import compile_predicate
from repro.lang.expr import Expr
from repro.net.packet import Packet
from repro.rp4.ast import StageDecl


@dataclass
class StageRuntime:
    """One hosted stage, ready to execute."""

    name: str
    parser_headers: List[str]
    #: (compiled predicate, source expr, table name or None)
    arms: List[Tuple[Callable[[Packet], bool], Optional[Expr], Optional[str]]]
    executor: Dict[object, str]

    @classmethod
    def from_decl(cls, decl: StageDecl) -> "StageRuntime":
        return cls(
            name=decl.name,
            parser_headers=list(decl.parser),
            arms=[
                (compile_predicate(arm.cond), arm.cond, arm.table)
                for arm in decl.matcher
            ],
            executor=dict(decl.executor),
        )

    @classmethod
    def from_json(cls, data: dict) -> "StageRuntime":
        return cls.from_decl(stage_from_json(data))

    def template_words(self) -> int:
        """Rough size of this stage's template (for load-cost stats)."""
        return (
            1
            + len(self.parser_headers)
            + 2 * len(self.arms)
            + len(self.executor)
        )


class TspState(enum.Enum):
    """Power/activity state (bypassed TSPs idle in low power)."""

    ACTIVE = "active"
    BYPASSED = "bypassed"


@dataclass
class TspStats:
    """Per-TSP counters the throughput/power models read."""

    packets: int = 0
    lookups: int = 0
    headers_parsed: int = 0
    actions_run: int = 0
    templates_written: int = 0
    template_words_written: int = 0

    def account_batch(
        self,
        packets: int = 0,
        lookups: int = 0,
        headers_parsed: int = 0,
        actions_run: int = 0,
    ) -> None:
        """Bulk counter update for the columnar batch path: one call
        per TSP per batch instead of one increment per packet."""
        self.packets += packets
        self.lookups += lookups
        self.headers_parsed += headers_parsed
        self.actions_run += actions_run


class Tsp:
    """One physical templated stage processor."""

    def __init__(self, index: int) -> None:
        self.index = index
        self.side = "ingress"
        self.stages: List[StageRuntime] = []
        self.state = TspState.BYPASSED
        self.stats = TspStats()

    @property
    def active(self) -> bool:
        return self.state is TspState.ACTIVE and bool(self.stages)

    def write_template(self, template: dict) -> int:
        """Download template parameters; returns words written.

        This is the whole runtime-programming story: no recompile, no
        bitstream -- just new parameters in the TSP's template store.
        """
        self.side = template.get("side", "ingress")
        self.stages = [StageRuntime.from_json(s) for s in template["stages"]]
        words = sum(s.template_words() for s in self.stages)
        self.stats.templates_written += 1
        self.stats.template_words_written += words
        self.state = TspState.ACTIVE
        return words

    def clear(self) -> None:
        """Erase the template and drop to the low-power state."""
        self.stages = []
        self.state = TspState.BYPASSED

    def signature(self) -> str:
        """Group key of the hosted stages (layout bookkeeping)."""
        return "+".join(s.name for s in self.stages)

    def metrics_samples(self):
        """This TSP's registry samples (labels carry the TSP index)."""
        from repro.obs.metrics import Sample

        labels = {"tsp": str(self.index)}
        stats = self.stats
        yield Sample("tsp.packets", stats.packets, dict(labels))
        yield Sample("tsp.lookups", stats.lookups, dict(labels))
        yield Sample("tsp.headers_parsed", stats.headers_parsed, dict(labels))
        yield Sample("tsp.actions_run", stats.actions_run, dict(labels))
        yield Sample(
            "tsp.templates_written", stats.templates_written, dict(labels)
        )
        yield Sample(
            "tsp.template_words_written",
            stats.template_words_written,
            dict(labels),
        )
        info = dict(labels)
        info["side"] = self.side
        info["state"] = self.state.value
        info["stages"] = self.signature() or "-"
        yield Sample("tsp.info", 1, info, "gauge")

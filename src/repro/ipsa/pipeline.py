"""The elastic pipeline and its selector (paper Sec. 2.3).

All TSPs are chained; the selector picks which TSP feeds the TM
(ingress end) and which receives TM output (egress start), so the
ingress/egress split is a runtime configuration, not a silicon
property.  Bypassed TSPs are skipped and kept in a low-power state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set

from repro.ipsa.tm import TrafficManager
from repro.ipsa.tsp import Tsp, TspState
from repro.net.packet import Packet
from repro.obs.trace import DropReason


class PipelineError(Exception):
    """Raised on inconsistent selector configuration."""


@dataclass
class SelectorConfig:
    """Which TSPs are active and where the TM boundary sits."""

    tm_input: Optional[int] = None  # last ingress TSP
    tm_output: Optional[int] = None  # first egress TSP
    active: Set[int] = field(default_factory=set)

    @classmethod
    def from_json(cls, data: dict) -> "SelectorConfig":
        return cls(
            tm_input=data.get("tm_input"),
            tm_output=data.get("tm_output"),
            active=set(data.get("active", [])),
        )

    def validate(self, n_tsps: int) -> None:
        for index in self.active:
            if not 0 <= index < n_tsps:
                raise PipelineError(f"active TSP {index} out of range")
        if (
            self.tm_input is not None
            and self.tm_output is not None
            and self.tm_input >= self.tm_output
        ):
            raise PipelineError(
                f"TM input {self.tm_input} must precede TM output {self.tm_output}"
            )


class ElasticPipeline:
    """The TSP chain + selector + TM."""

    def __init__(self, n_tsps: int = 8, tm: Optional[TrafficManager] = None) -> None:
        if n_tsps <= 0:
            raise ValueError("n_tsps must be positive")
        self.tsps = [Tsp(i) for i in range(n_tsps)]
        self.selector = SelectorConfig()
        self.tm = tm or TrafficManager()

    def __len__(self) -> int:
        return len(self.tsps)

    def configure_selector(self, selector: SelectorConfig) -> None:
        selector.validate(len(self.tsps))
        self.selector = selector
        for tsp in self.tsps:
            if tsp.index in selector.active and tsp.stages:
                tsp.state = TspState.ACTIVE
            else:
                tsp.state = TspState.BYPASSED

    def ingress_tsps(self) -> List[Tsp]:
        if self.selector.tm_input is None:
            return []
        return [
            t
            for t in self.tsps[: self.selector.tm_input + 1]
            if t.active and t.side == "ingress"
        ]

    def egress_tsps(self) -> List[Tsp]:
        if self.selector.tm_output is None:
            return []
        return [
            t
            for t in self.tsps[self.selector.tm_output :]
            if t.active and t.side == "egress"
        ]

    def active_tsps(self) -> List[Tsp]:
        return [t for t in self.tsps if t.active]

    def process_multi(self, packet: Packet, device, meter=None) -> List[Packet]:
        """Run one packet through ingress, the TM (with multicast
        replication), and egress.  Returns every surviving copy."""
        tracer = getattr(device, "tracer", None)
        if tracer is not None and tracer.current is None:
            tracer = None
        profiler = getattr(device, "profiler", None)
        for tsp in self.ingress_tsps():
            tsp.process(packet, device, meter)
            if packet.metadata.get("drop"):
                self._note_drop(device, tracer, DropReason.INGRESS_ACTION)
                return []
        if profiler is not None:
            started = profiler.now()
            queued_count = self.tm.enqueue_or_replicate(packet)
            profiler.add(("tm", "enqueue"), started, enqueues=queued_count)
        else:
            queued_count = self.tm.enqueue_or_replicate(packet)
        if tracer is not None:
            tracer.event(
                "tm.enqueue",
                kind="tm",
                queued=queued_count,
                occupancy=self.tm.occupancy(),
            )
        if queued_count == 0:
            group_id = int(packet.metadata.get("mcast_grp", 0))  # type: ignore[arg-type]
            if group_id and not self.tm.group(group_id):
                self._note_drop(
                    device, tracer, DropReason.MCAST_UNKNOWN_GROUP
                )
            else:
                self._note_drop(device, tracer, DropReason.TM_TAIL_DROP)
            return []
        outputs: List[Packet] = []
        for _ in range(queued_count):
            if profiler is not None:
                started = profiler.now()
                queued = self.tm.dequeue()
                profiler.add(("tm", "dequeue"), started, dequeues=1)
            else:
                queued = self.tm.dequeue()
            assert queued is not None
            if tracer is not None:
                tracer.event("tm.dequeue", kind="tm")
            dropped = False
            for tsp in self.egress_tsps():
                tsp.process(queued, device, meter)
                if queued.metadata.get("drop"):
                    self._note_drop(device, tracer, DropReason.EGRESS_ACTION)
                    dropped = True
                    break
            if not dropped:
                outputs.append(queued)
        return outputs

    @staticmethod
    def _note_drop(device, tracer, reason: DropReason) -> None:
        note = getattr(device, "note_drop", None)
        if note is not None:
            note(reason)
        if tracer is not None:
            tracer.note_drop(reason)

    def process(self, packet: Packet, device, meter=None) -> Optional[Packet]:
        """Unicast view of :meth:`process_multi` (first surviving copy)."""
        outputs = self.process_multi(packet, device, meter)
        return outputs[0] if outputs else None

    def write_templates(self, templates: List[dict]) -> int:
        """Download templates into their TSPs; returns words written."""
        words = 0
        for template in templates:
            index = template["tsp"]
            if not 0 <= index < len(self.tsps):
                raise PipelineError(f"template targets unknown TSP {index}")
            words += self.tsps[index].write_template(template)
        return words
